//! Offline shim of the `criterion` 0.5 API surface used by this
//! workspace's benches.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal timing harness with criterion's call shape:
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId`], [`black_box`]
//! and the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! It measures wall-clock medians over a fixed iteration budget and
//! prints one line per benchmark — good enough to compare runs by hand,
//! with none of criterion's statistics, plotting or history. Benchmark
//! names can be filtered by passing a substring argument, mirroring
//! `cargo bench -- <filter>`.

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`], criterion-style.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// A benchmark identifier: `function_name/parameter`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// An id combining a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            full: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id from a parameter value alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            full: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.full)
    }
}

/// The timing loop handed to benchmark closures.
pub struct Bencher {
    samples: usize,
    /// Median per-iteration time of the last `iter` call.
    last: Option<Duration>,
}

impl Bencher {
    /// Times `routine`, recording the median over the sample budget.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One warm-up call keeps cold caches out of the first sample.
        black_box(routine());
        let mut times = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            times.push(start.elapsed());
        }
        times.sort_unstable();
        self.last = Some(times[times.len() / 2]);
    }
}

fn run_one(name: &str, filter: Option<&str>, samples: usize, f: impl FnOnce(&mut Bencher)) {
    if let Some(needle) = filter {
        if !name.contains(needle) {
            return;
        }
    }
    let mut bencher = Bencher {
        samples,
        last: None,
    };
    f(&mut bencher);
    match bencher.last {
        Some(median) => println!("{name:<40} median {median:>12.2?} ({samples} samples)"),
        None => println!("{name:<40} (no measurement)"),
    }
}

/// A named group of related benchmarks sharing a sample budget.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    samples: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-benchmark sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.samples = n;
        self
    }

    /// Benchmarks `routine` against a borrowed input.
    pub fn bench_with_input<I: ?Sized, R>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        routine: R,
    ) -> &mut Self
    where
        R: FnOnce(&mut Bencher, &I),
    {
        run_one(
            &format!("{}/{}", self.name, id),
            self.criterion.filter.as_deref(),
            self.samples,
            |b| routine(b, input),
        );
        self
    }

    /// Benchmarks a closure with no external input.
    pub fn bench_function<R: FnOnce(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        routine: R,
    ) -> &mut Self {
        run_one(
            &format!("{}/{}", self.name, id),
            self.criterion.filter.as_deref(),
            self.samples,
            routine,
        );
        self
    }

    /// Ends the group (kept for API parity; nothing buffered).
    pub fn finish(&mut self) {}
}

/// The benchmark driver.
pub struct Criterion {
    filter: Option<String>,
    default_samples: usize,
}

impl Default for Criterion {
    /// A driver honoring a `cargo bench -- <filter>` substring argument.
    fn default() -> Criterion {
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with("--") && !a.ends_with("bench"));
        Criterion {
            filter,
            default_samples: 10,
        }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            samples: self.default_samples,
            criterion: self,
        }
    }

    /// Benchmarks a standalone closure.
    pub fn bench_function<R: FnOnce(&mut Bencher)>(&mut self, name: &str, routine: R) -> &mut Self {
        run_one(name, self.filter.as_deref(), self.default_samples, routine);
        self
    }
}

/// Bundles benchmark functions into one group runner, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_a_median() {
        let mut b = Bencher {
            samples: 5,
            last: None,
        };
        b.iter(|| black_box(2u64 + 2));
        assert!(b.last.is_some());
    }

    #[test]
    fn ids_format_like_criterion() {
        assert_eq!(
            BenchmarkId::new("qspr", "[[5,1,3]]").to_string(),
            "qspr/[[5,1,3]]"
        );
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
    }

    #[test]
    fn groups_run_and_filter() {
        let mut c = Criterion {
            filter: Some("keep".into()),
            default_samples: 2,
        };
        let mut ran = Vec::new();
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(3)
                .bench_with_input(BenchmarkId::new("keep", 1), &41, |b, &x| {
                    b.iter(|| x + 1);
                });
            g.finish();
        }
        // The filtered-out closure must never execute.
        c.bench_function("dropped", |_b| ran.push("dropped"));
        assert!(ran.is_empty());
    }
}
