//! Offline shim of the `proptest` 1.x API surface used by this workspace.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a small property-testing engine that supports exactly the
//! features the QSPR test suites use:
//!
//! * the [`proptest!`] macro with an optional `#![proptest_config(..)]`
//!   inner attribute and `pat in strategy` arguments;
//! * range strategies (`0usize..900`, `0u8..4`, `0.0f64..1.0`,
//!   `0..=n`), tuple strategies, [`collection::vec`], [`any`], and
//!   [`Strategy::prop_map`];
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`] and
//!   [`prop_assume!`].
//!
//! Differences from upstream: cases are generated from a seed derived
//! from the test-function name (fully deterministic, no persistence
//! files) and there is no shrinking — a failing case reports the
//! assertion message only. Keep that in mind when debugging: rerun with
//! the printed values rather than expecting a minimal counterexample.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

pub mod test_runner {
    //! Test-case plumbing used by the generated harness code.

    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};

    /// Why a generated case did not pass.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub enum TestCaseError {
        /// An assertion failed: the property is falsified.
        Fail(String),
        /// The inputs were rejected by `prop_assume!`; try another case.
        Reject(String),
    }

    impl TestCaseError {
        /// A failed case with `reason`.
        pub fn fail(reason: impl Into<String>) -> TestCaseError {
            TestCaseError::Fail(reason.into())
        }

        /// A rejected (assumption-violating) case with `reason`.
        pub fn reject(reason: impl Into<String>) -> TestCaseError {
            TestCaseError::Reject(reason.into())
        }
    }

    /// Configuration accepted by `#![proptest_config(..)]`.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct ProptestConfig {
        /// Number of accepted cases to run per property.
        pub cases: u32,
        /// Maximum rejected cases (via `prop_assume!`) before giving up.
        pub max_global_rejects: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` accepted cases.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig {
                cases,
                ..ProptestConfig::default()
            }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig {
                cases: 64,
                max_global_rejects: 4096,
            }
        }
    }

    /// The deterministic source of randomness for strategy sampling.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        inner: StdRng,
    }

    impl TestRng {
        /// Derives a generator from a test name (FNV-1a hashed), so every
        /// property gets an independent but reproducible stream.
        pub fn for_test(name: &str) -> TestRng {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng {
                inner: StdRng::seed_from_u64(h),
            }
        }
    }

    impl RngCore for TestRng {
        fn next_u32(&mut self) -> u32 {
            self.inner.next_u32()
        }
        fn next_u64(&mut self) -> u64 {
            self.inner.next_u64()
        }
    }
}

use test_runner::TestRng;

/// A recipe for generating values of an associated type.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { source: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.sample(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl<T: rand::SampleUniform> Strategy for Range<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        rand::Rng::gen_range(rng, self.clone())
    }
}

impl<T: rand::SampleUniform> Strategy for RangeInclusive<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        rand::Rng::gen_range(rng, self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident/$idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A/0)
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
    (A/0, B/1, C/2, D/3, E/4)
    (A/0, B/1, C/2, D/3, E/4, F/5)
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone)]
pub struct Any<T>(PhantomData<T>);

impl<T: rand::Standard> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        rand::Rng::gen(rng)
    }
}

/// A strategy producing arbitrary values of `T` (full-width uniform for
/// the integer types, `[0, 1)` for `f64`).
pub fn any<T: rand::Standard>() -> Any<T> {
    Any(PhantomData)
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// A size bound for generated collections.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// The strategy returned by [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates `Vec`s whose length lies in `size` and whose elements
    /// come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rand::Rng::gen_range(rng, self.size.lo..=self.size.hi_inclusive);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod prelude {
    //! The glob-import surface: `use proptest::prelude::*;`.

    pub use crate::collection;
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{any, Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left == *right, $($fmt)+);
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `(left != right)`\n  both: `{:?}`",
            left
        );
    }};
}

/// Rejects the current case (not a failure) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// Defines property tests: each `fn name(pat in strategy, ..) { .. }`
/// becomes a `#[test]` running the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(@cfg ($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(
            @cfg ($crate::test_runner::ProptestConfig::default()) $($rest)*
        );
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg ($config:expr)) => {};
    (@cfg ($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strategy:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $config;
            let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
            let mut accepted: u32 = 0;
            let mut rejected: u32 = 0;
            while accepted < config.cases {
                let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $(let $pat = $crate::Strategy::sample(&($strategy), &mut rng);)*
                        $body
                        ::core::result::Result::Ok(())
                    })();
                match outcome {
                    ::core::result::Result::Ok(()) => accepted += 1,
                    ::core::result::Result::Err(
                        $crate::test_runner::TestCaseError::Reject(_),
                    ) => {
                        rejected += 1;
                        if rejected > config.max_global_rejects {
                            panic!(
                                "proptest {}: too many rejected cases ({rejected})",
                                stringify!($name)
                            );
                        }
                    }
                    ::core::result::Result::Err(
                        $crate::test_runner::TestCaseError::Fail(reason),
                    ) => {
                        panic!(
                            "proptest {} falsified after {} passing case(s): {reason}",
                            stringify!($name),
                            accepted
                        );
                    }
                }
            }
        }
        $crate::__proptest_impl!(@cfg ($config) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]

        #[test]
        fn ranges_stay_in_bounds(a in 3usize..9, b in 0u8..4, x in 0.0f64..1.0) {
            prop_assert!((3..9).contains(&a));
            prop_assert!(b < 4);
            prop_assert!((0.0..1.0).contains(&x));
        }

        #[test]
        fn tuples_and_maps_compose(
            pair in (0usize..10, 0usize..10),
            doubled in (0usize..50).prop_map(|v| v * 2),
        ) {
            prop_assert!(pair.0 < 10 && pair.1 < 10);
            prop_assert_eq!(doubled % 2, 0);
        }

        #[test]
        fn vec_lengths_respect_size_range(
            xs in collection::vec(any::<u64>(), 1..5),
            ys in collection::vec(0u8..3, 0..=4usize),
        ) {
            prop_assert!((1..5).contains(&xs.len()));
            prop_assert!(ys.len() <= 4);
            prop_assert!(ys.iter().all(|&y| y < 3));
        }

        #[test]
        fn assume_rejects_without_failing(n in 0usize..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }

        #[test]
        fn early_return_counts_as_pass(n in 0usize..100) {
            if n > 50 {
                return Ok(());
            }
            prop_assert!(n <= 50);
        }
    }

    #[test]
    #[should_panic(expected = "falsified")]
    fn failures_panic_with_reason() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(8))]
            // No #[test] meta: the generated fn is invoked by hand below.
            fn inner(n in 0usize..4) {
                prop_assert!(n < 2, "n was {}", n);
            }
        }
        inner();
    }
}
