//! Offline shim of the `rand` 0.8 API surface used by this workspace.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a small, dependency-free implementation of exactly the traits
//! and types the QSPR crates use: [`RngCore`], [`Rng`], [`SeedableRng`],
//! [`rngs::StdRng`] and [`seq::SliceRandom`]. The generator is
//! xoshiro256++ seeded through SplitMix64 — statistically solid for
//! placement sampling and, crucially for the test suite, fully
//! deterministic for a given seed on every platform.
//!
//! This is *not* the real `rand` crate: stream values differ from
//! upstream `StdRng` (which is ChaCha-based). Nothing in the workspace
//! depends on the concrete stream, only on seed-determinism.

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator: a source of `u32`/`u64` words.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a `u64` seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from a half-open or inclusive range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Samples uniformly from `[low, high)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Samples uniformly from `[low, high]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

/// Uniform `u64` in `[0, bound)` by rejection sampling (unbiased).
fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    if bound.is_power_of_two() {
        return rng.next_u64() & (bound - 1);
    }
    // Reject the final partial block so every residue is equally likely.
    let zone = u64::MAX - (u64::MAX % bound) - 1;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % bound;
        }
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "cannot sample empty range");
                let span = (high as $wide).wrapping_sub(low as $wide) as u64;
                let offset = uniform_u64_below(rng, span);
                ((low as $wide).wrapping_add(offset as $wide)) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "cannot sample empty range");
                let span = (high as $wide).wrapping_sub(low as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                let offset = uniform_u64_below(rng, span + 1);
                ((low as $wide).wrapping_add(offset as $wide)) as $t
            }
        }
    )*};
}

impl_sample_uniform_int! {
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
}

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "cannot sample empty range");
        low + (high - low) * unit_f64(rng)
    }
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low <= high, "cannot sample empty range");
        low + (high - low) * unit_f64(rng)
    }
}

/// Uniform `f64` in `[0, 1)` with 53 bits of precision.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A range argument to [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one sample.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// Types producible by [`Rng::gen`] (the `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),* $(,)?) => {$(
        impl Standard for $t {
            fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}

/// Convenience sampling methods, blanket-implemented for every source.
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }

    /// Samples uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ p ≤ 1`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p={p} out of [0,1]");
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ seeded via
    /// SplitMix64. Deterministic for a given seed on every platform.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Sequence-related extensions.

    use super::{uniform_u64_below, RngCore};

    /// Slice shuffling and element choice.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = uniform_u64_below(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let i = uniform_u64_below(rng, self.len() as u64) as usize;
                Some(&self[i])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.gen()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3..9usize);
            assert!((3..9).contains(&v));
            let w = rng.gen_range(3..=9usize);
            assert!((3..=9).contains(&w));
            let x: i32 = rng.gen_range(-5..5);
            assert!((-5..5).contains(&x));
        }
    }

    #[test]
    fn gen_range_covers_the_whole_range() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 6];
        for _ in 0..500 {
            seen[rng.gen_range(0..6usize)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues hit: {seen:?}");
    }

    #[test]
    fn gen_bool_is_calibrated() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "got {hits}");
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_permutes_and_is_seed_deterministic() {
        let base: Vec<usize> = (0..20).collect();
        let mut a = base.clone();
        let mut b = base.clone();
        a.shuffle(&mut StdRng::seed_from_u64(9));
        b.shuffle(&mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, base);
        assert_ne!(a, base, "20 elements virtually never shuffle to identity");
    }

    #[test]
    fn choose_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let xs = [1, 2, 3];
        for _ in 0..50 {
            assert!(xs.contains(xs.choose(&mut rng).unwrap()));
        }
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
