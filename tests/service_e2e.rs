//! End-to-end exercise of `qspr::service` the way a downstream
//! deployment would use it: a real server on an ephemeral port, real
//! TCP clients, concurrent traffic, counter checks, graceful shutdown.
//!
//! The heavier load/oracle checks live in the `loadgen` binary
//! (`qspr-bench`), which CI runs against a spawned `qspr serve`; this
//! test keeps a fast in-process version in the tier-1 suite.

use std::sync::Arc;
use std::thread;

use qspr::service::{http, MapService, ServeConfig, Server};
use qspr::{Flow, ToJson};
use qspr_fabric::Fabric;
use qspr_qasm::Program;

const BELL: &str = "QUBIT a\nQUBIT b\nH a\nC-X a,b\n";

fn spawn_server(cache: usize, threads: usize) -> qspr::service::ServerHandle {
    let service = Arc::new(MapService::new(Fabric::quale_45x85(), cache));
    let config = ServeConfig {
        addr: "127.0.0.1:0".into(),
        threads,
        ..ServeConfig::default()
    };
    Server::bind(service, &config)
        .expect("bind ephemeral")
        .spawn()
}

#[test]
fn concurrent_clients_get_identical_cached_responses() {
    let handle = spawn_server(32, 4);
    let addr = handle.addr();
    let body = format!("{{\"program\":{BELL:?},\"m\":2}}");

    // Prime the cache once so every concurrent request below hits it.
    let cold = http::call(addr, "POST", "/map", &body).expect("cold map");
    assert_eq!(cold.status, 200);

    let bodies: Vec<String> = thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let body = body.clone();
                scope.spawn(move || {
                    let mut got = Vec::new();
                    for _ in 0..4 {
                        let r = http::call(addr, "POST", "/map", &body).expect("warm map");
                        assert_eq!(r.status, 200);
                        got.push(r.body);
                    }
                    got
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread"))
            .collect()
    });
    for b in &bodies {
        assert_eq!(b, &cold.body, "cached responses must be byte-identical");
    }

    let stats = handle.service().stats();
    assert_eq!(stats.map_requests, 33); // 1 cold + 32 warm
    assert_eq!(stats.cache_misses, 1);
    assert_eq!(stats.cache_hits, 32);
    assert_eq!(stats.errors, 0);
    handle.shutdown().expect("graceful shutdown");
}

#[test]
fn compare_matches_the_library_byte_for_byte() {
    let handle = spawn_server(8, 2);
    let addr = handle.addr();
    let body = format!("{{\"program\":{BELL:?},\"name\":\"bell\",\"m\":2}}");
    let served = http::call(addr, "POST", "/compare", &body).expect("compare");
    assert_eq!(served.status, 200);

    let program = Program::parse(BELL).unwrap();
    let expected = Flow::on(Fabric::quale_45x85())
        .seeds(2)
        .compare("bell", &program)
        .unwrap()
        .to_json();
    assert_eq!(
        served.body, expected,
        "wire bytes == qspr compare --format json"
    );
    handle.shutdown().expect("graceful shutdown");
}

#[test]
fn shutdown_finishes_in_flight_work_and_refuses_new_connections() {
    let handle = spawn_server(8, 2);
    let addr = handle.addr();
    // A request racing the shutdown from another thread must either be
    // served completely or refused at the TCP level — never half-answered.
    let racer = thread::spawn(move || {
        http::call(
            addr,
            "POST",
            "/map",
            &format!("{{\"program\":{BELL:?},\"m\":2}}"),
        )
    });
    handle.shutdown().expect("graceful shutdown");
    // A TCP-level error means the racer was refused cleanly; a response
    // must be a complete, correct one.
    if let Ok(response) = racer.join().expect("racer thread") {
        assert_eq!(response.status, 200);
        assert!(response.body.starts_with(r#"{"policy":"qspr""#));
    }
    assert!(
        http::call(addr, "GET", "/healthz", "").is_err(),
        "listener must be gone after shutdown"
    );
}
