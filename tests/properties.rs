//! Property-based tests over the whole mapping pipeline.

use proptest::prelude::*;

use qspr_fabric::{Fabric, RegularFabricSpec, TechParams};
use qspr_qasm::{random_program, Program, RandomProgramConfig};
use qspr_route::{ResourceState, Router, RouterConfig};
use qspr_sched::Qidg;
use qspr_sim::{validate_trace, Mapper, MapperPolicy, Placement};

fn tech() -> TechParams {
    TechParams::date2012()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any random program maps to a physically valid trace whose latency
    /// is bounded below by the resource-free critical path.
    #[test]
    fn random_programs_map_to_valid_traces(
        qubits in 2usize..10,
        gates in 1usize..50,
        frac in 0.0f64..1.0,
        seed in 0u64..1_000,
    ) {
        let program = random_program(
            &RandomProgramConfig::new(qubits, gates).two_qubit_fraction(frac),
            seed,
        );
        let fabric = Fabric::quale_45x85();
        let tech = tech();
        let placement = Placement::center(&fabric, qubits);
        let outcome = Mapper::new(&fabric, tech, MapperPolicy::qspr(&tech))
            .record_trace(true)
            .map(&program, &placement)
            .expect("quale fabric maps everything");
        let ideal = Qidg::new(&program, &tech).critical_path_delay();
        prop_assert!(outcome.latency() >= ideal);
        validate_trace(
            &fabric,
            &program,
            &placement,
            outcome.trace().expect("recorded"),
            &tech,
        )
        .expect("trace invariants hold");
    }

    /// The negotiated routing engine obeys the same physical invariants
    /// as the greedy one on arbitrary programs: the mapping completes,
    /// respects the ideal lower bound, and its trace replays cleanly
    /// (no teleports, capacities never exceeded).
    ///
    /// Note: the engine's never-worse guarantee is *per epoch* — it
    /// does not compose to whole-program latency on arbitrary inputs
    /// (a locally shorter joint route can shift later issue decisions
    /// either way), so no latency ordering is asserted here. The
    /// suite-level `negotiated <= greedy` property on the six QECC
    /// benchmarks is pinned empirically by the `routers` bench binary.
    #[test]
    fn negotiated_routing_maps_valid_traces(
        qubits in 2usize..8,
        gates in 1usize..30,
        seed in 0u64..500,
    ) {
        use qspr_sim::RouterKind;

        let program = random_program(
            &RandomProgramConfig::new(qubits, gates).two_qubit_fraction(0.8),
            seed,
        );
        let fabric = Fabric::quale_45x85();
        let tech = tech();
        let placement = Placement::center(&fabric, qubits);
        let negotiated = Mapper::new(&fabric, tech, MapperPolicy::qspr(&tech))
            .router(RouterKind::Negotiated)
            .record_trace(true)
            .map(&program, &placement)
            .expect("negotiated maps");
        let ideal = Qidg::new(&program, &tech).critical_path_delay();
        prop_assert!(negotiated.latency() >= ideal);
        validate_trace(
            &fabric,
            &program,
            &placement,
            negotiated.trace().expect("recorded"),
            &tech,
        )
        .expect("negotiated trace invariants hold");
    }

    /// The uncompute transformation preserves the ideal critical path and
    /// is an involution.
    #[test]
    fn uncompute_preserves_critical_path(
        qubits in 2usize..10,
        gates in 1usize..60,
        seed in 0u64..1_000,
    ) {
        let program = random_program(&RandomProgramConfig::new(qubits, gates), seed);
        let reversed = program.reversed();
        prop_assert_eq!(reversed.reversed(), program.clone());
        let tech = tech();
        prop_assert_eq!(
            Qidg::new(&program, &tech).critical_path_delay(),
            Qidg::new(&reversed, &tech).critical_path_delay()
        );
    }

    /// QASM round-trips through text for arbitrary generated programs.
    #[test]
    fn qasm_round_trips(
        qubits in 1usize..12,
        gates in 0usize..80,
        seed in 0u64..1_000,
    ) {
        let program = random_program(&RandomProgramConfig::new(qubits, gates), seed);
        let text = program.to_qasm();
        prop_assert_eq!(Program::parse(&text).expect("own output parses"), program);
    }

    /// On any regular fabric, routing between any two traps on a quiet
    /// fabric succeeds, and the plan's cost accounting is consistent.
    #[test]
    fn regular_fabrics_route_consistently(
        rows in 6u16..20,
        cols in 6u16..20,
        pitch in 2u16..5,
        a_pick in 0usize..500,
        b_pick in 0usize..500,
    ) {
        let Ok(fabric) = RegularFabricSpec::new(rows, cols, pitch).build() else {
            // Too small for a tile: fine, nothing to test.
            return Ok(());
        };
        let topo = fabric.topology();
        let n = topo.traps().len();
        prop_assume!(n >= 2);
        let a = qspr_fabric::TrapId((a_pick % n) as u32);
        let b = qspr_fabric::TrapId((b_pick % n) as u32);
        prop_assume!(a != b);
        let tech = tech();
        let router = Router::new(topo, RouterConfig::qspr(&tech));
        let state = ResourceState::new(topo);
        let plan = router.route(&state, a, b).expect("regular fabrics connect");
        prop_assert_eq!(
            plan.duration(),
            u64::from(plan.moves()) * tech.t_move + u64::from(plan.turns()) * tech.t_turn
        );
        // Quiet fabric: the congestion-weighted estimate equals the
        // physical duration.
        prop_assert_eq!(plan.est_cost(), plan.duration());
        // Booked resources release within the travel window, in order.
        let mut last = 0;
        for usage in plan.resources() {
            prop_assert!(usage.exit_offset >= last);
            prop_assert!(usage.exit_offset <= plan.duration());
            last = usage.exit_offset;
        }
    }

    /// Mapping is invariant under trace recording, and deterministic.
    #[test]
    fn tracing_never_changes_results(
        qubits in 2usize..8,
        gates in 1usize..30,
        seed in 0u64..1_000,
    ) {
        let program = random_program(&RandomProgramConfig::new(qubits, gates), seed);
        let fabric = Fabric::quale_45x85();
        let tech = tech();
        let placement = Placement::center(&fabric, qubits);
        let mapper = Mapper::new(&fabric, tech, MapperPolicy::qspr(&tech));
        let plain = mapper.map(&program, &placement).expect("maps");
        let traced = mapper
            .clone()
            .record_trace(true)
            .map(&program, &placement)
            .expect("maps");
        prop_assert_eq!(plain.latency(), traced.latency());
        prop_assert_eq!(plain.final_placement(), traced.final_placement());
        prop_assert_eq!(plain.totals(), traced.totals());
    }

    /// `Flow::jobs` is a pure performance hint: for any random fabric
    /// and circuit, every engine (greedy, negotiated, and the racing
    /// meta-engine) produces byte-identical summary JSON — modulo the
    /// wall-clock `"timing"` object — and a byte-identical recorded
    /// trace at every thread count. This is the determinism contract
    /// behind `qspr map --jobs N` and the serve `"jobs"` field.
    #[test]
    fn jobs_never_change_flow_results(
        rows in 8u16..16,
        cols in 8u16..16,
        pitch in 2u16..4,
        qubits in 2usize..6,
        gates in 1usize..20,
        seed in 0u64..500,
    ) {
        use std::sync::Arc;
        use qspr::service::normalize_timing;
        use qspr::{Flow, RouterKind, ToJson};

        let Ok(fabric) = RegularFabricSpec::new(rows, cols, pitch).build() else {
            return Ok(()); // too small for a tile: nothing to test
        };
        prop_assume!(fabric.topology().traps().len() >= qubits);
        let fabric = Arc::new(fabric);
        let program = random_program(
            &RandomProgramConfig::new(qubits, gates).two_qubit_fraction(0.8),
            seed,
        );
        for router in [RouterKind::Greedy, RouterKind::Negotiated, RouterKind::Race] {
            let base = Flow::on(Arc::clone(&fabric))
                .router(router)
                .seeds(2)
                .record_trace(true);
            let reference = base.clone().run(&program);
            for jobs in [2usize, 4, 8] {
                let result = base.clone().jobs(jobs).run(&program);
                match (&reference, &result) {
                    (Ok(expected), Ok(got)) => {
                        prop_assert_eq!(
                            normalize_timing(&expected.summary().to_json()),
                            normalize_timing(&got.summary().to_json()),
                            "summary diverged at jobs={} router={:?}", jobs, router
                        );
                        prop_assert_eq!(
                            &expected.forward_trace, &got.forward_trace,
                            "trace diverged at jobs={} router={:?}", jobs, router
                        );
                    }
                    // A fabric this small can legitimately stall; the
                    // failure itself must be thread-count independent.
                    (Err(expected), Err(got)) => {
                        prop_assert_eq!(
                            expected.to_string(), got.to_string(),
                            "error diverged at jobs={} router={:?}", jobs, router
                        );
                    }
                    _ => prop_assert!(
                        false,
                        "mappability diverged at jobs={jobs} router={router:?}"
                    ),
                }
            }
        }
    }

    /// The three baselines never beat the ideal bound, on any program.
    #[test]
    fn baselines_respect_the_ideal_bound(
        qubits in 2usize..8,
        gates in 1usize..30,
        seed in 0u64..1_000,
    ) {
        let program = random_program(&RandomProgramConfig::new(qubits, gates), seed);
        let fabric = Fabric::quale_45x85();
        let tech = tech();
        let ideal = Qidg::new(&program, &tech).critical_path_delay();
        let placement = Placement::center(&fabric, qubits);
        for policy in [
            MapperPolicy::qspr(&tech),
            MapperPolicy::quale(&tech),
            MapperPolicy::qpos(&tech),
        ] {
            let outcome = Mapper::new(&fabric, tech, policy)
                .map(&program, &placement)
                .expect("maps");
            prop_assert!(outcome.latency() >= ideal);
        }
    }
}
