//! End-to-end checks of the `qspr-sta` timing-analysis subsystem on
//! the paper's Table 1 circuits: the extracted critical path must end
//! exactly at the reported makespan, the slack algebra must hold for
//! every instruction, reports must be byte-identically deterministic,
//! and slack-aware feedback must never lose to the plain negotiated
//! flow it pilots with.

use qspr::{Flow, RouterKind, ToJson};
use qspr_fabric::Fabric;
use qspr_qecc::codes::benchmark_suite;

fn sta_flow() -> Flow {
    Flow::on(Fabric::quale_45x85()).seeds(2).record_trace(true)
}

#[test]
fn critical_path_ends_at_the_makespan_on_every_table1_circuit() {
    let flow = sta_flow();
    for bench in benchmark_suite() {
        let result = flow.run(&bench.program).expect("maps");
        let report = flow
            .timing_report(&bench.program, &result)
            .expect("analyzes");
        assert_eq!(report.makespan(), result.latency, "{}", bench.name);
        assert_eq!(
            report.critical_end(),
            Some(result.latency),
            "{}: the critical path must end at the reported makespan",
            bench.name
        );
        assert!(
            !report.critical_path().is_empty(),
            "{}: a non-empty circuit has a critical path",
            bench.name
        );
        assert_eq!(report.min_slack(), Some(0), "{}", bench.name);
        for t in report.instructions() {
            // slack = required − finish, never negative (Time is
            // unsigned, so the addition form is the honest check).
            assert_eq!(
                t.finish + t.slack,
                t.required,
                "{}/{}: slack algebra",
                bench.name,
                t.gate
            );
            assert!(
                !t.critical || t.slack == 0,
                "{}/{}: critical instructions have zero slack",
                bench.name,
                t.gate
            );
        }
    }
}

#[test]
fn reports_are_byte_identical_across_runs() {
    let flow = sta_flow();
    for bench in benchmark_suite().into_iter().take(3) {
        let a = flow.run(&bench.program).expect("maps");
        let b = flow.run(&bench.program).expect("maps");
        let report_a = flow.timing_report(&bench.program, &a).expect("analyzes");
        let report_b = flow.timing_report(&bench.program, &b).expect("analyzes");
        assert_eq!(
            report_a.to_json(),
            report_b.to_json(),
            "{}: timing reports are deterministic to the byte",
            bench.name
        );
    }
}

#[test]
fn sta_feedback_never_increases_suite_latency() {
    // The feedback driver is best-of-two with the plain run as its
    // pilot, so `<=` must hold circuit by circuit, not just on average.
    let flow = sta_flow().router(RouterKind::Negotiated);
    for bench in benchmark_suite().into_iter().take(2) {
        let plain = flow.clone().run(&bench.program).expect("maps");
        let fed = flow
            .clone()
            .sta_feedback(true)
            .run(&bench.program)
            .expect("maps with feedback");
        assert!(
            fed.latency <= plain.latency,
            "{}: feedback {} must not exceed plain negotiated {}",
            bench.name,
            fed.latency,
            plain.latency
        );
        // Deterministic choice: a re-run reproduces it.
        let again = flow
            .clone()
            .sta_feedback(true)
            .run(&bench.program)
            .expect("maps again");
        assert_eq!(fed.latency, again.latency, "{}", bench.name);
        assert_eq!(fed.router, again.router, "{}", bench.name);
    }
}
