//! Integration tests of the service-grade `Flow` API: ownership and
//! thread-safety guarantees, placer pluggability through the `dyn
//! Placer` seam, router pluggability through the `RouterFactory` seam,
//! and the stable JSON report schema.

use std::sync::Arc;
use std::thread;
use std::time::Duration;

use qspr::{BatchJob, BatchMapper, Flow, QsprError, RouterKind, ToJson};
use qspr_fabric::Fabric;
use qspr_place::{MvfbConfig, MvfbPlacer, PassDirection, Placer, PlacerSolution};
use qspr_qasm::Program;
use qspr_qecc::codes::{benchmark_suite, fig3_program};
use qspr_sim::{MapError, Mapper, Placement};

/// Compile-time contract: the flow (and the batch front end built on
/// it) must be `Send + Sync + 'static` so they can serve from thread
/// pools and async tasks.
#[test]
fn flow_api_is_send_sync_static() {
    fn assert_service_grade<T: Send + Sync + 'static>() {}
    assert_service_grade::<Flow>();
    assert_service_grade::<BatchMapper>();
    assert_service_grade::<QsprError>();
}

#[test]
fn owned_flow_moves_into_worker_threads() {
    // The whole point of dropping the lifetime parameter: a Flow can be
    // cloned into plain `thread::spawn` closures, no scoped threads or
    // fabric references needed.
    let fabric = Arc::new(Fabric::quale_45x85());
    let flow = Flow::on(Arc::clone(&fabric)).seeds(2);
    let program = fig3_program();

    let handles: Vec<_> = (0..3)
        .map(|_| {
            let flow = flow.clone();
            let program = program.clone();
            thread::spawn(move || flow.run(&program).expect("maps").latency)
        })
        .collect();
    let latencies: Vec<u64> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    assert!(latencies.windows(2).all(|w| w[0] == w[1]), "{latencies:?}");
}

/// A third-party placer: deterministic center placement, one run.
struct CenterPlacer;

impl Placer for CenterPlacer {
    fn name(&self) -> &str {
        "center"
    }

    fn place(&self, mapper: &Mapper<'_>, program: &Program) -> Result<PlacerSolution, MapError> {
        let placement = Placement::center(mapper.fabric(), program.num_qubits());
        let outcome = mapper.map(program, &placement)?;
        Ok(PlacerSolution {
            latency: outcome.latency(),
            direction: PassDirection::Forward,
            initial_placement: placement,
            runs: 1,
            cpu: Duration::ZERO,
        })
    }
}

#[test]
fn third_party_placers_plug_into_the_flow() {
    let flow = Flow::on(Fabric::quale_45x85()).placer(CenterPlacer);
    let program = fig3_program();
    let result = flow.run(&program).expect("maps");
    assert_eq!(result.placer, "center");
    assert_eq!(result.runs, 1);
    assert_eq!(result.direction, PassDirection::Forward);
    assert!(result.latency >= flow.ideal_latency(&program));
}

#[test]
fn built_in_engines_agree_through_the_dyn_seam() {
    // Latency through the `dyn Placer` seam must equal latency through
    // a direct, statically-dispatched call — the seam adds indirection,
    // not behavior.
    let fabric = Fabric::quale_45x85();
    let tech = *Flow::on(fabric.clone()).tech_params();
    let mapper = Mapper::new(&fabric, tech, qspr_sim::MapperPolicy::qspr(&tech));
    let program = fig3_program();

    let static_call = MvfbPlacer::new(MvfbConfig::new(3, 42))
        .place(&mapper, &program)
        .expect("places");
    let engine: Box<dyn Placer> = Box::new(MvfbPlacer::new(MvfbConfig::new(3, 42)));
    let dynamic_call = engine.place(&mapper, &program).expect("places");
    assert_eq!(static_call.latency, dynamic_call.latency);
    assert_eq!(static_call.runs, dynamic_call.runs);
    assert_eq!(
        static_call.initial_placement,
        dynamic_call.initial_placement
    );
}

/// The two built-in routing engines are selectable through the same
/// flow. The latency ordering asserted below is the suite-level
/// empirical property the `routers` bench pins across all six QECC
/// benchmarks (the engine's structural never-worse guarantee is per
/// epoch, not per program): this fixed circuit + seed combination is
/// fully deterministic, so the assertion is stable.
#[test]
fn routing_engines_plug_into_the_flow() {
    let bench = benchmark_suite().swap_remove(0);
    let flow = Flow::on(Fabric::quale_45x85()).seeds(3);

    let greedy = flow
        .clone()
        .router(RouterKind::Greedy)
        .run(&bench.program)
        .expect("maps");
    let negotiated = flow
        .clone()
        .router(RouterKind::Negotiated)
        .run(&bench.program)
        .expect("maps");
    assert_eq!(greedy.router, "greedy");
    assert_eq!(negotiated.router, "negotiated");
    assert!(
        negotiated.latency <= greedy.latency,
        "negotiated {} must not lose to greedy {}",
        negotiated.latency,
        greedy.latency
    );

    // Congestion stats surface in the stable JSON schema.
    let json = negotiated.summary().to_json();
    assert!(json.contains(r#""router":"negotiated""#));
    for key in [
        r#""epochs":"#,
        r#""rip_iterations":"#,
        r#""ripped_routes":"#,
        r#""max_segment_pressure":"#,
    ] {
        assert!(json.contains(key), "{key} missing in {json}");
    }
}

/// A custom factory plugs third-party engines into the mapper, exactly
/// like a custom placer plugs into the flow.
#[test]
fn custom_router_factories_plug_in() {
    use qspr_fabric::Topology;
    use qspr_route::{RouterConfig, RouterFactory, RoutingEngine};

    struct LoudGreedy;
    impl RouterFactory for LoudGreedy {
        fn name(&self) -> &str {
            "loud-greedy"
        }
        fn build<'t>(
            &self,
            topology: &'t Topology,
            config: RouterConfig,
        ) -> Box<dyn RoutingEngine + 't> {
            RouterKind::Greedy.build(topology, config)
        }
    }

    let flow = Flow::on(Fabric::quale_45x85()).seeds(2).router(LoudGreedy);
    assert_eq!(flow.router_name(), "loud-greedy");
    let result = flow.run(&fig3_program()).expect("maps");
    assert_eq!(result.router, "loud-greedy");
    // The wrapped engine is the greedy one, so the mapping matches it.
    let reference = Flow::on(Fabric::quale_45x85())
        .seeds(2)
        .run(&fig3_program());
    assert_eq!(result.latency, reference.expect("maps").latency);
}

#[test]
fn flow_errors_carry_their_layer() {
    // Mapping failure (zero placement runs stalls).
    let flow = Flow::on(Fabric::quale_45x85()).seeds(0);
    let err = flow.run(&fig3_program()).unwrap_err();
    assert!(matches!(err, QsprError::Map(MapError::Stalled { .. })));

    // Parse failure converts via `?` into the same enum.
    let parse_err: QsprError = Program::parse("FROB q\n").unwrap_err().into();
    assert!(matches!(parse_err, QsprError::Parse(_)));

    // Batch failure names the circuit and nests the flow error.
    let err = BatchMapper::new(flow)
        .threads(2)
        .run(&[BatchJob::new("doomed", fig3_program())])
        .unwrap_err();
    assert_eq!(err.circuit, "doomed");
    assert!(matches!(err.source, QsprError::Map(_)));
    let unified: QsprError = err.into();
    assert!(unified.to_string().starts_with("doomed: "));
}

#[test]
fn report_json_is_stable_across_the_api() {
    // Every report type serializes; spot-check the end-to-end path the
    // CLI's `--format json` uses.
    let flow = Flow::on(Fabric::quale_45x85()).seeds(2);
    let bench = benchmark_suite().swap_remove(0);

    let row = flow.compare(&bench.name, &bench.program).expect("maps");
    let json = row.to_json();
    assert!(json.starts_with(&format!(r#"{{"circuit":"{}","baseline_us":"#, bench.name)));

    let placer_row = flow
        .compare_placers(&bench.name, &bench.program)
        .expect("places");
    assert!(placer_row.to_json().contains(r#""mvfb_wins":"#));

    let report = BatchMapper::new(flow)
        .threads(2)
        .run(&[BatchJob::new(bench.name.clone(), bench.program.clone())])
        .expect("maps");
    let json = report.to_json();
    assert!(json.starts_with(r#"{"items":[{"circuit":"#));
    assert!(json.ends_with("}"));
    assert!(json.contains(r#""mean_improvement_pct":"#));
}
