//! End-to-end integration tests across all crates: the full benchmark
//! suite mapped under every policy, with trace validation.

use qspr::{Flow, FlowPolicy};
use qspr_fabric::{Fabric, TechParams};
use qspr_qecc::codes::{benchmark_suite, fig3_program};
use qspr_sim::{validate_trace, Mapper, MapperPolicy, Placement};

fn fast_flow() -> Flow {
    Flow::on(Fabric::quale_45x85()).seeds(4)
}

#[test]
fn full_suite_respects_table2_shape() {
    let flow = fast_flow();
    for bench in benchmark_suite() {
        let row = flow
            .compare(&bench.name, &bench.program)
            .expect("benchmarks map cleanly");
        assert!(
            row.baseline <= row.qspr,
            "{}: ideal {} must lower-bound QSPR {}",
            bench.name,
            row.baseline,
            row.qspr
        );
        assert!(
            row.qspr <= row.quale,
            "{}: QSPR {} must beat QUALE {}",
            bench.name,
            row.qspr,
            row.quale
        );
    }
}

#[test]
fn qpos_sits_between_ideal_and_its_own_upper_bound() {
    let flow = fast_flow().policy(FlowPolicy::Qpos);
    for bench in benchmark_suite().into_iter().take(3) {
        let qpos = flow.run(&bench.program).expect("maps");
        assert!(qpos.latency >= flow.ideal_latency(&bench.program));
    }
}

#[test]
fn all_policies_produce_valid_traces_on_all_benchmarks() {
    let fabric = Fabric::quale_45x85();
    let tech = TechParams::date2012();
    for bench in benchmark_suite() {
        let placement = Placement::center(&fabric, bench.program.num_qubits());
        for (name, policy) in [
            ("qspr", MapperPolicy::qspr(&tech)),
            ("quale", MapperPolicy::quale(&tech)),
            ("qpos", MapperPolicy::qpos(&tech)),
        ] {
            let outcome = Mapper::new(&fabric, tech, policy)
                .record_trace(true)
                .map(&bench.program, &placement)
                .unwrap_or_else(|e| panic!("{}/{name}: {e}", bench.name));
            validate_trace(
                &fabric,
                &bench.program,
                &placement,
                outcome.trace().expect("recorded"),
                &tech,
            )
            .unwrap_or_else(|e| panic!("{}/{name}: invalid trace: {e}", bench.name));
        }
    }
}

#[test]
fn mapping_latency_is_deterministic_across_processes_shape() {
    // Deterministic within a process; the fixed seeds make it
    // reproducible across runs and machines too.
    let flow = fast_flow();
    let program = fig3_program();
    let a = flow.run(&program).expect("maps");
    let b = flow.run(&program).expect("maps");
    assert_eq!(a.latency, b.latency);
    assert_eq!(a.runs, b.runs);
    assert_eq!(a.initial_placement, b.initial_placement);
}

#[test]
fn eq1_decomposition_holds_per_instruction() {
    // Eq. 1: instruction delay = T_gate + T_routing + T_congestion.
    let fabric = Fabric::quale_45x85();
    let tech = TechParams::date2012();
    let program = fig3_program();
    let placement = Placement::center(&fabric, program.num_qubits());
    let outcome = Mapper::new(&fabric, tech, MapperPolicy::qspr(&tech))
        .map(&program, &placement)
        .expect("maps");
    for (i, s) in outcome.instr_stats().iter().enumerate() {
        assert_eq!(
            s.finish - s.ready_at,
            s.congestion_wait() + s.routing_time() + s.gate_time(),
            "instruction {i}"
        );
        let gate = program.instructions()[i].gate;
        let expected_gate = if gate.is_two_qubit() {
            tech.t_gate_2q
        } else {
            tech.t_gate_1q
        };
        assert_eq!(s.gate_time(), expected_gate, "instruction {i}");
    }
}

#[test]
fn recorded_trace_agrees_with_stats() {
    let fabric = Fabric::quale_45x85();
    let tech = TechParams::date2012();
    for bench in benchmark_suite().into_iter().take(4) {
        let placement = Placement::center(&fabric, bench.program.num_qubits());
        let outcome = Mapper::new(&fabric, tech, MapperPolicy::qspr(&tech))
            .record_trace(true)
            .map(&bench.program, &placement)
            .expect("maps");
        let trace = outcome.trace().expect("recorded");
        assert_eq!(trace.move_count() as u64, outcome.totals().moves);
        assert_eq!(trace.turn_count() as u64, outcome.totals().turns);
        assert!(trace.end_time() <= outcome.latency() + tech.t_gate_2q);
    }
}

#[test]
fn quale_overhead_grows_with_circuit_size() {
    // The paper's second observation on Table 2: T_routing+T_congestion
    // weighs more on larger circuits. Compare the smallest and the
    // largest benchmark under QUALE.
    let flow = fast_flow();
    let suite = benchmark_suite();
    let small = flow
        .compare(&suite[0].name, &suite[0].program)
        .expect("maps");
    let large = flow
        .compare(&suite[4].name, &suite[4].program)
        .expect("maps");
    assert!(
        large.quale_overhead() > small.quale_overhead(),
        "QUALE overhead: small {} vs large {}",
        small.quale_overhead(),
        large.quale_overhead()
    );
}

#[test]
fn batch_mapping_is_deterministic_across_thread_counts() {
    // The BatchMapper contract: per-circuit results are identical at
    // --threads 1 and --threads N, and come back in input order.
    use qspr::{BatchJob, BatchMapper};
    use qspr_qasm::{random_program, RandomProgramConfig};

    let mut jobs: Vec<BatchJob> = (0..4)
        .map(|i| {
            BatchJob::new(
                format!("rand{i}"),
                random_program(&RandomProgramConfig::new(5, 15), 100 + i),
            )
        })
        .collect();
    jobs.push(BatchJob::from(benchmark_suite().swap_remove(0)));

    let mapper = BatchMapper::new(fast_flow());
    let serial = mapper.clone().threads(1).run(&jobs).expect("maps");
    let parallel = mapper.threads(8).run(&jobs).expect("maps");

    assert_eq!(serial.items.len(), jobs.len());
    for (job, (s, p)) in jobs
        .iter()
        .zip(serial.items.iter().zip(parallel.items.iter()))
    {
        assert_eq!(s.name, job.name, "input order preserved");
        assert_eq!(
            s.row, p.row,
            "{}: thread count changed the result",
            job.name
        );
    }
}

#[test]
fn batch_mapping_of_an_empty_suite_is_empty() {
    use qspr::BatchMapper;

    let report = BatchMapper::new(fast_flow())
        .threads(4)
        .run(&[])
        .expect("empty batch is fine");
    assert!(report.items.is_empty());
    assert_eq!(report.total_cpu(), std::time::Duration::ZERO);
    assert_eq!(report.mean_improvement_pct(), 0.0);
}
