//! Integration of the QECC substrate with the mapper: synthesized
//! encoders are correct quantum circuits *and* valid mapper workloads.

use qspr_fabric::{Fabric, TechParams};
use qspr_qecc::codes;
use qspr_qecc::encoder::encoding_circuit;
use qspr_qecc::{CyclicCodeSearch, StabilizerSim};
use qspr_sim::{validate_trace, Mapper, MapperPolicy, Placement};

#[test]
fn every_benchmark_encoder_is_simultaneously_correct_and_mappable() {
    let fabric = Fabric::quale_45x85();
    let tech = TechParams::date2012();
    for (i, bench) in codes::benchmark_suite().into_iter().enumerate() {
        // Quantum correctness: the circuit prepares a code state. The
        // first entry is the paper's Fig. 3 verbatim, which encodes the
        // five-qubit code in the paper's own (locally-Clifford-rotated)
        // convention — check it produces a well-defined stabilizer state;
        // check the synthesized entries against their exact codes.
        let mut sim = StabilizerSim::new(bench.code.num_qubits());
        sim.run(&bench.program).expect("Clifford circuit");
        if i == 0 {
            assert_eq!(sim.stabilizer_generators().len(), 5);
        } else {
            for s in bench.code.stabilizers() {
                assert_eq!(sim.stabilizes(s), Some(true), "{}: {s}", bench.name);
            }
        }
        // Mapper validity: the same circuit schedules, places and routes.
        let placement = Placement::center(&fabric, bench.program.num_qubits());
        let outcome = Mapper::new(&fabric, tech, MapperPolicy::qspr(&tech))
            .record_trace(true)
            .map(&bench.program, &placement)
            .expect("maps");
        validate_trace(
            &fabric,
            &bench.program,
            &placement,
            outcome.trace().expect("recorded"),
            &tech,
        )
        .expect("valid trace");
    }
}

#[test]
fn encoder_gate_mix_matches_fig2_style() {
    // Standard-form encoders: one H per X-type stabilizer row plus a
    // controlled-Pauli cascade — the shape of the paper's Fig. 2.
    let code = codes::five_one_three();
    let program = encoding_circuit(&code).expect("encodes");
    let h = program
        .instructions()
        .iter()
        .filter(|i| i.gate == qspr_qasm::Gate::H)
        .count();
    assert_eq!(h, 4);
    assert!(program.two_qubit_gate_count() >= 8);
}

#[test]
fn cyclic_and_hardcoded_five_qubit_codes_agree() {
    let cyclic = CyclicCodeSearch::new(5)
        .expect("length 5 tabulated")
        .find_code("[[5,1,3]]", 1)
        .expect("the perfect code is cyclic");
    let hardcoded = codes::five_one_three();
    assert_eq!(cyclic.num_qubits(), hardcoded.num_qubits());
    assert_eq!(cyclic.num_logical(), hardcoded.num_logical());
    assert_eq!(cyclic.min_distance_up_to(3), Some(3));
}

#[test]
fn distance_7_codes_reject_all_weight_4_errors() {
    // A deeper prefix of the distance check than the unit tests run
    // (weight ≤ 4; the full weight-6 scan lives in the ignored tests).
    assert!(codes::nineteen_one_seven().min_distance_up_to(4).is_none());
    assert!(codes::twenty_three_one_seven()
        .min_distance_up_to(4)
        .is_none());
}

#[test]
fn benchmark_gate_counts_are_stable() {
    // Pin the workload sizes the experiments depend on, so accidental
    // changes to encoder synthesis show up as test failures, not silent
    // shifts in every measured latency.
    let suite = codes::benchmark_suite();
    let sizes: Vec<(String, usize, usize)> = suite
        .iter()
        .map(|b| {
            (
                b.name.clone(),
                b.program.one_qubit_gate_count(),
                b.program.two_qubit_gate_count(),
            )
        })
        .collect();
    // The [[5,1,3]] entry is the paper's Fig. 3 verbatim.
    assert_eq!(sizes[0], ("[[5,1,3]]".to_owned(), 4, 8));
    for (name, one_q, two_q) in &sizes[1..] {
        assert!(*two_q >= 8, "{name} has {two_q} two-qubit gates");
        assert!(*one_q >= 2, "{name} has {one_q} one-qubit gates");
    }
}
