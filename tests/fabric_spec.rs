//! End-to-end tests of the declarative fabric description layer: specs
//! that only the spec front end can express (heterogeneous capacities,
//! multi-region fabrics) must map programs through the full [`Flow`],
//! and spec round trips must leave mapping results byte-identical.

use proptest::prelude::*;

use qspr::json::ToJson;
use qspr::{Flow, FlowSummary};
use qspr_fabric::{Fabric, FabricSpec, RegularFabricSpec};
use qspr_qasm::Program;
use qspr_route::RouterKind;

const BELL: &str = "QUBIT a\nQUBIT b\nH a\nC-X a,b\n";

/// Normalizes the two fields that legitimately differ between a
/// spec-built fabric and its anonymous programmatic twin: wall-clock
/// and spec provenance. Everything else must match byte for byte.
fn normalized(mut summary: FlowSummary) -> FlowSummary {
    summary.timing = qspr::FlowTiming::default();
    summary.fabric = None;
    summary
}

#[test]
fn heterogeneous_capacities_map_end_to_end() {
    // Expressible only through the spec layer: one wide junction type
    // assigned to part of the grid.
    let spec = FabricSpec::parse_json(
        r#"{
            "name": "hetero-e2e",
            "types": [
                {"name": "wide", "kind": "junction", "capacity": 4},
                {"name": "narrow", "kind": "channel", "capacity": 1}
            ],
            "regions": [{"family": "regular", "rows": 9, "cols": 13, "pitch": 4}],
            "capacities": [
                {"type": "wide", "rect": [0, 0, 8, 6]},
                {"type": "narrow", "at": [0, 1]}
            ]
        }"#,
    )
    .expect("well-formed spec");
    let fabric = spec.build().expect("buildable spec");
    assert!(fabric.topology().has_capacity_overrides());

    let program = Program::parse(BELL).unwrap();
    for router in [RouterKind::Greedy, RouterKind::Negotiated] {
        let result = Flow::on(fabric.clone())
            .seeds(2)
            .router(router)
            .run(&program)
            .expect("heterogeneous fabrics map");
        let summary = result.summary();
        let provenance = summary.fabric.as_ref().expect("spec provenance");
        assert_eq!(provenance.name, "hetero-e2e");
        assert_eq!(provenance.family, "regular");
        assert_eq!(provenance.regions, 1);
        assert!(provenance.capacity_histogram.contains(&(
            Some(4),
            fabric
                .topology()
                .junction_caps()
                .iter()
                .filter(|c| **c == Some(4))
                .count()
        )));
        let json = summary.to_json();
        assert!(json.contains(r#""fabric":{"name":"hetero-e2e","#), "{json}");
    }
}

#[test]
fn two_region_fabrics_map_end_to_end() {
    let spec = FabricSpec::parse_json(
        r#"{
            "name": "twin",
            "regions": [
                {"name": "west", "family": "regular", "rows": 5, "cols": 5, "pitch": 4},
                {"name": "east", "family": "regular", "origin": [0, 9],
                 "rows": 5, "cols": 5, "pitch": 4}
            ],
            "links": [{"from": [0, 4], "to": [0, 9]}]
        }"#,
    )
    .expect("well-formed spec");
    let fabric = spec.build().expect("buildable spec");
    let program = Program::parse(BELL).unwrap();
    let result = Flow::on(fabric)
        .seeds(2)
        .run(&program)
        .expect("inter-region channel connects the halves");
    let provenance = result.summary().fabric.expect("spec provenance");
    assert_eq!(provenance.family, "composite");
    assert_eq!(provenance.regions, 2);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// A spec-round-tripped regular fabric maps every program to the
    /// byte-identical summary the direct constructor produces, under
    /// both routing engines (modulo wall-clock and the provenance
    /// block, which only the spec path carries).
    #[test]
    fn round_tripped_fabrics_map_byte_identically(
        rows in 9u16..14,
        cols in 9u16..14,
        seed in 0u64..32,
    ) {
        let direct = RegularFabricSpec::new(rows, cols, 4)
            .build()
            .expect("geometry fits a pitch-4 tile");
        let document = RegularFabricSpec::new(rows, cols, 4).to_spec().to_json();
        let round_tripped = FabricSpec::parse_json(&document)
            .expect("emitted documents parse")
            .build()
            .expect("emitted documents build");
        prop_assert_eq!(&round_tripped, &direct);

        let program = Program::parse(BELL).unwrap();
        for router in [RouterKind::Greedy, RouterKind::Negotiated] {
            let a = Flow::on(direct.clone())
                .seeds(2)
                .mvfb_config(qspr_place::MvfbConfig::new(2, seed))
                .router(router)
                .run(&program)
                .expect("direct fabric maps");
            let b = Flow::on(round_tripped.clone())
                .seeds(2)
                .mvfb_config(qspr_place::MvfbConfig::new(2, seed))
                .router(router)
                .run(&program)
                .expect("round-tripped fabric maps");
            prop_assert!(a.summary().fabric.is_none());
            prop_assert!(b.summary().fabric.is_some());
            prop_assert_eq!(normalized(a.summary()), normalized(b.summary()));
        }
    }
}

#[test]
fn ascii_front_end_is_provenance_free() {
    // `Fabric::parse` on ASCII art must stay byte-identical to the
    // pre-spec loader: no provenance, no `fabric` JSON block.
    let art = Fabric::quale_45x85().to_ascii();
    let fabric = Fabric::parse(&art).expect("ASCII art parses");
    assert_eq!(fabric, Fabric::quale_45x85());
    assert!(fabric.info().is_none());
}
