//! Fault injection against the `qspr serve` reactor: misbehaving
//! clients — slowloris dribblers, mid-request disconnects, peers that
//! never read, garbage after valid pipelines — must never hang the
//! event loop, leak connections, or corrupt the responses of
//! well-behaved clients, and a shutdown must drain in-flight work.
//!
//! Every raw socket carries a read timeout so a regression fails the
//! test quickly instead of wedging the suite.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use qspr::service::{http, MapService, ServeConfig, Server, ServerHandle};
use qspr_fabric::Fabric;

const BELL: &str = "QUBIT a\nQUBIT b\nH a\nC-X a,b\n";

fn spawn_server(threads: usize, keep_alive_secs: u64) -> ServerHandle {
    let service = Arc::new(MapService::new(Fabric::quale_45x85(), 32));
    let config = ServeConfig {
        addr: "127.0.0.1:0".into(),
        threads,
        keep_alive_secs,
        ..ServeConfig::default()
    };
    Server::bind(service, &config)
        .expect("bind ephemeral")
        .spawn()
}

/// Connects a raw TCP client with a hard read timeout.
fn raw_client(handle: &ServerHandle) -> TcpStream {
    let stream = TcpStream::connect(handle.addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("read timeout");
    stream
}

/// Reads one HTTP response off a raw socket: returns the status code,
/// the body, and whether the server announced `Connection: close`.
/// `None` means the server closed the connection before a status line.
fn read_raw_response(reader: &mut BufReader<TcpStream>) -> Option<(u16, String, bool)> {
    let mut status_line = String::new();
    if reader.read_line(&mut status_line).expect("read status") == 0 {
        return None;
    }
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    let mut content_length = 0usize;
    let mut close = false;
    loop {
        let mut header = String::new();
        assert_ne!(
            reader.read_line(&mut header).expect("read header"),
            0,
            "EOF inside headers"
        );
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some(v) = header.to_ascii_lowercase().strip_prefix("content-length:") {
            content_length = v.trim().parse().expect("content length");
        }
        if header.eq_ignore_ascii_case("connection: close") {
            close = true;
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).expect("read body");
    Some((status, String::from_utf8(body).expect("UTF-8 body"), close))
}

/// Asserts the server still answers a fresh, well-formed request.
fn assert_healthy(handle: &ServerHandle) {
    let health = http::call(handle.addr(), "GET", "/healthz", "").expect("healthz");
    assert_eq!(health.status, 200);
}

#[test]
fn slowloris_connections_are_reaped_without_blocking_others() {
    // keep_alive 1s: a connection holding a partial request is cut off
    // on the (shorter of the) partial-request timeout — it cannot pin
    // reactor state forever.
    let handle = spawn_server(2, 1);

    let mut dribbler = raw_client(&handle);
    dribbler.write_all(b"POST /map HTT").expect("partial write");

    // While the dribbler squats, everyone else is served normally.
    for _ in 0..3 {
        assert_healthy(&handle);
    }

    // The server hangs up on the dribbler within the timeout window
    // (1s limit + poll tick), even if it keeps dribbling occasionally.
    let started = Instant::now();
    let mut one = [0u8; 1];
    let outcome = dribbler.read(&mut one);
    assert!(
        matches!(outcome, Ok(0) | Err(_)),
        "server must close the slowloris socket, got a byte: {outcome:?}"
    );
    assert!(
        started.elapsed() < Duration::from_secs(8),
        "reaping took {:?}",
        started.elapsed()
    );

    assert_healthy(&handle);
    handle.shutdown().expect("graceful shutdown");
}

#[test]
fn mid_request_disconnects_never_wedge_the_pool() {
    // More abandoned connections than worker threads, in every state:
    // nothing sent, half a request line, full headers without the
    // body, and a complete request dropped before the response.
    let handle = spawn_server(2, 5);
    for round in 0..8 {
        let mut victim = raw_client(&handle);
        match round % 4 {
            0 => {}
            1 => victim.write_all(b"POST /ma").expect("write"),
            2 => victim
                .write_all(b"POST /map HTTP/1.1\r\nContent-Length: 50\r\n\r\n")
                .expect("write"),
            _ => {
                let body = format!("{{\"program\":{BELL:?},\"m\":2}}");
                victim
                    .write_all(
                        format!(
                            "POST /map HTTP/1.1\r\nContent-Length: {}\r\n\r\n{body}",
                            body.len()
                        )
                        .as_bytes(),
                    )
                    .expect("write");
            }
        }
        drop(victim); // vanish without reading anything
    }

    // The pool is intact: real mapping work still round-trips and the
    // cache still replays byte-identically.
    let body = format!("{{\"program\":{BELL:?},\"m\":2}}");
    let cold = http::call(handle.addr(), "POST", "/map", &body).expect("map after chaos");
    assert_eq!(cold.status, 200, "{}", cold.body);
    let warm = http::call(handle.addr(), "POST", "/map", &body).expect("warm map");
    assert_eq!(warm, cold);
    handle.shutdown().expect("graceful shutdown");
}

#[test]
fn never_reading_clients_are_bounded_and_reaped() {
    // A client that pipelines requests and never drains its socket
    // must not block the reactor thread or starve other connections.
    let handle = spawn_server(1, 1);
    let mut hoarder = raw_client(&handle);
    let mut pipeline = Vec::new();
    for _ in 0..32 {
        pipeline.extend_from_slice(b"GET /healthz HTTP/1.1\r\n\r\n");
    }
    hoarder.write_all(&pipeline).expect("pipeline write");
    // Do NOT read. The responses pile into the server's write buffer
    // (and the kernel's), while other clients stay snappy.
    for _ in 0..5 {
        let t0 = Instant::now();
        assert_healthy(&handle);
        assert!(
            t0.elapsed() < Duration::from_secs(2),
            "handling took {:?} with a hoarder connected",
            t0.elapsed()
        );
    }
    // Once idle past keep-alive, the hoarder is reaped: its socket
    // eventually reaches EOF after at most the buffered responses.
    let mut reader = BufReader::new(hoarder);
    let mut served = 0;
    while let Some((status, body, _)) = read_raw_response(&mut reader) {
        assert_eq!(status, 200);
        assert!(body.starts_with(r#"{"status":"ok""#));
        served += 1;
        assert!(served <= 32, "phantom responses");
    }
    assert_healthy(&handle);
    handle.shutdown().expect("graceful shutdown");
}

#[test]
fn junk_after_a_valid_pipeline_answers_then_closes() {
    // Two good requests followed by garbage: both good responses come
    // back in order, then a 400 with `Connection: close`, then EOF —
    // never a hang, never responses out of order.
    let handle = spawn_server(2, 5);
    let stream = raw_client(&handle);
    let mut writer = stream.try_clone().expect("clone socket");
    writer
        .write_all(
            b"GET /healthz HTTP/1.1\r\n\r\nGET /stats HTTP/1.1\r\n\r\n!!!not-http!!!\r\n\r\n",
        )
        .expect("pipeline write");
    let mut reader = BufReader::new(stream);
    let (status, body, close) = read_raw_response(&mut reader).expect("first response");
    assert_eq!(status, 200);
    assert!(body.starts_with(r#"{"status":"ok""#));
    assert!(!close);
    let (status, body, _) = read_raw_response(&mut reader).expect("second response");
    assert_eq!(status, 200);
    assert!(body.starts_with(r#"{"requests":"#));
    let (status, body, close) = read_raw_response(&mut reader).expect("error response");
    assert_eq!(status, 400, "{body}");
    assert!(close, "protocol errors must close the connection");
    assert!(read_raw_response(&mut reader).is_none(), "EOF after close");
    assert_healthy(&handle);
    handle.shutdown().expect("graceful shutdown");
}

#[test]
fn oversized_content_length_is_rejected_up_front() {
    let handle = spawn_server(1, 5);
    let stream = raw_client(&handle);
    let mut writer = stream.try_clone().expect("clone socket");
    // 100 MiB announced: the reactor must answer 413 from the header
    // alone and close, rather than buffer toward the announced size.
    writer
        .write_all(b"POST /map HTTP/1.1\r\nContent-Length: 104857600\r\n\r\n")
        .expect("header write");
    let mut reader = BufReader::new(stream);
    let (status, body, close) = read_raw_response(&mut reader).expect("413 response");
    assert_eq!(status, 413, "{body}");
    assert!(close);
    assert!(read_raw_response(&mut reader).is_none());
    assert_healthy(&handle);
    handle.shutdown().expect("graceful shutdown");
}

#[test]
fn pipelined_responses_come_back_in_request_order() {
    // One batched write interleaving slow (mapping) and fast (inline)
    // endpoints; the reorder buffer must emit responses in request
    // order on the wire.
    let handle = spawn_server(4, 5);
    let map_body = format!("{{\"program\":{BELL:?},\"m\":6}}");
    let mut wire = Vec::new();
    wire.extend_from_slice(
        format!(
            "POST /map HTTP/1.1\r\nContent-Length: {}\r\n\r\n{map_body}",
            map_body.len()
        )
        .as_bytes(),
    );
    wire.extend_from_slice(b"GET /healthz HTTP/1.1\r\n\r\n");
    wire.extend_from_slice(
        format!(
            "POST /map HTTP/1.1\r\nContent-Length: {}\r\n\r\n{map_body}",
            map_body.len()
        )
        .as_bytes(),
    );
    wire.extend_from_slice(b"GET /healthz HTTP/1.1\r\n\r\n");

    let stream = raw_client(&handle);
    let mut writer = stream.try_clone().expect("clone socket");
    writer.write_all(&wire).expect("batched write");
    let mut reader = BufReader::new(stream);
    let (_, first, _) = read_raw_response(&mut reader).expect("map response");
    assert!(first.starts_with(r#"{"policy":"qspr""#), "{first}");
    let (_, second, _) = read_raw_response(&mut reader).expect("healthz response");
    assert!(second.starts_with(r#"{"status":"ok""#), "{second}");
    // Both map requests were in flight together, so the second may
    // have raced the first's cache insert — the mapped result is
    // identical either way; only the timing block may differ.
    let (_, third, _) = read_raw_response(&mut reader).expect("second map response");
    assert_eq!(
        qspr::service::normalize_timing(&third),
        qspr::service::normalize_timing(&first),
        "identical pipelined requests must map identically"
    );
    let (_, fourth, _) = read_raw_response(&mut reader).expect("final healthz");
    assert!(fourth.starts_with(r#"{"status":"ok""#));
    handle.shutdown().expect("graceful shutdown");
}

#[test]
fn shutdown_drains_a_slow_inflight_request() {
    // One worker, one slow request in flight when shutdown lands: the
    // drain must finish and flush the response before `run()` returns.
    let handle = spawn_server(1, 5);
    let addr = handle.addr();
    let mut client = http::Client::connect(addr).expect("connect");
    let slow_body = format!("{{\"program\":{BELL:?},\"m\":400}}");
    client
        .write_request("POST", "/map", &slow_body)
        .expect("write slow request");
    // Give the reactor time to parse and dispatch it to the worker.
    thread::sleep(Duration::from_millis(150));
    handle.shutdown().expect("drain completes");
    // The server is gone — but our in-flight answer was flushed first.
    let response = client.read_response().expect("drained response");
    assert_eq!(response.status, 200, "{}", response.body);
    assert!(response.body.starts_with(r#"{"policy":"qspr""#));
    assert!(
        http::call(addr, "GET", "/healthz", "").is_err(),
        "listener must be gone after the drain"
    );
}
