//! Independent replay validation of micro-command traces.

use std::collections::HashMap;

use qspr_fabric::{Cell, Coord, Fabric, TechParams, Time};
use qspr_qasm::{Program, QubitId};
use qspr_sched::{gate_delay, InstrId};

use crate::error::TraceError;
use crate::placement::Placement;
use crate::trace::{MicroCommand, Trace};

/// Replays `trace` against the fabric and program, checking every
/// physical invariant of the ion-trap model:
///
/// * times are non-decreasing;
/// * each move is one cell long, continues from the qubit's position and
///   lands on a walkable cell (channel, junction or trap);
/// * turns happen only on junction cells, at the qubit's position;
/// * gates execute in trap cells with all operands present and at most
///   two qubits co-located;
/// * instantaneous channel-segment and junction occupancy never exceeds
///   the technology capacities;
/// * every gate's end follows its start by exactly the gate delay.
///
/// # Errors
///
/// Returns the first [`TraceError`] encountered, indexed by trace entry.
///
/// # Examples
///
/// ```
/// use qspr_fabric::{Fabric, TechParams};
/// use qspr_qasm::Program;
/// use qspr_sim::{validate_trace, Mapper, MapperPolicy, Placement};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let fabric = Fabric::quale_45x85();
/// let tech = TechParams::date2012();
/// let program = Program::parse("QUBIT a\nQUBIT b\nH a\nC-X a,b\n")?;
/// let placement = Placement::center(&fabric, 2);
/// let outcome = Mapper::new(&fabric, tech, MapperPolicy::qspr(&tech))
///     .record_trace(true)
///     .map(&program, &placement)?;
/// validate_trace(&fabric, &program, &placement, outcome.trace().unwrap(), &tech)?;
/// # Ok(())
/// # }
/// ```
pub fn validate_trace(
    fabric: &Fabric,
    program: &Program,
    placement: &Placement,
    trace: &Trace,
    tech: &TechParams,
) -> Result<(), TraceError> {
    let topo = fabric.topology();
    let mut pos: Vec<Coord> = placement
        .as_slice()
        .iter()
        .map(|&t| topo.trap(t).coord())
        .collect();
    // Instantaneous occupancy per segment / junction.
    let mut seg_occ = vec![0u8; topo.segments().len()];
    let mut jct_occ = vec![0u8; topo.junctions().len()];
    let mut open_gates: HashMap<InstrId, Time> = HashMap::new();
    let mut last_time: Time = 0;

    let occupancy_key = |c: Coord| -> (Option<usize>, Option<usize>) {
        let seg = topo.channel_at(c).map(|(s, _)| s.index());
        let jct = topo.junction_at(c).map(|j| j.index());
        (seg, jct)
    };

    for (index, entry) in trace.iter().enumerate() {
        if entry.time < last_time {
            return Err(TraceError::TimeNotMonotone { index });
        }
        last_time = entry.time;
        match entry.command {
            MicroCommand::Move { qubit, from, to } => {
                let q = check_qubit(qubit, &pos, index)?;
                if pos[q] != from || from.manhattan(to) != 1 {
                    return Err(TraceError::BrokenMove { qubit, index });
                }
                if !fabric.in_bounds(to) || fabric.cell(to) == Cell::Empty {
                    return Err(TraceError::BadDestination { qubit, index });
                }
                let (old_seg, old_jct) = occupancy_key(from);
                let (new_seg, new_jct) = occupancy_key(to);
                if let Some(s) = old_seg {
                    seg_occ[s] -= 1;
                }
                if let Some(j) = old_jct {
                    jct_occ[j] -= 1;
                }
                pos[q] = to;
                if let Some(s) = new_seg {
                    seg_occ[s] += 1;
                    if seg_occ[s] > tech.channel_capacity {
                        return Err(TraceError::ChannelOverflow { index });
                    }
                }
                if let Some(j) = new_jct {
                    jct_occ[j] += 1;
                    if jct_occ[j] > tech.junction_capacity {
                        return Err(TraceError::JunctionOverflow { index });
                    }
                }
                if fabric.cell(to) == Cell::Trap {
                    let residents = pos.iter().filter(|p| **p == to).count();
                    if residents > 2 {
                        return Err(TraceError::TrapOverflow { index });
                    }
                }
            }
            MicroCommand::Turn { qubit, at } => {
                let q = check_qubit(qubit, &pos, index)?;
                if pos[q] != at {
                    return Err(TraceError::BrokenMove { qubit, index });
                }
                if topo.junction_at(at).is_none() {
                    return Err(TraceError::TurnOutsideJunction { qubit, index });
                }
            }
            MicroCommand::GateStart {
                instr,
                trap,
                q0,
                q1,
                ..
            } => {
                if !fabric.in_bounds(trap) || fabric.cell(trap) != Cell::Trap {
                    return Err(TraceError::GateOutsideTrap { index });
                }
                let mut operands = vec![q0];
                operands.extend(q1);
                for q in operands {
                    let qi = check_qubit(q, &pos, index)?;
                    if pos[qi] != trap {
                        return Err(TraceError::OperandMissing { index });
                    }
                }
                let residents = pos.iter().filter(|p| **p == trap).count();
                if residents > 2 {
                    return Err(TraceError::TrapOverflow { index });
                }
                if open_gates.insert(instr, entry.time).is_some() {
                    return Err(TraceError::UnmatchedGate { index });
                }
            }
            MicroCommand::GateEnd { instr } => {
                let Some(started) = open_gates.remove(&instr) else {
                    return Err(TraceError::UnmatchedGate { index });
                };
                let expected = gate_delay(program.instructions()[instr.index()].gate, tech);
                if entry.time - started != expected {
                    return Err(TraceError::BadGateTiming { index, expected });
                }
            }
        }
    }
    Ok(())
}

fn check_qubit(q: QubitId, pos: &[Coord], index: usize) -> Result<usize, TraceError> {
    if q.index() < pos.len() {
        Ok(q.index())
    } else {
        Err(TraceError::BrokenMove { qubit: q, index })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Mapper;
    use crate::policy::MapperPolicy;
    use crate::trace::TraceEntry;
    use qspr_qasm::Gate;

    const FIG3: &str = "\
QUBIT q0,0
QUBIT q1,0
QUBIT q2,0
QUBIT q3
QUBIT q4,0
H q0
H q1
H q2
H q4
C-X q3,q2
C-Z q4,q2
C-Y q2,q1
C-Y q3,q1
C-X q4,q1
C-Z q2,q0
C-Y q3,q0
C-Z q4,q0
";

    fn mapped_trace(policy_of: fn(&TechParams) -> MapperPolicy) {
        let fabric = Fabric::quale_45x85();
        let tech = TechParams::date2012();
        let program = Program::parse(FIG3).unwrap();
        let placement = Placement::center(&fabric, 5);
        let outcome = Mapper::new(&fabric, tech, policy_of(&tech))
            .record_trace(true)
            .map(&program, &placement)
            .unwrap();
        validate_trace(
            &fabric,
            &program,
            &placement,
            outcome.trace().unwrap(),
            &tech,
        )
        .unwrap();
    }

    #[test]
    fn qspr_traces_validate() {
        mapped_trace(MapperPolicy::qspr);
    }

    #[test]
    fn quale_traces_validate() {
        mapped_trace(MapperPolicy::quale);
    }

    #[test]
    fn qpos_traces_validate() {
        mapped_trace(MapperPolicy::qpos);
    }

    #[test]
    fn teleporting_move_is_rejected() {
        let fabric = Fabric::quale_45x85();
        let tech = TechParams::date2012();
        let program = Program::parse("QUBIT a\n").unwrap();
        let placement = Placement::center(&fabric, 1);
        let start = fabric
            .topology()
            .trap(placement.trap_of(QubitId(0)))
            .coord();
        let far = Coord::new(start.row, start.col + 5);
        let trace = Trace::new(vec![TraceEntry {
            time: 1,
            command: MicroCommand::Move {
                qubit: QubitId(0),
                from: start,
                to: far,
            },
        }]);
        let err = validate_trace(&fabric, &program, &placement, &trace, &tech).unwrap_err();
        assert!(matches!(err, TraceError::BrokenMove { .. }));
    }

    #[test]
    fn gate_outside_trap_is_rejected() {
        let fabric = Fabric::quale_45x85();
        let tech = TechParams::date2012();
        let program = Program::parse("QUBIT a\nH a\n").unwrap();
        let placement = Placement::center(&fabric, 1);
        let trace = Trace::new(vec![TraceEntry {
            time: 0,
            command: MicroCommand::GateStart {
                instr: InstrId(0),
                gate: Gate::H,
                trap: Coord::new(0, 0), // a junction on the QUALE fabric
                q0: QubitId(0),
                q1: None,
            },
        }]);
        let err = validate_trace(&fabric, &program, &placement, &trace, &tech).unwrap_err();
        assert_eq!(err, TraceError::GateOutsideTrap { index: 0 });
    }

    #[test]
    fn wrong_gate_timing_is_rejected() {
        let fabric = Fabric::quale_45x85();
        let tech = TechParams::date2012();
        let program = Program::parse("QUBIT a\nH a\n").unwrap();
        let placement = Placement::center(&fabric, 1);
        let trap = fabric
            .topology()
            .trap(placement.trap_of(QubitId(0)))
            .coord();
        let trace = Trace::new(vec![
            TraceEntry {
                time: 0,
                command: MicroCommand::GateStart {
                    instr: InstrId(0),
                    gate: Gate::H,
                    trap,
                    q0: QubitId(0),
                    q1: None,
                },
            },
            TraceEntry {
                time: 7, // should be 10
                command: MicroCommand::GateEnd { instr: InstrId(0) },
            },
        ]);
        let err = validate_trace(&fabric, &program, &placement, &trace, &tech).unwrap_err();
        assert_eq!(
            err,
            TraceError::BadGateTiming {
                index: 1,
                expected: 10
            }
        );
    }

    #[test]
    fn unmatched_gate_end_is_rejected() {
        let fabric = Fabric::quale_45x85();
        let tech = TechParams::date2012();
        let program = Program::parse("QUBIT a\nH a\n").unwrap();
        let placement = Placement::center(&fabric, 1);
        let trace = Trace::new(vec![TraceEntry {
            time: 0,
            command: MicroCommand::GateEnd { instr: InstrId(0) },
        }]);
        let err = validate_trace(&fabric, &program, &placement, &trace, &tech).unwrap_err();
        assert_eq!(err, TraceError::UnmatchedGate { index: 0 });
    }
}
