//! Property-based tests of trace construction and mirroring.

#![cfg(test)]

use proptest::prelude::*;

use qspr_fabric::Coord;
use qspr_qasm::{Gate, QubitId};
use qspr_sched::InstrId;

use crate::trace::{MicroCommand, Trace, TraceEntry};

/// Builds a command from generated integers (the vendored proptest shim
/// has no union strategies, so kinds are decoded from a byte).
fn decode(kind: u8, id: u32, row: u16, col: u16) -> MicroCommand {
    let a = Coord::new(row % 40, col % 80);
    let b = Coord::new((row + 1) % 40, (col + 3) % 80);
    // `id` is the entry index, so every (kind, id) pair is unique and the
    // construction sort key (time, kind, id) is a total order — the same
    // invariant the simulator guarantees (a qubit completes at most one
    // command per instant; an instruction starts/ends once).
    match kind % 4 {
        0 => MicroCommand::Move {
            qubit: QubitId(id),
            from: a,
            to: b,
        },
        1 => MicroCommand::Turn {
            qubit: QubitId(id),
            at: a,
        },
        2 => MicroCommand::GateStart {
            instr: InstrId(id),
            gate: if id % 2 == 0 { Gate::H } else { Gate::S },
            trap: a,
            q0: QubitId(id),
            q1: None,
        },
        _ => MicroCommand::GateEnd { instr: InstrId(id) },
    }
}

fn build_trace(raw: &[(u64, u8, u32, u16, u16)]) -> Trace {
    let entries: Vec<TraceEntry> = raw
        .iter()
        .enumerate()
        .map(|(i, &(time, kind, _id, row, col))| TraceEntry {
            // Anchor the first entry at t=0 so mirroring is a clean
            // involution (times are mirrored around the last completion).
            time: if i == 0 { 0 } else { time % 60 },
            command: decode(kind, i as u32, row, col),
        })
        .collect();
    Trace::new(entries)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Mirroring preserves the makespan and the move/turn counts.
    #[test]
    fn mirror_preserves_counts(raw in collection::vec(
        (0u64..60, 0u8..8, 0u32..16, 0u16..40, 0u16..80), 1..24)) {
        let t = build_trace(&raw);
        let m = t.reversed();
        prop_assert_eq!(m.end_time(), t.end_time());
        prop_assert_eq!(m.move_count(), t.move_count());
        prop_assert_eq!(m.turn_count(), t.turn_count());
        prop_assert_eq!(m.len(), t.len());
    }

    /// Mirroring twice round-trips exactly (entries, times and order).
    #[test]
    fn mirror_twice_round_trips(raw in collection::vec(
        (0u64..60, 0u8..8, 0u32..16, 0u16..40, 0u16..80), 1..24)) {
        let t = build_trace(&raw);
        prop_assert_eq!(t.reversed().reversed(), t);
    }

    /// Trace construction is order-independent: any permutation of the
    /// recorded entries produces the same trace (the satellite guarantee
    /// that sta inputs are reproducible at any thread count).
    #[test]
    fn construction_is_permutation_invariant(raw in collection::vec(
        (0u64..10, 0u8..8, 0u32..16, 0u16..40, 0u16..80), 1..24),
        rot in 0usize..24) {
        let t = build_trace(&raw);
        let mut shuffled = t.entries().to_vec();
        shuffled.reverse();
        let len = shuffled.len();
        shuffled.rotate_left(rot % len);
        prop_assert_eq!(Trace::new(shuffled), t);
    }
}
