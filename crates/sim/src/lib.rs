//! Event-driven mapping engine: the dynamic half of QSPR.
//!
//! The paper's mapper (§III–§IV) interleaves scheduling and routing: an
//! instruction's delay (Eq. 1) is `T_gate + T_routing + T_congestion`,
//! and the last two terms only materialize while the mapped circuit is
//! *simulated* on the fabric. This crate provides that simulator:
//!
//! * [`Placement`] — an assignment of program qubits to fabric traps
//!   (center placements, the seeds of every placer, live here too);
//! * [`MapperPolicy`] — the policy knobs distinguishing QSPR from the
//!   QUALE/QPOS baselines: router configuration, movement policy (move
//!   both operands to a median trap vs. move only the source), and issue
//!   order (priority list, ALAP, ASAP);
//! * [`Mapper`] — the event-driven engine. Ready instructions are issued
//!   in policy order; 2-qubit instructions pick a target trap and route
//!   their operands, booking channel segments and junctions; blocked
//!   instructions wait in a *busy queue* until a resource is released
//!   (the paper's event list: instruction finished, qubit exits a
//!   channel);
//! * [`MappingOutcome`] — total latency, per-instruction timing
//!   breakdown (`T_gate`/`T_routing`/`T_congestion`), final placement
//!   (consumed by the MVFB placer), and an optional micro-command
//!   [`Trace`];
//! * [`validate_trace`] — an independent replay checker enforcing the
//!   physical invariants (no teleports, turns only at junctions, gates
//!   only in traps with ≤ 2 co-located qubits, channel/junction capacity
//!   never exceeded).
//!
//! # Examples
//!
//! ```
//! use qspr_fabric::{Fabric, TechParams};
//! use qspr_qasm::Program;
//! use qspr_sim::{Mapper, MapperPolicy, Placement};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let fabric = Fabric::quale_45x85();
//! let tech = TechParams::date2012();
//! let program = Program::parse("QUBIT a\nQUBIT b\nH a\nC-X a,b\n")?;
//! let placement = Placement::center(&fabric, program.num_qubits());
//!
//! let mapper = Mapper::new(&fabric, tech, MapperPolicy::qspr(&tech));
//! let outcome = mapper.map(&program, &placement)?;
//! assert!(outcome.latency() >= 110); // at least the gate delays
//! # Ok(())
//! # }
//! ```

mod engine;
mod error;
mod outcome;
mod placement;
mod policy;
mod render;
mod stress;
mod trace;
mod validate;

pub use engine::Mapper;
pub use error::{MapError, TraceError};
// The routing-engine seam, re-exported so mapper callers can select
// engines without a direct `qspr_route` dependency.
pub use outcome::{InstrStats, MappingOutcome, Totals};
pub use placement::Placement;
pub use policy::{IssueOrder, MapperPolicy, MovementPolicy};
pub use qspr_route::{RouterFactory, RouterKind, RoutingEngine, RoutingStats};
pub use render::{qubit_positions_at, render_at, render_gantt};
pub use trace::{MicroCommand, Trace, TraceEntry};
pub use validate::validate_trace;
