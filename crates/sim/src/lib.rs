//! Event-driven mapping engine: the dynamic half of QSPR.
//!
//! The paper's mapper (§III–§IV) interleaves scheduling and routing: an
//! instruction's delay (Eq. 1) is `T_gate + T_routing + T_congestion`,
//! and the last two terms only materialize while the mapped circuit is
//! *simulated* on the fabric. This crate provides that simulator:
//!
//! * [`Placement`] — an assignment of program qubits to fabric traps
//!   (center placements, the seeds of every placer, live here too);
//! * [`MapperPolicy`] — the policy knobs distinguishing QSPR from the
//!   QUALE/QPOS baselines: router configuration, movement policy (move
//!   both operands to a median trap vs. move only the source), and issue
//!   order (priority list, ALAP, ASAP);
//! * [`Mapper`] — the event-driven engine. Ready instructions are issued
//!   in policy order; 2-qubit instructions pick a target trap and route
//!   their operands, booking channel segments and junctions; blocked
//!   instructions wait in a *busy queue* until a resource is released
//!   (the paper's event list: instruction finished, qubit exits a
//!   channel);
//! * [`MappingOutcome`] — total latency, per-instruction timing
//!   breakdown (`T_gate`/`T_routing`/`T_congestion`), final placement
//!   (consumed by the MVFB placer), and an optional micro-command
//!   [`Trace`];
//! * [`validate_trace`] — an independent replay checker enforcing the
//!   physical invariants (no teleports, turns only at junctions, gates
//!   only in traps with ≤ 2 co-located qubits, channel/junction capacity
//!   never exceeded).
//!
//! # Examples
//!
//! ```
//! use qspr_fabric::{Fabric, TechParams};
//! use qspr_qasm::Program;
//! use qspr_sim::{Mapper, MapperPolicy, Placement};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let fabric = Fabric::quale_45x85();
//! let tech = TechParams::date2012();
//! let program = Program::parse("QUBIT a\nQUBIT b\nH a\nC-X a,b\n")?;
//! let placement = Placement::center(&fabric, program.num_qubits());
//!
//! let mapper = Mapper::new(&fabric, tech, MapperPolicy::qspr(&tech));
//! let outcome = mapper.map(&program, &placement)?;
//! assert!(outcome.latency() >= 110); // at least the gate delays
//! # Ok(())
//! # }
//! ```
//!
//! # Design notes: the event-driven epoch loop
//!
//! The simulator advances a single clock over a binary-heap event
//! queue; nothing is time-stepped. One iteration of the main loop is
//! an **epoch**:
//!
//! 1. **Issue phase.** All instructions whose QIDG predecessors have
//!    finished are considered in policy order (the `qspr-sched`
//!    priority list for QSPR, ALAP order for QUALE, ASAP plus
//!    dependent-count for QPOS). A 1-qubit instruction starts its gate
//!    in place; a 2-qubit instruction picks the cheapest meeting trap
//!    (per the movement policy: both operands to a median trap, or the
//!    source to the destination) and submits its operand legs to the
//!    routing engine. Instructions that cannot route or find no free
//!    seat join the **busy queue**.
//! 2. **Batch routing.** The epoch's movers go to the configured
//!    `qspr_route::RoutingEngine` *as one batch*. The greedy engine
//!    answers immediately, first-come-first-served; the negotiated
//!    engine may rip up and re-route the whole set. To allow that,
//!    the simulator *defers* each leg's finalization — events, per-leg
//!    stats, trace output — until the end of the issue phase
//!    (`finalize_epoch`), when the engine's plans are final. A later
//!    mover that comes back blocked can trigger a joint renegotiation
//!    of the epoch's still-uncommitted legs.
//! 3. **Event pop.** The earliest event fires and the clock jumps to
//!    it. The paper's two event kinds drive everything: *instruction
//!    finished* (its QIDG successors may now be ready, its trap seats
//!    free up) and *qubit exits a channel* (booked segments and
//!    junctions release, so busy-queue entries get retried). Each pop
//!    re-enters the issue phase; the loop ends when the event queue
//!    drains, and stalls (a non-empty busy queue that no event can
//!    unblock) surface as [`MapError::Stalled`] rather than hanging.
//!
//! Instruction delay follows the paper's Eq. 1,
//! `T_gate + T_routing + T_congestion`: the gate term comes from the
//! QIDG, the routing term from the committed [`qspr_route::RoutePlan`],
//! and the congestion term is *measured* — the time an instruction
//! spent parked in the busy queue — which is what
//! [`MappingOutcome::totals`] reports as `congestion_wait`.
//!
//! ```
//! use qspr_fabric::{Fabric, TechParams};
//! use qspr_qasm::Program;
//! use qspr_sim::{Mapper, MapperPolicy, Placement, RouterKind};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let fabric = Fabric::quale_45x85();
//! let tech = TechParams::date2012();
//! let program = Program::parse(
//!     "QUBIT a\nQUBIT b\nQUBIT c\nH a\nC-X a,b\nC-Z b,c\nC-Y c,a\n",
//! )?;
//! let placement = Placement::center(&fabric, program.num_qubits());
//!
//! // The same epoch loop drives both engines; runs are deterministic.
//! let mapper = Mapper::new(&fabric, tech, MapperPolicy::qspr(&tech));
//! let greedy = mapper.clone().map(&program, &placement)?;
//! let negotiated = mapper
//!     .clone()
//!     .router(RouterKind::Negotiated)
//!     .map(&program, &placement)?;
//! assert_eq!(greedy.latency(), mapper.map(&program, &placement)?.latency());
//! // Epochs are counted per issue phase that routed at least one leg.
//! assert!(greedy.routing_stats().epochs > 0);
//! assert!(negotiated.routing_stats().epochs > 0);
//! // Eq. 1 decomposition per instruction: ready ≤ issued ≤ gate ≤ done.
//! assert!(greedy
//!     .instr_stats()
//!     .iter()
//!     .all(|s| s.ready_at <= s.issued_at
//!         && s.issued_at <= s.gate_start
//!         && s.gate_start < s.finish));
//! # Ok(())
//! # }
//! ```

mod engine;
mod error;
mod outcome;
mod placement;
mod policy;
// Test-only: keeps `proptest` a dev-dependency and the module out of
// release builds entirely.
#[cfg(test)]
mod proptests;
mod render;
mod stress;
mod trace;
mod validate;

pub use engine::Mapper;
pub use error::{MapError, TraceError};
// The routing-engine seam, re-exported so mapper callers can select
// engines without a direct `qspr_route` dependency.
pub use outcome::{InstrStats, MappingOutcome, Totals};
pub use placement::Placement;
pub use policy::{IssueOrder, MapperPolicy, MovementPolicy};
pub use qspr_route::{RouterFactory, RouterKind, RoutingEngine, RoutingStats};
pub use render::{qubit_positions_at, render_at, render_gantt};
pub use trace::{MicroCommand, Trace, TraceEntry};
pub use validate::validate_trace;
