//! Mapping and trace-validation errors.

use std::error::Error;
use std::fmt;

use qspr_fabric::{FabricError, Time, TrapId};
use qspr_qasm::QubitId;

/// Why a program could not be mapped onto a fabric.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum MapError {
    /// The placement covers a different number of qubits than the program.
    QubitCountMismatch {
        /// Qubits in the placement.
        placement: usize,
        /// Qubits declared by the program.
        program: usize,
    },
    /// A placement referenced a trap id outside the fabric.
    TrapOutOfRange(TrapId),
    /// More than two qubits were placed into the same trap (traps hold at
    /// most two ions).
    DuplicateTrap(TrapId),
    /// The fabric has fewer traps than the program has qubits.
    NotEnoughTraps {
        /// Traps available.
        traps: usize,
        /// Qubits required.
        qubits: usize,
    },
    /// The simulation stalled: some instructions can never issue (e.g. a
    /// disconnected fabric leaves an operand pair unroutable).
    Stalled {
        /// Number of instructions that never finished.
        remaining: usize,
    },
    /// A fabric resource's booking counter saturated mid-run
    /// ([`FabricError::CapacityOverflow`]): the capacity configuration
    /// admits more simultaneous users than the occupancy accounting can
    /// count, so the simulation result would be unsound.
    Fabric(FabricError),
}

impl From<FabricError> for MapError {
    fn from(e: FabricError) -> MapError {
        MapError::Fabric(e)
    }
}

impl fmt::Display for MapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MapError::QubitCountMismatch { placement, program } => write!(
                f,
                "placement has {placement} qubits but the program declares {program}"
            ),
            MapError::TrapOutOfRange(t) => write!(f, "placement references unknown {t}"),
            MapError::DuplicateTrap(t) => {
                write!(f, "more than two qubits placed into {t}")
            }
            MapError::NotEnoughTraps { traps, qubits } => {
                write!(f, "fabric has {traps} traps but {qubits} qubits need seats")
            }
            MapError::Stalled { remaining } => write!(
                f,
                "mapping stalled with {remaining} instruction(s) blocked forever"
            ),
            MapError::Fabric(e) => write!(f, "fabric resource accounting failed: {e}"),
        }
    }
}

impl Error for MapError {}

/// An invariant violation found while replaying a [`crate::Trace`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TraceError {
    /// Trace entries are not sorted by time.
    TimeNotMonotone {
        /// Index of the offending entry.
        index: usize,
    },
    /// A move teleported (|from − to| ≠ 1) or started from the wrong cell.
    BrokenMove {
        /// The qubit that moved.
        qubit: QubitId,
        /// Index of the offending entry.
        index: usize,
    },
    /// A qubit moved into a cell that is not walkable (empty cell) or
    /// entered a trap cell it has no business in.
    BadDestination {
        /// The qubit that moved.
        qubit: QubitId,
        /// Index of the offending entry.
        index: usize,
    },
    /// A turn happened away from a junction.
    TurnOutsideJunction {
        /// The turning qubit.
        qubit: QubitId,
        /// Index of the offending entry.
        index: usize,
    },
    /// A gate started while an operand was not in the gate's trap.
    OperandMissing {
        /// Index of the offending entry.
        index: usize,
    },
    /// A gate executed outside a trap cell.
    GateOutsideTrap {
        /// Index of the offending entry.
        index: usize,
    },
    /// More than two qubits co-located in one trap.
    TrapOverflow {
        /// Index of the offending entry.
        index: usize,
    },
    /// More qubits inside a channel segment than its capacity.
    ChannelOverflow {
        /// Index of the offending entry.
        index: usize,
    },
    /// More qubits inside a junction than its capacity.
    JunctionOverflow {
        /// Index of the offending entry.
        index: usize,
    },
    /// A gate's end did not follow its start by exactly the gate delay.
    BadGateTiming {
        /// Index of the offending entry.
        index: usize,
        /// Expected delay.
        expected: Time,
    },
    /// A gate ended that never started, or started twice.
    UnmatchedGate {
        /// Index of the offending entry.
        index: usize,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::TimeNotMonotone { index } => {
                write!(f, "entry {index}: time goes backwards")
            }
            TraceError::BrokenMove { qubit, index } => {
                write!(f, "entry {index}: {qubit} move is discontinuous")
            }
            TraceError::BadDestination { qubit, index } => {
                write!(f, "entry {index}: {qubit} moved into a non-walkable cell")
            }
            TraceError::TurnOutsideJunction { qubit, index } => {
                write!(f, "entry {index}: {qubit} turned outside a junction")
            }
            TraceError::OperandMissing { index } => {
                write!(f, "entry {index}: gate started without its operands")
            }
            TraceError::GateOutsideTrap { index } => {
                write!(f, "entry {index}: gate executed outside a trap")
            }
            TraceError::TrapOverflow { index } => {
                write!(f, "entry {index}: more than two qubits in a trap")
            }
            TraceError::ChannelOverflow { index } => {
                write!(f, "entry {index}: channel capacity exceeded")
            }
            TraceError::JunctionOverflow { index } => {
                write!(f, "entry {index}: junction capacity exceeded")
            }
            TraceError::BadGateTiming { index, expected } => {
                write!(f, "entry {index}: gate did not take {expected}µs")
            }
            TraceError::UnmatchedGate { index } => {
                write!(f, "entry {index}: gate start/end mismatch")
            }
        }
    }
}

impl Error for TraceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display() {
        let e = MapError::Stalled { remaining: 3 };
        assert!(e.to_string().contains("3 instruction"));
        let e = TraceError::ChannelOverflow { index: 7 };
        assert!(e.to_string().contains("entry 7"));
    }

    #[test]
    fn errors_are_std_errors() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<MapError>();
        assert_error::<TraceError>();
    }
}
