//! ASCII visualization of mapped executions: fabric occupancy snapshots
//! and per-instruction timelines.

use qspr_fabric::{Coord, Fabric, Time};
use qspr_qasm::QubitId;

use crate::outcome::MappingOutcome;
use crate::placement::Placement;
use crate::trace::{MicroCommand, Trace};

/// The position of every qubit at time `t`, replayed from a trace.
///
/// Moves are applied when their completion time is ≤ `t`; a qubit whose
/// move completes later is still shown at its previous cell.
///
/// # Examples
///
/// ```
/// use qspr_fabric::{Fabric, TechParams};
/// use qspr_qasm::Program;
/// use qspr_sim::{qubit_positions_at, Mapper, MapperPolicy, Placement};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let fabric = Fabric::quale_45x85();
/// let tech = TechParams::date2012();
/// let program = Program::parse("QUBIT a\nQUBIT b\nC-X a,b\n")?;
/// let placement = Placement::center(&fabric, 2);
/// let outcome = Mapper::new(&fabric, tech, MapperPolicy::qspr(&tech))
///     .record_trace(true)
///     .map(&program, &placement)?;
/// let at_start = qubit_positions_at(&fabric, &placement, outcome.trace().unwrap(), 0);
/// assert_eq!(at_start.len(), 2);
/// # Ok(())
/// # }
/// ```
pub fn qubit_positions_at(
    fabric: &Fabric,
    placement: &Placement,
    trace: &Trace,
    t: Time,
) -> Vec<Coord> {
    let topo = fabric.topology();
    let mut pos: Vec<Coord> = placement
        .as_slice()
        .iter()
        .map(|&trap| topo.trap(trap).coord())
        .collect();
    for entry in trace {
        if entry.time > t {
            break;
        }
        if let MicroCommand::Move { qubit, to, .. } = entry.command {
            if qubit.index() < pos.len() {
                pos[qubit.index()] = to;
            }
        }
    }
    pos
}

/// Renders the fabric with qubit positions overlaid at time `t`.
///
/// Qubits print as `0`–`9` then `a`–`z`; two co-located qubits print as
/// `@`. All other cells keep their fabric glyphs (`T`, `-`, `|`, `+`,
/// `.`).
pub fn render_at(fabric: &Fabric, placement: &Placement, trace: &Trace, t: Time) -> String {
    let positions = qubit_positions_at(fabric, placement, trace, t);
    let mut art: Vec<Vec<char>> = fabric
        .to_ascii()
        .lines()
        .map(|l| l.chars().collect())
        .collect();
    for (q, coord) in positions.iter().enumerate() {
        let cell = &mut art[coord.row as usize][coord.col as usize];
        *cell = if cell.is_ascii_alphanumeric() && *cell != 'T' {
            '@' // two qubits sharing a trap
        } else {
            qubit_glyph(QubitId(q as u32))
        };
    }
    let mut out = String::new();
    for row in art {
        out.extend(row);
        out.push('\n');
    }
    out
}

fn qubit_glyph(q: QubitId) -> char {
    let i = q.index();
    if i < 10 {
        (b'0' + i as u8) as char
    } else if i < 36 {
        (b'a' + (i - 10) as u8) as char
    } else {
        '*'
    }
}

/// Renders a per-instruction timeline (a textual Gantt chart): for each
/// instruction, the congestion wait (`.`), routing (`~`) and gate
/// execution (`#`) phases, scaled to `width` columns.
///
/// ```text
///  i#0 |          ####                |
///  i#4 |  ....~~~~~~########          |
/// ```
pub fn render_gantt(outcome: &MappingOutcome, width: usize) -> String {
    let width = width.max(10);
    let makespan = outcome.latency().max(1);
    let scale = |t: Time| ((t as u128 * width as u128) / makespan as u128) as usize;
    let mut out = String::new();
    for (i, s) in outcome.instr_stats().iter().enumerate() {
        let ready = scale(s.ready_at);
        let issued = scale(s.issued_at);
        let start = scale(s.gate_start);
        let finish = scale(s.finish).max(start + 1).min(width);
        let mut line = vec![' '; width];
        for (lo, hi, ch) in [
            (ready, issued, '.'),
            (issued, start, '~'),
            (start, finish, '#'),
        ] {
            for slot in line.iter_mut().take(hi.min(width)).skip(lo) {
                *slot = ch;
            }
        }
        out.push_str(&format!("i#{i:<4}|"));
        out.extend(line);
        out.push_str("|\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Mapper;
    use crate::policy::MapperPolicy;
    use qspr_fabric::TechParams;
    use qspr_qasm::Program;

    fn mapped() -> (Fabric, Program, Placement, MappingOutcome) {
        let fabric = Fabric::quale_45x85();
        let tech = TechParams::date2012();
        let program = Program::parse("QUBIT a,0\nQUBIT b,0\nH a\nC-X a,b\n").unwrap();
        let placement = Placement::center(&fabric, 2);
        let outcome = Mapper::new(&fabric, tech, MapperPolicy::qspr(&tech))
            .record_trace(true)
            .map(&program, &placement)
            .unwrap();
        (fabric, program, placement, outcome)
    }

    #[test]
    fn positions_start_at_placement_and_end_at_final_placement() {
        let (fabric, _p, placement, outcome) = mapped();
        let trace = outcome.trace().unwrap();
        let topo = fabric.topology();
        let at0 = qubit_positions_at(&fabric, &placement, trace, 0);
        for (q, c) in at0.iter().enumerate() {
            assert_eq!(*c, topo.trap(placement.trap_of(QubitId(q as u32))).coord());
        }
        let at_end = qubit_positions_at(&fabric, &placement, trace, trace.end_time());
        for (q, c) in at_end.iter().enumerate() {
            let final_trap = outcome.final_placement().trap_of(QubitId(q as u32));
            assert_eq!(*c, topo.trap(final_trap).coord());
        }
    }

    #[test]
    fn render_marks_qubits() {
        let (fabric, _p, placement, outcome) = mapped();
        let art = render_at(&fabric, &placement, outcome.trace().unwrap(), 0);
        assert!(art.contains('0'));
        assert!(art.contains('1'));
        // Same grid dimensions as the fabric.
        assert_eq!(art.lines().count(), fabric.rows() as usize);
    }

    #[test]
    fn colocated_qubits_render_as_at_sign() {
        let (fabric, _p, placement, outcome) = mapped();
        let trace = outcome.trace().unwrap();
        // After the CX both qubits share the meeting trap.
        let art = render_at(&fabric, &placement, trace, trace.end_time());
        assert!(art.contains('@'));
    }

    #[test]
    fn gantt_has_one_row_per_instruction() {
        let (_f, program, _pl, outcome) = mapped();
        let gantt = render_gantt(&outcome, 40);
        assert_eq!(gantt.lines().count(), program.instructions().len());
        assert!(gantt.contains('#'), "gates must appear");
    }

    #[test]
    fn gantt_minimum_width_is_enforced() {
        let (_f, _p, _pl, outcome) = mapped();
        let gantt = render_gantt(&outcome, 0);
        assert!(gantt.lines().next().unwrap().len() >= 10);
    }

    #[test]
    fn glyphs_cover_the_alphabet() {
        assert_eq!(qubit_glyph(QubitId(0)), '0');
        assert_eq!(qubit_glyph(QubitId(9)), '9');
        assert_eq!(qubit_glyph(QubitId(10)), 'a');
        assert_eq!(qubit_glyph(QubitId(35)), 'z');
        assert_eq!(qubit_glyph(QubitId(36)), '*');
    }
}
