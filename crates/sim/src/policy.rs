//! Mapper policies: everything that distinguishes QSPR from the baselines.

use qspr_fabric::TechParams;
use qspr_route::RouterConfig;
use qspr_sched::PriorityWeights;

/// How the operands of a 2-qubit instruction are brought together
/// (paper §I and §IV.B).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MovementPolicy {
    /// QSPR: both qubits move simultaneously towards the free trap nearest
    /// to the median of their positions.
    BothToMedian,
    /// QPOS: the destination (target) qubit stays in its trap; the
    /// source (control) qubit travels the whole way and *stays* there.
    /// When the destination trap is already full (two ions), both
    /// operands relocate to the nearest free trap instead, so trap
    /// capacity is never violated.
    SourceToDestination,
    /// QUALE (QCCD storage model): every qubit has a *home* trap fixed by
    /// the initial placement. The source shuttles to the destination's
    /// home, the gate executes, and the source shuttles back home before
    /// it can participate in another operation. Consecutive gates on a
    /// qubit therefore serialize through round trips — the inefficiency
    /// QSPR's stay-where-you-meet policy removes.
    ReturnToHome,
}

/// In which order ready instructions are issued.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum IssueOrder {
    /// QSPR's priority list (§III): a linear combination of transitive
    /// dependent count and longest path delay to the QIDG sink.
    PriorityList(PriorityWeights),
    /// QUALE: instructions extracted in ALAP order.
    Alap,
    /// QPOS-era baseline: plain ASAP (program) order.
    Asap,
}

/// The complete mapper policy.
///
/// # Examples
///
/// ```
/// use qspr_fabric::TechParams;
/// use qspr_sim::{MapperPolicy, MovementPolicy};
///
/// let tech = TechParams::date2012();
/// let qspr = MapperPolicy::qspr(&tech);
/// assert_eq!(qspr.movement, MovementPolicy::BothToMedian);
/// assert!(!qspr.strict_order);
/// let quale = MapperPolicy::quale(&tech);
/// assert_eq!(quale.movement, MovementPolicy::ReturnToHome);
/// assert_eq!(quale.router.channel_capacity, 1);
/// assert!(quale.strict_order);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MapperPolicy {
    /// Router configuration (turn awareness, capacities, history costs).
    pub router: RouterConfig,
    /// Operand movement policy.
    pub movement: MovementPolicy,
    /// Ready-instruction issue order.
    pub order: IssueOrder,
    /// Issue instructions strictly in schedule order: a blocked
    /// instruction holds back everything behind it (head-of-line
    /// blocking). This models tools that *extract* instructions from a
    /// precomputed schedule (QUALE's ALAP traversal), as opposed to
    /// QSPR's dynamic ready-list.
    pub strict_order: bool,
}

impl MapperPolicy {
    /// The full QSPR policy (§I bullets): turn-aware multiplexed routing,
    /// both operands move to a median trap, priority-list scheduling.
    pub fn qspr(tech: &TechParams) -> MapperPolicy {
        MapperPolicy {
            router: RouterConfig::qspr(tech),
            movement: MovementPolicy::BothToMedian,
            order: IssueOrder::PriorityList(PriorityWeights::default()),
            strict_order: false,
        }
    }

    /// The QUALE baseline: ALAP extraction (strict order), center
    /// placement (chosen by the caller), PathFinder-style routing, no
    /// channel multiplexing, turn-blind costs, single moving qubit.
    pub fn quale(tech: &TechParams) -> MapperPolicy {
        MapperPolicy {
            router: RouterConfig::quale(tech),
            movement: MovementPolicy::ReturnToHome,
            order: IssueOrder::Alap,
            strict_order: true,
        }
    }

    /// The QPOS baseline: ASAP extraction with dependent-count priority
    /// (dynamic among ready instructions), destination operand fixed,
    /// capacity-1 channels, turn-blind costs.
    pub fn qpos(tech: &TechParams) -> MapperPolicy {
        let mut router = RouterConfig::quale(tech);
        router.history_cost = false;
        MapperPolicy {
            router,
            movement: MovementPolicy::SourceToDestination,
            order: IssueOrder::PriorityList(PriorityWeights::dependents_only()),
            strict_order: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qspr_policy_enables_all_improvements() {
        let p = MapperPolicy::qspr(&TechParams::date2012());
        assert!(p.router.turn_aware);
        assert_eq!(p.router.channel_capacity, 2);
        assert_eq!(p.movement, MovementPolicy::BothToMedian);
        assert!(matches!(p.order, IssueOrder::PriorityList(_)));
    }

    #[test]
    fn baselines_disable_the_improvements() {
        let tech = TechParams::date2012();
        let quale = MapperPolicy::quale(&tech);
        assert!(!quale.router.turn_aware);
        assert!(quale.router.history_cost);
        assert_eq!(quale.order, IssueOrder::Alap);

        let qpos = MapperPolicy::qpos(&tech);
        assert!(!qpos.router.history_cost);
        assert!(matches!(qpos.order, IssueOrder::PriorityList(w)
            if w == qspr_sched::PriorityWeights::dependents_only()));
    }
}
