//! Micro-command traces: the quantum-control command stream a mapping
//! produces (the paper's `T` in §IV.A).

use std::fmt;

use qspr_fabric::{Coord, Time};
use qspr_qasm::{Gate, QubitId};
use qspr_sched::InstrId;

/// One command issued by the quantum system controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MicroCommand {
    /// Relocate `qubit` one cell.
    Move {
        /// The relocated qubit.
        qubit: QubitId,
        /// Cell it came from.
        from: Coord,
        /// Cell it arrives in.
        to: Coord,
    },
    /// Change `qubit`'s movement direction at junction `at`.
    Turn {
        /// The turning qubit.
        qubit: QubitId,
        /// The junction cell.
        at: Coord,
    },
    /// Begin executing a gate in the trap at `trap`.
    GateStart {
        /// The QIDG node.
        instr: InstrId,
        /// The gate operation.
        gate: Gate,
        /// The trap cell hosting the operation.
        trap: Coord,
        /// First operand.
        q0: QubitId,
        /// Second operand for 2-qubit gates.
        q1: Option<QubitId>,
    },
    /// Finish executing the gate of `instr`.
    GateEnd {
        /// The QIDG node.
        instr: InstrId,
    },
}

/// A timestamped [`MicroCommand`]. Times are the *completion* instants of
/// moves/turns and the start/end instants of gates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEntry {
    /// Absolute simulation time in microseconds.
    pub time: Time,
    /// The command.
    pub command: MicroCommand,
}

impl fmt::Display for TraceEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:>8}µs] ", self.time)?;
        match self.command {
            MicroCommand::Move { qubit, from, to } => {
                write!(f, "move  {qubit} {from} -> {to}")
            }
            MicroCommand::Turn { qubit, at } => write!(f, "turn  {qubit} at {at}"),
            MicroCommand::GateStart {
                instr,
                gate,
                trap,
                q0,
                q1,
            } => match q1 {
                Some(q1) => write!(f, "gate+ {instr} {gate} {q0},{q1} in {trap}"),
                None => write!(f, "gate+ {instr} {gate} {q0} in {trap}"),
            },
            MicroCommand::GateEnd { instr } => write!(f, "gate- {instr}"),
        }
    }
}

/// The full command stream of one mapped execution, sorted by time.
///
/// # Examples
///
/// ```
/// use qspr_fabric::{Fabric, TechParams};
/// use qspr_qasm::Program;
/// use qspr_sim::{Mapper, MapperPolicy, Placement};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let fabric = Fabric::quale_45x85();
/// let tech = TechParams::date2012();
/// let program = Program::parse("QUBIT a\nQUBIT b\nC-X a,b\n")?;
/// let placement = Placement::center(&fabric, 2);
/// let outcome = Mapper::new(&fabric, tech, MapperPolicy::qspr(&tech))
///     .record_trace(true)
///     .map(&program, &placement)?;
/// let trace = outcome.trace().expect("trace was recorded");
/// assert!(trace.len() > 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Trace {
    entries: Vec<TraceEntry>,
}

/// Tie-break rank of commands at equal timestamps: gate ends, then move
/// completions, then turn completions, then gate starts — ends precede
/// starts so same-instant trap handovers stay well-formed, and arrivals
/// precede the gate they enable — with the qubit/instruction id as the
/// final key. This makes entry order a pure function of the entry *set*.
fn command_rank(command: &MicroCommand) -> (u8, u32) {
    match *command {
        MicroCommand::GateEnd { instr } => (0, instr.0),
        MicroCommand::Move { qubit, .. } => (1, qubit.0),
        MicroCommand::Turn { qubit, .. } => (2, qubit.0),
        MicroCommand::GateStart { instr, .. } => (3, instr.0),
    }
}

impl Trace {
    /// Wraps raw entries, sorting them by time with an explicit stable
    /// secondary key (command kind, then qubit/instruction id), so traces
    /// are reproducible regardless of the order entries were recorded in.
    pub fn new(mut entries: Vec<TraceEntry>) -> Trace {
        entries.sort_by_key(|e| (e.time, command_rank(&e.command)));
        Trace { entries }
    }

    /// The entries in time order.
    pub fn entries(&self) -> &[TraceEntry] {
        &self.entries
    }

    /// Number of commands.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no commands were recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over the entries.
    pub fn iter(&self) -> std::slice::Iter<'_, TraceEntry> {
        self.entries.iter()
    }

    /// Total moves recorded.
    pub fn move_count(&self) -> usize {
        self.entries
            .iter()
            .filter(|e| matches!(e.command, MicroCommand::Move { .. }))
            .count()
    }

    /// Total turns recorded.
    pub fn turn_count(&self) -> usize {
        self.entries
            .iter()
            .filter(|e| matches!(e.command, MicroCommand::Turn { .. }))
            .count()
    }

    /// The time of the last command (the trace's makespan).
    pub fn end_time(&self) -> Time {
        self.entries.last().map_or(0, |e| e.time)
    }

    /// The time-mirrored trace: entry times become `end − t`, moves swap
    /// their endpoints, gate starts and ends swap roles, and each gate is
    /// replaced by its inverse.
    ///
    /// This realizes the paper's "reverse of `T'_k`" (§IV.A): when the
    /// best MVFB pass is a *backward* (uncompute) execution, the reported
    /// control trace is its reversal, which executes the original
    /// (forward) computation.
    pub fn reversed(&self) -> Trace {
        let end = self.end_time();
        let entries = self
            .entries
            .iter()
            .rev()
            .map(|e| {
                let command = match e.command {
                    MicroCommand::Move { qubit, from, to } => MicroCommand::Move {
                        qubit,
                        from: to,
                        to: from,
                    },
                    MicroCommand::Turn { qubit, at } => MicroCommand::Turn { qubit, at },
                    MicroCommand::GateStart {
                        instr,
                        gate,
                        trap,
                        q0,
                        q1,
                    } => MicroCommand::GateStart {
                        instr,
                        gate: gate.inverse(),
                        trap,
                        q0,
                        q1,
                    },
                    MicroCommand::GateEnd { instr } => MicroCommand::GateEnd { instr },
                };
                TraceEntry {
                    time: end - e.time,
                    command,
                }
            })
            .collect();
        // Gate start/end pairs swap naturally under time mirroring; the
        // constructor re-sorts so starts precede ends again.
        Trace::new(entries)
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a TraceEntry;
    type IntoIter = std::slice::Iter<'a, TraceEntry>;

    fn into_iter(self) -> Self::IntoIter {
        self.entries.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(time: Time, command: MicroCommand) -> TraceEntry {
        TraceEntry { time, command }
    }

    #[test]
    fn entries_are_sorted_on_construction() {
        let t = Trace::new(vec![
            entry(
                5,
                MicroCommand::Turn {
                    qubit: QubitId(0),
                    at: Coord::new(0, 0),
                },
            ),
            entry(
                1,
                MicroCommand::Move {
                    qubit: QubitId(0),
                    from: Coord::new(0, 1),
                    to: Coord::new(0, 0),
                },
            ),
        ]);
        assert_eq!(t.entries()[0].time, 1);
        assert_eq!(t.end_time(), 5);
        assert_eq!(t.move_count(), 1);
        assert_eq!(t.turn_count(), 1);
    }

    #[test]
    fn reversal_mirrors_times_and_moves() {
        let t = Trace::new(vec![
            entry(
                1,
                MicroCommand::Move {
                    qubit: QubitId(0),
                    from: Coord::new(0, 0),
                    to: Coord::new(0, 1),
                },
            ),
            entry(
                11,
                MicroCommand::Move {
                    qubit: QubitId(0),
                    from: Coord::new(0, 1),
                    to: Coord::new(0, 2),
                },
            ),
        ]);
        let r = t.reversed();
        assert_eq!(r.entries()[0].time, 0);
        match r.entries()[0].command {
            MicroCommand::Move { from, to, .. } => {
                assert_eq!(from, Coord::new(0, 2));
                assert_eq!(to, Coord::new(0, 1));
            }
            _ => panic!("expected a move"),
        }
        // Double reversal restores the command sequence and pacing up to a
        // constant shift (times are completion instants, and mirroring
        // happens around the last completion).
        let rr = t.reversed().reversed();
        let commands = |tr: &Trace| tr.iter().map(|e| e.command).collect::<Vec<_>>();
        assert_eq!(commands(&rr), commands(&t));
        let deltas = |tr: &Trace| {
            tr.entries()
                .windows(2)
                .map(|w| w[1].time - w[0].time)
                .collect::<Vec<_>>()
        };
        assert_eq!(deltas(&rr), deltas(&t));
    }

    #[test]
    fn reversal_inverts_gates() {
        let t = Trace::new(vec![entry(
            0,
            MicroCommand::GateStart {
                instr: InstrId(0),
                gate: Gate::S,
                trap: Coord::new(1, 1),
                q0: QubitId(0),
                q1: None,
            },
        )]);
        match t.reversed().entries()[0].command {
            MicroCommand::GateStart { gate, .. } => assert_eq!(gate, Gate::Sdg),
            _ => panic!("expected gate start"),
        }
    }

    #[test]
    fn equal_time_entries_order_independently_of_input_order() {
        let at = |t| {
            vec![
                entry(
                    t,
                    MicroCommand::GateStart {
                        instr: InstrId(1),
                        gate: Gate::H,
                        trap: Coord::new(1, 1),
                        q0: QubitId(1),
                        q1: None,
                    },
                ),
                entry(
                    t,
                    MicroCommand::Move {
                        qubit: QubitId(1),
                        from: Coord::new(0, 0),
                        to: Coord::new(0, 1),
                    },
                ),
                entry(t, MicroCommand::GateEnd { instr: InstrId(0) }),
                entry(
                    t,
                    MicroCommand::Move {
                        qubit: QubitId(0),
                        from: Coord::new(2, 0),
                        to: Coord::new(2, 1),
                    },
                ),
            ]
        };
        let mut forward = at(7);
        let mut backward = at(7);
        backward.reverse();
        let a = Trace::new(forward.clone());
        let b = Trace::new(backward);
        assert_eq!(a, b, "entry order must not depend on insertion order");
        // And the pinned kind order: end, moves (by qubit), start.
        forward.swap(0, 2);
        forward.swap(1, 3);
        forward.swap(2, 3);
        assert_eq!(a.entries(), &forward[..]);
    }

    #[test]
    fn display_is_nonempty() {
        let e = entry(3, MicroCommand::GateEnd { instr: InstrId(2) });
        assert!(e.to_string().contains("gate-"));
    }
}
