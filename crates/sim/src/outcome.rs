//! Results of mapping a program onto a fabric.

use qspr_fabric::Time;
use qspr_route::RoutingStats;
use qspr_sched::InstrId;

use crate::placement::Placement;
use crate::trace::Trace;

/// Per-instruction timing breakdown, realizing Eq. 1 of the paper:
/// `Instruction Delay = T_gate + T_routing + T_congestion`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct InstrStats {
    /// When all dependencies had finished.
    pub ready_at: Time,
    /// When the instruction was issued (routes booked). The difference to
    /// `ready_at` is the congestion wait (`T_congestion`).
    pub issued_at: Time,
    /// When all operands had arrived and the gate began (`T_routing` is
    /// `gate_start − issued_at`).
    pub gate_start: Time,
    /// When the gate finished (`T_gate` is `finish − gate_start`).
    pub finish: Time,
    /// Cell moves performed by this instruction's operands.
    pub moves: u32,
    /// Junction turns performed by this instruction's operands.
    pub turns: u32,
}

impl InstrStats {
    /// Time spent waiting for channel/junction/trap resources.
    pub fn congestion_wait(&self) -> Time {
        self.issued_at - self.ready_at
    }

    /// Time spent physically relocating operands.
    pub fn routing_time(&self) -> Time {
        self.gate_start - self.issued_at
    }

    /// Time spent executing the quantum operation.
    pub fn gate_time(&self) -> Time {
        self.finish - self.gate_start
    }
}

/// Aggregate movement/wait totals across a mapped execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Totals {
    /// All cell moves.
    pub moves: u64,
    /// All junction turns.
    pub turns: u64,
    /// Summed per-instruction congestion waits.
    pub congestion_wait: Time,
    /// Summed per-instruction routing times.
    pub routing_time: Time,
}

/// The result of [`crate::Mapper::map`].
#[derive(Debug, Clone, PartialEq)]
pub struct MappingOutcome {
    latency: Time,
    stats: Vec<InstrStats>,
    final_placement: Placement,
    trace: Option<Trace>,
    totals: Totals,
    routing: RoutingStats,
}

impl MappingOutcome {
    pub(crate) fn new(
        latency: Time,
        stats: Vec<InstrStats>,
        final_placement: Placement,
        trace: Option<Trace>,
        routing: RoutingStats,
    ) -> MappingOutcome {
        let totals = stats.iter().fold(Totals::default(), |mut acc, s| {
            acc.moves += u64::from(s.moves);
            acc.turns += u64::from(s.turns);
            acc.congestion_wait += s.congestion_wait();
            acc.routing_time += s.routing_time();
            acc
        });
        MappingOutcome {
            latency,
            stats,
            final_placement,
            trace,
            totals,
            routing,
        }
    }

    /// Total execution latency of the mapped circuit (makespan, µs).
    pub fn latency(&self) -> Time {
        self.latency
    }

    /// Per-instruction breakdown, indexed by instruction id.
    pub fn instr_stats(&self) -> &[InstrStats] {
        &self.stats
    }

    /// Stats of one instruction.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn stats_of(&self, id: InstrId) -> &InstrStats {
        &self.stats[id.index()]
    }

    /// Where each qubit ended up — the input to the next MVFB pass.
    pub fn final_placement(&self) -> &Placement {
        &self.final_placement
    }

    /// The micro-command trace, when recording was enabled.
    pub fn trace(&self) -> Option<&Trace> {
        self.trace.as_ref()
    }

    /// Aggregate movement/wait totals.
    pub fn totals(&self) -> Totals {
        self.totals
    }

    /// Congestion statistics reported by the routing engine (epochs,
    /// rip-up iterations, ripped routes, peak segment pressure).
    pub fn routing_stats(&self) -> RoutingStats {
        self.routing
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qspr_fabric::TrapId;

    #[test]
    fn totals_accumulate() {
        let stats = vec![
            InstrStats {
                ready_at: 0,
                issued_at: 5,
                gate_start: 10,
                finish: 110,
                moves: 8,
                turns: 2,
            },
            InstrStats {
                ready_at: 110,
                issued_at: 110,
                gate_start: 120,
                finish: 130,
                moves: 4,
                turns: 1,
            },
        ];
        let placement = Placement::new(vec![TrapId(0), TrapId(1)]).unwrap();
        let o = MappingOutcome::new(130, stats, placement, None, RoutingStats::default());
        assert_eq!(o.totals().moves, 12);
        assert_eq!(o.totals().turns, 3);
        assert_eq!(o.totals().congestion_wait, 5);
        assert_eq!(o.totals().routing_time, 15);
        assert_eq!(o.stats_of(InstrId(0)).gate_time(), 100);
    }
}
