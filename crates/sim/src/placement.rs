//! Qubit-to-trap placements, including center placements.

use rand::seq::SliceRandom;
use rand::Rng;

use qspr_fabric::{Fabric, TrapId};
use qspr_qasm::QubitId;

use crate::error::MapError;

/// An assignment of program qubits to fabric traps, with at most two
/// qubits per trap (the trap capacity of the ion-trap technology).
///
/// Fresh placements produced by the placers are injective; placements
/// *resulting* from a mapped execution may pair up the operands of the
/// final two-qubit gates, and the MVFB placer legitimately feeds those
/// back in as the next pass's starting point.
///
/// # Examples
///
/// ```
/// use qspr_fabric::Fabric;
/// use qspr_qasm::QubitId;
/// use qspr_sim::Placement;
///
/// let fabric = Fabric::quale_45x85();
/// let placement = Placement::center(&fabric, 5);
/// assert_eq!(placement.num_qubits(), 5);
/// // Qubit 0 sits in the trap closest to the fabric center.
/// let t = placement.trap_of(QubitId(0));
/// let closest = fabric.topology().traps_by_distance(fabric.center())[0];
/// assert_eq!(t, closest);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Placement {
    traps: Vec<TrapId>,
}

impl Placement {
    /// Builds a placement from an explicit trap list (index = qubit id).
    ///
    /// # Errors
    ///
    /// Returns [`MapError::DuplicateTrap`] when more than two qubits share
    /// one trap. Trap-id range checking happens when the placement is used
    /// with a concrete fabric in [`crate::Mapper::map`].
    pub fn new(traps: Vec<TrapId>) -> Result<Placement, MapError> {
        let mut seen = traps.clone();
        seen.sort();
        for triple in seen.windows(3) {
            if triple[0] == triple[2] {
                return Err(MapError::DuplicateTrap(triple[0]));
            }
        }
        Ok(Placement { traps })
    }

    /// QUALE's *center placement*: qubit `i` goes to the `i`-th trap
    /// closest to the fabric center (§I).
    ///
    /// # Panics
    ///
    /// Panics if the fabric has fewer than `num_qubits` traps.
    pub fn center(fabric: &Fabric, num_qubits: usize) -> Placement {
        let order = fabric.topology().traps_by_distance(fabric.center());
        assert!(
            order.len() >= num_qubits,
            "fabric has {} traps, need {num_qubits}",
            order.len()
        );
        Placement {
            traps: order[..num_qubits].to_vec(),
        }
    }

    /// A random permutation of the `num_qubits` center-closest traps — the
    /// seeds of both the Monte Carlo placer and MVFB (§IV.A, §V.A).
    ///
    /// # Panics
    ///
    /// Panics if the fabric has fewer than `num_qubits` traps.
    pub fn center_permutation<R: Rng>(
        fabric: &Fabric,
        num_qubits: usize,
        rng: &mut R,
    ) -> Placement {
        let mut placement = Placement::center(fabric, num_qubits);
        placement.traps.shuffle(rng);
        placement
    }

    /// Number of placed qubits.
    pub fn num_qubits(&self) -> usize {
        self.traps.len()
    }

    /// The trap assigned to `qubit`.
    ///
    /// # Panics
    ///
    /// Panics if `qubit` is out of range.
    pub fn trap_of(&self, qubit: QubitId) -> TrapId {
        self.traps[qubit.index()]
    }

    /// The assignment as a slice (index = qubit id).
    pub fn as_slice(&self) -> &[TrapId] {
        &self.traps
    }

    /// Validates this placement against a fabric and program size.
    pub(crate) fn check(&self, fabric: &Fabric, program_qubits: usize) -> Result<(), MapError> {
        if self.traps.len() != program_qubits {
            return Err(MapError::QubitCountMismatch {
                placement: self.traps.len(),
                program: program_qubits,
            });
        }
        let n_traps = fabric.topology().traps().len();
        // Two qubits per trap is the hard capacity limit.
        if n_traps * 2 < program_qubits {
            return Err(MapError::NotEnoughTraps {
                traps: n_traps,
                qubits: program_qubits,
            });
        }
        for &t in &self.traps {
            if t.index() >= n_traps {
                return Err(MapError::TrapOutOfRange(t));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn trap_pairs_are_allowed_but_triples_rejected() {
        // Two qubits per trap is fine (trap capacity).
        assert!(Placement::new(vec![TrapId(1), TrapId(1)]).is_ok());
        let err = Placement::new(vec![TrapId(1), TrapId(1), TrapId(1)]).unwrap_err();
        assert_eq!(err, MapError::DuplicateTrap(TrapId(1)));
    }

    #[test]
    fn center_is_deterministic_and_injective() {
        let f = Fabric::quale_45x85();
        let a = Placement::center(&f, 23);
        let b = Placement::center(&f, 23);
        assert_eq!(a, b);
        let mut traps = a.as_slice().to_vec();
        traps.sort();
        traps.dedup();
        assert_eq!(traps.len(), 23);
    }

    #[test]
    fn center_permutation_uses_same_trap_set() {
        let f = Fabric::quale_45x85();
        let mut rng = StdRng::seed_from_u64(9);
        let p = Placement::center_permutation(&f, 12, &mut rng);
        let mut a = p.as_slice().to_vec();
        let mut b = Placement::center(&f, 12).as_slice().to_vec();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn center_permutation_is_seed_deterministic() {
        let f = Fabric::quale_45x85();
        let p1 = Placement::center_permutation(&f, 12, &mut StdRng::seed_from_u64(1));
        let p2 = Placement::center_permutation(&f, 12, &mut StdRng::seed_from_u64(1));
        let p3 = Placement::center_permutation(&f, 12, &mut StdRng::seed_from_u64(2));
        assert_eq!(p1, p2);
        assert_ne!(p1, p3);
    }

    #[test]
    fn check_catches_mismatches() {
        let f = Fabric::quale_45x85();
        let p = Placement::center(&f, 5);
        assert_eq!(
            p.check(&f, 6),
            Err(MapError::QubitCountMismatch {
                placement: 5,
                program: 6
            })
        );
        let bad = Placement::new(vec![TrapId(999_999)]).unwrap();
        assert_eq!(
            bad.check(&f, 1),
            Err(MapError::TrapOutOfRange(TrapId(999_999)))
        );
    }

    #[test]
    #[should_panic(expected = "traps")]
    fn center_with_too_many_qubits_panics() {
        let f = Fabric::quale_45x85();
        let _ = Placement::center(&f, 10_000);
    }
}
