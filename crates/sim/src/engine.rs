//! The event-driven mapping engine (paper §III–§IV).

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt;
use std::sync::Arc;

use qspr_fabric::{Coord, Fabric, TechParams, Time, Topology, TrapId};
use qspr_qasm::{Operands, Program, QubitId};
use qspr_route::{
    Resource, ResourceState, RoutePlan, RouteRequest, RouterFactory, RouterKind, RoutingEngine,
    Step,
};
use qspr_sched::{InstrId, Qidg};

use crate::error::MapError;
use crate::outcome::{InstrStats, MappingOutcome};
use crate::placement::Placement;
use crate::policy::{IssueOrder, MapperPolicy, MovementPolicy};
use crate::trace::{MicroCommand, Trace, TraceEntry};

/// Maps programs onto a fabric under a given policy.
///
/// The mapper is reusable: each call to [`Mapper::map`] runs an
/// independent simulation. See the crate docs for an end-to-end example.
#[derive(Clone)]
pub struct Mapper<'a> {
    fabric: &'a Fabric,
    tech: TechParams,
    policy: MapperPolicy,
    router: Arc<dyn RouterFactory + Send + Sync>,
    record_trace: bool,
    order_boost: Option<Arc<Vec<Time>>>,
    jobs: usize,
}

impl<'a> Mapper<'a> {
    /// Creates a mapper over `fabric` with technology `tech` and `policy`.
    pub fn new(fabric: &'a Fabric, tech: TechParams, policy: MapperPolicy) -> Mapper<'a> {
        Mapper {
            fabric,
            tech,
            policy,
            router: Arc::new(RouterKind::Greedy),
            record_trace: false,
            order_boost: None,
            jobs: 1,
        }
    }

    /// Selects the batch-routing engine (a [`RouterKind`] for the
    /// built-in greedy/negotiated engines, or any custom
    /// [`RouterFactory`]). Defaults to [`RouterKind::Greedy`].
    pub fn router(mut self, router: impl RouterFactory + Send + Sync + 'static) -> Mapper<'a> {
        self.router = Arc::new(router);
        self
    }

    /// The name of the active routing engine.
    pub fn router_name(&self) -> &str {
        self.router.name()
    }

    /// Grants the routing engine up to `jobs` worker threads for
    /// intra-epoch parallelism (default 1). Purely a performance hint
    /// — mapping results are byte-identical at every value, see
    /// [`RoutingEngine::set_parallelism`](qspr_route::RoutingEngine::set_parallelism).
    ///
    /// Clamped to at least 1 and at most the host's available
    /// parallelism: granting more workers than cores cannot overlap
    /// anything and only adds speculation overhead (rejected
    /// speculative rounds are recomputed sequentially), so an
    /// oversubscribed grant would make mapping strictly slower.
    pub fn jobs(mut self, jobs: usize) -> Mapper<'a> {
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        self.jobs = jobs.clamp(1, cores);
        self
    }

    /// Enables or disables micro-command trace recording (off by default;
    /// placers run thousands of mappings and only need latencies).
    pub fn record_trace(mut self, record: bool) -> Mapper<'a> {
        self.record_trace = record;
        self
    }

    /// Adds a per-instruction priority boost (µs of measured critical
    /// distance, indexed by instruction) to the list-scheduling order —
    /// the scheduler half of the sta feedback loop. Only priority-list
    /// issue orders are affected
    /// ([`qspr_sched::Qidg::priorities_with_boost`]); ALAP/ASAP baseline
    /// orders replay their fixed schedules and ignore it.
    pub fn order_boost(mut self, boost: Vec<Time>) -> Mapper<'a> {
        self.order_boost = Some(Arc::new(boost));
        self
    }

    /// The fabric this mapper targets.
    pub fn fabric(&self) -> &Fabric {
        self.fabric
    }

    /// The technology parameters in use.
    pub fn tech(&self) -> &TechParams {
        &self.tech
    }

    /// The active policy.
    pub fn policy(&self) -> &MapperPolicy {
        &self.policy
    }

    /// Schedules, places (per the given initial placement) and routes
    /// `program`, returning the full mapping outcome.
    ///
    /// # Errors
    ///
    /// Returns a [`MapError`] when the placement is inconsistent with the
    /// program/fabric, or when the simulation stalls (unroutable operand
    /// pair on a disconnected fabric, or no trap ever frees up).
    pub fn map(
        &self,
        program: &Program,
        placement: &Placement,
    ) -> Result<MappingOutcome, MapError> {
        let _span = qspr_obs::span("map");
        placement.check(self.fabric, program.num_qubits())?;
        let qidg = Qidg::new(program, &self.tech);
        let boost: &[Time] = self.order_boost.as_deref().map_or(&[], Vec::as_slice);
        let order_key: Vec<f64> = match self.policy.order {
            IssueOrder::PriorityList(w) => qidg
                .priorities_with_boost(&w, boost)
                .iter()
                .map(|p| -p)
                .collect(),
            IssueOrder::Alap => {
                let alap = qidg.alap();
                qidg.topo_order().map(|id| alap.start(id) as f64).collect()
            }
            IssueOrder::Asap => {
                let asap = qidg.asap();
                qidg.topo_order().map(|id| asap.start(id) as f64).collect()
            }
        };
        let sim = Sim::new(self, &qidg, placement, order_key);
        sim.run()
    }
}

impl fmt::Debug for Mapper<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mapper")
            .field(
                "fabric",
                &format_args!("{}x{}", self.fabric.rows(), self.fabric.cols()),
            )
            .field("policy", &self.policy)
            .field("router", &self.router.name())
            .field("record_trace", &self.record_trace)
            .field("order_boost", &self.order_boost.is_some())
            .finish()
    }
}

/// A scheduled simulator event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Event {
    time: Time,
    seq: u64,
    kind: EventKind,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum EventKind {
    /// A qubit exits a channel segment or junction; its booking frees.
    Release(Resource),
    /// One operand of `InstrId` reached the target trap.
    Arrived(InstrId),
    /// The gate of `InstrId` finished.
    GateDone(InstrId),
    /// A qubit completed its shuttle back to its home trap
    /// ([`MovementPolicy::ReturnToHome`]) and is usable again.
    ReturnedHome(QubitId),
}

/// A blocked work item waiting for fabric resources.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BusyItem {
    /// The instruction has not been issued at all.
    Unissued(InstrId),
    /// One operand is already at (or moving to) the meeting trap; the
    /// other still needs a route (staged movement, required whenever
    /// channel capacity 1 forbids simultaneous operand motion).
    SecondLeg(InstrId),
    /// A qubit whose post-gate shuttle home is blocked on channels.
    ReturnLeg(QubitId),
}

impl BusyItem {
    /// Sort key: instructions order by their schedule key; return legs
    /// ride along with the highest urgency (they unblock dependents).
    fn sort_instr(self) -> Option<InstrId> {
        match self {
            BusyItem::Unissued(id) | BusyItem::SecondLeg(id) => Some(id),
            BusyItem::ReturnLeg(_) => None,
        }
    }
}

/// What a routed leg serves: an instruction operand (fires `Arrived`)
/// or a storage-model shuttle home (fires `ReturnedHome`).
#[derive(Debug, Clone, Copy)]
enum LegOwner {
    Instr(InstrId),
    Return(QubitId),
}

struct Sim<'m, 'a> {
    mapper: &'m Mapper<'a>,
    topo: &'a Topology,
    qidg: &'m Qidg,
    order_key: Vec<f64>,
    engine: Box<dyn RoutingEngine + 'a>,
    /// Engine implements epoch refinement: buffer legs per issue phase
    /// and let it rip up and re-route the joint set before events are
    /// scheduled.
    defer_epoch: bool,
    /// Legs committed during the current scheduling epoch whose
    /// finalization (events, stats, trace) waits until the epoch's
    /// full mover set is known, so a refining engine can still swap
    /// plans. Plans live in their own vector so the engine can see the
    /// incumbents in place — no per-epoch cloning; `epoch_owners[i]`
    /// describes `epoch_plans[i]`. Both buffers keep their capacity
    /// across issue phases.
    epoch_plans: Vec<RoutePlan>,
    epoch_owners: Vec<(QubitId, LegOwner)>,
    /// Reused issue-phase candidate list (drained every pass).
    candidate_buf: Vec<BusyItem>,
    resources: ResourceState,
    /// Per-trap count of physically present plus reserved qubits.
    trap_occupancy: Vec<u8>,
    /// Destination trap of each qubit (its trap once all issued moves
    /// complete).
    qubit_trap: Vec<TrapId>,
    /// The trap a qubit must be routed *from*: equals `qubit_trap` except
    /// for pending second legs that have not physically left yet.
    phys_trap: Vec<TrapId>,
    /// Current cell of each qubit, for trace recording.
    qubit_coord: Vec<Coord>,
    /// Unfinished dependency count per instruction.
    pending: Vec<u32>,
    ready: Vec<InstrId>,
    busy: Vec<BusyItem>,
    resources_changed: bool,
    events: BinaryHeap<Reverse<Event>>,
    seq: u64,
    time: Time,
    arrivals_needed: Vec<u8>,
    arrivals_done: Vec<u8>,
    /// The unrouted mover of a half-issued instruction.
    second_leg: Vec<Option<QubitId>>,
    gate_trap: Vec<TrapId>,
    /// Fixed home trap per qubit (the initial placement), used by the
    /// return-to-home movement policy.
    home_trap: Vec<TrapId>,
    /// Qubits currently shuttling home (unusable until they arrive).
    in_transit: Vec<bool>,
    /// For a queued return leg: the trap the qubit still sits in.
    return_from: Vec<Option<TrapId>>,
    stats: Vec<InstrStats>,
    trace: Option<Vec<TraceEntry>>,
    finished: usize,
    /// [`qspr_obs::enabled`] cached at construction: the issue/route/
    /// finalize hooks fire tens of thousands of times per map, so even
    /// the disabled tracer fast path (one relaxed atomic load) is
    /// hoisted out of the hot loops behind this predicted branch.
    obs: bool,
    /// First booking-counter saturation observed
    /// ([`qspr_fabric::FabricError::CapacityOverflow`]); the event loop
    /// aborts the run with it after the current issue phase.
    saturated: Option<MapError>,
}

/// Books `resource`, recording a typed overflow in `saturated` instead
/// of panicking; the run aborts with the first recorded error at the
/// next event-loop check. A free function (not a `Sim` method) so call
/// sites holding other `Sim` field borrows can still book.
fn book_or_flag(
    resources: &mut ResourceState,
    saturated: &mut Option<MapError>,
    resource: Resource,
) {
    if let Err(e) = resources.book(resource) {
        saturated.get_or_insert(MapError::from(e));
    }
}

impl<'m, 'a> Sim<'m, 'a> {
    fn new(
        mapper: &'m Mapper<'a>,
        qidg: &'m Qidg,
        placement: &Placement,
        order_key: Vec<f64>,
    ) -> Sim<'m, 'a> {
        let topo = mapper.fabric.topology();
        let n = qidg.len();
        let mut trap_occupancy = vec![0u8; topo.traps().len()];
        for &t in placement.as_slice() {
            trap_occupancy[t.index()] += 1;
        }
        let qubit_coord = placement
            .as_slice()
            .iter()
            .map(|&t| topo.trap(t).coord())
            .collect();
        let pending: Vec<u32> = qidg
            .topo_order()
            .map(|id| qidg.preds(id).len() as u32)
            .collect();
        let ready: Vec<InstrId> = qidg
            .topo_order()
            .filter(|id| pending[id.index()] == 0)
            .collect();
        let mut engine = mapper.router.build(topo, mapper.policy.router);
        engine.set_parallelism(mapper.jobs);
        Sim {
            defer_epoch: engine.refines(),
            epoch_plans: Vec::new(),
            epoch_owners: Vec::new(),
            candidate_buf: Vec::new(),
            engine,
            resources: ResourceState::new(topo),
            mapper,
            topo,
            qidg,
            order_key,
            trap_occupancy,
            qubit_trap: placement.as_slice().to_vec(),
            phys_trap: placement.as_slice().to_vec(),
            qubit_coord,
            pending,
            ready,
            busy: Vec::new(),
            resources_changed: false,
            events: BinaryHeap::new(),
            seq: 0,
            time: 0,
            arrivals_needed: vec![0; n],
            arrivals_done: vec![0; n],
            second_leg: vec![None; n],
            gate_trap: vec![TrapId(0); n],
            home_trap: placement.as_slice().to_vec(),
            in_transit: vec![false; placement.num_qubits()],
            return_from: vec![None; placement.num_qubits()],
            stats: vec![InstrStats::default(); n],
            trace: mapper.record_trace.then(Vec::new),
            finished: 0,
            obs: qspr_obs::enabled(),
            saturated: None,
        }
    }

    fn run(mut self) -> Result<MappingOutcome, MapError> {
        let _span = self.obs.then(|| qspr_obs::span("simulate"));
        self.issue_phase();
        while let Some(&Reverse(next)) = self.events.peek() {
            if let Some(e) = self.saturated.take() {
                return Err(e);
            }
            let t = next.time;
            debug_assert!(t >= self.time, "event time went backwards");
            self.time = t;
            while let Some(&Reverse(ev)) = self.events.peek() {
                if ev.time != t {
                    break;
                }
                let ev = self.events.pop().expect("peeked").0;
                self.process(ev.kind);
            }
            self.issue_phase();
        }
        if let Some(e) = self.saturated.take() {
            return Err(e);
        }
        if self.finished != self.qidg.len() {
            return Err(MapError::Stalled {
                remaining: self.qidg.len() - self.finished,
            });
        }
        let latency = self.stats.iter().map(|s| s.finish).max().unwrap_or(0);
        let final_placement = Placement::new(self.qubit_trap.clone())
            .expect("occupancy bookkeeping caps traps at two qubits");
        let trace = self.trace.take().map(Trace::new);
        let routing = self.engine.stats();
        Ok(MappingOutcome::new(
            latency,
            self.stats,
            final_placement,
            trace,
            routing,
        ))
    }

    fn process(&mut self, kind: EventKind) {
        match kind {
            EventKind::Release(resource) => {
                self.resources.release(resource);
                self.resources_changed = true;
            }
            EventKind::Arrived(id) => {
                self.arrivals_done[id.index()] += 1;
                if self.arrivals_done[id.index()] == self.arrivals_needed[id.index()] {
                    self.begin_gate(id);
                }
            }
            EventKind::GateDone(id) => {
                self.stats[id.index()].finish = self.time;
                self.finished += 1;
                self.emit(self.time, MicroCommand::GateEnd { instr: id });
                for &s in self.qidg.succs(id) {
                    let p = &mut self.pending[s.index()];
                    *p -= 1;
                    if *p == 0 {
                        self.stats[s.index()].ready_at = self.time;
                        self.ready.push(s);
                    }
                }
                // Under the storage model, the visiting source qubit now
                // shuttles back to its home trap.
                if self.mapper.policy.movement == MovementPolicy::ReturnToHome {
                    if let Operands::Two { control, .. } = self.qidg.instruction(id).operands {
                        let here = self.gate_trap[id.index()];
                        if self.home_trap[control.index()] != here {
                            self.in_transit[control.index()] = true;
                            self.return_from[control.index()] = Some(here);
                            if !self.try_return_leg(control) {
                                self.busy.push(BusyItem::ReturnLeg(control));
                            }
                        }
                    }
                }
            }
            EventKind::ReturnedHome(q) => {
                self.in_transit[q.index()] = false;
                self.resources_changed = true;
            }
        }
    }

    /// Issues every instruction that can start now, in policy order,
    /// looping until a fixpoint (an issue can free traps that unblock
    /// other instructions).
    fn issue_phase(&mut self) {
        let _span = self.obs.then(|| qspr_obs::span("issue"));
        loop {
            let mut candidates = std::mem::take(&mut self.candidate_buf);
            debug_assert!(candidates.is_empty());
            candidates.extend(self.ready.drain(..).map(BusyItem::Unissued));
            if self.resources_changed && !self.busy.is_empty() {
                candidates.append(&mut self.busy);
            }
            if candidates.is_empty() {
                self.candidate_buf = candidates;
                break;
            }
            self.resources_changed = false;
            candidates.sort_by(|a, b| {
                let key = |item: &BusyItem| match item.sort_instr() {
                    Some(id) => (self.order_key[id.index()], id.0),
                    // Return legs first: they free traps and qubits.
                    None => (f64::NEG_INFINITY, 0),
                };
                let (ka, kb) = (key(a), key(b));
                ka.0.partial_cmp(&kb.0)
                    .expect("priorities are finite")
                    .then(ka.1.cmp(&kb.1))
            });
            let strict = self.mapper.policy.strict_order;
            let mut progressed = false;
            let mut head_blocked = false;
            for item in candidates.drain(..) {
                let issued = match item {
                    // Under strict extraction, a blocked instruction
                    // holds back every unissued instruction behind it;
                    // second/return legs belong to already-issued
                    // operations and may always proceed.
                    BusyItem::Unissued(_) if strict && head_blocked => false,
                    BusyItem::Unissued(id) => self.try_issue(id),
                    BusyItem::SecondLeg(id) => self.try_second_leg(id),
                    BusyItem::ReturnLeg(q) => self.try_return_leg(q),
                };
                if issued {
                    progressed = true;
                } else {
                    if matches!(item, BusyItem::Unissued(_)) {
                        head_blocked = true;
                    }
                    self.busy.push(item);
                }
            }
            self.candidate_buf = candidates;
            if !progressed {
                break;
            }
        }
        self.finalize_epoch();
    }

    /// Ends the current scheduling epoch: a refining engine gets one
    /// shot at rip-up-and-reroute over every leg committed this phase,
    /// then each leg's events, stats and trace are realized.
    fn finalize_epoch(&mut self) {
        if self.epoch_plans.is_empty() {
            return;
        }
        let _span = self.obs.then(|| qspr_obs::span("finalize"));
        let mut plans = std::mem::take(&mut self.epoch_plans);
        let mut owners = std::mem::take(&mut self.epoch_owners);
        if plans.len() >= 2 {
            let _span = self.obs.then(|| qspr_obs::span("refine"));
            // Rip the epoch's bookings out, offer the joint set to the
            // engine in place (no incumbent cloning), and book whatever
            // survives (the incumbents when the engine declines).
            for plan in &plans {
                for usage in plan.resources() {
                    self.resources.release(usage.resource);
                }
            }
            if let Some(better) = self.engine.refine_epoch(&self.resources, &plans) {
                debug_assert_eq!(better.len(), plans.len());
                for (incumbent, replacement) in plans.iter_mut().zip(better) {
                    debug_assert_eq!(incumbent.from_trap(), replacement.from_trap());
                    debug_assert_eq!(incumbent.to_trap(), replacement.to_trap());
                    *incumbent = replacement;
                }
                // The adopted set books different resources; blocked
                // work may be routable now.
                self.resources_changed = true;
            }
            for plan in &plans {
                for usage in plan.resources() {
                    book_or_flag(&mut self.resources, &mut self.saturated, usage.resource);
                }
            }
        }
        for (&(qubit, owner), plan) in owners.iter().zip(&plans) {
            self.finalize_leg(qubit, plan, owner);
        }
        // Hand the (now empty) buffers back so the next epoch reuses
        // their capacity.
        plans.clear();
        owners.clear();
        self.epoch_plans = plans;
        self.epoch_owners = owners;
    }

    /// Realizes one committed leg: instruction stats, release/arrival
    /// events, and the motion trace.
    fn finalize_leg(&mut self, qubit: QubitId, plan: &RoutePlan, owner: LegOwner) {
        // History terms must see the plan that actually executes, which
        // for refining engines is only fixed at finalization time.
        self.engine.note_booked(plan);
        if let LegOwner::Instr(id) = owner {
            self.stats[id.index()].moves += plan.moves();
            self.stats[id.index()].turns += plan.turns();
        }
        for usage in plan.resources() {
            self.schedule(
                self.time + usage.exit_offset,
                EventKind::Release(usage.resource),
            );
        }
        match owner {
            LegOwner::Instr(id) => {
                self.schedule(self.time + plan.duration(), EventKind::Arrived(id))
            }
            LegOwner::Return(q) => {
                self.schedule(self.time + plan.duration(), EventKind::ReturnedHome(q))
            }
        }
        self.record_motion(qubit, plan);
    }

    /// Commits one routed mover: finalized immediately under a
    /// non-refining engine (the historical behavior), or buffered until
    /// the end of the epoch otherwise.
    fn commit_motion(&mut self, qubit: QubitId, plan: RoutePlan, owner: LegOwner) {
        if self.defer_epoch {
            self.epoch_owners.push((qubit, owner));
            self.epoch_plans.push(plan);
        } else {
            self.finalize_leg(qubit, &plan, owner);
        }
    }

    /// Attempts to issue one instruction; returns `false` when blocked.
    fn try_issue(&mut self, id: InstrId) -> bool {
        let instr = *self.qidg.instruction(id);
        // Operands still shuttling home are unusable.
        if instr.qubits().any(|q| self.in_transit[q.index()]) {
            return false;
        }
        match instr.operands {
            Operands::One(q) => {
                self.stats[id.index()].issued_at = self.time;
                self.arrivals_needed[id.index()] = 0;
                self.gate_trap[id.index()] = self.qubit_trap[q.index()];
                self.begin_gate(id);
                true
            }
            Operands::Two { control, target } => {
                if self.mapper.policy.movement == MovementPolicy::ReturnToHome {
                    return self.try_issue_return_to_home(id, control, target);
                }
                let tc = self.qubit_trap[control.index()];
                let tt = self.qubit_trap[target.index()];
                if tc == tt {
                    self.stats[id.index()].issued_at = self.time;
                    self.arrivals_needed[id.index()] = 0;
                    self.gate_trap[id.index()] = tc;
                    self.begin_gate(id);
                    return true;
                }
                let meeting = match self.mapper.policy.movement {
                    MovementPolicy::ReturnToHome => {
                        unreachable!("handled by try_issue_return_to_home")
                    }
                    MovementPolicy::BothToMedian => {
                        // The paper picks the meeting point "so as to
                        // minimize the movement delay": compare the free
                        // trap nearest the median (both operands move)
                        // against hosting the gate in either operand's
                        // own trap (one operand moves), and keep the
                        // cheapest routable choice.
                        match self.cheapest_meeting(tc, tt) {
                            Some(t) => t,
                            None => return false,
                        }
                    }
                    MovementPolicy::SourceToDestination => {
                        if self.trap_occupancy[tt.index()] <= 1 {
                            tt
                        } else {
                            // The destination trap already hosts a second
                            // qubit from an earlier gate; fall back to the
                            // nearest free trap so the trap never exceeds
                            // its two-ion capacity (the destination
                            // operand then hops over too).
                            let occ = &self.trap_occupancy;
                            match self
                                .topo
                                .nearest_trap(self.topo.trap(tt).coord(), |t| occ[t.index()] == 0)
                            {
                                Some(t) => t,
                                None => return false,
                            }
                        }
                    }
                };

                // Route the epoch's movers as one batch through the
                // engine: the greedy engine reproduces the historical
                // one-after-another behavior, the negotiated engine
                // rips up and re-routes the joint answer. A mover whose
                // route is blocked becomes a *pending second leg*: it
                // keeps its seat in the source trap (plus a reservation
                // at the meeting trap) and is routed later, when
                // channels free up. This staging is what keeps
                // capacity-1 configurations live: two qubits can never
                // share the meeting trap's port segment at once.
                // At most two movers: fixed-size stack batches, no
                // per-instruction allocation.
                let mut movers = [(control, tc); 2];
                let mut requests = [RouteRequest::new(tc, meeting); 2];
                let mut n_movers = 0;
                for (q, from) in [(control, tc), (target, tt)] {
                    // SourceToDestination target stays put.
                    if from != meeting {
                        movers[n_movers] = (q, from);
                        requests[n_movers] = RouteRequest::new(from, meeting);
                        n_movers += 1;
                    }
                }
                let plans = self.route_with_epoch(&requests[..n_movers]);
                let routed = plans.iter().filter(|p| p.is_some()).count();
                if routed == 0 {
                    // Nothing committed; the whole instruction waits.
                    return false;
                }
                debug_assert!(n_movers - routed <= 1, "at most two movers");

                // Commit.
                self.stats[id.index()].issued_at = self.time;
                self.gate_trap[id.index()] = meeting;
                self.arrivals_needed[id.index()] = n_movers as u8;
                self.arrivals_done[id.index()] = 0;
                for (&(q, _), plan) in movers[..n_movers].iter().zip(plans) {
                    match plan {
                        Some(plan) => {
                            for usage in plan.resources() {
                                book_or_flag(
                                    &mut self.resources,
                                    &mut self.saturated,
                                    usage.resource,
                                );
                            }
                            self.commit_leg(id, q, plan, meeting);
                        }
                        None => {
                            // Reserve the meeting seat; the qubit
                            // physically stays put (and keeps its
                            // source-trap seat) until routable.
                            self.trap_occupancy[meeting.index()] += 1;
                            self.qubit_trap[q.index()] = meeting;
                            self.second_leg[id.index()] = Some(q);
                            self.busy.push(BusyItem::SecondLeg(id));
                        }
                    }
                }
                // Freed source traps may unblock busy instructions.
                self.resources_changed = true;
                if self.arrivals_needed[id.index()] == 0 {
                    self.begin_gate(id);
                }
                true
            }
        }
    }

    /// Chooses the cheapest meeting trap for a QSPR-style 2-qubit gate:
    /// the free trap nearest the operands' median (both move), or either
    /// operand's trap when it has a spare seat (one moves). Cost is the
    /// later arrival time of the movers, estimated by routing under the
    /// current bookings; unroutable candidates are skipped. Falls back to
    /// the median trap (handled downstream via staged movement) when no
    /// candidate routes completely.
    fn cheapest_meeting(&mut self, tc: TrapId, tt: TrapId) -> Option<TrapId> {
        let a = self.topo.trap(tc).coord();
        let b = self.topo.trap(tt).coord();
        let median = Coord::new((a.row + b.row) / 2, (a.col + b.col) / 2);
        let occ = &self.trap_occupancy;
        let median_trap = self.topo.nearest_trap(median, |t| occ[t.index()] == 0);

        // At most three candidates with at most two movers each:
        // fixed-size stack scratch, no allocation in this hot path.
        let mut candidates = [(tc, [None, None]); 3];
        let mut n_cand = 0;
        if let Some(m) = median_trap {
            candidates[n_cand] = (m, [Some(tc), Some(tt)]);
            n_cand += 1;
        }
        if self.trap_occupancy[tt.index()] <= 1 {
            candidates[n_cand] = (tt, [Some(tc), None]);
            n_cand += 1;
        }
        if self.trap_occupancy[tc.index()] <= 1 {
            candidates[n_cand] = (tc, [Some(tt), None]);
            n_cand += 1;
        }

        let mut best: Option<(Time, TrapId)> = None;
        for &(meeting, movers) in &candidates[..n_cand] {
            // Route the movers sequentially with temporary bookings so
            // the second sees the first's load, then roll back.
            let mut booked: [Option<RoutePlan>; 2] = [None, None];
            let mut worst: Option<Time> = Some(0);
            for (slot, from) in booked.iter_mut().zip(movers.iter().flatten()) {
                match self.engine.route_one(&self.resources, *from, meeting) {
                    Some(plan) => {
                        for usage in plan.resources() {
                            book_or_flag(&mut self.resources, &mut self.saturated, usage.resource);
                        }
                        worst = worst.map(|w| w.max(plan.duration()));
                        *slot = Some(plan);
                    }
                    None => {
                        worst = None;
                        break;
                    }
                }
            }
            for plan in booked.iter().flatten() {
                for usage in plan.resources() {
                    self.resources.release(usage.resource);
                }
            }
            if let Some(w) = worst {
                if best.map_or(true, |(bw, _)| w < bw) {
                    best = Some((w, meeting));
                }
            }
        }
        // No candidate routes completely right now: hand the median trap
        // to the staged-movement path, which can move one operand and
        // queue the other.
        best.map(|(_, t)| t).or(median_trap)
    }

    /// Issues a two-qubit gate under the storage (return-to-home) model:
    /// the source visits the destination's home trap; the return trip is
    /// scheduled when the gate completes.
    fn try_issue_return_to_home(&mut self, id: InstrId, control: QubitId, target: QubitId) -> bool {
        let src_home = self.home_trap[control.index()];
        let dst_home = self.home_trap[target.index()];
        debug_assert_eq!(self.qubit_trap[control.index()], src_home);
        debug_assert_eq!(self.qubit_trap[target.index()], dst_home);
        // The destination trap must have a seat for the visitor.
        if self.trap_occupancy[dst_home.index()] >= 2 {
            return false;
        }
        let Some(plan) = self.route_single(src_home, dst_home) else {
            return false;
        };
        for usage in plan.resources() {
            book_or_flag(&mut self.resources, &mut self.saturated, usage.resource);
        }
        self.stats[id.index()].issued_at = self.time;
        self.gate_trap[id.index()] = dst_home;
        self.arrivals_needed[id.index()] = 1;
        self.arrivals_done[id.index()] = 0;
        // The home seat stays reserved; only the visit seat is added.
        self.trap_occupancy[dst_home.index()] += 1;
        self.qubit_trap[control.index()] = dst_home;
        self.phys_trap[control.index()] = dst_home;
        self.commit_motion(control, plan, LegOwner::Instr(id));
        self.resources_changed = true;
        true
    }

    /// Routes one mover through the engine as a single-request epoch.
    fn route_single(&mut self, from: TrapId, to: TrapId) -> Option<RoutePlan> {
        let mut plans = self.route_with_epoch(&[RouteRequest::new(from, to)]);
        plans.pop().flatten()
    }

    /// Routes `requests` through the engine. When some movers come back
    /// blocked and the engine refines epochs, the epoch's still
    /// uncommitted legs are ripped up and negotiated *jointly* with the
    /// new movers — rerouting an earlier leg can clear the channel a
    /// blocked mover needs, letting it issue this epoch instead of
    /// waiting out the congestion. The epoch legs always stay fully
    /// routed; the joint answer is only adopted when it strictly
    /// unblocks movers.
    fn route_with_epoch(&mut self, requests: &[RouteRequest]) -> Vec<Option<RoutePlan>> {
        let _span = self.obs.then(|| qspr_obs::span("route"));
        let (plans, _epoch) = self.engine.route_batch(&self.resources, requests);
        if !self.defer_epoch || self.epoch_plans.is_empty() || plans.iter().all(Option::is_some) {
            return plans;
        }
        // Rip the epoch's tentative bookings and renegotiate everything
        // together.
        for plan in &self.epoch_plans {
            for usage in plan.resources() {
                self.resources.release(usage.resource);
            }
        }
        let joint: Vec<RouteRequest> = self
            .epoch_plans
            .iter()
            .map(|p| RouteRequest::new(p.from_trap(), p.to_trap()))
            .chain(requests.iter().copied())
            .collect();
        let (mut joint_plans, _epoch) = self.engine.route_batch(&self.resources, &joint);
        let new_plans = joint_plans.split_off(self.epoch_plans.len());
        let legs_stay_routed = joint_plans.iter().all(Option::is_some);
        let unblocked = new_plans.iter().flatten().count() > plans.iter().flatten().count();
        if legs_stay_routed && unblocked {
            for (incumbent, plan) in self.epoch_plans.iter_mut().zip(joint_plans) {
                *incumbent = plan.expect("checked: all legs routed");
            }
            self.book_epoch_plans();
            new_plans
        } else {
            // Keep the incumbents; the movers stay blocked for now.
            self.book_epoch_plans();
            plans
        }
    }

    /// Re-books every buffered epoch plan's resources.
    fn book_epoch_plans(&mut self) {
        for plan in &self.epoch_plans {
            for usage in plan.resources() {
                book_or_flag(&mut self.resources, &mut self.saturated, usage.resource);
            }
        }
    }

    /// Routes a finished visitor back to its home trap.
    fn try_return_leg(&mut self, q: QubitId) -> bool {
        let from = self.return_from[q.index()].expect("return leg is pending");
        let home = self.home_trap[q.index()];
        let Some(plan) = self.route_single(from, home) else {
            return false;
        };
        for usage in plan.resources() {
            book_or_flag(&mut self.resources, &mut self.saturated, usage.resource);
        }
        self.return_from[q.index()] = None;
        self.trap_occupancy[from.index()] -= 1;
        self.qubit_trap[q.index()] = home;
        self.phys_trap[q.index()] = home;
        self.commit_motion(q, plan, LegOwner::Return(q));
        self.resources_changed = true;
        true
    }

    /// Routes the held-back mover of a half-issued instruction.
    fn try_second_leg(&mut self, id: InstrId) -> bool {
        let q = self.second_leg[id.index()].expect("second leg is pending");
        let from = self.phys_trap[q.index()];
        let meeting = self.gate_trap[id.index()];
        match self.route_single(from, meeting) {
            Some(plan) => {
                for usage in plan.resources() {
                    book_or_flag(&mut self.resources, &mut self.saturated, usage.resource);
                }
                // The meeting seat was reserved at first-half commit; only
                // the source seat frees now.
                self.trap_occupancy[from.index()] -= 1;
                self.second_leg[id.index()] = None;
                self.phys_trap[q.index()] = meeting;
                self.commit_motion(q, plan, LegOwner::Instr(id));
                self.resources_changed = true;
                true
            }
            None => false,
        }
    }

    /// Books the events, occupancy transfer and trace output of one
    /// routed mover.
    fn commit_leg(&mut self, id: InstrId, q: QubitId, plan: RoutePlan, meeting: TrapId) {
        self.trap_occupancy[self.qubit_trap[q.index()].index()] -= 1;
        self.trap_occupancy[meeting.index()] += 1;
        self.qubit_trap[q.index()] = meeting;
        self.phys_trap[q.index()] = meeting;
        self.commit_motion(q, plan, LegOwner::Instr(id));
    }

    fn begin_gate(&mut self, id: InstrId) {
        let delay = self.qidg.delay(id);
        self.stats[id.index()].gate_start = self.time;
        let instr = self.qidg.instruction(id);
        let (q0, q1) = match instr.operands {
            Operands::One(q) => (q, None),
            Operands::Two { control, target } => (control, Some(target)),
        };
        let trap_coord = self.topo.trap(self.gate_trap[id.index()]).coord();
        self.emit(
            self.time,
            MicroCommand::GateStart {
                instr: id,
                gate: instr.gate,
                trap: trap_coord,
                q0,
                q1,
            },
        );
        self.schedule(self.time + delay, EventKind::GateDone(id));
    }

    fn schedule(&mut self, time: Time, kind: EventKind) {
        self.seq += 1;
        self.events.push(Reverse(Event {
            time,
            seq: self.seq,
            kind,
        }));
    }

    fn record_motion(&mut self, qubit: QubitId, plan: &RoutePlan) {
        let dest = self.topo.trap(plan.to_trap()).coord();
        if self.trace.is_none() {
            self.qubit_coord[qubit.index()] = dest;
            return;
        }
        let t_move = self.mapper.tech.t_move;
        let t_turn = self.mapper.tech.t_turn;
        let mut t = self.time;
        let mut pos = self.qubit_coord[qubit.index()];
        let mut entries = Vec::with_capacity(plan.steps().len());
        for step in plan.steps() {
            match *step {
                Step::Move { to } => {
                    t += t_move;
                    entries.push(TraceEntry {
                        time: t,
                        command: MicroCommand::Move {
                            qubit,
                            from: pos,
                            to,
                        },
                    });
                    pos = to;
                }
                Step::Turn { at } => {
                    t += t_turn;
                    entries.push(TraceEntry {
                        time: t,
                        command: MicroCommand::Turn { qubit, at },
                    });
                }
            }
        }
        debug_assert_eq!(pos, dest, "route must end in the target trap");
        self.qubit_coord[qubit.index()] = pos;
        if let Some(trace) = &mut self.trace {
            trace.extend(entries);
        }
    }

    fn emit(&mut self, time: Time, command: MicroCommand) {
        if let Some(trace) = &mut self.trace {
            trace.push(TraceEntry { time, command });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qspr_qasm::Program;

    const FIG3: &str = "\
QUBIT q0,0
QUBIT q1,0
QUBIT q2,0
QUBIT q3
QUBIT q4,0
H q0
H q1
H q2
H q4
C-X q3,q2
C-Z q4,q2
C-Y q2,q1
C-Y q3,q1
C-X q4,q1
C-Z q2,q0
C-Y q3,q0
C-Z q4,q0
";

    fn fig3() -> Program {
        Program::parse(FIG3).unwrap()
    }

    #[test]
    fn one_qubit_program_runs_in_gate_time() {
        let f = Fabric::quale_45x85();
        let tech = TechParams::date2012();
        let p = Program::parse("QUBIT a\nH a\nX a\n").unwrap();
        let placement = Placement::center(&f, 1);
        let out = Mapper::new(&f, tech, MapperPolicy::qspr(&tech))
            .map(&p, &placement)
            .unwrap();
        assert_eq!(out.latency(), 20);
        assert_eq!(out.totals().moves, 0);
    }

    #[test]
    fn two_qubit_gate_adds_routing_time() {
        let f = Fabric::quale_45x85();
        let tech = TechParams::date2012();
        let p = Program::parse("QUBIT a\nQUBIT b\nC-X a,b\n").unwrap();
        let placement = Placement::center(&f, 2);
        let out = Mapper::new(&f, tech, MapperPolicy::qspr(&tech))
            .map(&p, &placement)
            .unwrap();
        assert!(out.latency() > 100, "routing adds to the 100µs gate");
        let s = out.stats_of(qspr_sched::InstrId(0));
        assert_eq!(s.gate_time(), 100);
        assert!(s.routing_time() > 0);
        assert_eq!(s.congestion_wait(), 0);
        assert!(out.totals().moves > 0);
    }

    #[test]
    fn fig3_latency_exceeds_ideal_baseline() {
        let f = Fabric::quale_45x85();
        let tech = TechParams::date2012();
        let p = fig3();
        let ideal = Qidg::new(&p, &tech).critical_path_delay();
        let placement = Placement::center(&f, 5);
        let out = Mapper::new(&f, tech, MapperPolicy::qspr(&tech))
            .map(&p, &placement)
            .unwrap();
        assert!(out.latency() >= ideal);
        assert_eq!(out.instr_stats().len(), 12);
    }

    #[test]
    fn quale_policy_is_slower_than_qspr_on_fig3() {
        let f = Fabric::quale_45x85();
        let tech = TechParams::date2012();
        let p = fig3();
        let placement = Placement::center(&f, 5);
        let qspr = Mapper::new(&f, tech, MapperPolicy::qspr(&tech))
            .map(&p, &placement)
            .unwrap();
        let quale = Mapper::new(&f, tech, MapperPolicy::quale(&tech))
            .map(&p, &placement)
            .unwrap();
        assert!(
            qspr.latency() <= quale.latency(),
            "qspr {} vs quale {}",
            qspr.latency(),
            quale.latency()
        );
    }

    #[test]
    fn mapping_is_deterministic() {
        let f = Fabric::quale_45x85();
        let tech = TechParams::date2012();
        let p = fig3();
        let placement = Placement::center(&f, 5);
        let m = Mapper::new(&f, tech, MapperPolicy::qspr(&tech));
        let a = m.map(&p, &placement).unwrap();
        let b = m.map(&p, &placement).unwrap();
        assert_eq!(a.latency(), b.latency());
        assert_eq!(a.final_placement(), b.final_placement());
    }

    #[test]
    fn order_boost_reorders_ready_ties_deterministically() {
        let f = Fabric::quale_45x85();
        let tech = TechParams::date2012();
        let p = fig3();
        let placement = Placement::center(&f, 5);
        let m = Mapper::new(&f, tech, MapperPolicy::qspr(&tech));
        let base = m.map(&p, &placement).unwrap();
        // A zero boost is exactly the unboosted mapping.
        let zero = m
            .clone()
            .order_boost(vec![0; 12])
            .map(&p, &placement)
            .unwrap();
        assert_eq!(base.latency(), zero.latency());
        assert_eq!(base.instr_stats(), zero.instr_stats());
        // A real boost still maps validly and deterministically.
        let boosted = m.order_boost((0..12).map(|i| i * 50).collect());
        let a = boosted.map(&p, &placement).unwrap();
        let b = boosted.map(&p, &placement).unwrap();
        assert_eq!(a.latency(), b.latency());
        assert_eq!(a.instr_stats(), b.instr_stats());
    }

    #[test]
    fn final_placement_is_injective_and_complete() {
        let f = Fabric::quale_45x85();
        let tech = TechParams::date2012();
        let p = fig3();
        let placement = Placement::center(&f, 5);
        let out = Mapper::new(&f, tech, MapperPolicy::qspr(&tech))
            .map(&p, &placement)
            .unwrap();
        assert_eq!(out.final_placement().num_qubits(), 5);
    }

    #[test]
    fn trace_recording_is_optional() {
        let f = Fabric::quale_45x85();
        let tech = TechParams::date2012();
        let p = fig3();
        let placement = Placement::center(&f, 5);
        let without = Mapper::new(&f, tech, MapperPolicy::qspr(&tech))
            .map(&p, &placement)
            .unwrap();
        assert!(without.trace().is_none());
        let with = Mapper::new(&f, tech, MapperPolicy::qspr(&tech))
            .record_trace(true)
            .map(&p, &placement)
            .unwrap();
        let trace = with.trace().unwrap();
        assert_eq!(trace.move_count() as u64, with.totals().moves);
        assert_eq!(trace.turn_count() as u64, with.totals().turns);
        assert_eq!(with.latency(), without.latency(), "tracing is free");
    }

    #[test]
    fn stalls_on_disconnected_fabric() {
        let f = Fabric::from_ascii(
            ".T....T.\n\
             +-+..+-+\n",
        )
        .unwrap();
        let tech = TechParams::date2012();
        let p = Program::parse("QUBIT a\nQUBIT b\nC-X a,b\n").unwrap();
        let t0 = f.topology().trap_at(Coord::new(0, 1)).unwrap();
        let t1 = f.topology().trap_at(Coord::new(0, 6)).unwrap();
        let placement = Placement::new(vec![t0, t1]).unwrap();
        let err = Mapper::new(&f, tech, MapperPolicy::qspr(&tech))
            .map(&p, &placement)
            .unwrap_err();
        assert_eq!(err, MapError::Stalled { remaining: 1 });
    }

    #[test]
    fn placement_validation_errors_surface() {
        let f = Fabric::quale_45x85();
        let tech = TechParams::date2012();
        let p = Program::parse("QUBIT a\nQUBIT b\nC-X a,b\n").unwrap();
        let placement = Placement::center(&f, 1);
        let err = Mapper::new(&f, tech, MapperPolicy::qspr(&tech))
            .map(&p, &placement)
            .unwrap_err();
        assert!(matches!(err, MapError::QubitCountMismatch { .. }));
    }

    #[test]
    fn colocated_operands_skip_routing() {
        // After C-X a,b both qubits share a trap; a following C-Z a,b
        // should start immediately with no extra movement.
        let f = Fabric::quale_45x85();
        let tech = TechParams::date2012();
        let p = Program::parse("QUBIT a\nQUBIT b\nC-X a,b\nC-Z a,b\n").unwrap();
        let placement = Placement::center(&f, 2);
        let out = Mapper::new(&f, tech, MapperPolicy::qspr(&tech))
            .map(&p, &placement)
            .unwrap();
        let s1 = out.stats_of(qspr_sched::InstrId(1));
        assert_eq!(s1.routing_time(), 0);
        assert_eq!(s1.moves, 0);
    }

    #[test]
    fn congestion_wait_appears_under_contention() {
        // Two independent CX gates whose operands sit in the same tile
        // with capacity-1 channels: the second must wait for resources.
        let f = Fabric::quale_45x85();
        let tech = TechParams::date2012().without_multiplexing();
        let p = Program::parse("QUBIT a\nQUBIT b\nQUBIT c\nQUBIT d\nC-X a,b\nC-X c,d\n").unwrap();
        let mut policy = MapperPolicy::qspr(&tech);
        policy.router.channel_capacity = 1;
        policy.router.junction_capacity = 1;
        let placement = Placement::center(&f, 4);
        let out = Mapper::new(&f, tech, policy).map(&p, &placement).unwrap();
        let total_wait: Time = out.instr_stats().iter().map(|s| s.congestion_wait()).sum();
        // Both gates contend for the center channels; at least one waits
        // or detours (cannot assert which, but latency must exceed the
        // single-gate case).
        assert!(out.latency() > 100);
        let _ = total_wait; // accounted, even if a detour avoided waiting
    }
}

#[cfg(test)]
mod policy_behavior_tests {
    use super::*;
    use qspr_qasm::Program;

    fn fabric() -> Fabric {
        Fabric::quale_45x85()
    }

    #[test]
    fn return_to_home_restores_the_initial_placement() {
        // Under the QUALE storage model every source qubit shuttles back
        // home, so the final placement equals the initial one.
        let f = fabric();
        let tech = TechParams::date2012();
        let p =
            Program::parse("QUBIT a,0\nQUBIT b,0\nQUBIT c,0\nC-X a,b\nC-X b,c\nC-X c,a\n").unwrap();
        let placement = Placement::center(&f, 3);
        let out = Mapper::new(&f, tech, MapperPolicy::quale(&tech))
            .map(&p, &placement)
            .unwrap();
        assert_eq!(out.final_placement(), &placement);
    }

    #[test]
    fn qspr_policy_leaves_operands_at_the_meeting_trap() {
        let f = fabric();
        let tech = TechParams::date2012();
        let p = Program::parse("QUBIT a,0\nQUBIT b,0\nC-X a,b\n").unwrap();
        let placement = Placement::center(&f, 2);
        let out = Mapper::new(&f, tech, MapperPolicy::qspr(&tech))
            .map(&p, &placement)
            .unwrap();
        let fp = out.final_placement();
        assert_eq!(
            fp.trap_of(QubitId(0)),
            fp.trap_of(QubitId(1)),
            "operands co-located after the gate"
        );
    }

    #[test]
    fn return_to_home_charges_round_trips_on_serial_chains() {
        // Two consecutive gates on the same control: the storage model
        // must be strictly slower than the stay-in-place policy.
        let f = fabric();
        let tech = TechParams::date2012();
        let p = Program::parse("QUBIT a,0\nQUBIT b,0\nC-X a,b\nC-Z a,b\n").unwrap();
        let placement = Placement::center(&f, 2);
        let stay = Mapper::new(&f, tech, MapperPolicy::qspr(&tech))
            .map(&p, &placement)
            .unwrap();
        let home = Mapper::new(&f, tech, MapperPolicy::quale(&tech))
            .map(&p, &placement)
            .unwrap();
        assert!(
            home.latency() > stay.latency(),
            "storage model {} must exceed stay-in-place {}",
            home.latency(),
            stay.latency()
        );
    }

    #[test]
    fn capacity_one_forces_staged_movement_but_still_completes() {
        let f = fabric();
        let tech = TechParams::date2012().without_multiplexing();
        let mut policy = MapperPolicy::qspr(&tech);
        policy.router.channel_capacity = 1;
        policy.router.junction_capacity = 1;
        let p = Program::parse("QUBIT a,0\nQUBIT b,0\nC-X a,b\n").unwrap();
        let placement = Placement::center(&f, 2);
        let out = Mapper::new(&f, tech, policy).map(&p, &placement).unwrap();
        // Both qubits still reach a common trap; the gate runs.
        assert!(out.latency() >= tech.t_gate_2q);
        let fp = out.final_placement();
        assert_eq!(fp.trap_of(QubitId(0)), fp.trap_of(QubitId(1)));
    }

    #[test]
    fn capacity_one_is_slower_than_multiplexed_channels() {
        let f = fabric();
        let tech = TechParams::date2012();
        let p = Program::parse(
            "QUBIT a,0\nQUBIT b,0\nQUBIT c,0\nQUBIT d,0\n\
             C-X a,b\nC-X c,d\nC-X a,c\nC-X b,d\n",
        )
        .unwrap();
        let placement = Placement::center(&f, 4);
        let fast = Mapper::new(&f, tech, MapperPolicy::qspr(&tech))
            .map(&p, &placement)
            .unwrap();
        let mut slow_policy = MapperPolicy::qspr(&tech);
        slow_policy.router.channel_capacity = 1;
        slow_policy.router.junction_capacity = 1;
        let slow = Mapper::new(&f, tech, slow_policy)
            .map(&p, &placement)
            .unwrap();
        assert!(slow.latency() >= fast.latency());
    }

    #[test]
    fn cheapest_meeting_never_loses_to_forced_single_movement() {
        // The cost-based meeting choice considers hosting the gate in an
        // operand's own trap, so it can never be slower than the policy
        // that always does that.
        let f = fabric();
        let tech = TechParams::date2012();
        for gates in [
            "C-X a,b\n",
            "C-X a,b\nC-Z b,a\n",
            "H a\nC-X a,b\nH b\nC-Y b,a\n",
        ] {
            let src = format!("QUBIT a,0\nQUBIT b,0\n{gates}");
            let p = Program::parse(&src).unwrap();
            let placement = Placement::center(&f, 2);
            let flexible = Mapper::new(&f, tech, MapperPolicy::qspr(&tech))
                .map(&p, &placement)
                .unwrap();
            let mut single = MapperPolicy::qspr(&tech);
            single.movement = MovementPolicy::SourceToDestination;
            let forced = Mapper::new(&f, tech, single).map(&p, &placement).unwrap();
            assert!(
                flexible.latency() <= forced.latency(),
                "{gates:?}: {} vs {}",
                flexible.latency(),
                forced.latency()
            );
        }
    }

    #[test]
    fn strict_order_never_beats_dynamic_order() {
        let f = fabric();
        let tech = TechParams::date2012();
        let p = qspr_qasm::random_program(&qspr_qasm::RandomProgramConfig::new(8, 40), 7);
        let placement = Placement::center(&f, 8);
        let dynamic = Mapper::new(&f, tech, MapperPolicy::qspr(&tech))
            .map(&p, &placement)
            .unwrap();
        let mut strict_policy = MapperPolicy::qspr(&tech);
        strict_policy.strict_order = true;
        let strict = Mapper::new(&f, tech, strict_policy)
            .map(&p, &placement)
            .unwrap();
        assert!(strict.latency() >= dynamic.latency());
    }

    #[test]
    fn one_qubit_gates_wait_for_returning_qubits() {
        // Under return-to-home, an H on the control right after a CX must
        // wait for the shuttle home, showing up as congestion wait.
        let f = fabric();
        let tech = TechParams::date2012();
        let p = Program::parse("QUBIT a,0\nQUBIT b,0\nC-X a,b\nH a\n").unwrap();
        let placement = Placement::center(&f, 2);
        let out = Mapper::new(&f, tech, MapperPolicy::quale(&tech))
            .map(&p, &placement)
            .unwrap();
        let h_stats = out.stats_of(qspr_sched::InstrId(1));
        assert!(
            h_stats.congestion_wait() > 0,
            "H must wait for the return shuttle"
        );
    }
}
