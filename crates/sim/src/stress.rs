//! Liveness stress tests: the busy queue, staged movement and trap
//! reservation logic exercised on the tightest possible fabrics.

#![cfg(test)]

use qspr_fabric::{Fabric, TechParams};
use qspr_qasm::{random_program, Program, RandomProgramConfig};

use crate::engine::Mapper;
use crate::error::MapError;
use crate::placement::Placement;
use crate::policy::MapperPolicy;
use crate::validate::validate_trace;

/// A cross with exactly four traps around one junction.
const TINY_CROSS: &str = "\
..|..
T.|.T
--+--
T.|.T
..|..
";

#[test]
fn two_qubits_on_a_tiny_cross() {
    let f = Fabric::from_ascii(TINY_CROSS).unwrap();
    let tech = TechParams::date2012();
    let p = Program::parse("QUBIT a,0\nQUBIT b,0\nC-X a,b\nC-Z a,b\nH a\nC-Y b,a\n").unwrap();
    let placement = Placement::center(&f, 2);
    let out = Mapper::new(&f, tech, MapperPolicy::qspr(&tech))
        .record_trace(true)
        .map(&p, &placement)
        .unwrap();
    validate_trace(&f, &p, &placement, out.trace().unwrap(), &tech).unwrap();
}

#[test]
fn four_qubits_saturate_four_traps_but_make_progress() {
    // Four qubits, four traps: every gate shuffles occupancy around the
    // single junction; the busy queue must keep finding free seats.
    let f = Fabric::from_ascii(TINY_CROSS).unwrap();
    let tech = TechParams::date2012();
    let p = Program::parse(
        "QUBIT a,0\nQUBIT b,0\nQUBIT c,0\nQUBIT d,0\n\
         C-X a,b\nC-X c,d\nC-X a,c\nC-X b,d\nC-X a,d\nC-X b,c\n",
    )
    .unwrap();
    let placement = Placement::center(&f, 4);
    let out = Mapper::new(&f, tech, MapperPolicy::qspr(&tech))
        .record_trace(true)
        .map(&p, &placement)
        .unwrap();
    validate_trace(&f, &p, &placement, out.trace().unwrap(), &tech).unwrap();
}

#[test]
fn capacity_one_on_the_tiny_cross_still_completes() {
    let f = Fabric::from_ascii(TINY_CROSS).unwrap();
    let tech = TechParams::date2012().without_multiplexing();
    let mut policy = MapperPolicy::qspr(&tech);
    policy.router.channel_capacity = 1;
    policy.router.junction_capacity = 1;
    let p =
        Program::parse("QUBIT a,0\nQUBIT b,0\nQUBIT c,0\n C-X a,b\nC-X b,c\nC-X c,a\n").unwrap();
    let placement = Placement::center(&f, 3);
    let out = Mapper::new(&f, tech, policy)
        .record_trace(true)
        .map(&p, &placement)
        .unwrap();
    validate_trace(&f, &p, &placement, out.trace().unwrap(), &tech).unwrap();
}

#[test]
fn quale_storage_model_survives_the_tiny_cross() {
    let f = Fabric::from_ascii(TINY_CROSS).unwrap();
    let tech = TechParams::date2012();
    let p = Program::parse("QUBIT a,0\nQUBIT b,0\nQUBIT c,0\nC-X a,b\nC-X b,c\nC-X a,c\n").unwrap();
    let placement = Placement::center(&f, 3);
    let out = Mapper::new(&f, tech, MapperPolicy::quale(&tech))
        .record_trace(true)
        .map(&p, &placement)
        .unwrap();
    validate_trace(&f, &p, &placement, out.trace().unwrap(), &tech).unwrap();
    // Return-to-home restores the start configuration.
    assert_eq!(out.final_placement(), &placement);
}

#[test]
fn overfull_fabric_stalls_cleanly_instead_of_deadlocking() {
    // Two traps, four qubits: every trap permanently holds two qubits, so
    // a cross-pair gate can never find a seat. The engine must detect the
    // stall and report it rather than spin.
    let two_traps = "\
.T.T.
--+--
..|..
";
    let f = Fabric::from_ascii(two_traps).unwrap();
    assert_eq!(f.topology().traps().len(), 2);
    let tech = TechParams::date2012();
    let p = Program::parse("QUBIT a,0\nQUBIT b,0\nQUBIT c,0\nQUBIT d,0\nC-X a,c\n").unwrap();
    // a,b share trap 0; c,d share trap 1.
    let traps = f.topology().traps_by_distance(f.center());
    let placement = Placement::new(vec![traps[0], traps[0], traps[1], traps[1]]).unwrap();
    let err = Mapper::new(&f, tech, MapperPolicy::qspr(&tech))
        .map(&p, &placement)
        .unwrap_err();
    assert_eq!(err, MapError::Stalled { remaining: 1 });
}

#[test]
fn long_random_programs_on_a_small_fabric() {
    // A single-tile fabric with eight traps, hammered by 200-gate random
    // programs under every policy.
    let f = qspr_fabric::RegularFabricSpec::new(9, 9, 4)
        .build()
        .unwrap();
    let tech = TechParams::date2012();
    for (seed, policy) in [
        (1u64, MapperPolicy::qspr(&tech)),
        (2, MapperPolicy::quale(&tech)),
        (3, MapperPolicy::qpos(&tech)),
    ] {
        let p = random_program(&RandomProgramConfig::new(6, 200), seed);
        let placement = Placement::center(&f, 6);
        let out = Mapper::new(&f, tech, policy)
            .record_trace(true)
            .map(&p, &placement)
            .unwrap();
        validate_trace(&f, &p, &placement, out.trace().unwrap(), &tech).unwrap();
    }
}
