//! Pluggable batch-routing engines: the negotiated-congestion subsystem.
//!
//! The base [`Router`] answers one shortest-path query at
//! a time, which forces the simulator to route simultaneous movers in
//! arrival order — early routes block later ones exactly where
//! congestion matters most. This module lifts routing to *batches*: a
//! [`RoutingEngine`] receives every mover issued in one scheduling
//! epoch and may reconsider the whole set before committing.
//!
//! Two engines ship with the crate:
//!
//! * [`GreedyRouter`] — the classic behavior: each mover routed against
//!   the bookings of the movers before it, first answer kept;
//! * [`NegotiatedRouter`] — PathFinder-style negotiated congestion
//!   (McMurchie & Ebeling, FPGA '95): all movers are routed with *soft*
//!   capacities, shared-segment/junction conflicts are detected, and the
//!   conflicting routes are ripped up and re-routed under growing
//!   present-congestion and history penalties until the set is
//!   conflict-free or an iteration cap is reached. The final answer is
//!   committed under hard capacities and never worse than the greedy
//!   answer for the same batch.
//!
//! Engines are object safe, so callers hold a `dyn RoutingEngine` and
//! swap implementations the same way placers plug into a flow. Each
//! batch reports an [`EpochStats`]; an engine accumulates them into
//! [`RoutingStats`] for end-of-run reporting.
//!
//! # Examples
//!
//! ```
//! use qspr_fabric::{Fabric, TechParams};
//! use qspr_route::{ResourceState, RouteRequest, RouterConfig, RouterKind};
//!
//! let fabric = Fabric::quale_45x85();
//! let topo = fabric.topology();
//! let tech = TechParams::date2012();
//! let mut engine = RouterKind::Negotiated.build(topo, RouterConfig::qspr(&tech));
//! let state = ResourceState::new(topo);
//!
//! let traps = topo.traps_by_distance(fabric.center());
//! let requests = [
//!     RouteRequest::new(traps[0], traps[40]),
//!     RouteRequest::new(traps[1], traps[41]),
//! ];
//! let (plans, epoch) = engine.route_batch(&state, &requests);
//! assert!(plans.iter().all(|p| p.is_some()), "quiet fabric routes all");
//! assert_eq!(engine.stats().epochs, 1);
//! assert!(epoch.max_pressure <= tech.channel_capacity);
//! ```

use std::fmt;
use std::str::FromStr;

use qspr_fabric::{Time, Topology, TrapId};

use crate::par::map_striped;
use crate::plan::RoutePlan;
use crate::resource::{Resource, ResourceState};
use crate::router::{Overlay, ReadSet, Router, RouterConfig};

/// One mover of a batch-routing epoch: a qubit that must travel from
/// trap `from` to trap `to` starting now.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouteRequest {
    /// The trap the qubit currently sits in.
    pub from: TrapId,
    /// The trap the qubit must reach.
    pub to: TrapId,
}

impl RouteRequest {
    /// Creates a request.
    pub fn new(from: TrapId, to: TrapId) -> RouteRequest {
        RouteRequest { from, to }
    }
}

/// Congestion statistics of one [`RoutingEngine::route_batch`] epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EpochStats {
    /// Rip-up-and-reroute iterations the negotiation ran (0 when the
    /// first joint answer was already conflict-free, and always 0 for
    /// the greedy engine).
    pub iterations: u32,
    /// Routes ripped up and re-routed across those iterations.
    pub ripped: u32,
    /// The highest per-segment pressure (committed bookings plus this
    /// batch's tentative routes) observed while solving the epoch. May
    /// exceed the channel capacity mid-negotiation; committed plans
    /// never do.
    pub max_pressure: u8,
}

/// Cumulative congestion statistics across every epoch an engine
/// served, reported at the end of a mapping run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RoutingStats {
    /// Batch-routing epochs served (one per `route_batch` call).
    pub epochs: u64,
    /// Total rip-up-and-reroute iterations.
    pub iterations: u64,
    /// Total routes ripped up and re-routed.
    pub ripped: u64,
    /// Highest per-segment pressure observed in any epoch.
    pub max_pressure: u8,
}

impl RoutingStats {
    fn absorb(&mut self, epoch: &EpochStats) {
        self.epochs += 1;
        self.iterations += u64::from(epoch.iterations);
        self.ripped += u64::from(epoch.ripped);
        self.max_pressure = self.max_pressure.max(epoch.max_pressure);
    }
}

/// A pluggable batch-routing engine.
///
/// Mirrors `qspr_place::Placer`: the trait is object safe, the two
/// built-in engines are selected with [`RouterKind`], and third-party
/// engines plug into a mapper through [`RouterFactory`].
///
/// The contract of [`route_batch`](RoutingEngine::route_batch): the
/// returned plans (one slot per request, `None` = blocked, retried by
/// the caller later) must *jointly* respect the channel and junction
/// capacities on top of `state` — the caller books every returned plan.
pub trait RoutingEngine {
    /// Short stable engine name for reports (`"greedy"`, `"negotiated"`).
    fn name(&self) -> &str;

    /// The routing policy in effect.
    fn config(&self) -> &RouterConfig;

    /// A pure single-route probe under the current bookings (used for
    /// cost estimation, e.g. meeting-trap selection); does not count as
    /// an epoch and must not commit anything.
    fn route_one(&self, state: &ResourceState, from: TrapId, to: TrapId) -> Option<RoutePlan>;

    /// Routes one epoch's movers jointly. Slot `i` of the result answers
    /// request `i`; `None` means the mover is blocked for now.
    fn route_batch(
        &mut self,
        state: &ResourceState,
        requests: &[RouteRequest],
    ) -> (Vec<Option<RoutePlan>>, EpochStats);

    /// Tells the engine a plan was committed (feeds history terms).
    fn note_booked(&mut self, plan: &RoutePlan);

    /// Grants the engine up to `jobs` worker threads for intra-batch
    /// parallelism. Purely a performance hint: results are guaranteed
    /// byte-identical at every value (the speculative parallel paths
    /// validate against recorded read sets and fall back to the
    /// sequential code on any overlap). The default ignores the hint.
    fn set_parallelism(&mut self, _jobs: usize) {}

    /// `true` when this engine implements
    /// [`refine_epoch`](RoutingEngine::refine_epoch); callers then defer
    /// per-leg commitment until the epoch's full mover set is known.
    fn refines(&self) -> bool {
        false
    }

    /// Epoch refinement: given every plan committed in one scheduling
    /// epoch (with their bookings removed from `state`), propose a
    /// strictly better joint replacement, or `None` to keep the
    /// incumbents. A `Some` answer must hold one plan per incumbent
    /// with the same endpoints, jointly feasible under the hard
    /// capacities on top of `state`. The default keeps the incumbents.
    fn refine_epoch(
        &mut self,
        _state: &ResourceState,
        _incumbents: &[RoutePlan],
    ) -> Option<Vec<RoutePlan>> {
        None
    }

    /// Cumulative stats across all epochs served so far.
    fn stats(&self) -> RoutingStats;
}

/// Builds [`RoutingEngine`]s for a mapper run.
///
/// A mapping run needs a fresh engine (engines carry per-run history
/// state), so pluggability goes through a factory rather than a single
/// engine value. [`RouterKind`] implements this trait for the built-in
/// engines; third-party crates implement it to inject their own.
pub trait RouterFactory {
    /// Short stable name for reports.
    fn name(&self) -> &str;

    /// Creates a fresh engine over `topology` with the given policy.
    fn build<'t>(
        &self,
        topology: &'t Topology,
        config: RouterConfig,
    ) -> Box<dyn RoutingEngine + 't>;
}

impl<F: RouterFactory + ?Sized> RouterFactory for &F {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn build<'t>(
        &self,
        topology: &'t Topology,
        config: RouterConfig,
    ) -> Box<dyn RoutingEngine + 't> {
        (**self).build(topology, config)
    }
}

impl<F: RouterFactory + ?Sized> RouterFactory for std::sync::Arc<F> {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn build<'t>(
        &self,
        topology: &'t Topology,
        config: RouterConfig,
    ) -> Box<dyn RoutingEngine + 't> {
        (**self).build(topology, config)
    }
}

impl<F: RouterFactory + ?Sized> RouterFactory for Box<F> {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn build<'t>(
        &self,
        topology: &'t Topology,
        config: RouterConfig,
    ) -> Box<dyn RoutingEngine + 't> {
        (**self).build(topology, config)
    }
}

/// Selects one of the built-in routing engines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RouterKind {
    /// Sequential first-answer routing ([`GreedyRouter`]), the default.
    #[default]
    Greedy,
    /// PathFinder-style rip-up-and-reroute ([`NegotiatedRouter`]).
    Negotiated,
    /// Speculative engine racing: run every engine configuration and
    /// keep the best latency with a config-order tie-break. The racing
    /// composition lives above the engine seam (in `qspr`'s flow,
    /// which runs one full mapping per leg); as a plain factory this
    /// kind builds the negotiated engine, race's strongest leg.
    Race,
}

impl RouterKind {
    /// Stable lowercase name (`"greedy"` / `"negotiated"` / `"race"`).
    pub fn as_str(self) -> &'static str {
        match self {
            RouterKind::Greedy => "greedy",
            RouterKind::Negotiated => "negotiated",
            RouterKind::Race => "race",
        }
    }

    /// Creates a fresh engine of this kind.
    pub fn build<'t>(
        self,
        topology: &'t Topology,
        config: RouterConfig,
    ) -> Box<dyn RoutingEngine + 't> {
        match self {
            RouterKind::Greedy => Box::new(GreedyRouter::new(topology, config)),
            RouterKind::Negotiated | RouterKind::Race => {
                Box::new(NegotiatedRouter::new(topology, config))
            }
        }
    }
}

impl fmt::Display for RouterKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Error returned when parsing an unknown router name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseRouterKindError(String);

impl fmt::Display for ParseRouterKindError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown router {:?} (expected greedy, negotiated or race)",
            self.0
        )
    }
}

impl std::error::Error for ParseRouterKindError {}

impl FromStr for RouterKind {
    type Err = ParseRouterKindError;

    fn from_str(s: &str) -> Result<RouterKind, ParseRouterKindError> {
        match s {
            "greedy" => Ok(RouterKind::Greedy),
            "negotiated" => Ok(RouterKind::Negotiated),
            "race" => Ok(RouterKind::Race),
            other => Err(ParseRouterKindError(other.to_owned())),
        }
    }
}

impl RouterFactory for RouterKind {
    fn name(&self) -> &str {
        self.as_str()
    }

    fn build<'t>(
        &self,
        topology: &'t Topology,
        config: RouterConfig,
    ) -> Box<dyn RoutingEngine + 't> {
        (*self).build(topology, config)
    }
}

/// A [`RouterFactory`] producing [`NegotiatedRouter`]s whose congestion
/// history starts pre-seeded on chosen segments
/// ([`NegotiatedRouter::with_history_seed`]).
///
/// This is the routing half of the sta feedback loop: `qspr-sta`
/// extracts the critical path of a pilot mapping, and a seeded factory
/// built from its per-segment critical move counts prices those
/// segments up front on the re-run.
#[derive(Debug, Clone)]
pub struct SeededNegotiated {
    name: String,
    seed: std::sync::Arc<Vec<u32>>,
}

impl SeededNegotiated {
    /// A factory named `name` (shown in reports) seeding `seed` units of
    /// history per segment, indexed by [`qspr_fabric::SegmentId::index`].
    pub fn new(name: impl Into<String>, seed: Vec<u32>) -> SeededNegotiated {
        SeededNegotiated {
            name: name.into(),
            seed: std::sync::Arc::new(seed),
        }
    }

    /// The per-segment history seed.
    pub fn seed(&self) -> &[u32] {
        &self.seed
    }
}

impl RouterFactory for SeededNegotiated {
    fn name(&self) -> &str {
        &self.name
    }

    fn build<'t>(
        &self,
        topology: &'t Topology,
        config: RouterConfig,
    ) -> Box<dyn RoutingEngine + 't> {
        Box::new(NegotiatedRouter::new(topology, config).with_history_seed(&self.seed))
    }
}

/// Routes each mover of a batch against the bookings of the movers
/// before it, committing the first answer found — exactly the per-gate
/// behavior the simulator always had, now behind the engine seam.
#[derive(Debug, Clone)]
pub struct GreedyRouter<'a> {
    router: Router<'a>,
    scratch: ResourceState,
    stats: RoutingStats,
    jobs: usize,
}

impl<'a> GreedyRouter<'a> {
    /// Creates a greedy engine over `topology`.
    pub fn new(topology: &'a Topology, config: RouterConfig) -> GreedyRouter<'a> {
        GreedyRouter {
            router: Router::new(topology, config),
            scratch: ResourceState::new(topology),
            stats: RoutingStats::default(),
            jobs: 1,
        }
    }
}

impl RoutingEngine for GreedyRouter<'_> {
    fn name(&self) -> &str {
        RouterKind::Greedy.as_str()
    }

    fn config(&self) -> &RouterConfig {
        self.router.config()
    }

    fn route_one(&self, state: &ResourceState, from: TrapId, to: TrapId) -> Option<RoutePlan> {
        self.router.route(state, from, to)
    }

    fn route_batch(
        &mut self,
        state: &ResourceState,
        requests: &[RouteRequest],
    ) -> (Vec<Option<RoutePlan>>, EpochStats) {
        let (plans, max_pressure) = if self.jobs > 1 && requests.len() >= PAR_THRESHOLD {
            greedy_solve_par(&self.router, &mut self.scratch, state, requests, self.jobs)
        } else {
            greedy_solve(&self.router, &mut self.scratch, state, requests)
        };
        let epoch = EpochStats {
            iterations: 0,
            ripped: 0,
            max_pressure,
        };
        self.stats.absorb(&epoch);
        (plans, epoch)
    }

    fn note_booked(&mut self, plan: &RoutePlan) {
        self.router.note_booked(plan);
    }

    fn set_parallelism(&mut self, jobs: usize) {
        self.jobs = jobs.max(1);
    }

    fn stats(&self) -> RoutingStats {
        self.stats
    }
}

/// Knobs of the PathFinder negotiation loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NegotiationConfig {
    /// Maximum rip-up-and-reroute iterations per epoch. Effort only,
    /// never quality: both adoption gates (`route_batch` keeps the
    /// greedy answer unless negotiation strictly beats it, and
    /// `refine_epoch` keeps the incumbents likewise) floor the result
    /// at the greedy solution regardless of how early the loop stops.
    pub max_iterations: u32,
    /// Initial present-congestion penalty per unit of overuse (cost
    /// units, i.e. µs of equivalent travel).
    pub pres_weight: u64,
    /// Multiplier applied to the present penalty each iteration.
    pub pres_growth: u64,
    /// Penalty per unit of accumulated segment history (carried across
    /// epochs, so repeat offenders get spread out over the fabric).
    pub hist_weight: u64,
}

impl Default for NegotiationConfig {
    fn default() -> NegotiationConfig {
        NegotiationConfig {
            max_iterations: 4,
            pres_weight: 16,
            pres_growth: 4,
            hist_weight: 1,
        }
    }
}

/// PathFinder-style negotiated-congestion engine.
///
/// Per epoch: route every mover with soft capacities, find
/// over-capacity segments/junctions, rip up the routes crossing them
/// and re-route under growing present-congestion and history
/// penalties; finally commit under hard capacities. The committed
/// answer is compared against the greedy answer for the same batch and
/// the better one (fewer blocked movers, then smaller makespan, then
/// smaller total travel) is returned — negotiation can only help.
#[derive(Debug, Clone)]
pub struct NegotiatedRouter<'a> {
    router: Router<'a>,
    negotiation: NegotiationConfig,
    /// Cross-epoch per-segment history counters (the PathFinder `h_n`).
    history: Vec<u32>,
    /// Batch-internal tentative bookings, reused across epochs.
    extra_segments: Vec<u8>,
    extra_junctions: Vec<u8>,
    /// Resources the current epoch's tentative routes ever touched —
    /// the only places a conflict can appear, so the conflict scan
    /// skips the rest of the fabric. Deduplicated through the
    /// generation-stamped membership arrays below, and drained at the
    /// next epoch start to reset `extra_*` in O(touched) instead of
    /// O(fabric).
    touched: Vec<Resource>,
    seg_touched: Vec<u32>,
    junc_touched: Vec<u32>,
    touch_gen: u32,
    /// Per-iteration conflict marks: a resource is conflicted in the
    /// current rip-up round iff its stamp equals `conflict_gen`, giving
    /// the rip scan O(1) membership tests instead of a linear search
    /// through the conflict list.
    seg_conflict: Vec<u32>,
    junc_conflict: Vec<u32>,
    conflict_gen: u32,
    scratch: ResourceState,
    stats: RoutingStats,
    uncon: Router<'a>,
    empty: ResourceState,
    uncon_cache: std::collections::HashMap<(TrapId, TrapId), Time>,
    jobs: usize,
}

impl<'a> NegotiatedRouter<'a> {
    /// Creates a negotiated engine over `topology` with default
    /// negotiation knobs.
    pub fn new(topology: &'a Topology, config: RouterConfig) -> NegotiatedRouter<'a> {
        let n_seg = topology.segments().len();
        let n_junc = topology.junctions().len();
        NegotiatedRouter {
            router: Router::new(topology, config),
            negotiation: NegotiationConfig::default(),
            history: vec![0; n_seg],
            extra_segments: vec![0; n_seg],
            extra_junctions: vec![0; n_junc],
            touched: Vec::new(),
            seg_touched: vec![0; n_seg],
            junc_touched: vec![0; n_junc],
            touch_gen: 0,
            seg_conflict: vec![0; n_seg],
            junc_conflict: vec![0; n_junc],
            conflict_gen: 0,
            scratch: ResourceState::new(topology),
            stats: RoutingStats::default(),
            uncon: Router::new(
                topology,
                RouterConfig {
                    turn_aware: true,
                    history_cost: false,
                    ..config
                },
            ),
            empty: ResourceState::new(topology),
            uncon_cache: std::collections::HashMap::new(),
            jobs: 1,
        }
    }

    /// Minimum achievable travel duration from `from` to `to` on an
    /// empty fabric, cached per trap pair. The unconstrained router is
    /// turn-aware with history pricing off, so on an empty state its
    /// min-cost plan is also the min-duration plan (every plan's cost
    /// is its duration plus the fixed `2 * t_move` port overhead), and
    /// no resource state or negotiation overlay can ever do better.
    fn min_duration(&mut self, from: TrapId, to: TrapId) -> Time {
        if let Some(&d) = self.uncon_cache.get(&(from, to)) {
            return d;
        }
        let d = self
            .uncon
            .route(&self.empty, from, to)
            .map_or(0, |p| p.duration());
        self.uncon_cache.insert((from, to), d);
        d
    }

    /// Component-wise `(makespan, total)` lower bound over every joint
    /// routing of `requests`. If this already reaches an incumbent's
    /// lexicographic score, no negotiated answer can *strictly* beat
    /// the incumbent — each component of any joint answer is bounded
    /// below by the corresponding component here — so the negotiation
    /// can be skipped without changing which plans get adopted.
    fn joint_lower_bound(&mut self, requests: &[RouteRequest]) -> (Time, Time) {
        let mut mk = 0;
        let mut tot = 0;
        for req in requests {
            let d = self.min_duration(req.from, req.to);
            mk = mk.max(d);
            tot += d;
        }
        (mk, tot)
    }

    /// Replaces the negotiation knobs.
    pub fn with_negotiation(mut self, negotiation: NegotiationConfig) -> NegotiatedRouter<'a> {
        self.negotiation = negotiation;
        self
    }

    /// Pre-seeds the per-segment PathFinder history counters, as if the
    /// seeded segments had already been fought over. Timing-driven
    /// feedback (`qspr-sta`) uses this to price critical-path segments
    /// up front, steering non-critical traffic around them from the
    /// first epoch instead of only after conflicts accumulate.
    ///
    /// `seed` is indexed by [`qspr_fabric::SegmentId::index`]; a seed
    /// shorter or longer than the fabric is zip-truncated.
    pub fn with_history_seed(mut self, seed: &[u32]) -> NegotiatedRouter<'a> {
        for (h, s) in self.history.iter_mut().zip(seed) {
            *h += s;
        }
        self
    }

    /// Resets the epoch-local batch bookings by undoing only what the
    /// previous epoch touched.
    fn begin_epoch(&mut self) {
        for r in self.touched.drain(..) {
            match r {
                Resource::Segment(s) => self.extra_segments[s.index()] = 0,
                Resource::Junction(j) => self.extra_junctions[j.index()] = 0,
            }
        }
        self.touch_gen = self.touch_gen.wrapping_add(1);
        if self.touch_gen == 0 {
            // Generation 0 is skipped, so a 0 stamp is never current.
            self.seg_touched.fill(0);
            self.junc_touched.fill(0);
            self.touch_gen = 1;
        }
    }

    fn book_extra(&mut self, plan: &RoutePlan) {
        for u in plan.resources() {
            // Saturating: tentative soft-mode bookings are not capacity
            // checked, and a pathological epoch must stay merely
            // congested rather than wrap the counter.
            let stamp = match u.resource {
                Resource::Segment(s) => {
                    let slot = &mut self.extra_segments[s.index()];
                    *slot = slot.saturating_add(1);
                    &mut self.seg_touched[s.index()]
                }
                Resource::Junction(j) => {
                    let slot = &mut self.extra_junctions[j.index()];
                    *slot = slot.saturating_add(1);
                    &mut self.junc_touched[j.index()]
                }
            };
            if *stamp != self.touch_gen {
                *stamp = self.touch_gen;
                self.touched.push(u.resource);
            }
        }
    }

    fn unbook_extra(&mut self, plan: &RoutePlan) {
        for u in plan.resources() {
            match u.resource {
                Resource::Segment(s) => {
                    let slot = &mut self.extra_segments[s.index()];
                    *slot = slot.saturating_sub(1);
                }
                Resource::Junction(j) => {
                    let slot = &mut self.extra_junctions[j.index()];
                    *slot = slot.saturating_sub(1);
                }
            }
        }
    }

    /// Scans the touched resources for over-capacity ones, stamping
    /// each with the fresh conflict generation (and bumping its
    /// PathFinder history when it is a segment); also records the peak
    /// segment pressure into `epoch`. Returns the number of conflicts.
    /// An untouched resource has no batch bookings and the shared state
    /// is feasible by construction, so it cannot be over capacity.
    fn mark_conflicts(&mut self, state: &ResourceState, epoch: &mut EpochStats) -> usize {
        self.conflict_gen = self.conflict_gen.wrapping_add(1);
        if self.conflict_gen == 0 {
            // Generation 0 is skipped, so a 0 stamp is never current.
            self.seg_conflict.fill(0);
            self.junc_conflict.fill(0);
            self.conflict_gen = 1;
        }
        let mut conflicts = 0;
        for &resource in &self.touched {
            // Per-resource: a spec capacity override beats the global
            // technology default, so negotiation converges toward the
            // same feasibility the hard-capacity search enforces.
            let cap = self.router.capacity(resource);
            let extra = match resource {
                Resource::Segment(s) => self.extra_segments[s.index()],
                Resource::Junction(j) => self.extra_junctions[j.index()],
            };
            let n = state.usage(resource).saturating_add(extra);
            if extra > 0 {
                if let Resource::Segment(_) = resource {
                    epoch.max_pressure = epoch.max_pressure.max(n);
                }
            }
            if n > cap {
                conflicts += 1;
                match resource {
                    Resource::Segment(s) => {
                        self.seg_conflict[s.index()] = self.conflict_gen;
                        self.history[s.index()] += 1;
                    }
                    Resource::Junction(j) => self.junc_conflict[j.index()] = self.conflict_gen,
                }
            }
        }
        conflicts
    }

    /// Whether `resource` was marked conflicted by the latest
    /// [`NegotiatedRouter::mark_conflicts`] scan.
    fn is_conflicted(&self, resource: Resource) -> bool {
        match resource {
            Resource::Segment(s) => self.seg_conflict[s.index()] == self.conflict_gen,
            Resource::Junction(j) => self.junc_conflict[j.index()] == self.conflict_gen,
        }
    }

    /// The soft-mode negotiation overlay over the current batch
    /// bookings at present-congestion weight `pres`.
    fn overlay(&self, pres: u64) -> Overlay<'_> {
        Overlay {
            extra_segments: &self.extra_segments,
            extra_junctions: &self.extra_junctions,
            soft: true,
            pres_weight: pres,
            history: &self.history,
            hist_weight: self.negotiation.hist_weight,
        }
    }

    /// Speculative parallel round 0 of [`NegotiatedRouter::negotiate`],
    /// byte-identical to the sequential loop.
    ///
    /// Round 0 starts from all-zero batch bookings, so every mover is
    /// routed concurrently against a zero overlay with its reads
    /// recorded; the mover-order merge adopts an answer iff none of
    /// its read resources carries a booking from an earlier mover yet
    /// — the speculative search then saw exactly the overlay the
    /// sequential code would have used. Invalidated movers re-route
    /// inline under the live overlay.
    fn round0_speculative(
        &mut self,
        state: &ResourceState,
        requests: &[RouteRequest],
        pres: u64,
    ) -> Vec<Option<RoutePlan>> {
        let zero_seg = vec![0u8; self.extra_segments.len()];
        let zero_junc = vec![0u8; self.extra_junctions.len()];
        let workers = self.jobs.min(requests.len());
        let mut routers: Vec<Router<'_>> = (0..workers).map(|_| self.router.clone()).collect();
        let history = &self.history;
        let hist_weight = self.negotiation.hist_weight;
        let speculated = map_striped(&mut routers, requests.len(), |r, i| {
            let overlay = Overlay {
                extra_segments: &zero_seg,
                extra_junctions: &zero_junc,
                soft: true,
                pres_weight: pres,
                history,
                hist_weight,
            };
            r.begin_read_log();
            let plan = r.route_with(state, requests[i].from, requests[i].to, Some(&overlay));
            (plan, r.take_read_set())
        });
        let mut plans = Vec::with_capacity(requests.len());
        for (req, (plan, reads)) in requests.iter().zip(speculated) {
            let clean = reads
                .segments
                .iter()
                .all(|s| self.extra_segments[s.index()] == 0)
                && reads
                    .junctions
                    .iter()
                    .all(|j| self.extra_junctions[j.index()] == 0);
            let plan = if clean {
                plan
            } else {
                let overlay = self.overlay(pres);
                self.router
                    .route_with(state, req.from, req.to, Some(&overlay))
            };
            if let Some(p) = &plan {
                self.book_extra(p);
            }
            plans.push(plan);
        }
        plans
    }

    /// One region-parallel rip-up round, byte-identical to the
    /// sequential round when it reports `true`; `false` means the
    /// speculation was discarded without touching any engine state and
    /// the caller must run the round sequentially.
    ///
    /// The crossing movers are partitioned into conflict regions by
    /// union-find over the *conflicted* resources their round-start
    /// plans share. Each region replays its movers in slot order
    /// against the frozen round-start bookings plus region-local
    /// deltas, recording every resource read. The speculation is valid
    /// only when no region read a resource that another region wrote
    /// (old or new plan bookings): each mover then provably saw the
    /// same overlay values the sequential interleaving would have
    /// shown it, and replaying the unbook/book deltas in global slot
    /// order reproduces the sequential engine state exactly.
    fn rip_round_speculative(
        &mut self,
        state: &ResourceState,
        plans: &mut [Option<RoutePlan>],
        crossing: &[usize],
        pres: u64,
        epoch: &mut EpochStats,
    ) -> bool {
        const NONE: usize = usize::MAX;
        const MULTI: usize = usize::MAX - 1;
        let n = crossing.len();

        // Union-find over shared conflicted resources; roots stay the
        // smallest member, so regions come out ordered by first mover.
        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            x
        }
        let mut parent: Vec<usize> = (0..n).collect();
        let mut seg_owner = vec![NONE; self.extra_segments.len()];
        let mut junc_owner = vec![NONE; self.extra_junctions.len()];
        for (pos, &slot) in crossing.iter().enumerate() {
            let plan = plans[slot].as_ref().expect("crossing implies a plan");
            for u in plan.resources() {
                if !self.is_conflicted(u.resource) {
                    continue;
                }
                let owner = match u.resource {
                    Resource::Segment(s) => &mut seg_owner[s.index()],
                    Resource::Junction(j) => &mut junc_owner[j.index()],
                };
                if *owner == NONE {
                    *owner = pos;
                } else {
                    let a = find(&mut parent, *owner);
                    let b = find(&mut parent, pos);
                    if a != b {
                        parent[a.max(b)] = a.min(b);
                    }
                }
            }
        }
        let mut regions: Vec<Vec<usize>> = Vec::new();
        let mut root_region = vec![NONE; n];
        for (pos, &slot) in crossing.iter().enumerate() {
            let root = find(&mut parent, pos);
            if root_region[root] == NONE {
                root_region[root] = regions.len();
                regions.push(Vec::new());
            }
            regions[root_region[root]].push(slot);
        }
        if regions.len() < 2 {
            return false;
        }

        // Renegotiate the regions concurrently against the frozen
        // round-start bookings.
        let frozen_seg = self.extra_segments.clone();
        let frozen_junc = self.extra_junctions.clone();
        let workers = self.jobs.min(regions.len());
        let mut routers: Vec<Router<'_>> = (0..workers).map(|_| self.router.clone()).collect();
        let history = &self.history;
        let hist_weight = self.negotiation.hist_weight;
        let plans_ref: &[Option<RoutePlan>] = plans;
        let regions_ref = &regions;
        // Per-region outcome: `(slot, replacement plan)` pairs plus the
        // resources the region's searches read (for validation below).
        type RegionOutcome = (Vec<(usize, Option<RoutePlan>)>, ReadSet);
        let outcomes: Vec<RegionOutcome> =
            map_striped(&mut routers, regions.len(), |r, region_idx| {
                let mut seg = frozen_seg.clone();
                let mut junc = frozen_junc.clone();
                let mut results = Vec::new();
                let mut reads = ReadSet::default();
                for &slot in &regions_ref[region_idx] {
                    let old = plans_ref[slot].as_ref().expect("crossing implies a plan");
                    unbook_into(&mut seg, &mut junc, old);
                    let overlay = Overlay {
                        extra_segments: &seg,
                        extra_junctions: &junc,
                        soft: true,
                        pres_weight: pres,
                        history,
                        hist_weight,
                    };
                    r.begin_read_log();
                    let plan = r.route_with(state, old.from_trap(), old.to_trap(), Some(&overlay));
                    let set = r.take_read_set();
                    reads.segments.extend(set.segments);
                    reads.junctions.extend(set.junctions);
                    if let Some(p) = &plan {
                        book_into(&mut seg, &mut junc, p);
                    }
                    results.push((slot, plan));
                }
                (results, reads)
            });

        // Validate: a read is safe only when the resource is untouched
        // or written solely by the reader's own region.
        fn mark(owner: &mut usize, region: usize) {
            if *owner == NONE || *owner == region {
                *owner = region;
            } else {
                *owner = MULTI;
            }
        }
        let mut seg_writer = vec![NONE; self.extra_segments.len()];
        let mut junc_writer = vec![NONE; self.extra_junctions.len()];
        for (region_idx, (results, _)) in outcomes.iter().enumerate() {
            for (slot, new_plan) in results {
                let old = plans[*slot].as_ref().expect("crossing implies a plan");
                for u in old.resources() {
                    match u.resource {
                        Resource::Segment(s) => mark(&mut seg_writer[s.index()], region_idx),
                        Resource::Junction(j) => mark(&mut junc_writer[j.index()], region_idx),
                    }
                }
                for u in new_plan.iter().flat_map(|p| p.resources()) {
                    match u.resource {
                        Resource::Segment(s) => mark(&mut seg_writer[s.index()], region_idx),
                        Resource::Junction(j) => mark(&mut junc_writer[j.index()], region_idx),
                    }
                }
            }
        }
        for (region_idx, (_, reads)) in outcomes.iter().enumerate() {
            let safe = reads.segments.iter().all(|s| {
                let o = seg_writer[s.index()];
                o == NONE || o == region_idx
            }) && reads.junctions.iter().all(|j| {
                let o = junc_writer[j.index()];
                o == NONE || o == region_idx
            });
            if !safe {
                return false;
            }
        }

        // Adopt: replay every mover's unbook/book delta in global slot
        // order — the exact mutation sequence of the sequential round.
        let mut merged: Vec<(usize, Option<RoutePlan>)> = outcomes
            .into_iter()
            .flat_map(|(results, _)| results)
            .collect();
        merged.sort_by_key(|&(slot, _)| slot);
        for (slot, new_plan) in merged {
            let old = plans[slot].take().expect("crossing implies a plan");
            self.unbook_extra(&old);
            epoch.ripped += 1;
            if let Some(p) = &new_plan {
                self.book_extra(p);
            }
            plans[slot] = new_plan;
        }
        true
    }

    /// The negotiation proper: soft-capacity routing plus incremental
    /// rip-up-and-reroute (each round re-routes only the movers
    /// touching a conflicted resource), then a hard-capacity commit
    /// pass.
    fn negotiate(
        &mut self,
        state: &ResourceState,
        requests: &[RouteRequest],
        epoch: &mut EpochStats,
    ) -> Vec<Option<RoutePlan>> {
        self.begin_epoch();
        let mut pres = self.negotiation.pres_weight;

        // Round 0: everyone routes, seeing the movers before them and
        // paying soft prices for contention. With parallelism granted,
        // the movers are speculatively routed concurrently against the
        // untouched overlay and merged in mover order — byte-identical
        // either way.
        let mut plans: Vec<Option<RoutePlan>> = if self.jobs > 1 && requests.len() >= PAR_THRESHOLD
        {
            self.round0_speculative(state, requests, pres)
        } else {
            let mut plans = Vec::with_capacity(requests.len());
            for req in requests {
                let overlay = self.overlay(pres);
                let plan = self
                    .router
                    .route_with(state, req.from, req.to, Some(&overlay));
                if let Some(p) = &plan {
                    self.book_extra(p);
                }
                plans.push(plan);
            }
            plans
        };

        // Negotiation rounds: rip up whatever crosses an over-used
        // resource and let it find a less contended path; everyone else
        // keeps their route untouched. A mover's plan is still its
        // round-start plan when it is examined (each slot is visited
        // once), so the crossing set can be computed up front — which
        // the region-parallel path leans on.
        for _ in 0..self.negotiation.max_iterations {
            if self.mark_conflicts(state, epoch) == 0 {
                break;
            }
            epoch.iterations += 1;
            pres = pres.saturating_mul(self.negotiation.pres_growth);
            let crossing: Vec<usize> = plans
                .iter()
                .enumerate()
                .filter(|(_, slot)| {
                    slot.as_ref().is_some_and(|p| {
                        p.resources().iter().any(|u| self.is_conflicted(u.resource))
                    })
                })
                .map(|(i, _)| i)
                .collect();
            let speculated = self.jobs > 1
                && crossing.len() >= PAR_THRESHOLD
                && self.rip_round_speculative(state, &mut plans, &crossing, pres, epoch);
            if speculated {
                continue;
            }
            for &i in &crossing {
                let ripped = plans[i].take().expect("crossing implies a plan");
                self.unbook_extra(&ripped);
                epoch.ripped += 1;
                let overlay = self.overlay(pres);
                let plan = self.router.route_with(
                    state,
                    ripped.from_trap(),
                    ripped.to_trap(),
                    Some(&overlay),
                );
                if let Some(p) = &plan {
                    self.book_extra(p);
                }
                plans[i] = plan;
            }
        }

        // Commit pass: hard capacities, request order. Keep each
        // negotiated plan that still fits; hard-reroute the rest.
        self.scratch.clone_from(state);
        let mut out = Vec::with_capacity(requests.len());
        for (slot, req) in plans.iter_mut().zip(requests) {
            let candidate = slot.take().filter(|p| fits(&self.scratch, p, &self.router));
            let plan = candidate.or_else(|| self.router.route(&self.scratch, req.from, req.to));
            if let Some(p) = &plan {
                for u in p.resources() {
                    self.scratch
                        .book(u.resource)
                        .expect("capacity-checked plans stay below u8::MAX bookings");
                }
            }
            out.push(plan);
        }
        out
    }
}

impl RoutingEngine for NegotiatedRouter<'_> {
    fn name(&self) -> &str {
        RouterKind::Negotiated.as_str()
    }

    fn config(&self) -> &RouterConfig {
        self.router.config()
    }

    fn route_one(&self, state: &ResourceState, from: TrapId, to: TrapId) -> Option<RoutePlan> {
        self.router.route(state, from, to)
    }

    fn route_batch(
        &mut self,
        state: &ResourceState,
        requests: &[RouteRequest],
    ) -> (Vec<Option<RoutePlan>>, EpochStats) {
        let (greedy, greedy_pressure) = if self.jobs > 1 && requests.len() >= PAR_THRESHOLD {
            greedy_solve_par(&self.router, &mut self.scratch, state, requests, self.jobs)
        } else {
            greedy_solve(&self.router, &mut self.scratch, state, requests)
        };
        let mut epoch = EpochStats {
            iterations: 0,
            ripped: 0,
            max_pressure: greedy_pressure,
        };
        // A single mover has nothing to negotiate with.
        if requests.len() < 2 {
            self.stats.absorb(&epoch);
            return (greedy, epoch);
        }
        // Lower-bound gate: when greedy routed everyone and already
        // sits on the unconstrained-optimum score, negotiation cannot
        // strictly improve and would be discarded below — skip it.
        // Blocked movers always negotiate: unblocking beats any score.
        if greedy.iter().all(Option::is_some)
            && self.joint_lower_bound(requests) >= plan_score(greedy.iter().flatten())
        {
            self.stats.absorb(&epoch);
            return (greedy, epoch);
        }
        let negotiated = self.negotiate(state, requests, &mut epoch);
        // Negotiation may only improve on the greedy answer: fewer
        // blocked movers, then a smaller epoch makespan, then less
        // total travel. Ties return the greedy plans verbatim so the
        // two engines stay byte-identical on uncontended batches.
        let plans = if batch_score(&negotiated) < batch_score(&greedy) {
            negotiated
        } else {
            greedy
        };
        self.stats.absorb(&epoch);
        (plans, epoch)
    }

    fn note_booked(&mut self, plan: &RoutePlan) {
        self.router.note_booked(plan);
    }

    fn set_parallelism(&mut self, jobs: usize) {
        self.jobs = jobs.max(1);
    }

    fn refines(&self) -> bool {
        true
    }

    fn refine_epoch(
        &mut self,
        state: &ResourceState,
        incumbents: &[RoutePlan],
    ) -> Option<Vec<RoutePlan>> {
        if incumbents.len() < 2 {
            return None;
        }
        let requests: Vec<RouteRequest> = incumbents
            .iter()
            .map(|p| RouteRequest::new(p.from_trap(), p.to_trap()))
            .collect();
        let incumbent_score = plan_score(incumbents.iter());
        // Lower-bound gate: incumbents at the unconstrained optimum
        // cannot be strictly improved, so the negotiation would never
        // be adopted — skip the whole rip-up.
        if self.joint_lower_bound(&requests) >= incumbent_score {
            return None;
        }
        let mut epoch = EpochStats::default();
        let negotiated = self.negotiate(state, &requests, &mut epoch);
        // Refinement rides an epoch that was already counted by the
        // per-instruction `route_batch` calls; only the negotiation
        // effort accumulates.
        self.stats.iterations += u64::from(epoch.iterations);
        self.stats.ripped += u64::from(epoch.ripped);
        self.stats.max_pressure = self.stats.max_pressure.max(epoch.max_pressure);

        // Adopt only a complete answer that strictly improves on the
        // incumbents (which are fully routed by construction).
        if negotiated.iter().any(Option::is_none) {
            return None;
        }
        let new_score = plan_score(negotiated.iter().flatten());
        if new_score < incumbent_score {
            Some(negotiated.into_iter().flatten().collect())
        } else {
            None
        }
    }

    fn stats(&self) -> RoutingStats {
        self.stats
    }
}

/// `true` when booking every resource of `plan` on top of `state` stays
/// within the effective (per-resource) capacities.
fn fits(state: &ResourceState, plan: &RoutePlan, router: &Router<'_>) -> bool {
    plan.resources()
        .iter()
        .all(|u| state.usage(u.resource) < router.capacity(u.resource))
}

/// Joint quality of a batch answer, smaller is better: blocked movers,
/// then the epoch makespan, then total travel time.
fn batch_score(plans: &[Option<RoutePlan>]) -> (usize, Time, Time) {
    let blocked = plans.iter().filter(|p| p.is_none()).count();
    let (makespan, total) = plan_score(plans.iter().flatten());
    (blocked, makespan, total)
}

/// (makespan, total travel) of a fully routed plan set.
fn plan_score<'p>(plans: impl Iterator<Item = &'p RoutePlan>) -> (Time, Time) {
    let mut makespan = 0;
    let mut total = 0;
    for p in plans {
        makespan = makespan.max(p.duration());
        total += p.duration();
    }
    (makespan, total)
}

/// Sequential first-answer routing shared by both engines: request `i`
/// is routed under `state` plus the bookings of requests `0..i`.
/// Returns the plans and the peak segment pressure after booking.
fn greedy_solve(
    router: &Router<'_>,
    scratch: &mut ResourceState,
    state: &ResourceState,
    requests: &[RouteRequest],
) -> (Vec<Option<RoutePlan>>, u8) {
    let mut pressure = 0u8;
    if let [req] = requests {
        // Hot path: single movers need no scratch bookings.
        let plan = router.route(state, req.from, req.to);
        if let Some(p) = &plan {
            for u in p.resources() {
                if let Resource::Segment(_) = u.resource {
                    pressure = pressure.max(state.usage(u.resource) + 1);
                }
            }
        }
        return (vec![plan], pressure);
    }
    scratch.clone_from(state);
    let mut plans = Vec::with_capacity(requests.len());
    for req in requests {
        match router.route(scratch, req.from, req.to) {
            Some(plan) => {
                for u in plan.resources() {
                    scratch
                        .book(u.resource)
                        .expect("capacity-checked plans stay below u8::MAX bookings");
                    if let Resource::Segment(_) = u.resource {
                        pressure = pressure.max(scratch.usage(u.resource));
                    }
                }
                plans.push(Some(plan));
            }
            None => plans.push(None),
        }
    }
    (plans, pressure)
}

/// Books every resource of `plan` into detached overlay arrays (the
/// region-local counterpart of [`NegotiatedRouter::book_extra`], same
/// saturating arithmetic, no touched-list upkeep).
fn book_into(seg: &mut [u8], junc: &mut [u8], plan: &RoutePlan) {
    for u in plan.resources() {
        let slot = match u.resource {
            Resource::Segment(s) => &mut seg[s.index()],
            Resource::Junction(j) => &mut junc[j.index()],
        };
        *slot = slot.saturating_add(1);
    }
}

/// Inverse of [`book_into`].
fn unbook_into(seg: &mut [u8], junc: &mut [u8], plan: &RoutePlan) {
    for u in plan.resources() {
        let slot = match u.resource {
            Resource::Segment(s) => &mut seg[s.index()],
            Resource::Junction(j) => &mut junc[j.index()],
        };
        *slot = slot.saturating_sub(1);
    }
}

/// Minimum mover count before a speculative parallel path is
/// attempted; below this the fork/join overhead dwarfs the searches.
/// The threshold is pure tuning — both sides of it produce identical
/// bytes.
const PAR_THRESHOLD: usize = 4;

/// Resources written (booked or unbooked) during an order-based merge,
/// used to validate speculative answers: a plan routed against the
/// frozen snapshot is adoptable iff its recorded read set avoids every
/// resource an earlier mover changed — the search then saw exactly the
/// values the sequential code would have shown it.
struct DirtyMask {
    seg: Vec<bool>,
    junc: Vec<bool>,
}

impl DirtyMask {
    fn new(topology: &Topology) -> DirtyMask {
        DirtyMask {
            seg: vec![false; topology.segments().len()],
            junc: vec![false; topology.junctions().len()],
        }
    }

    fn mark(&mut self, resource: Resource) {
        match resource {
            Resource::Segment(s) => self.seg[s.index()] = true,
            Resource::Junction(j) => self.junc[j.index()] = true,
        }
    }

    fn disjoint(&self, reads: &ReadSet) -> bool {
        reads.segments.iter().all(|s| !self.seg[s.index()])
            && reads.junctions.iter().all(|j| !self.junc[j.index()])
    }
}

/// Speculative parallel [`greedy_solve`], byte-identical to it.
///
/// Every mover is routed concurrently against the frozen `state` with
/// its resource reads recorded, then a sequential mover-index merge
/// adopts each answer whose read set is untouched by earlier bookings
/// — those searches provably saw the same weights and tolls the
/// sequential code would have shown them, so their plans (including
/// `None` = blocked) match byte for byte. Invalidated movers re-route
/// inline against the accumulated scratch, exactly like the sequential
/// loop.
fn greedy_solve_par(
    router: &Router<'_>,
    scratch: &mut ResourceState,
    state: &ResourceState,
    requests: &[RouteRequest],
    jobs: usize,
) -> (Vec<Option<RoutePlan>>, u8) {
    let workers = jobs.min(requests.len());
    let mut routers: Vec<Router<'_>> = (0..workers).map(|_| router.clone()).collect();
    let speculated = map_striped(&mut routers, requests.len(), |r, i| {
        r.begin_read_log();
        let plan = r.route(state, requests[i].from, requests[i].to);
        (plan, r.take_read_set())
    });

    scratch.clone_from(state);
    let mut dirty = DirtyMask::new(router.topology());
    let mut pressure = 0u8;
    let mut plans = Vec::with_capacity(requests.len());
    for (req, (plan, reads)) in requests.iter().zip(speculated) {
        let plan = if dirty.disjoint(&reads) {
            plan
        } else {
            router.route(scratch, req.from, req.to)
        };
        if let Some(p) = &plan {
            for u in p.resources() {
                scratch
                    .book(u.resource)
                    .expect("capacity-checked plans stay below u8::MAX bookings");
                dirty.mark(u.resource);
                if let Resource::Segment(_) = u.resource {
                    pressure = pressure.max(scratch.usage(u.resource));
                }
            }
        }
        plans.push(plan);
    }
    (plans, pressure)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qspr_fabric::{Coord, Fabric, TechParams};

    fn quale() -> Fabric {
        Fabric::quale_45x85()
    }

    #[test]
    fn kind_parses_and_displays() {
        assert_eq!("greedy".parse::<RouterKind>().unwrap(), RouterKind::Greedy);
        assert_eq!(
            "negotiated".parse::<RouterKind>().unwrap(),
            RouterKind::Negotiated
        );
        let err = "fancy".parse::<RouterKind>().unwrap_err();
        assert!(err.to_string().contains("unknown router"));
        assert_eq!(RouterKind::Negotiated.to_string(), "negotiated");
        assert_eq!(RouterKind::default(), RouterKind::Greedy);
    }

    #[test]
    fn factory_builds_matching_engines() {
        let fabric = quale();
        let topo = fabric.topology();
        let config = RouterConfig::qspr(&TechParams::date2012());
        for kind in [RouterKind::Greedy, RouterKind::Negotiated] {
            let factory: &dyn RouterFactory = &kind;
            let engine = factory.build(topo, config);
            assert_eq!(engine.name(), kind.as_str());
            assert_eq!(engine.config(), &config);
            assert_eq!(engine.stats(), RoutingStats::default());
        }
    }

    #[test]
    fn seeded_factory_reports_its_name_and_zero_seed_is_a_noop() {
        let fabric = quale();
        let topo = fabric.topology();
        let tech = TechParams::date2012();
        let config = RouterConfig::qspr(&tech);
        let seeded = SeededNegotiated::new("negotiated+sta", vec![0; topo.segments().len()]);
        assert_eq!(RouterFactory::name(&seeded), "negotiated+sta");
        assert_eq!(seeded.seed().len(), topo.segments().len());

        // Zero history seed must behave exactly like a fresh negotiated
        // engine on a contended batch.
        let state = ResourceState::new(topo);
        let traps = topo.traps_by_distance(fabric.center());
        let requests = [
            RouteRequest::new(traps[0], traps[60]),
            RouteRequest::new(traps[1], traps[61]),
            RouteRequest::new(traps[2], traps[62]),
        ];
        let mut plain = NegotiatedRouter::new(topo, config);
        let mut from_seed = seeded.build(topo, config);
        let (pp, pe) = plain.route_batch(&state, &requests);
        let (sp, se) = from_seed.route_batch(&state, &requests);
        assert_eq!(pp, sp);
        assert_eq!(pe, se);
    }

    #[test]
    fn history_seed_prices_segments_from_the_first_epoch() {
        // Seed every segment the unseeded engine used for one mover;
        // under soft capacities the seeded engine must find a route that
        // avoids at least one of them (the detour exists on the fabric),
        // or pay the history price knowingly. Either way routing still
        // succeeds — seeding can never make a mover unroutable.
        let fabric = quale();
        let topo = fabric.topology();
        let tech = TechParams::date2012();
        let config = RouterConfig::qspr(&tech);
        let state = ResourceState::new(topo);
        let traps = topo.traps_by_distance(fabric.center());
        let requests = [RouteRequest::new(traps[0], traps[80])];
        let mut plain = NegotiatedRouter::new(topo, config);
        let (pp, _) = plain.route_batch(&state, &requests);
        let baseline = pp[0].as_ref().expect("quiet fabric routes");

        let mut seed = vec![0u32; topo.segments().len()];
        for u in baseline.resources() {
            if let Resource::Segment(s) = u.resource {
                seed[s.index()] = 8;
            }
        }
        let mut seeded_engine = NegotiatedRouter::new(topo, config).with_history_seed(&seed);
        let (sp, _) = seeded_engine.route_batch(&state, &requests);
        assert!(sp[0].is_some(), "seeding must not block routing");
    }

    #[test]
    fn greedy_batch_matches_sequential_routing() {
        let fabric = quale();
        let topo = fabric.topology();
        let tech = TechParams::date2012();
        let config = RouterConfig::qspr(&tech);
        let router = Router::new(topo, config);
        let mut engine = GreedyRouter::new(topo, config);
        let state = ResourceState::new(topo);
        let traps = topo.traps_by_distance(fabric.center());
        let requests = [
            RouteRequest::new(traps[0], traps[50]),
            RouteRequest::new(traps[1], traps[51]),
        ];

        let (plans, epoch) = engine.route_batch(&state, &requests);
        // Reference: route by hand, booking between the two.
        let mut manual = ResourceState::new(topo);
        let first = router.route(&manual, traps[0], traps[50]).unwrap();
        for u in first.resources() {
            manual.book(u.resource).unwrap();
        }
        let second = router.route(&manual, traps[1], traps[51]).unwrap();
        assert_eq!(plans[0].as_ref(), Some(&first));
        assert_eq!(plans[1].as_ref(), Some(&second));
        assert_eq!(epoch.iterations, 0);
        assert!(epoch.max_pressure >= 1);
        assert_eq!(engine.stats().epochs, 1);
    }

    #[test]
    fn negotiated_ties_return_greedy_plans_verbatim() {
        // Far-apart movers share nothing; negotiation must not diverge.
        let fabric = quale();
        let topo = fabric.topology();
        let tech = TechParams::date2012();
        let config = RouterConfig::qspr(&tech);
        let state = ResourceState::new(topo);
        let order = topo.traps_by_distance(Coord::new(0, 0));
        let (n, far) = (order.len(), order.len() - 1);
        let requests = [
            RouteRequest::new(order[0], order[1]),
            RouteRequest::new(order[far], order[n - 2]),
        ];
        let mut greedy = GreedyRouter::new(topo, config);
        let mut negotiated = NegotiatedRouter::new(topo, config);
        let (gp, _) = greedy.route_batch(&state, &requests);
        let (np, ne) = negotiated.route_batch(&state, &requests);
        assert_eq!(gp, np);
        assert_eq!(ne.iterations, 0, "nothing shared, nothing to negotiate");
    }

    /// A fabric where mover A's *shortest* path monopolizes the one
    /// corridor mover B can use at all, while A has a slightly longer
    /// detour through a second corridor. Greedy routes A first (top
    /// corridor) and leaves B blocked under capacity 1; negotiation
    /// pushes A onto the detour so both movers route.
    fn two_corridor_fabric() -> Fabric {
        Fabric::from_ascii(
            "..T.......T..\n\
             .+---------+.\n\
             T|.........|T\n\
             .|.........|.\n\
             .+---------+.\n",
        )
        .unwrap()
    }

    #[test]
    fn negotiation_unblocks_capacity_one_conflicts() {
        let fabric = two_corridor_fabric();
        let topo = fabric.topology();
        let tech = TechParams::date2012().without_multiplexing();
        let config = RouterConfig {
            channel_capacity: 1,
            junction_capacity: 1,
            ..RouterConfig::qspr(&tech)
        };
        let state = ResourceState::new(topo);
        // A crosses left-to-right (detour exists); B lives on the top
        // corridor (no alternative).
        let a_src = topo.trap_at(Coord::new(2, 0)).unwrap();
        let a_dst = topo.trap_at(Coord::new(2, 12)).unwrap();
        let b_src = topo.trap_at(Coord::new(0, 2)).unwrap();
        let b_dst = topo.trap_at(Coord::new(0, 10)).unwrap();
        let requests = [
            RouteRequest::new(a_src, a_dst),
            RouteRequest::new(b_src, b_dst),
        ];

        let mut greedy = GreedyRouter::new(topo, config);
        let (gp, _) = greedy.route_batch(&state, &requests);
        assert!(gp[0].is_some());
        assert!(gp[1].is_none(), "greedy A monopolizes B's only corridor");

        let mut negotiated = NegotiatedRouter::new(topo, config);
        let (np, epoch) = negotiated.route_batch(&state, &requests);
        assert!(
            np[0].is_some() && np[1].is_some(),
            "negotiation routes both"
        );
        assert!(epoch.iterations >= 1, "a rip-up round was needed");
        assert!(epoch.ripped >= 1);
        assert!(epoch.max_pressure > config.channel_capacity);
        // The joint answer respects hard capacity: no shared resources.
        let mut seen = std::collections::BTreeSet::new();
        for plan in np.iter().flatten() {
            for u in plan.resources() {
                assert!(
                    seen.insert(u.resource),
                    "capacity-1 overlap on {}",
                    u.resource
                );
            }
        }
    }

    #[test]
    fn stats_accumulate_across_epochs() {
        let fabric = quale();
        let topo = fabric.topology();
        let config = RouterConfig::qspr(&TechParams::date2012());
        let mut engine = NegotiatedRouter::new(topo, config);
        let state = ResourceState::new(topo);
        let traps = topo.traps_by_distance(fabric.center());
        for i in 0..3 {
            let _ = engine.route_batch(&state, &[RouteRequest::new(traps[i], traps[i + 20])]);
        }
        assert_eq!(engine.stats().epochs, 3);
    }

    /// Congested multi-epoch workload: center-crossing movers under
    /// capacity 1 so both the speculative merge conflicts and the
    /// rip-up rounds actually fire.
    fn congested_epochs(topo: &Topology, center: Coord) -> Vec<Vec<RouteRequest>> {
        let traps = topo.traps_by_distance(center);
        (0..3)
            .map(|epoch| {
                (0..8)
                    .map(|i| {
                        let from = traps[epoch * 2 + i];
                        let to = traps[traps.len() - 1 - i * 3 - epoch];
                        RouteRequest::new(from, to)
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn parallel_engines_match_sequential_bytes() {
        let fabric = quale();
        let topo = fabric.topology();
        let tech = TechParams::date2012().without_multiplexing();
        let config = RouterConfig {
            channel_capacity: 1,
            junction_capacity: 1,
            ..RouterConfig::qspr(&tech)
        };
        let epochs = congested_epochs(topo, fabric.center());
        let state = ResourceState::new(topo);
        for kind in [RouterKind::Greedy, RouterKind::Negotiated] {
            let mut reference = kind.build(topo, config);
            let baseline: Vec<_> = epochs
                .iter()
                .map(|reqs| reference.route_batch(&state, reqs))
                .collect();
            for jobs in [2, 4, 8] {
                let mut engine = kind.build(topo, config);
                engine.set_parallelism(jobs);
                for (reqs, expected) in epochs.iter().zip(&baseline) {
                    let got = engine.route_batch(&state, reqs);
                    assert_eq!(
                        &got, expected,
                        "{kind} with jobs={jobs} diverged from sequential"
                    );
                }
                assert_eq!(engine.stats(), reference.stats());
            }
        }
    }

    #[test]
    fn parallel_refine_epoch_matches_sequential_bytes() {
        let fabric = quale();
        let topo = fabric.topology();
        let tech = TechParams::date2012().without_multiplexing();
        let config = RouterConfig {
            channel_capacity: 1,
            junction_capacity: 1,
            ..RouterConfig::qspr(&tech)
        };
        let state = ResourceState::new(topo);
        let requests = &congested_epochs(topo, fabric.center())[0];
        let mut reference = NegotiatedRouter::new(topo, config);
        let (plans, _) = reference.route_batch(&state, requests);
        let incumbents: Vec<RoutePlan> = plans.into_iter().flatten().collect();
        assert!(incumbents.len() >= 2, "need incumbents to refine");
        let expected = reference.refine_epoch(&state, &incumbents);
        for jobs in [2, 4, 8] {
            let mut engine = NegotiatedRouter::new(topo, config);
            engine.set_parallelism(jobs);
            let (_, _) = engine.route_batch(&state, requests);
            assert_eq!(
                engine.refine_epoch(&state, &incumbents),
                expected,
                "refine_epoch with jobs={jobs} diverged"
            );
        }
    }

    /// A dumbbell fabric — two congested clusters joined by one long
    /// corridor — partitions its conflicted movers into two far-apart
    /// conflict regions whose renegotiation searches stay local, so the
    /// region-parallel rip-up actually *adopts* speculative rounds
    /// (verified by instrumentation when the path was built) instead of
    /// always falling back sequentially as it does when every search
    /// sprawls across a shared fabric. Parity with the sequential
    /// engine must hold bit-for-bit either way.
    #[test]
    fn region_parallel_rip_matches_sequential_on_dumbbell() {
        let corridor = 400;
        let cluster = [
            "+-+-+", "|T|T|", "+-+-+", "|T|T|", "+-+-+", "|T|T|", "+-+-+",
        ];
        let mut ascii = String::new();
        for (r, row) in cluster.iter().enumerate() {
            ascii.push_str(row);
            let fill = if r == 6 { '-' } else { '.' };
            ascii.extend(std::iter::repeat(fill).take(corridor));
            ascii.push_str(row);
            ascii.push('\n');
        }
        let fabric = Fabric::from_ascii(&ascii).unwrap();
        let topo = fabric.topology();
        let tech = TechParams::date2012().without_multiplexing();
        let config = RouterConfig::qspr(&tech);
        let t = |r: u16, c: u16| topo.trap_at(qspr_fabric::Coord::new(r, c)).unwrap();
        let far = 5 + corridor as u16;
        // Opposing same-row movers per cluster: guaranteed channel
        // conflicts whose rip-up detours stay inside the cluster.
        let requests = vec![
            RouteRequest::new(t(1, 1), t(1, 3)),
            RouteRequest::new(t(1, 3), t(1, 1)),
            RouteRequest::new(t(1, far + 1), t(1, far + 3)),
            RouteRequest::new(t(1, far + 3), t(1, far + 1)),
        ];
        let state = ResourceState::new(topo);
        let mut reference = NegotiatedRouter::new(topo, config);
        let expected = reference.route_batch(&state, &requests);
        assert!(expected.1.iterations > 0, "workload must trigger rip-up");
        for jobs in [2, 4] {
            let mut engine = NegotiatedRouter::new(topo, config);
            engine.set_parallelism(jobs);
            let got = engine.route_batch(&state, &requests);
            assert_eq!(got, expected, "jobs={jobs} diverged on dumbbell");
            assert_eq!(engine.stats(), reference.stats());
        }
    }
}
