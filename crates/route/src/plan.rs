//! Cell-level route plans: the micro-command material for one qubit's
//! relocation.

use qspr_fabric::{Coord, Time, TrapId};

use crate::resource::Resource;

/// One micro-relocation of a qubit (paper §II.B).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Step {
    /// Advance one cell (into `to`) without changing direction: `T_move`.
    Move {
        /// The cell the qubit occupies after the step.
        to: Coord,
    },
    /// Change movement direction at the junction cell `at`: `T_turn`.
    Turn {
        /// The junction where the turn happens.
        at: Coord,
    },
}

/// A booked resource with the relative time the qubit vacates it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResourceUse {
    /// The segment or junction occupied.
    pub resource: Resource,
    /// Offset from the route's start time at which the qubit exits the
    /// resource (and the booking may be released).
    pub exit_offset: Time,
}

/// The route of one qubit from its current trap to a target trap.
///
/// Holds the full cell-level [`Step`] sequence (for micro-command traces
/// and validation), the total move/turn counts, and the resource bookings
/// with release offsets. The physical travel duration is
/// `moves·T_move + turns·T_turn`; the congestion-weighted Dijkstra cost
/// used for path *selection* is available as [`RoutePlan::est_cost`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoutePlan {
    from: TrapId,
    to: TrapId,
    steps: Vec<Step>,
    resources: Vec<ResourceUse>,
    moves: u32,
    turns: u32,
    duration: Time,
    est_cost: u64,
}

impl RoutePlan {
    /// A plan for a qubit that is already where it needs to be.
    pub fn stationary(trap: TrapId) -> RoutePlan {
        RoutePlan {
            from: trap,
            to: trap,
            steps: Vec::new(),
            resources: Vec::new(),
            moves: 0,
            turns: 0,
            duration: 0,
            est_cost: 0,
        }
    }

    /// Assembles a plan from raw steps. `resource_exits` pairs each booked
    /// resource with the index of the step whose completion releases it.
    ///
    /// # Panics
    ///
    /// Panics if a resource exit index is out of range (internal router
    /// invariant).
    pub(crate) fn from_steps(
        from: TrapId,
        to: TrapId,
        steps: Vec<Step>,
        resource_exits: Vec<(Resource, usize)>,
        t_move: Time,
        t_turn: Time,
        est_cost: u64,
    ) -> RoutePlan {
        let mut cumulative = Vec::with_capacity(steps.len());
        let mut t = 0;
        let mut moves = 0;
        let mut turns = 0;
        for step in &steps {
            match step {
                Step::Move { .. } => {
                    t += t_move;
                    moves += 1;
                }
                Step::Turn { .. } => {
                    t += t_turn;
                    turns += 1;
                }
            }
            cumulative.push(t);
        }
        let resources = resource_exits
            .into_iter()
            .map(|(resource, idx)| ResourceUse {
                resource,
                exit_offset: cumulative[idx],
            })
            .collect();
        RoutePlan {
            from,
            to,
            steps,
            resources,
            moves,
            turns,
            duration: t,
            est_cost,
        }
    }

    /// The trap the qubit starts from.
    pub fn from_trap(&self) -> TrapId {
        self.from
    }

    /// The trap the qubit ends in.
    pub fn to_trap(&self) -> TrapId {
        self.to
    }

    /// The cell-level relocation sequence.
    pub fn steps(&self) -> &[Step] {
        &self.steps
    }

    /// Resources this route books, with release offsets sorted in route
    /// order (non-decreasing offsets).
    pub fn resources(&self) -> &[ResourceUse] {
        &self.resources
    }

    /// Number of one-cell moves.
    pub fn moves(&self) -> u32 {
        self.moves
    }

    /// Number of direction changes at junctions.
    pub fn turns(&self) -> u32 {
        self.turns
    }

    /// Physical travel time: `moves·T_move + turns·T_turn`.
    pub fn duration(&self) -> Time {
        self.duration
    }

    /// The congestion-weighted cost Dijkstra optimized; ≥ the share of
    /// [`RoutePlan::duration`] spent on channels when the fabric is quiet.
    pub fn est_cost(&self) -> u64 {
        self.est_cost
    }

    /// `true` when the qubit does not move at all.
    pub fn is_stationary(&self) -> bool {
        self.steps.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qspr_fabric::SegmentId;

    #[test]
    fn stationary_plan_is_empty() {
        let p = RoutePlan::stationary(TrapId(3));
        assert!(p.is_stationary());
        assert_eq!(p.duration(), 0);
        assert_eq!(p.from_trap(), p.to_trap());
        assert!(p.resources().is_empty());
    }

    #[test]
    fn durations_and_exit_offsets() {
        let steps = vec![
            Step::Move {
                to: Coord::new(0, 1),
            },
            Step::Move {
                to: Coord::new(0, 2),
            },
            Step::Turn {
                at: Coord::new(0, 2),
            },
            Step::Move {
                to: Coord::new(1, 2),
            },
        ];
        let res = vec![(Resource::Segment(SegmentId(0)), 1)];
        let p = RoutePlan::from_steps(TrapId(0), TrapId(1), steps, res, 1, 10, 42);
        assert_eq!(p.moves(), 3);
        assert_eq!(p.turns(), 1);
        assert_eq!(p.duration(), 3 + 10);
        assert_eq!(p.est_cost(), 42);
        // Segment released after the second move completes, at t=2.
        assert_eq!(p.resources()[0].exit_offset, 2);
    }
}
