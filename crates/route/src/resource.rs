//! Bookable fabric resources and their occupancy state.

use std::fmt;

use qspr_fabric::{FabricError, JunctionId, SegmentId, Topology};

/// A capacity-limited fabric resource a moving qubit occupies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Resource {
    /// A channel segment.
    Segment(SegmentId),
    /// A junction.
    Junction(JunctionId),
}

impl fmt::Display for Resource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Resource::Segment(s) => write!(f, "{s}"),
            Resource::Junction(j) => write!(f, "{j}"),
        }
    }
}

/// Current booking counts for every segment and junction of a fabric.
///
/// A qubit books every resource on its route when the route is *issued*
/// (the paper's "already using or will use") and releases each resource at
/// the simulated moment it physically exits it.
///
/// # Examples
///
/// ```
/// use qspr_fabric::{Fabric, SegmentId};
/// use qspr_route::{Resource, ResourceState};
///
/// let fabric = Fabric::quale_45x85();
/// let mut state = ResourceState::new(fabric.topology());
/// let seg = Resource::Segment(SegmentId(0));
/// state.book(seg)?;
/// assert_eq!(state.usage(seg), 1);
/// state.release(seg);
/// assert_eq!(state.usage(seg), 0);
/// # Ok::<(), qspr_fabric::FabricError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResourceState {
    segments: Vec<u8>,
    junctions: Vec<u8>,
}

impl ResourceState {
    /// Fresh state with every resource unoccupied.
    pub fn new(topology: &Topology) -> ResourceState {
        ResourceState {
            segments: vec![0; topology.segments().len()],
            junctions: vec![0; topology.junctions().len()],
        }
    }

    /// Number of qubits currently using-or-booked on `resource`.
    ///
    /// # Panics
    ///
    /// Panics if the resource id does not belong to the topology this
    /// state was created for.
    pub fn usage(&self, resource: Resource) -> u8 {
        match resource {
            Resource::Segment(s) => self.segments[s.index()],
            Resource::Junction(j) => self.junctions[j.index()],
        }
    }

    /// Records one more qubit on `resource`.
    ///
    /// # Errors
    ///
    /// Returns [`FabricError::CapacityOverflow`] when the counter is
    /// already at `u8::MAX`: capacities are small (paper: 2), so 255
    /// concurrent bookings means a pathological capacity configuration.
    /// The counter saturates (state stays consistent) and the typed
    /// error lets the caller abort the run cleanly instead of
    /// panicking the simulator.
    ///
    /// # Panics
    ///
    /// Panics if the resource id is out of range.
    pub fn book(&mut self, resource: Resource) -> Result<(), FabricError> {
        let slot = match resource {
            Resource::Segment(s) => &mut self.segments[s.index()],
            Resource::Junction(j) => &mut self.junctions[j.index()],
        };
        if *slot == u8::MAX {
            return Err(FabricError::CapacityOverflow {
                resource: resource.to_string(),
            });
        }
        *slot += 1;
        Ok(())
    }

    /// Releases one booking of `resource`.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) when releasing an unbooked resource, which
    /// would indicate a simulator accounting bug.
    pub fn release(&mut self, resource: Resource) {
        let slot = match resource {
            Resource::Segment(s) => &mut self.segments[s.index()],
            Resource::Junction(j) => &mut self.junctions[j.index()],
        };
        debug_assert!(*slot > 0, "releasing unbooked {resource}");
        *slot = slot.saturating_sub(1);
    }

    /// Total bookings across all resources (0 when the fabric is quiet).
    pub fn total_bookings(&self) -> usize {
        self.segments.iter().map(|&n| n as usize).sum::<usize>()
            + self.junctions.iter().map(|&n| n as usize).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qspr_fabric::Fabric;

    #[test]
    fn book_release_round_trip() {
        let f = Fabric::quale_45x85();
        let mut st = ResourceState::new(f.topology());
        let r = Resource::Junction(qspr_fabric::JunctionId(3));
        assert_eq!(st.usage(r), 0);
        st.book(r).unwrap();
        st.book(r).unwrap();
        assert_eq!(st.usage(r), 2);
        assert_eq!(st.total_bookings(), 2);
        st.release(r);
        assert_eq!(st.usage(r), 1);
        st.release(r);
        assert_eq!(st.total_bookings(), 0);
    }

    #[test]
    fn saturated_counter_returns_typed_overflow() {
        let f = Fabric::quale_45x85();
        let mut st = ResourceState::new(f.topology());
        let r = Resource::Segment(qspr_fabric::SegmentId(0));
        for _ in 0..u8::MAX {
            st.book(r).unwrap();
        }
        let err = st.book(r).unwrap_err();
        assert_eq!(
            err,
            qspr_fabric::FabricError::CapacityOverflow {
                resource: r.to_string()
            }
        );
        // The counter saturated instead of wrapping.
        assert_eq!(st.usage(r), u8::MAX);
    }

    #[test]
    #[should_panic(expected = "releasing unbooked")]
    #[cfg(debug_assertions)]
    fn over_release_is_caught() {
        let f = Fabric::quale_45x85();
        let mut st = ResourceState::new(f.topology());
        st.release(Resource::Segment(qspr_fabric::SegmentId(0)));
    }
}
