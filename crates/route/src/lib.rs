//! Routing of ion qubits through an ion-trap fabric.
//!
//! Implements the QSPR paper's router (§IV.B):
//!
//! * the fabric is modelled as a weighted graph whose vertices are
//!   junctions and whose edges are channel segments;
//! * a channel edge weighs `(n+1)·length` scaled by `T_move`, where `n`
//!   counts the qubits *already using or booked to use* the channel; a
//!   full channel weighs ∞ (Eq. 2), which folds both `T_routing` and
//!   `T_congestion` into path selection;
//! * **turn awareness** (Fig. 5): every junction vertex is split into a
//!   horizontal and a vertical node joined by an edge of weight `T_turn`,
//!   so Dijkstra correctly prefers few-turn routes. The turn-blind
//!   variant (used to model QUALE/QPOS) sets that edge's weight to zero —
//!   but the returned [`RoutePlan`] still records every physical turn, so
//!   the simulator charges the cost the router ignored;
//! * an optional PathFinder-style *history* term (`history_cost`)
//!   penalizes repeatedly used channels, standing in for QUALE's
//!   negotiated-congestion router;
//! * the [`engine`] module lifts single-path queries to *batch* routing:
//!   an object-safe [`RoutingEngine`] seam with a [`GreedyRouter`]
//!   (sequential first-answer routing) and a [`NegotiatedRouter`]
//!   (full PathFinder rip-up-and-reroute over every mover of a
//!   scheduling epoch), selected via [`RouterKind`] or injected through
//!   [`RouterFactory`].
//!
//! Routes are returned as cell-level [`RoutePlan`]s: a list of
//! [`Step`]s (`Move`/`Turn`) plus the [`Resource`]s (segments, junctions)
//! the qubit books, each with the relative time at which it is released.
//!
//! # Performance
//!
//! Routing is the innermost loop of the whole mapper, so the search is
//! engineered to be allocation-free and goal-directed:
//!
//! * the graph — one node per *(junction, orientation)*, edges per
//!   same-orientation junction-to-junction segment — is precomputed
//!   once as a CSR adjacency on the topology
//!   ([`qspr_fabric::SearchGraph`]), replacing the per-pop incidence
//!   scan, orientation filter and end lookups;
//! * each [`Router`] owns a *scratch arena*: distance/predecessor
//!   arrays and the frontier heap, reused across queries and
//!   invalidated in O(1) by a generation stamp (a slot whose stamp is
//!   stale reads as unreached), so a `route` call performs no heap
//!   allocation and no O(nodes) clearing;
//! * the Dijkstra run is *goal-directed*: it terminates as soon as the
//!   target segment's entry junctions have final distances, or the
//!   frontier provably cannot beat the best same-segment (direct)
//!   candidate, and full goal junctions / full source or target
//!   segments short-circuit the search entirely. All exits are chosen
//!   so the returned plan is byte-identical to a run-to-exhaustion
//!   search (property-tested against the naive reference).
//!
//! [`NegotiatedRouter`] keeps the same discipline across rip-up
//! iterations: epoch bookings, touched-resource sets and conflict
//! marks all live in generation-stamped arrays, and each iteration
//! re-routes only the movers that actually cross a conflicted
//! resource.
//!
//! # Examples
//!
//! ```
//! use qspr_fabric::{Fabric, TechParams};
//! use qspr_route::{ResourceState, Router, RouterConfig};
//!
//! let fabric = Fabric::quale_45x85();
//! let tech = TechParams::date2012();
//! let router = Router::new(fabric.topology(), RouterConfig::qspr(&tech));
//! let state = ResourceState::new(fabric.topology());
//!
//! let traps = fabric.topology().traps_by_distance(fabric.center());
//! let plan = router
//!     .route(&state, traps[0], traps[40])
//!     .expect("uncongested fabric is routable");
//! assert!(plan.moves() > 0);
//! assert_eq!(
//!     plan.duration(),
//!     u64::from(plan.moves()) * tech.t_move + u64::from(plan.turns()) * tech.t_turn
//! );
//! ```

pub mod engine;
mod par;
mod plan;
// Test-only: keeps `proptest` a dev-dependency and the module out of
// release builds entirely (the file's inner `#![cfg(test)]` alone would
// still parse it into non-test builds).
#[cfg(test)]
mod proptests;
mod resource;
mod router;

pub use engine::{
    EpochStats, GreedyRouter, NegotiatedRouter, NegotiationConfig, ParseRouterKindError,
    RouteRequest, RouterFactory, RouterKind, RoutingEngine, RoutingStats, SeededNegotiated,
};
pub use plan::{ResourceUse, RoutePlan, Step};
pub use resource::{Resource, ResourceState};
pub use router::{Router, RouterConfig};

/// A fabric realizing the paper's Fig. 5 scenario: between the two traps,
/// a *staircase* offers the fewest moves (18) at the price of eight
/// turns, while a *ring corridor* takes two extra moves (20) but only two
/// turns. A turn-blind router picks the staircase (98µs of travel at the
/// DATE-2012 timings); the turn-aware router picks the ring (40µs).
///
/// ```
/// use qspr_fabric::{Coord, Fabric, TechParams};
/// use qspr_route::{ResourceState, Router, RouterConfig, FIG5_DEMO_FABRIC};
///
/// let fabric = Fabric::from_ascii(FIG5_DEMO_FABRIC).unwrap();
/// let topo = fabric.topology();
/// let tech = TechParams::date2012();
/// let router = Router::new(topo, RouterConfig::qspr(&tech));
/// let state = ResourceState::new(topo);
/// let s = topo.trap_at(Coord::new(7, 4)).unwrap();
/// let t = topo.trap_at(Coord::new(1, 6)).unwrap();
/// let plan = router.route(&state, s, t).unwrap();
/// assert_eq!((plan.moves(), plan.turns()), (20, 2));
/// ```
pub const FIG5_DEMO_FABRIC: &str = "\
+------+.
|.....T|.
|....+-+.
|....|...
|....+-+.
|......|.
|....+-+.
|...T|...
+----+...
";
