//! Property-based tests of the router under random load.

#![cfg(test)]

use proptest::prelude::*;

use qspr_fabric::{Fabric, TechParams, TrapId};

use crate::resource::ResourceState;
use crate::router::{Router, RouterConfig};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Book a sequence of random routes; capacities must never be
    /// exceeded, and every booked route must remain releasable.
    #[test]
    fn bookings_respect_capacity(pairs in proptest::collection::vec((0usize..900, 0usize..900), 1..12)) {
        let fabric = Fabric::quale_45x85();
        let topo = fabric.topology();
        let tech = TechParams::date2012();
        let router = Router::new(topo, RouterConfig::qspr(&tech));
        let mut state = ResourceState::new(topo);
        let n = topo.traps().len();
        let mut booked = Vec::new();
        for (a, b) in pairs {
            let from = TrapId((a % n) as u32);
            let to = TrapId((b % n) as u32);
            if from == to {
                continue;
            }
            if let Some(plan) = router.route(&state, from, to) {
                for usage in plan.resources() {
                    state.book(usage.resource);
                    let cap = match usage.resource {
                        crate::resource::Resource::Segment(_) => tech.channel_capacity,
                        crate::resource::Resource::Junction(_) => tech.junction_capacity,
                    };
                    prop_assert!(
                        state.usage(usage.resource) <= cap,
                        "{} over capacity", usage.resource
                    );
                }
                booked.push(plan);
            }
        }
        for plan in &booked {
            for usage in plan.resources() {
                state.release(usage.resource);
            }
        }
        prop_assert_eq!(state.total_bookings(), 0);
    }

    /// Congestion can only make the chosen route costlier, never cheaper.
    #[test]
    fn congestion_is_monotone(a in 0usize..900, b in 0usize..900, load in 0usize..900) {
        let fabric = Fabric::quale_45x85();
        let topo = fabric.topology();
        let tech = TechParams::date2012();
        let router = Router::new(topo, RouterConfig::qspr(&tech));
        let n = topo.traps().len();
        let from = TrapId((a % n) as u32);
        let to = TrapId((b % n) as u32);
        prop_assume!(from != to);

        let quiet = ResourceState::new(topo);
        let base = router.route(&quiet, from, to).expect("connected fabric");

        // Apply an unrelated route's bookings as load.
        let mut loaded = ResourceState::new(topo);
        let lt = TrapId((load % n) as u32);
        if lt != from && lt != to {
            if let Some(plan) = router.route(&loaded, from, lt) {
                for usage in plan.resources() {
                    loaded.book(usage.resource);
                }
            }
        }
        if let Some(under_load) = router.route(&loaded, from, to) {
            prop_assert!(under_load.est_cost() >= base.est_cost());
        }
    }

    /// Routing is symmetric in travel time on a quiet fabric (paths may
    /// differ, but the physical duration must match: the graph is
    /// undirected and the cost model direction-free).
    #[test]
    fn quiet_routing_is_duration_symmetric(a in 0usize..900, b in 0usize..900) {
        let fabric = Fabric::quale_45x85();
        let topo = fabric.topology();
        let tech = TechParams::date2012();
        let router = Router::new(topo, RouterConfig::qspr(&tech));
        let state = ResourceState::new(topo);
        let n = topo.traps().len();
        let from = TrapId((a % n) as u32);
        let to = TrapId((b % n) as u32);
        prop_assume!(from != to);
        let fwd = router.route(&state, from, to).expect("connected");
        let bwd = router.route(&state, to, from).expect("connected");
        prop_assert_eq!(fwd.duration(), bwd.duration());
        prop_assert_eq!(fwd.moves(), bwd.moves());
    }
}
