//! Property-based tests of the router under random load.

#![cfg(test)]

use proptest::prelude::*;

use qspr_fabric::{Fabric, TechParams, TrapId};

use crate::engine::{RouteRequest, RouterKind};
use crate::plan::Step;
use crate::resource::ResourceState;
use crate::router::{Router, RouterConfig};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Book a sequence of random routes; capacities must never be
    /// exceeded, and every booked route must remain releasable.
    #[test]
    fn bookings_respect_capacity(pairs in proptest::collection::vec((0usize..900, 0usize..900), 1..12)) {
        let fabric = Fabric::quale_45x85();
        let topo = fabric.topology();
        let tech = TechParams::date2012();
        let router = Router::new(topo, RouterConfig::qspr(&tech));
        let mut state = ResourceState::new(topo);
        let n = topo.traps().len();
        let mut booked = Vec::new();
        for (a, b) in pairs {
            let from = TrapId((a % n) as u32);
            let to = TrapId((b % n) as u32);
            if from == to {
                continue;
            }
            if let Some(plan) = router.route(&state, from, to) {
                for usage in plan.resources() {
                    state.book(usage.resource).unwrap();
                    let cap = match usage.resource {
                        crate::resource::Resource::Segment(_) => tech.channel_capacity,
                        crate::resource::Resource::Junction(_) => tech.junction_capacity,
                    };
                    prop_assert!(
                        state.usage(usage.resource) <= cap,
                        "{} over capacity", usage.resource
                    );
                }
                booked.push(plan);
            }
        }
        for plan in &booked {
            for usage in plan.resources() {
                state.release(usage.resource);
            }
        }
        prop_assert_eq!(state.total_bookings(), 0);
    }

    /// Congestion can only make the chosen route costlier, never cheaper.
    #[test]
    fn congestion_is_monotone(a in 0usize..900, b in 0usize..900, load in 0usize..900) {
        let fabric = Fabric::quale_45x85();
        let topo = fabric.topology();
        let tech = TechParams::date2012();
        let router = Router::new(topo, RouterConfig::qspr(&tech));
        let n = topo.traps().len();
        let from = TrapId((a % n) as u32);
        let to = TrapId((b % n) as u32);
        prop_assume!(from != to);

        let quiet = ResourceState::new(topo);
        let base = router.route(&quiet, from, to).expect("connected fabric");

        // Apply an unrelated route's bookings as load.
        let mut loaded = ResourceState::new(topo);
        let lt = TrapId((load % n) as u32);
        if lt != from && lt != to {
            if let Some(plan) = router.route(&loaded, from, lt) {
                for usage in plan.resources() {
                    loaded.book(usage.resource).unwrap();
                }
            }
        }
        if let Some(under_load) = router.route(&loaded, from, to) {
            prop_assert!(under_load.est_cost() >= base.est_cost());
        }
    }

    /// Epoch invariant, both engines: the joint batch answer respects
    /// the channel/junction capacities at overlapping times. Every plan
    /// of an epoch starts at once and holds each booked resource from
    /// t = 0 until its exit offset, so two plans overlap on a resource
    /// exactly when both book it — the per-resource plan count must
    /// stay within capacity. Under capacity 1 this is the ISSUE's "no
    /// two committed plans occupy the same segment at overlapping
    /// times".
    #[test]
    fn batch_answers_respect_capacity_at_overlapping_times(
        pairs in proptest::collection::vec((0usize..900, 0usize..900), 2..7),
        seed_cap in 0u8..2,
    ) {
        let fabric = Fabric::quale_45x85();
        let topo = fabric.topology();
        let tech = TechParams::date2012();
        let config = RouterConfig {
            channel_capacity: 1 + seed_cap,
            junction_capacity: 1 + seed_cap,
            ..RouterConfig::qspr(&tech)
        };
        let n = topo.traps().len();
        let requests: Vec<RouteRequest> = pairs
            .iter()
            .map(|&(a, b)| RouteRequest::new(TrapId((a % n) as u32), TrapId((b % n) as u32)))
            .filter(|r| r.from != r.to)
            .collect();
        prop_assume!(!requests.is_empty());
        for kind in [RouterKind::Greedy, RouterKind::Negotiated] {
            let mut engine = kind.build(topo, config);
            let state = ResourceState::new(topo);
            let (plans, _epoch) = engine.route_batch(&state, &requests);
            // Count overlapping occupancy per resource across the epoch.
            let mut occupancy = ResourceState::new(topo);
            for plan in plans.iter().flatten() {
                for usage in plan.resources() {
                    occupancy.book(usage.resource).unwrap();
                    let cap = match usage.resource {
                        crate::Resource::Segment(_) => config.channel_capacity,
                        crate::Resource::Junction(_) => config.junction_capacity,
                    };
                    prop_assert!(
                        occupancy.usage(usage.resource) <= cap,
                        "{kind}: {} over capacity {cap} in one epoch",
                        usage.resource
                    );
                }
            }
        }
    }

    /// Plan invariant, both engines: `RoutePlan::duration` equals the
    /// sum of its steps' durations (each `Move` costs `t_move`, each
    /// `Turn` costs `t_turn`).
    #[test]
    fn plan_duration_is_the_sum_of_step_durations(
        pairs in proptest::collection::vec((0usize..900, 0usize..900), 1..6),
    ) {
        let fabric = Fabric::quale_45x85();
        let topo = fabric.topology();
        let tech = TechParams::date2012();
        let config = RouterConfig::qspr(&tech);
        let n = topo.traps().len();
        let requests: Vec<RouteRequest> = pairs
            .iter()
            .map(|&(a, b)| RouteRequest::new(TrapId((a % n) as u32), TrapId((b % n) as u32)))
            .collect();
        for kind in [RouterKind::Greedy, RouterKind::Negotiated] {
            let mut engine = kind.build(topo, config);
            let state = ResourceState::new(topo);
            let (plans, _epoch) = engine.route_batch(&state, &requests);
            for plan in plans.iter().flatten() {
                let stepped: u64 = plan
                    .steps()
                    .iter()
                    .map(|s| match s {
                        Step::Move { .. } => config.t_move,
                        Step::Turn { .. } => config.t_turn,
                    })
                    .sum();
                prop_assert_eq!(plan.duration(), stepped, "{} plan", kind);
                prop_assert_eq!(
                    plan.duration(),
                    u64::from(plan.moves()) * config.t_move
                        + u64::from(plan.turns()) * config.t_turn
                );
            }
        }
    }

    /// Search equivalence: the arena-backed, goal-directed search must
    /// return plans byte-identical to the seed's fresh, run-to-
    /// exhaustion naive Dijkstra (`Router::route_naive`) — across
    /// random regular fabrics, random booked load, random trap pairs,
    /// and both hard mode and the negotiation's soft overlay mode.
    /// Identity of the whole `RoutePlan` subsumes the durations and
    /// resource usage the ISSUE asks for.
    #[test]
    fn arena_search_equals_naive_dijkstra(
        rows in 5u16..18,
        cols in 5u16..18,
        pitch in 2u16..5,
        load in proptest::collection::vec((0usize..64, 0usize..64), 0..6),
        pairs in proptest::collection::vec((0usize..64, 0usize..64), 1..8),
        caps in 1u8..3,
        soft_flag in 0u8..2,
    ) {
        let soft = soft_flag == 1;
        let Ok(fabric) = qspr_fabric::RegularFabricSpec::new(rows, cols, pitch).build() else {
            // Degenerate spec (too small for a tile); nothing to test.
            return Ok(());
        };
        let topo = fabric.topology();
        let tech = TechParams::date2012();
        let config = RouterConfig {
            channel_capacity: caps,
            junction_capacity: caps,
            ..RouterConfig::qspr(&tech)
        };
        let router = Router::new(topo, config);
        let n = topo.traps().len();

        // Random booked load (routes committed under hard capacities).
        let mut state = ResourceState::new(topo);
        for (a, b) in load {
            let (from, to) = (TrapId((a % n) as u32), TrapId((b % n) as u32));
            if from == to {
                continue;
            }
            if let Some(plan) = router.route(&state, from, to) {
                for usage in plan.resources() {
                    state.book(usage.resource).unwrap();
                }
            }
        }

        let history = vec![3u32; topo.segments().len()];
        let extra_segments = vec![0u8; topo.segments().len()];
        let extra_junctions = vec![0u8; topo.junctions().len()];
        let overlay = soft.then_some(crate::router::Overlay {
            extra_segments: &extra_segments,
            extra_junctions: &extra_junctions,
            soft: true,
            pres_weight: 16,
            history: &history,
            hist_weight: 1,
        });

        for (a, b) in pairs {
            let (from, to) = (TrapId((a % n) as u32), TrapId((b % n) as u32));
            let fast = router.route_with(&state, from, to, overlay.as_ref());
            let naive = router.route_naive(&state, from, to, overlay.as_ref());
            prop_assert_eq!(&fast, &naive, "from {} to {} (soft={})", from, to, soft);
            if let Some(plan) = &fast {
                prop_assert_eq!(plan.from_trap(), from);
                prop_assert_eq!(plan.to_trap(), to);
            }
            // Both engines answer single-route probes through the same
            // search; they must agree with the naive reference too.
            for kind in [RouterKind::Greedy, RouterKind::Negotiated] {
                let engine = kind.build(topo, config);
                let via_engine = engine.route_one(&state, from, to);
                prop_assert_eq!(
                    &via_engine,
                    &router.route_naive(&state, from, to, None),
                    "{} route_one from {} to {}", kind, from, to
                );
            }
        }
    }

    /// Per-resource capacities from the spec layer. Two properties:
    /// on a fabric with *heterogeneous* junction/segment overrides the
    /// arena search stays identical to the naive reference (both read
    /// capacities through the same per-resource tables), and overrides
    /// *equal* to the config's global caps are indistinguishable from
    /// the override-free fabric — the uniform-fabric byte-identity
    /// guarantee.
    #[test]
    fn per_resource_capacities_agree_with_naive_and_uniform_baseline(
        rows in 9u16..16,
        cols in 9u16..16,
        junction_cap in 1u8..5,
        channel_cap in 1u8..5,
        load in proptest::collection::vec((0usize..64, 0usize..64), 0..5),
        pairs in proptest::collection::vec((0usize..64, 0usize..64), 1..6),
    ) {
        let tech = TechParams::date2012();
        let config = RouterConfig::qspr(&tech);
        let plain = qspr_fabric::RegularFabricSpec::new(rows, cols, 4)
            .build()
            .expect("geometry fits at least one pitch-4 tile");

        // Heterogeneous overrides: wide junctions on the left half,
        // fat channels on the top half, defaults elsewhere.
        let hetero_doc = format!(
            r#"{{
                "name": "hetero",
                "types": [
                    {{"name": "wide", "kind": "junction", "capacity": {junction_cap}}},
                    {{"name": "fat", "kind": "channel", "capacity": {channel_cap}}}
                ],
                "regions": [{{"family": "regular", "rows": {rows}, "cols": {cols}, "pitch": 4}}],
                "capacities": [
                    {{"type": "wide", "rect": [0, 0, {}, {}]}},
                    {{"type": "fat", "rect": [0, 0, {}, {}]}}
                ]
            }}"#,
            rows - 1, cols / 2, rows / 2, cols - 1,
        );
        let hetero = qspr_fabric::FabricSpec::parse_json(&hetero_doc)
            .expect("well-formed document")
            .build()
            .expect("halves of a 9+ grid contain junctions and channels");
        prop_assert!(hetero.topology().has_capacity_overrides());
        let router = Router::new(hetero.topology(), config);
        let n = hetero.topology().traps().len();

        let mut state = ResourceState::new(hetero.topology());
        for &(a, b) in &load {
            let (from, to) = (TrapId((a % n) as u32), TrapId((b % n) as u32));
            if from == to {
                continue;
            }
            if let Some(plan) = router.route(&state, from, to) {
                for usage in plan.resources() {
                    state.book(usage.resource).unwrap();
                    prop_assert!(
                        state.usage(usage.resource) <= router.capacity(usage.resource),
                        "{} over its per-resource capacity", usage.resource
                    );
                }
            }
        }
        for &(a, b) in &pairs {
            let (from, to) = (TrapId((a % n) as u32), TrapId((b % n) as u32));
            let fast = router.route_with(&state, from, to, None);
            let naive = router.route_naive(&state, from, to, None);
            prop_assert_eq!(&fast, &naive, "hetero from {} to {}", from, to);
        }

        // Uniform baseline: overriding every resource with the global
        // caps must reproduce the override-free plans byte for byte.
        let uniform_doc = format!(
            r#"{{
                "name": "uniform",
                "types": [
                    {{"name": "j", "kind": "junction", "capacity": {}}},
                    {{"name": "c", "kind": "channel", "capacity": {}}}
                ],
                "regions": [{{"family": "regular", "rows": {rows}, "cols": {cols}, "pitch": 4}}],
                "capacities": [
                    {{"type": "j", "rect": [0, 0, {}, {}]}},
                    {{"type": "c", "rect": [0, 0, {}, {}]}}
                ]
            }}"#,
            config.junction_capacity, config.channel_capacity,
            rows - 1, cols - 1, rows - 1, cols - 1,
        );
        let uniform = qspr_fabric::FabricSpec::parse_json(&uniform_doc)
            .expect("well-formed document")
            .build()
            .expect("full-grid rects always match");
        prop_assert!(uniform.topology().has_capacity_overrides());
        let base_router = Router::new(plain.topology(), config);
        let uni_router = Router::new(uniform.topology(), config);
        let mut base_state = ResourceState::new(plain.topology());
        let mut uni_state = ResourceState::new(uniform.topology());
        for &(a, b) in &load {
            let (from, to) = (TrapId((a % n) as u32), TrapId((b % n) as u32));
            if from == to {
                continue;
            }
            if let Some(plan) = base_router.route(&base_state, from, to) {
                for usage in plan.resources() {
                    base_state.book(usage.resource).unwrap();
                    uni_state.book(usage.resource).unwrap();
                }
            }
        }
        for &(a, b) in &pairs {
            let (from, to) = (TrapId((a % n) as u32), TrapId((b % n) as u32));
            prop_assert_eq!(
                base_router.route(&base_state, from, to),
                uni_router.route(&uni_state, from, to),
                "uniform overrides must not change plans ({} to {})", from, to
            );
        }
    }

    /// Routing is symmetric in travel time on a quiet fabric (paths may
    /// differ, but the physical duration must match: the graph is
    /// undirected and the cost model direction-free).
    #[test]
    fn quiet_routing_is_duration_symmetric(a in 0usize..900, b in 0usize..900) {
        let fabric = Fabric::quale_45x85();
        let topo = fabric.topology();
        let tech = TechParams::date2012();
        let router = Router::new(topo, RouterConfig::qspr(&tech));
        let state = ResourceState::new(topo);
        let n = topo.traps().len();
        let from = TrapId((a % n) as u32);
        let to = TrapId((b % n) as u32);
        prop_assume!(from != to);
        let fwd = router.route(&state, from, to).expect("connected");
        let bwd = router.route(&state, to, from).expect("connected");
        prop_assert_eq!(fwd.duration(), bwd.duration());
        prop_assert_eq!(fwd.moves(), bwd.moves());
    }
}
