//! Congestion- and turn-aware shortest-path routing (paper §IV.B, Fig. 5).
//!
//! The search runs over the topology's precomputed
//! [`SearchGraph`] and an allocation-free, generation-stamped
//! [`SearchScratch`] arena, with goal-directed early termination — see
//! the crate docs ("Performance") for the design.

use std::cell::{Cell, RefCell};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::sync::Arc;

use qspr_fabric::{
    JunctionId, SearchGraph, Segment, SegmentEnd, SegmentId, TechParams, Time, Topology, TrapId,
};

use crate::plan::{RoutePlan, Step};
use crate::resource::{Resource, ResourceState};

/// Routing policy knobs.
///
/// # Examples
///
/// ```
/// use qspr_fabric::TechParams;
/// use qspr_route::RouterConfig;
///
/// let tech = TechParams::date2012();
/// let qspr = RouterConfig::qspr(&tech);
/// assert!(qspr.turn_aware);
/// let quale = RouterConfig::quale(&tech);
/// assert!(!quale.turn_aware);
/// assert_eq!(quale.channel_capacity, 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouterConfig {
    /// Model turn delays in path selection (the Fig. 5 enhancement).
    pub turn_aware: bool,
    /// Add a PathFinder-style history penalty to often-used channels
    /// (stands in for QUALE's negotiated-congestion router).
    pub history_cost: bool,
    /// Per-cell move delay.
    pub t_move: Time,
    /// Turn delay at a junction.
    pub t_turn: Time,
    /// Concurrent qubits allowed in one channel segment.
    pub channel_capacity: u8,
    /// Concurrent qubits allowed through one junction.
    pub junction_capacity: u8,
}

impl RouterConfig {
    /// The QSPR router: turn-aware, multiplexed channels (capacity from
    /// `tech`), pure Eq. 2 weights.
    pub fn qspr(tech: &TechParams) -> RouterConfig {
        RouterConfig {
            turn_aware: true,
            history_cost: false,
            t_move: tech.t_move,
            t_turn: tech.t_turn,
            channel_capacity: tech.channel_capacity,
            junction_capacity: tech.junction_capacity,
        }
    }

    /// The QUALE-era router: turn-blind (turns are still *executed* and
    /// charged by the simulator, just invisible to path selection),
    /// no channel multiplexing, PathFinder-style history costs.
    pub fn quale(tech: &TechParams) -> RouterConfig {
        RouterConfig {
            turn_aware: false,
            history_cost: true,
            t_move: tech.t_move,
            t_turn: tech.t_turn,
            channel_capacity: 1,
            junction_capacity: 1,
        }
    }
}

const INF: u64 = u64::MAX;

/// Extra congestion context layered over a [`ResourceState`] for one
/// routing query, used by the negotiated-congestion engine
/// ([`crate::NegotiatedRouter`]): batch-internal bookings that are not
/// yet committed to the shared state, PathFinder present/history
/// penalty terms, and a *soft* mode in which over-capacity resources
/// become expensive instead of impassable (the rip-up-and-reroute
/// iterations need to see *how* contended a resource is, not just that
/// it is full).
#[derive(Debug, Clone, Copy)]
pub(crate) struct Overlay<'o> {
    /// Per-segment usage added on top of the shared state.
    pub extra_segments: &'o [u8],
    /// Per-junction usage added on top of the shared state.
    pub extra_junctions: &'o [u8],
    /// When set, over-capacity resources cost a penalty per unit of
    /// overuse instead of blocking the path outright.
    pub soft: bool,
    /// Cost charged per unit of present overuse (soft mode only).
    pub pres_weight: u64,
    /// Per-segment history counters maintained by the engine across
    /// negotiation rounds (separate from the router's own
    /// `history_cost` table).
    pub history: &'o [u32],
    /// Cost charged per unit of history on a segment.
    pub hist_weight: u64,
}

/// How a Dijkstra node was reached, for path reconstruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Prev {
    Unreached,
    /// Entered the graph from the source port via source-segment end
    /// `end`.
    Start {
        end: usize,
    },
    /// Turned at the same junction, coming from node `from`.
    Turn {
        from: usize,
    },
    /// Traversed segment `seg` coming from node `from`.
    Seg {
        from: usize,
        seg: SegmentId,
    },
}

/// Reusable search arena: per-node distance/predecessor slots plus the
/// frontier heap, owned by the [`Router`] so a `route` call allocates
/// nothing.
///
/// Slots are invalidated in O(1) per query by bumping a generation
/// counter instead of refilling the arrays: a slot whose stamp differs
/// from the current generation reads as unreached. Clearing therefore
/// costs O(nodes touched by the *previous* query), not O(all nodes).
#[derive(Debug, Clone)]
struct SearchScratch {
    /// Generation the slot arrays are valid for.
    generation: u32,
    /// Per-node generation stamp; a stale stamp means "unreached".
    stamp: Vec<u32>,
    dist: Vec<u64>,
    prev: Vec<Prev>,
    /// The Dijkstra frontier, kept allocated between queries.
    heap: BinaryHeap<Reverse<(u64, usize)>>,
}

impl SearchScratch {
    fn new(n_nodes: usize) -> SearchScratch {
        SearchScratch {
            generation: 0,
            stamp: vec![0; n_nodes],
            dist: vec![INF; n_nodes],
            prev: vec![Prev::Unreached; n_nodes],
            heap: BinaryHeap::new(),
        }
    }

    /// Starts a fresh query: every slot reads as unreached again.
    fn begin(&mut self) {
        self.heap.clear();
        self.generation = self.generation.wrapping_add(1);
        if self.generation == 0 {
            // Wrapped after 2^32 queries: reset every stamp once.
            // Generation 0 is skipped (the counter restarts at 1), so a
            // 0 stamp can never read as current in any later era.
            self.stamp.fill(0);
            self.generation = 1;
        }
    }

    fn dist(&self, node: usize) -> u64 {
        if self.stamp[node] == self.generation {
            self.dist[node]
        } else {
            INF
        }
    }

    fn prev(&self, node: usize) -> Prev {
        if self.stamp[node] == self.generation {
            self.prev[node]
        } else {
            Prev::Unreached
        }
    }

    fn set(&mut self, node: usize, dist: u64, prev: Prev) {
        self.stamp[node] = self.generation;
        self.dist[node] = dist;
        self.prev[node] = prev;
    }
}

/// Shortest-path router over a fabric topology.
///
/// See the crate docs for the cost model. `route` is a pure query; commit
/// a chosen plan with [`ResourceState::book`] on each of its resources and
/// tell the router via [`Router::note_booked`] (which feeds the optional
/// history term).
#[derive(Debug, Clone)]
pub struct Router<'a> {
    topology: &'a Topology,
    config: RouterConfig,
    /// Effective per-segment capacity: the fabric's per-resource
    /// override where the spec declared one, else the configured
    /// technology default. On uniform fabrics every entry equals
    /// `config.channel_capacity`, so behavior is identical to the
    /// pre-spec global cap.
    seg_caps: Vec<u8>,
    /// Effective per-junction capacity (same resolution rule).
    junc_caps: Vec<u8>,
    history: Vec<u32>,
    /// Reusable search arena; `RefCell` because `route` is a pure query
    /// (`&self`) yet needs somewhere to run Dijkstra without
    /// allocating. Borrowed only for the duration of one search, never
    /// across calls, so the runtime check can't fail.
    scratch: RefCell<SearchScratch>,
    /// Per-target-segment empty-fabric distance-to-goal fields backing
    /// the exact pruning in [`Router::route_with`]. Depends only on the
    /// topology and the (immutable) config, so entries never
    /// invalidate.
    goal_dist: RefCell<HashMap<SegmentId, Arc<[u64]>>>,
    /// Whether queries currently record their resource reads. Kept as a
    /// separate `Cell` so the inactive case costs one branch per weight
    /// lookup instead of a `RefCell` borrow.
    log_active: Cell<bool>,
    /// Deduplicating recorder behind [`Router::begin_read_log`].
    read_log: RefCell<ReadLogger>,
}

/// Every segment and junction whose weight or toll a routing query
/// consulted, in first-read order, without duplicates.
///
/// A query's answer is a pure function of its read set: replaying the
/// same query against any resource state and overlay that agree on
/// these resources (and on the router's own history) reproduces the
/// same plan byte for byte. The speculative parallel engines lean on
/// this to decide whether a plan computed against a frozen snapshot is
/// still valid after earlier movers committed theirs.
#[derive(Debug, Clone, Default)]
pub(crate) struct ReadSet {
    /// Segments whose weight was consulted.
    pub(crate) segments: Vec<SegmentId>,
    /// Junctions whose toll was consulted.
    pub(crate) junctions: Vec<JunctionId>,
}

/// Generation-stamped dedup state for read logging; sized lazily to the
/// topology on first activation.
#[derive(Debug, Clone, Default)]
struct ReadLogger {
    seg_gen: Vec<u32>,
    junc_gen: Vec<u32>,
    generation: u32,
    set: ReadSet,
}

impl<'a> Router<'a> {
    /// Creates a router for `topology` with the given policy.
    pub fn new(topology: &'a Topology, config: RouterConfig) -> Router<'a> {
        let seg_caps = topology
            .segment_caps()
            .iter()
            .map(|c| c.unwrap_or(config.channel_capacity))
            .collect();
        let junc_caps = topology
            .junction_caps()
            .iter()
            .map(|c| c.unwrap_or(config.junction_capacity))
            .collect();
        Router {
            topology,
            config,
            seg_caps,
            junc_caps,
            history: vec![0; topology.segments().len()],
            scratch: RefCell::new(SearchScratch::new(topology.search_graph().num_nodes())),
            goal_dist: RefCell::new(HashMap::new()),
            log_active: Cell::new(false),
            read_log: RefCell::new(ReadLogger::default()),
        }
    }

    /// Starts recording the resource reads of subsequent queries.
    /// Recording stays on until [`Router::take_read_set`] collects the
    /// result.
    pub(crate) fn begin_read_log(&self) {
        let mut log = self.read_log.borrow_mut();
        if log.seg_gen.len() != self.topology.segments().len() {
            log.seg_gen = vec![0; self.topology.segments().len()];
            log.junc_gen = vec![0; self.topology.junctions().len()];
        }
        log.generation = log.generation.wrapping_add(1);
        if log.generation == 0 {
            log.seg_gen.fill(0);
            log.junc_gen.fill(0);
            log.generation = 1;
        }
        log.set.segments.clear();
        log.set.junctions.clear();
        self.log_active.set(true);
    }

    /// Stops recording and returns the reads accumulated since
    /// [`Router::begin_read_log`].
    pub(crate) fn take_read_set(&self) -> ReadSet {
        self.log_active.set(false);
        std::mem::take(&mut self.read_log.borrow_mut().set)
    }

    #[inline]
    fn note_seg_read(&self, seg: SegmentId) {
        if !self.log_active.get() {
            return;
        }
        let mut log = self.read_log.borrow_mut();
        let generation = log.generation;
        if log.seg_gen[seg.index()] != generation {
            log.seg_gen[seg.index()] = generation;
            log.set.segments.push(seg);
        }
    }

    #[inline]
    fn note_junc_read(&self, j: JunctionId) {
        if !self.log_active.get() {
            return;
        }
        let mut log = self.read_log.borrow_mut();
        let generation = log.generation;
        if log.junc_gen[j.index()] != generation {
            log.junc_gen[j.index()] = generation;
            log.set.junctions.push(j);
        }
    }

    /// Empty-fabric lower-bound cost from every search node to the
    /// junction-attached ends of target segment `dst`, cached per
    /// target segment.
    ///
    /// Computed with base segment weights (`moves * t_move`), zero
    /// junction tolls and the configured turn weight, which
    /// lower-bounds the true edge costs under every resource state and
    /// overlay: occupancy multipliers and presence/history surcharges
    /// only ever add cost. The search graph is symmetric (every
    /// segment edge exists in both directions with equal `moves`, and
    /// the turn edge is an involution with a fixed weight), so a
    /// forward Dijkstra seeded at the goal nodes yields exact
    /// to-goal distances.
    fn goal_heuristic(&self, dst: SegmentId) -> Arc<[u64]> {
        if let Some(h) = self.goal_dist.borrow().get(&dst) {
            return Arc::clone(h);
        }
        let topo = self.topology;
        let graph = topo.search_graph();
        let turn_weight = if self.config.turn_aware {
            self.config.t_turn
        } else {
            0
        };
        let mut dist = vec![INF; graph.num_nodes()];
        let mut heap = BinaryHeap::new();
        let seg = topo.segment(dst);
        for end in 0..2 {
            if let SegmentEnd::Junction(j) = seg.ends()[end] {
                let node = SearchGraph::node(j, seg.orientation());
                if dist[node] > 0 {
                    dist[node] = 0;
                    heap.push(Reverse((0u64, node)));
                }
            }
        }
        while let Some(Reverse((cost, node))) = heap.pop() {
            if cost > dist[node] {
                continue;
            }
            let turn_node = SearchGraph::turn_of(node);
            let turn_cost = cost.saturating_add(turn_weight);
            if turn_cost < dist[turn_node] {
                dist[turn_node] = turn_cost;
                heap.push(Reverse((turn_cost, turn_node)));
            }
            for edge in graph.edges(node) {
                let w = u64::from(edge.moves) * self.config.t_move;
                let next = edge.to_node as usize;
                let c = cost.saturating_add(w);
                if c < dist[next] {
                    dist[next] = c;
                    heap.push(Reverse((c, next)));
                }
            }
        }
        let h: Arc<[u64]> = dist.into();
        self.goal_dist.borrow_mut().insert(dst, Arc::clone(&h));
        h
    }

    /// The effective capacity of `resource`: the fabric's per-resource
    /// override when the spec declared one, else the configured
    /// technology default ([`RouterConfig::channel_capacity`] /
    /// [`RouterConfig::junction_capacity`]).
    pub fn capacity(&self, resource: Resource) -> u8 {
        match resource {
            Resource::Segment(s) => self.seg_caps[s.index()],
            Resource::Junction(j) => self.junc_caps[j.index()],
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &RouterConfig {
        &self.config
    }

    /// The topology this router operates on.
    pub fn topology(&self) -> &'a Topology {
        self.topology
    }

    /// Finds the cheapest route from trap `from` to trap `to` under the
    /// current bookings in `state`, or `None` when every path is blocked
    /// by full channels/junctions (the instruction then waits in the busy
    /// queue).
    pub fn route(&self, state: &ResourceState, from: TrapId, to: TrapId) -> Option<RoutePlan> {
        self.route_with(state, from, to, None)
    }

    /// [`Router::route`] with an optional congestion [`Overlay`] (the
    /// negotiated-congestion engine's window into the search).
    pub(crate) fn route_with(
        &self,
        state: &ResourceState,
        from: TrapId,
        to: TrapId,
        overlay: Option<&Overlay<'_>>,
    ) -> Option<RoutePlan> {
        if from == to {
            return Some(RoutePlan::stationary(from));
        }
        let topo = self.topology;
        let graph = topo.search_graph();
        let pf = topo.trap(from).port();
        let pt = topo.trap(to).port();
        let t_move = self.config.t_move;

        // Candidate: direct travel within a shared segment.
        let mut best_direct: Option<u64> = None;
        if pf.segment == pt.segment {
            let moves = u32::from(pf.offset.abs_diff(pt.offset));
            if let Some(w) = self.segment_weight(state, pf.segment, moves, overlay) {
                best_direct = Some(2 * t_move + w);
            }
        }

        // Every route must traverse the source and target segments;
        // when either is full (hard mode only — soft weights never
        // block), no route exists and the search is skipped outright.
        // The seed search reached the same answer by exhausting the
        // whole graph first.
        if self.segment_weight(state, pf.segment, 0, overlay).is_none()
            || self.segment_weight(state, pt.segment, 0, overlay).is_none()
        {
            return None;
        }

        // Goal nodes: the junction-attached ends of the target segment.
        // Every via route enters through one of them, so the search can
        // stop once their distances are final. A dead end contributes
        // no goal; neither does a *full* end junction — every way into
        // a junction's node pair is toll-checked, so a full junction's
        // distance provably stays infinite and waiting for it would
        // degenerate into graph exhaustion exactly when the fabric is
        // congested. With no goals at all, no via route exists.
        let dst_seg = topo.segment(pt.segment);
        let goals: [Option<usize>; 2] = [0, 1].map(|end| {
            dst_seg.ends()[end].junction().and_then(|j| {
                self.junction_toll(state, j, overlay)
                    .map(|_| SearchGraph::node(j, dst_seg.orientation()))
            })
        });
        if goals.iter().all(Option::is_none) {
            return best_direct.map(|c| self.build_direct(from, to, c));
        }

        // Goal-directed Dijkstra over the precomputed search graph,
        // running in the reusable scratch arena (no allocation).
        let h = self.goal_heuristic(pt.segment);
        let mut scratch = self.scratch.borrow_mut();
        let scratch = &mut *scratch;
        scratch.begin();

        let src_seg = topo.segment(pf.segment);
        for end in 0..2 {
            let SegmentEnd::Junction(j) = src_seg.ends()[end] else {
                continue;
            };
            let Some(toll) = self.junction_toll(state, j, overlay) else {
                continue;
            };
            let moves = src_seg.moves_to_end(pf.offset, end);
            let Some(w) = self.segment_weight(state, pf.segment, moves, overlay) else {
                continue;
            };
            let node = SearchGraph::node(j, src_seg.orientation());
            let cost = (t_move + w).saturating_add(toll);
            if cost < scratch.dist(node) {
                scratch.set(node, cost, Prev::Start { end });
                scratch.heap.push(Reverse((cost, node)));
            }
        }

        let turn_weight = if self.config.turn_aware {
            self.config.t_turn
        } else {
            0
        };
        while let Some(Reverse((cost, node))) = scratch.heap.pop() {
            if cost > scratch.dist(node) {
                continue;
            }
            // Early exit 1: every reachable goal already has distance
            // <= the frontier cost. Distances below the frontier can
            // never improve again, so the goal distances are final and
            // the via candidates below equal a run-to-exhaustion
            // search's.
            if goals.iter().flatten().all(|&g| scratch.dist(g) <= cost) {
                break;
            }
            // Early exit 2: the frontier costs at least as much as the
            // direct candidate. Unsettled goal distances are >= the
            // frontier cost, so every remaining via candidate is >= the
            // direct cost and loses the `cd <= cv` tie-break below.
            if best_direct.is_some_and(|bd| cost >= bd) {
                break;
            }
            // Exact lower-bound prune: `h[n]` underestimates the
            // remaining cost from `n` to the goal nodes under every
            // overlay, and `bound` (the worst live goal's tentative
            // distance) only decreases over the search, so a
            // relaxation with `dist + h` above `bound` — or at least
            // the direct candidate's cost, which wins the `cd <= cv`
            // tie — can never lower a goal's final distance nor sit on
            // the returned plan's predecessor chain. Skipping it
            // leaves the output bytes identical to the unpruned
            // search (the `route_naive` equivalence proptest pins
            // this), while cutting the explored frontier roughly from
            // one-way to round-trip reach.
            let bound = goals
                .iter()
                .flatten()
                .map(|&g| scratch.dist(g))
                .max()
                .unwrap_or(INF);
            let prune = |f: u64| f > bound || best_direct.is_some_and(|bd| f >= bd);
            if prune(cost.saturating_add(h[node])) {
                continue;
            }
            // Turn edge within the junction.
            let turn_node = SearchGraph::turn_of(node);
            let turn_cost = cost.saturating_add(turn_weight);
            if turn_cost < scratch.dist(turn_node) && !prune(turn_cost.saturating_add(h[turn_node]))
            {
                scratch.set(turn_node, turn_cost, Prev::Turn { from: node });
                scratch.heap.push(Reverse((turn_cost, turn_node)));
            }
            // Precomputed segment edges along the current orientation.
            for edge in graph.edges(node) {
                let Some(toll2) = self.junction_toll(state, edge.to_junction, overlay) else {
                    continue;
                };
                let Some(w) = self.segment_weight(state, edge.segment, edge.moves, overlay) else {
                    continue;
                };
                let next = edge.to_node as usize;
                let next_cost = cost.saturating_add(w).saturating_add(toll2);
                if next_cost < scratch.dist(next) && !prune(next_cost.saturating_add(h[next])) {
                    scratch.set(
                        next,
                        next_cost,
                        Prev::Seg {
                            from: node,
                            seg: edge.segment,
                        },
                    );
                    scratch.heap.push(Reverse((next_cost, next)));
                }
            }
        }

        // Final candidates: enter the target segment from either end.
        let mut best_via: Option<(u64, usize, usize)> = None; // (cost, node, entry end)
        for (end, goal) in goals.iter().enumerate() {
            let Some(node) = *goal else {
                continue;
            };
            let d = scratch.dist(node);
            if d == INF {
                continue;
            }
            let moves = dst_seg.moves_to_end(pt.offset, end);
            let Some(w) = self.segment_weight(state, pt.segment, moves, overlay) else {
                continue;
            };
            let cost = d.saturating_add(w).saturating_add(t_move);
            if best_via.map_or(true, |(c, _, _)| cost < c) {
                best_via = Some((cost, node, end));
            }
        }

        match (best_direct, best_via) {
            (None, None) => None,
            (Some(c), None) => Some(self.build_direct(from, to, c)),
            (Some(cd), Some((cv, _, _))) if cd <= cv => Some(self.build_direct(from, to, cd)),
            (_, Some((cv, node, end))) => {
                Some(self.build_via(from, to, |n| scratch.prev(n), node, end, cv))
            }
        }
    }

    /// The seed implementation of [`Router::route_with`], kept verbatim
    /// as the reference for the search-equivalence property tests: a
    /// freshly allocated, run-to-exhaustion Dijkstra with the per-pop
    /// incidence scan. The arena-backed, goal-directed search must
    /// return byte-identical plans.
    #[cfg(test)]
    pub(crate) fn route_naive(
        &self,
        state: &ResourceState,
        from: TrapId,
        to: TrapId,
        overlay: Option<&Overlay<'_>>,
    ) -> Option<RoutePlan> {
        if from == to {
            return Some(RoutePlan::stationary(from));
        }
        let topo = self.topology;
        let pf = topo.trap(from).port();
        let pt = topo.trap(to).port();
        let t_move = self.config.t_move;

        let mut best_direct: Option<u64> = None;
        if pf.segment == pt.segment {
            let moves = u32::from(pf.offset.abs_diff(pt.offset));
            if let Some(w) = self.segment_weight(state, pf.segment, moves, overlay) {
                best_direct = Some(2 * t_move + w);
            }
        }

        // Dijkstra over (junction, orientation) nodes.
        let n_nodes = topo.junctions().len() * 2;
        let mut dist = vec![INF; n_nodes];
        let mut prev = vec![Prev::Unreached; n_nodes];
        let mut heap: BinaryHeap<Reverse<(u64, usize)>> = BinaryHeap::new();

        let src_seg = topo.segment(pf.segment);
        for end in 0..2 {
            let SegmentEnd::Junction(j) = src_seg.ends()[end] else {
                continue;
            };
            let Some(toll) = self.junction_toll(state, j, overlay) else {
                continue;
            };
            let moves = src_seg.moves_to_end(pf.offset, end);
            let Some(w) = self.segment_weight(state, pf.segment, moves, overlay) else {
                continue;
            };
            let node = SearchGraph::node(j, src_seg.orientation());
            let cost = (t_move + w).saturating_add(toll);
            if cost < dist[node] {
                dist[node] = cost;
                prev[node] = Prev::Start { end };
                heap.push(Reverse((cost, node)));
            }
        }

        let turn_weight = if self.config.turn_aware {
            self.config.t_turn
        } else {
            0
        };
        while let Some(Reverse((cost, node))) = heap.pop() {
            if cost > dist[node] {
                continue;
            }
            let (j, orient) = SearchGraph::parts(node);
            let turn_node = SearchGraph::node(j, orient.perpendicular());
            let turn_cost = cost.saturating_add(turn_weight);
            if turn_cost < dist[turn_node] {
                dist[turn_node] = turn_cost;
                prev[turn_node] = Prev::Turn { from: node };
                heap.push(Reverse((turn_cost, turn_node)));
            }
            let junction = topo.junction(j);
            for (_, seg_id) in junction.incident_segments() {
                let seg = topo.segment(seg_id);
                if seg.orientation() != orient {
                    continue;
                }
                let Some(my_end) = seg.end_attached_to(j) else {
                    continue;
                };
                let SegmentEnd::Junction(j2) = seg.ends()[1 - my_end] else {
                    continue;
                };
                if j2 == j {
                    continue;
                }
                let Some(toll2) = self.junction_toll(state, j2, overlay) else {
                    continue;
                };
                let moves = u32::from(seg.len()) + 1;
                let Some(w) = self.segment_weight(state, seg_id, moves, overlay) else {
                    continue;
                };
                let next = SearchGraph::node(j2, orient);
                let next_cost = cost.saturating_add(w).saturating_add(toll2);
                if next_cost < dist[next] {
                    dist[next] = next_cost;
                    prev[next] = Prev::Seg {
                        from: node,
                        seg: seg_id,
                    };
                    heap.push(Reverse((next_cost, next)));
                }
            }
        }

        let dst_seg = topo.segment(pt.segment);
        let mut best_via: Option<(u64, usize, usize)> = None;
        for end in 0..2 {
            let SegmentEnd::Junction(j) = dst_seg.ends()[end] else {
                continue;
            };
            let node = SearchGraph::node(j, dst_seg.orientation());
            if dist[node] == INF {
                continue;
            }
            let moves = dst_seg.moves_to_end(pt.offset, end);
            let Some(w) = self.segment_weight(state, pt.segment, moves, overlay) else {
                continue;
            };
            let cost = dist[node].saturating_add(w).saturating_add(t_move);
            if best_via.map_or(true, |(c, _, _)| cost < c) {
                best_via = Some((cost, node, end));
            }
        }

        match (best_direct, best_via) {
            (None, None) => None,
            (Some(c), None) => Some(self.build_direct(from, to, c)),
            (Some(cd), Some((cv, _, _))) if cd <= cv => Some(self.build_direct(from, to, cd)),
            (_, Some((cv, node, end))) => {
                Some(self.build_via(from, to, |n| prev[n], node, end, cv))
            }
        }
    }

    /// Feeds the PathFinder-style history term after a plan is committed.
    /// A no-op unless `history_cost` is enabled.
    pub fn note_booked(&mut self, plan: &RoutePlan) {
        if !self.config.history_cost {
            return;
        }
        for usage in plan.resources() {
            if let Resource::Segment(s) = usage.resource {
                self.history[s.index()] += 1;
            }
        }
    }

    /// Accumulated history count for a segment (testing/diagnostics).
    pub fn history(&self, seg: SegmentId) -> u32 {
        self.history[seg.index()]
    }

    fn segment_weight(
        &self,
        state: &ResourceState,
        seg: SegmentId,
        moves: u32,
        overlay: Option<&Overlay<'_>>,
    ) -> Option<u64> {
        self.note_seg_read(seg);
        let mut n = state.usage(Resource::Segment(seg));
        if let Some(ov) = overlay {
            n = n.saturating_add(ov.extra_segments[seg.index()]);
        }
        let cap = self.seg_caps[seg.index()];
        let soft = overlay.is_some_and(|ov| ov.soft);
        if n >= cap && !soft {
            return None;
        }
        // Hard mode keeps the paper's Eq. 2 congestion-spreading weight.
        // Soft (negotiation) mode is latency-true PathFinder instead:
        // sharing below capacity is physically free in this fabric
        // model, so the base cost is plain travel time and only
        // *overuse* is priced.
        let mut w = if soft {
            u64::from(moves) * self.config.t_move
        } else {
            u64::from(n + 1) * u64::from(moves) * self.config.t_move
        };
        if n >= cap {
            let overuse = u64::from(n + 1 - cap);
            let ov = overlay.expect("soft mode implies an overlay");
            w = w.saturating_add(overuse.saturating_mul(ov.pres_weight));
        }
        if self.config.history_cost {
            w += u64::from(self.history[seg.index()]) * self.config.t_move;
        }
        if let Some(ov) = overlay {
            let h = u64::from(ov.history[seg.index()]);
            w = w.saturating_add(h.saturating_mul(ov.hist_weight));
        }
        Some(w)
    }

    /// The extra cost of passing through junction `j`: `Some(0)` when it
    /// has spare capacity, `None` when full (hard mode), or a present-
    /// congestion penalty when full in soft mode.
    fn junction_toll(
        &self,
        state: &ResourceState,
        j: JunctionId,
        overlay: Option<&Overlay<'_>>,
    ) -> Option<u64> {
        self.note_junc_read(j);
        let mut n = state.usage(Resource::Junction(j));
        if let Some(ov) = overlay {
            n = n.saturating_add(ov.extra_junctions[j.index()]);
        }
        let cap = self.junc_caps[j.index()];
        if n < cap {
            return Some(0);
        }
        match overlay {
            Some(ov) if ov.soft => {
                let overuse = u64::from(n + 1 - cap);
                Some(overuse.saturating_mul(ov.pres_weight))
            }
            _ => None,
        }
    }

    /// Builds the plan for a same-segment route.
    fn build_direct(&self, from: TrapId, to: TrapId, est_cost: u64) -> RoutePlan {
        let topo = self.topology;
        let pf = topo.trap(from).port();
        let pt = topo.trap(to).port();
        let seg = topo.segment(pf.segment);
        let mut steps = vec![Step::Move { to: pf.coord }];
        push_segment_moves(&mut steps, seg, pf.offset, pt.offset);
        steps.push(Step::Move {
            to: topo.trap(to).coord(),
        });
        let exits = vec![(Resource::Segment(pf.segment), steps.len() - 1)];
        RoutePlan::from_steps(
            from,
            to,
            steps,
            exits,
            self.config.t_move,
            self.config.t_turn,
            est_cost,
        )
    }

    /// Builds the plan for a junction-mediated route ending at `node`,
    /// entering the target segment from its end `entry_end`. The
    /// predecessor relation is read through `prev_of` so both the
    /// arena-backed and the naive reference search share one
    /// reconstruction.
    fn build_via(
        &self,
        from: TrapId,
        to: TrapId,
        prev_of: impl Fn(usize) -> Prev,
        node: usize,
        entry_end: usize,
        est_cost: u64,
    ) -> RoutePlan {
        let topo = self.topology;
        let pf = topo.trap(from).port();
        let pt = topo.trap(to).port();

        // Reconstruct the node path source → node.
        let mut hops = Vec::new();
        let mut cur = node;
        let start_end = loop {
            match prev_of(cur) {
                Prev::Start { end } => break end,
                Prev::Turn { from } => {
                    hops.push((cur, None));
                    cur = from;
                }
                Prev::Seg { from, seg } => {
                    hops.push((cur, Some(seg)));
                    cur = from;
                }
                Prev::Unreached => unreachable!("candidate node must be reached"),
            }
        };
        hops.push((cur, None)); // The seed node itself (marker only).
        hops.reverse();

        let mut steps = vec![Step::Move { to: pf.coord }];
        let mut exits: Vec<(Resource, usize)> = Vec::new();

        // Leg 0: source port to the first junction.
        let src_seg = topo.segment(pf.segment);
        let (first_node, _) = hops[0];
        let (first_j, _) = SearchGraph::parts(first_node);
        {
            let end_offset = segment_end_offset(src_seg, start_end);
            push_segment_moves(&mut steps, src_seg, pf.offset, end_offset);
            steps.push(Step::Move {
                to: topo.junction(first_j).coord(),
            });
            exits.push((Resource::Segment(pf.segment), steps.len() - 1));
        }

        // Middle transitions.
        let mut current_j = first_j;
        for window in hops.windows(2) {
            let (a, _) = window[0];
            let (b, via) = window[1];
            let (ja, _) = SearchGraph::parts(a);
            let (jb, _) = SearchGraph::parts(b);
            match via {
                None => {
                    // Turn edge at the same junction.
                    debug_assert_eq!(ja, jb);
                    steps.push(Step::Turn {
                        at: topo.junction(ja).coord(),
                    });
                }
                Some(seg_id) => {
                    let seg = topo.segment(seg_id);
                    let enter_end = seg
                        .end_attached_to(ja)
                        .expect("edge segment attaches to its source junction");
                    let enter_off = segment_end_offset(seg, enter_end);
                    let exit_off = segment_end_offset(seg, 1 - enter_end);
                    // Stepping off the junction releases it.
                    steps.push(Step::Move {
                        to: seg.cell_at(enter_off),
                    });
                    exits.push((Resource::Junction(ja), steps.len() - 1));
                    push_segment_moves(&mut steps, seg, enter_off, exit_off);
                    steps.push(Step::Move {
                        to: topo.junction(jb).coord(),
                    });
                    exits.push((Resource::Segment(seg_id), steps.len() - 1));
                    current_j = jb;
                }
            }
        }

        // Final leg: off the last junction into the target segment.
        let dst_seg = topo.segment(pt.segment);
        {
            let enter_off = segment_end_offset(dst_seg, entry_end);
            steps.push(Step::Move {
                to: dst_seg.cell_at(enter_off),
            });
            exits.push((Resource::Junction(current_j), steps.len() - 1));
            push_segment_moves(&mut steps, dst_seg, enter_off, pt.offset);
            steps.push(Step::Move {
                to: topo.trap(to).coord(),
            });
            exits.push((Resource::Segment(pt.segment), steps.len() - 1));
        }

        // A route that leaves and re-enters the same segment books it once,
        // releasing at the later exit.
        exits.sort_by_key(|(r, idx)| (*r, *idx));
        exits.dedup_by(|later, earlier| {
            if later.0 == earlier.0 {
                earlier.1 = earlier.1.max(later.1);
                true
            } else {
                false
            }
        });
        exits.sort_by_key(|(_, idx)| *idx);

        RoutePlan::from_steps(
            from,
            to,
            steps,
            exits,
            self.config.t_move,
            self.config.t_turn,
            est_cost,
        )
    }
}

/// The offset of the segment cell adjacent to end `end`.
fn segment_end_offset(seg: &Segment, end: usize) -> u16 {
    match end {
        0 => 0,
        _ => seg.len() - 1,
    }
}

/// Pushes one `Move` per cell strictly between `from` and `to` offsets,
/// plus the arrival at `to` (nothing when `from == to`).
fn push_segment_moves(steps: &mut Vec<Step>, seg: &Segment, from: u16, to: u16) {
    if from == to {
        return;
    }
    if from < to {
        for o in (from + 1)..=to {
            steps.push(Step::Move { to: seg.cell_at(o) });
        }
    } else {
        for o in (to..from).rev() {
            steps.push(Step::Move { to: seg.cell_at(o) });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qspr_fabric::{Coord, Fabric};

    fn quale_fabric() -> Fabric {
        Fabric::quale_45x85()
    }

    fn qspr_router(topo: &Topology) -> Router<'_> {
        Router::new(topo, RouterConfig::qspr(&TechParams::date2012()))
    }

    /// Steps must form a contiguous cell path starting next to the source
    /// trap and ending inside the target trap.
    fn assert_contiguous(topo: &Topology, plan: &RoutePlan) {
        let mut pos = topo.trap(plan.from_trap()).coord();
        for step in plan.steps() {
            match step {
                Step::Move { to } => {
                    assert_eq!(pos.manhattan(*to), 1, "teleport from {pos} to {to}");
                    pos = *to;
                }
                Step::Turn { at } => assert_eq!(pos, *at, "turn away from position"),
            }
        }
        assert_eq!(pos, topo.trap(plan.to_trap()).coord());
    }

    #[test]
    fn routes_across_the_quale_fabric() {
        let f = quale_fabric();
        let topo = f.topology();
        let router = qspr_router(topo);
        let state = ResourceState::new(topo);
        let order = topo.traps_by_distance(Coord::new(0, 0));
        let (a, b) = (order[0], *order.last().unwrap());
        let plan = router.route(&state, a, b).expect("quiet fabric routes");
        assert_contiguous(topo, &plan);
        assert!(plan.turns() >= 1, "corner-to-corner needs a turn");
        // On a quiet fabric the est. cost equals the physical duration.
        assert_eq!(plan.est_cost(), plan.duration());
    }

    #[test]
    fn stationary_route() {
        let f = quale_fabric();
        let topo = f.topology();
        let router = qspr_router(topo);
        let state = ResourceState::new(topo);
        let t = topo.traps_by_distance(f.center())[0];
        let plan = router.route(&state, t, t).unwrap();
        assert!(plan.is_stationary());
    }

    #[test]
    fn same_segment_route_is_direct() {
        // Two traps whose ports share one segment.
        let f = Fabric::from_ascii(
            "+---+\n\
             |...|\n\
             |T.T|\n\
             +---+\n",
        )
        .unwrap();
        let topo = f.topology();
        // Both traps port onto the vertical segments? Check ports: trap
        // (2,1): N (1,1) empty? no: (1,1) is '.', W (2,0) is '|'. So port
        // on the V segment of column 0; trap (2,3): E (2,4) '|'.
        let router = qspr_router(topo);
        let state = ResourceState::new(topo);
        let a = topo.trap_at(Coord::new(2, 1)).unwrap();
        let b = topo.trap_at(Coord::new(2, 3)).unwrap();
        let plan = router.route(&state, a, b).expect("routable");
        assert_contiguous(topo, &plan);
    }

    #[test]
    fn adjacent_traps_sharing_port_cost_two_moves() {
        let f = Fabric::from_ascii(
            ".T.\n\
             +-+\n\
             .T.\n",
        )
        .unwrap();
        let topo = f.topology();
        let router = qspr_router(topo);
        let state = ResourceState::new(topo);
        let a = topo.trap_at(Coord::new(0, 1)).unwrap();
        let b = topo.trap_at(Coord::new(2, 1)).unwrap();
        let plan = router.route(&state, a, b).unwrap();
        assert_eq!(plan.moves(), 2);
        assert_eq!(plan.turns(), 0);
        assert_contiguous(topo, &plan);
    }

    #[test]
    fn full_channel_blocks_routing() {
        let f = Fabric::from_ascii(
            ".T.\n\
             +-+\n\
             .T.\n",
        )
        .unwrap();
        let topo = f.topology();
        let tech = TechParams::date2012();
        let router = Router::new(
            topo,
            RouterConfig {
                channel_capacity: 1,
                ..RouterConfig::qspr(&tech)
            },
        );
        let mut state = ResourceState::new(topo);
        let a = topo.trap_at(Coord::new(0, 1)).unwrap();
        let b = topo.trap_at(Coord::new(2, 1)).unwrap();
        let plan = router.route(&state, a, b).unwrap();
        for usage in plan.resources() {
            state.book(usage.resource).unwrap();
        }
        assert!(router.route(&state, a, b).is_none(), "channel is full");
        for usage in plan.resources() {
            state.release(usage.resource);
        }
        assert!(router.route(&state, a, b).is_some(), "released again");
    }

    #[test]
    fn capacity_two_admits_a_second_qubit() {
        let f = quale_fabric();
        let topo = f.topology();
        let router = qspr_router(topo);
        let mut state = ResourceState::new(topo);
        let order = topo.traps_by_distance(f.center());
        let (a, b) = (order[0], order[30]);
        let p1 = router.route(&state, a, b).unwrap();
        for u in p1.resources() {
            state.book(u.resource).unwrap();
        }
        let p2 = router.route(&state, a, b).unwrap();
        // Second route sees (n+1) = 2 weights, so it is at least as costly.
        assert!(p2.est_cost() >= p1.est_cost());
    }

    #[test]
    fn turn_aware_router_prefers_fewer_turns() {
        // A 3x3 junction grid: corner-to-corner admits many equal-length
        // monotone paths; only the two L-shaped ones have a single turn.
        let f = RegularishGrid::build();
        let topo = f.topology();
        let tech = TechParams::date2012();
        let state = ResourceState::new(topo);

        let aware = Router::new(topo, RouterConfig::qspr(&tech));
        let a = topo.trap_at(RegularishGrid::SRC).unwrap();
        let b = topo.trap_at(RegularishGrid::DST).unwrap();
        let plan_aware = aware.route(&state, a, b).unwrap();
        assert_contiguous(topo, &plan_aware);

        let blind = Router::new(
            topo,
            RouterConfig {
                turn_aware: false,
                history_cost: false,
                channel_capacity: 2,
                junction_capacity: 2,
                ..RouterConfig::quale(&tech)
            },
        );
        let plan_blind = blind.route(&state, a, b).unwrap();
        assert_contiguous(topo, &plan_blind);

        // Both routers find minimal-move paths, but only the turn-aware
        // one is guaranteed to take a minimal-turn path. Every trap in the
        // regular grid ports onto a horizontal row, so the minimum is two
        // turns (H → V → H).
        assert_eq!(plan_aware.moves(), plan_blind.moves());
        assert_eq!(plan_aware.turns(), 2, "L-path has exactly two turns");
        assert!(plan_aware.turns() <= plan_blind.turns());
        assert!(plan_aware.duration() <= plan_blind.duration());
    }

    /// Helper: 9×9 pitch-4 grid with source bottom-left, target top-right.
    struct RegularishGrid;

    impl RegularishGrid {
        const SRC: Coord = Coord { row: 7, col: 1 };
        const DST: Coord = Coord { row: 1, col: 7 };

        fn build() -> Fabric {
            qspr_fabric::RegularFabricSpec::new(9, 9, 4)
                .build()
                .expect("valid spec")
        }
    }

    #[test]
    fn fig5_turn_blind_router_pays_for_its_turns() {
        let f = Fabric::from_ascii(crate::FIG5_DEMO_FABRIC).unwrap();
        let topo = f.topology();
        let tech = TechParams::date2012();
        let state = ResourceState::new(topo);
        let s = topo.trap_at(Coord::new(7, 4)).unwrap();
        let t = topo.trap_at(Coord::new(1, 6)).unwrap();

        let aware = Router::new(topo, RouterConfig::qspr(&tech));
        let plan_aware = aware.route(&state, s, t).unwrap();
        assert_contiguous(topo, &plan_aware);
        assert_eq!((plan_aware.moves(), plan_aware.turns()), (20, 2), "ring");
        assert_eq!(plan_aware.duration(), 40);

        let mut blind_cfg = RouterConfig::qspr(&tech);
        blind_cfg.turn_aware = false;
        let blind = Router::new(topo, blind_cfg);
        let plan_blind = blind.route(&state, s, t).unwrap();
        assert_contiguous(topo, &plan_blind);
        assert_eq!(
            (plan_blind.moves(), plan_blind.turns()),
            (18, 8),
            "staircase"
        );
        assert_eq!(plan_blind.duration(), 98);

        // The blind router believed it chose the cheaper path.
        assert!(plan_blind.est_cost() < plan_aware.est_cost() + tech.t_turn * 2);
        // Physically, it is 2.45x slower.
        assert!(plan_blind.duration() > 2 * plan_aware.duration());
    }

    #[test]
    fn resource_exit_offsets_are_monotone_and_bounded() {
        let f = quale_fabric();
        let topo = f.topology();
        let router = qspr_router(topo);
        let state = ResourceState::new(topo);
        let order = topo.traps_by_distance(Coord::new(0, 0));
        let plan = router
            .route(&state, order[0], order[order.len() / 2])
            .unwrap();
        let mut last = 0;
        for u in plan.resources() {
            assert!(u.exit_offset >= last);
            assert!(u.exit_offset <= plan.duration());
            last = u.exit_offset;
        }
        // Resources are unique after dedup.
        let mut rs: Vec<_> = plan.resources().iter().map(|u| u.resource).collect();
        rs.sort();
        rs.dedup();
        assert_eq!(rs.len(), plan.resources().len());
    }

    #[test]
    fn history_cost_shifts_routes() {
        let f = quale_fabric();
        let topo = f.topology();
        let tech = TechParams::date2012();
        let mut router = Router::new(
            topo,
            RouterConfig {
                history_cost: true,
                ..RouterConfig::qspr(&tech)
            },
        );
        let state = ResourceState::new(topo);
        let order = topo.traps_by_distance(f.center());
        let (a, b) = (order[0], order[60]);
        let p1 = router.route(&state, a, b).unwrap();
        router.note_booked(&p1);
        let seg = p1
            .resources()
            .iter()
            .find_map(|u| match u.resource {
                Resource::Segment(s) => Some(s),
                _ => None,
            })
            .unwrap();
        assert_eq!(router.history(seg), 1);
        let p2 = router.route(&state, a, b).unwrap();
        assert!(p2.est_cost() >= p1.est_cost());
    }

    #[test]
    fn unreachable_target_returns_none() {
        // Two disconnected islands.
        let f = Fabric::from_ascii(
            ".T....T.\n\
             +-+..+-+\n",
        )
        .unwrap();
        let topo = f.topology();
        let router = qspr_router(topo);
        let state = ResourceState::new(topo);
        let a = topo.trap_at(Coord::new(0, 1)).unwrap();
        let b = topo.trap_at(Coord::new(0, 6)).unwrap();
        assert!(router.route(&state, a, b).is_none());
    }
}
