//! Deterministic fork/join helpers for the speculative parallel
//! engines.
//!
//! Work is striped over worker states round-robin by index — worker
//! `w` of `W` handles items `w, w + W, w + 2W, …` — and the results
//! are returned in item order. The assignment depends only on the item
//! index and the worker count, never on thread scheduling, so a run is
//! reproducible even before the engines' order-based merges re-impose
//! the sequential semantics. Threads come from [`std::thread::scope`]:
//! no pool to manage, no `'static` bounds, and worker states borrow
//! the caller's stack freely.

use std::thread;

/// Runs `f(state, index)` for every index in `0..len`, striping the
/// indices across the worker `states`, and returns the results in
/// index order.
///
/// With a single worker state (or fewer than two items) everything
/// runs inline on the caller's thread — the degenerate case costs no
/// thread spawn, which keeps `jobs = 1` on the exact sequential code
/// path.
pub(crate) fn map_striped<S, T, F>(states: &mut [S], len: usize, f: F) -> Vec<T>
where
    S: Send,
    T: Send,
    F: Fn(&mut S, usize) -> T + Sync,
{
    let workers = states.len();
    if workers <= 1 || len <= 1 {
        let state = states.first_mut().expect("at least one worker state");
        return (0..len).map(|i| f(state, i)).collect();
    }
    let mut stripes: Vec<Vec<T>> = thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for (w, state) in states.iter_mut().enumerate() {
            let f = &f;
            handles.push(
                scope.spawn(move || (w..len).step_by(workers).map(|i| f(state, i)).collect()),
            );
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("striped worker panicked"))
            .collect()
    });
    // Interleave the stripes back into item order. Draining front to
    // back keeps each stripe a simple `Vec` pop from a moving cursor.
    let mut cursors: Vec<std::vec::IntoIter<T>> = stripes.drain(..).map(Vec::into_iter).collect();
    (0..len)
        .map(|i| cursors[i % workers].next().expect("stripe underrun"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn striped_results_come_back_in_index_order() {
        for workers in 1..=5 {
            for len in 0..10 {
                let mut states: Vec<usize> = (0..workers).collect();
                let out = map_striped(&mut states, len, |&mut w, i| (w, i * 10));
                assert_eq!(out.len(), len);
                for (i, &(w, v)) in out.iter().enumerate() {
                    assert_eq!(v, i * 10);
                    if workers > 1 && len > 1 {
                        assert_eq!(w, i % workers, "stripe assignment must be by index");
                    }
                }
            }
        }
    }

    #[test]
    fn single_worker_runs_inline() {
        let mut states = vec![0u32];
        let out = map_striped(&mut states, 4, |s, i| {
            *s += 1;
            (*s, i)
        });
        // Inline execution threads one mutable state through all items.
        assert_eq!(out, vec![(1, 0), (2, 1), (3, 2), (4, 3)]);
    }
}
