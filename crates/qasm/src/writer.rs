//! QASM text emission.

use std::fmt::Write as _;

use crate::ast::{Operands, Program};

impl Program {
    /// Renders the program back to QASM text in the paper's Fig. 3 dialect.
    ///
    /// The output parses back to an equal [`Program`]:
    ///
    /// ```
    /// use qspr_qasm::Program;
    /// let p = Program::parse("QUBIT a,0\nQUBIT b\nH a\nC-X a,b\n").unwrap();
    /// assert_eq!(Program::parse(&p.to_qasm()).unwrap(), p);
    /// ```
    pub fn to_qasm(&self) -> String {
        let mut out = String::new();
        for decl in self.qubits() {
            match decl.initial() {
                Some(v) => {
                    let _ = writeln!(out, "QUBIT {},{v}", decl.name());
                }
                None => {
                    let _ = writeln!(out, "QUBIT {}", decl.name());
                }
            }
        }
        for instr in self.instructions() {
            match instr.operands {
                Operands::One(q) => {
                    let _ = writeln!(out, "{} {}", instr.gate, self.qubit_name(q));
                }
                Operands::Two { control, target } => {
                    let _ = writeln!(
                        out,
                        "{} {},{}",
                        instr.gate,
                        self.qubit_name(control),
                        self.qubit_name(target)
                    );
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{random_program, RandomProgramConfig};

    #[test]
    fn round_trips_simple_program() {
        let src = "QUBIT q0,0\nQUBIT q1\nH q0\nC-X q0,q1\n";
        let p = Program::parse(src).unwrap();
        assert_eq!(p.to_qasm(), src);
    }

    #[test]
    fn round_trips_random_programs() {
        for seed in 0..20 {
            let p = random_program(&RandomProgramConfig::new(6, 40), seed);
            let text = p.to_qasm();
            let reparsed = Program::parse(&text).unwrap();
            assert_eq!(reparsed, p, "seed {seed}");
        }
    }
}
