//! Parse and construction errors.

use std::error::Error;
use std::fmt;

use crate::gate::Gate;

/// Why a line of QASM (or a programmatic construction) was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ParseErrorKind {
    /// The gate mnemonic is not recognized.
    UnknownGate(String),
    /// The instruction referenced a qubit that was never declared.
    UndeclaredQubit(String),
    /// A qubit was declared twice.
    DuplicateQubit(String),
    /// Qubit declared with an empty name.
    EmptyQubitName,
    /// `QUBIT q,v` with `v` outside {0, 1}.
    BadInitialValue(u8),
    /// Gate applied with the wrong number of operands.
    ArityMismatch {
        /// The offending gate.
        gate: Gate,
        /// Number of operands supplied.
        given: usize,
    },
    /// Two-qubit gate applied to the same qubit twice.
    RepeatedOperand,
    /// A `QUBIT` declaration appeared after gate instructions.
    LateDeclaration,
    /// Line could not be tokenized as `MNEMONIC operand[,operand]`.
    Malformed,
}

impl fmt::Display for ParseErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseErrorKind::UnknownGate(g) => write!(f, "unknown gate mnemonic `{g}`"),
            ParseErrorKind::UndeclaredQubit(q) => write!(f, "undeclared qubit `{q}`"),
            ParseErrorKind::DuplicateQubit(q) => write!(f, "qubit `{q}` declared twice"),
            ParseErrorKind::EmptyQubitName => write!(f, "empty qubit name"),
            ParseErrorKind::BadInitialValue(v) => {
                write!(f, "initial value {v} is not 0 or 1")
            }
            ParseErrorKind::ArityMismatch { gate, given } => write!(
                f,
                "gate `{gate}` takes {} operand(s), {given} given",
                match gate.arity() {
                    crate::gate::GateArity::One => 1,
                    crate::gate::GateArity::Two => 2,
                }
            ),
            ParseErrorKind::RepeatedOperand => {
                write!(f, "two-qubit gate applied to the same qubit twice")
            }
            ParseErrorKind::LateDeclaration => {
                write!(f, "qubit declaration after gate instructions")
            }
            ParseErrorKind::Malformed => write!(f, "malformed instruction"),
        }
    }
}

/// Error returned by [`crate::Program::parse`] and the `Program` builder
/// methods, carrying the 1-based source line when available.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    line: Option<usize>,
    kind: ParseErrorKind,
}

impl ParseError {
    /// Error at a specific 1-based source line.
    pub fn at_line(line: usize, kind: ParseErrorKind) -> ParseError {
        ParseError {
            line: Some(line),
            kind,
        }
    }

    /// Error with no source location (programmatic construction).
    pub fn internal(kind: ParseErrorKind) -> ParseError {
        ParseError { line: None, kind }
    }

    /// The 1-based line the error occurred on, if parsing text.
    pub fn line(&self) -> Option<usize> {
        self.line
    }

    /// The reason for the failure.
    pub fn kind(&self) -> &ParseErrorKind {
        &self.kind
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.line {
            Some(line) => write!(f, "line {line}: {}", self.kind),
            None => self.kind.fmt(f),
        }
    }
}

impl Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_line() {
        let e = ParseError::at_line(7, ParseErrorKind::Malformed);
        assert_eq!(e.to_string(), "line 7: malformed instruction");
        assert_eq!(e.line(), Some(7));
    }

    #[test]
    fn display_without_line() {
        let e = ParseError::internal(ParseErrorKind::EmptyQubitName);
        assert_eq!(e.to_string(), "empty qubit name");
        assert_eq!(e.line(), None);
    }

    #[test]
    fn error_trait_is_implemented() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<ParseError>();
    }
}
