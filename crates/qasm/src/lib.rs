//! QASM parsing and representation for the QSPR ion-trap mapper.
//!
//! The DATE 2012 QSPR paper consumes circuits written in the MIT-style
//! Quantum Assembly Language (QASM) of its Fig. 3:
//!
//! ```text
//! QUBIT  q0,0
//! QUBIT  q3
//! H      q0
//! C-X    q3,q2
//! C-Z    q4,q2
//! ```
//!
//! This crate provides the [`Program`] container, the [`Gate`] set (a
//! superset of the gates appearing in the paper's benchmarks), a
//! line-oriented parser ([`Program::parse`]) and a writer
//! ([`Program::to_qasm`]) that round-trips the paper's syntax, plus the
//! *uncompute* transformation ([`Program::reversed`]) that the MVFB placer
//! relies on.
//!
//! # Examples
//!
//! ```
//! use qspr_qasm::{Gate, Program};
//!
//! # fn main() -> Result<(), qspr_qasm::ParseError> {
//! let program = Program::parse(
//!     "QUBIT q0,0\nQUBIT q1\nH q0\nC-X q0,q1\n",
//! )?;
//! assert_eq!(program.num_qubits(), 2);
//! assert_eq!(program.instructions().len(), 2);
//! assert_eq!(program.instructions()[1].gate, Gate::CX);
//! # Ok(())
//! # }
//! ```

mod ast;
mod error;
mod gate;
mod generate;
mod parser;
mod writer;

pub use ast::{Instruction, Operands, Program, QubitDecl, QubitId};
pub use error::{ParseError, ParseErrorKind};
pub use gate::{Gate, GateArity};
pub use generate::{random_program, RandomProgramConfig};
