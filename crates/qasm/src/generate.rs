//! Deterministic random program generation, used by tests, fuzzing and the
//! scalability benchmarks.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::ast::{Program, QubitId};
use crate::gate::Gate;

/// Shape parameters for [`random_program`].
///
/// # Examples
///
/// ```
/// use qspr_qasm::{random_program, RandomProgramConfig};
///
/// let config = RandomProgramConfig::new(8, 60).two_qubit_fraction(0.75);
/// let program = random_program(&config, 42);
/// assert_eq!(program.num_qubits(), 8);
/// assert_eq!(program.instructions().len(), 60);
/// // Same seed, same program.
/// assert_eq!(random_program(&config, 42), program);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RandomProgramConfig {
    num_qubits: usize,
    num_gates: usize,
    two_qubit_fraction: f64,
}

impl RandomProgramConfig {
    /// A program over `num_qubits` qubits with `num_gates` instructions and
    /// the default two-qubit fraction of 0.6 (typical of QECC encoders).
    ///
    /// # Panics
    ///
    /// Panics if `num_qubits == 0`, since a program needs operands.
    pub fn new(num_qubits: usize, num_gates: usize) -> RandomProgramConfig {
        assert!(num_qubits > 0, "programs need at least one qubit");
        RandomProgramConfig {
            num_qubits,
            num_gates,
            two_qubit_fraction: 0.6,
        }
    }

    /// Sets the fraction of instructions that are two-qubit gates
    /// (clamped to [0, 1]; forced to 0 when only one qubit exists).
    pub fn two_qubit_fraction(mut self, fraction: f64) -> RandomProgramConfig {
        self.two_qubit_fraction = fraction.clamp(0.0, 1.0);
        self
    }
}

/// Generates a valid random [`Program`] deterministically from `seed`.
///
/// Qubits are named `q0..qN-1`, every qubit is declared with initial value
/// 0, gates are drawn uniformly from the Clifford set with the configured
/// one/two-qubit mix, and two-qubit operands are always distinct, so the
/// result always satisfies the `Program` invariants.
pub fn random_program(config: &RandomProgramConfig, seed: u64) -> Program {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut program = Program::new();
    for i in 0..config.num_qubits {
        program
            .add_qubit_with_initial(&format!("q{i}"), Some(0))
            .expect("generated names are unique");
    }
    const ONE_QUBIT: [Gate; 6] = [Gate::H, Gate::X, Gate::Y, Gate::Z, Gate::S, Gate::T];
    const TWO_QUBIT: [Gate; 4] = [Gate::CX, Gate::CY, Gate::CZ, Gate::Swap];
    for _ in 0..config.num_gates {
        let two = config.num_qubits > 1 && rng.gen_bool(config.two_qubit_fraction);
        if two {
            let gate = TWO_QUBIT[rng.gen_range(0..TWO_QUBIT.len())];
            let a = rng.gen_range(0..config.num_qubits);
            let mut b = rng.gen_range(0..config.num_qubits - 1);
            if b >= a {
                b += 1;
            }
            program
                .apply2(gate, QubitId(a as u32), QubitId(b as u32))
                .expect("operands are distinct and declared");
        } else {
            let gate = ONE_QUBIT[rng.gen_range(0..ONE_QUBIT.len())];
            let q = rng.gen_range(0..config.num_qubits);
            program
                .apply1(gate, QubitId(q as u32))
                .expect("operand is declared");
        }
    }
    program
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn is_deterministic() {
        let cfg = RandomProgramConfig::new(5, 30);
        assert_eq!(random_program(&cfg, 7), random_program(&cfg, 7));
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = RandomProgramConfig::new(5, 30);
        assert_ne!(random_program(&cfg, 1), random_program(&cfg, 2));
    }

    #[test]
    fn respects_shape() {
        let cfg = RandomProgramConfig::new(9, 100);
        let p = random_program(&cfg, 3);
        assert_eq!(p.num_qubits(), 9);
        assert_eq!(p.instructions().len(), 100);
    }

    #[test]
    fn pure_one_qubit_mix() {
        let cfg = RandomProgramConfig::new(4, 50).two_qubit_fraction(0.0);
        let p = random_program(&cfg, 11);
        assert_eq!(p.two_qubit_gate_count(), 0);
    }

    #[test]
    fn pure_two_qubit_mix() {
        let cfg = RandomProgramConfig::new(4, 50).two_qubit_fraction(1.0);
        let p = random_program(&cfg, 11);
        assert_eq!(p.two_qubit_gate_count(), 50);
    }

    #[test]
    fn single_qubit_program_never_draws_two_qubit_gates() {
        let cfg = RandomProgramConfig::new(1, 20).two_qubit_fraction(1.0);
        let p = random_program(&cfg, 5);
        assert_eq!(p.two_qubit_gate_count(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one qubit")]
    fn zero_qubits_panics() {
        let _ = RandomProgramConfig::new(0, 5);
    }
}
