//! Line-oriented QASM parser.

use crate::ast::Program;
use crate::error::{ParseError, ParseErrorKind};
use crate::gate::{Gate, GateArity};

impl Program {
    /// Parses a QASM program in the dialect of the paper's Fig. 3.
    ///
    /// Accepted syntax, one statement per line:
    ///
    /// * `# comment`, `// comment`, and blank lines — ignored; trailing
    ///   comments after a statement are also stripped;
    /// * `QUBIT name` or `QUBIT name,v` with `v ∈ {0,1}` — declaration;
    /// * `GATE q` — single-qubit instruction;
    /// * `GATE a,b` — two-qubit instruction (first operand = control /
    ///   source).
    ///
    /// Mnemonics are case-insensitive; see [`Gate`] for the accepted set.
    /// All declarations must precede the first gate, as produced by
    /// synthesis tools.
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] pinpointing the offending line for unknown
    /// gates, undeclared/duplicate qubits, arity mismatches, repeated
    /// operands, late declarations or malformed statements.
    ///
    /// # Examples
    ///
    /// ```
    /// use qspr_qasm::Program;
    /// # fn main() -> Result<(), qspr_qasm::ParseError> {
    /// let p = Program::parse(
    ///     "# the paper's encoder prologue\nQUBIT q0,0\nQUBIT q1,0\nH q0\n",
    /// )?;
    /// assert_eq!(p.num_qubits(), 2);
    /// # Ok(())
    /// # }
    /// ```
    pub fn parse(source: &str) -> Result<Program, ParseError> {
        let _span = qspr_obs::span("parse");
        let mut program = Program::new();
        let mut seen_gate = false;
        for (idx, raw_line) in source.lines().enumerate() {
            let line_no = idx + 1;
            let line = strip_comment(raw_line).trim();
            if line.is_empty() {
                continue;
            }
            let (mnemonic, rest) = match line.split_once(char::is_whitespace) {
                Some((m, r)) => (m, r.trim()),
                None => (line, ""),
            };
            if mnemonic.eq_ignore_ascii_case("QUBIT") {
                if seen_gate {
                    return Err(ParseError::at_line(
                        line_no,
                        ParseErrorKind::LateDeclaration,
                    ));
                }
                parse_declaration(&mut program, rest).map_err(|e| relocate(e, line_no))?;
                continue;
            }
            if mnemonic.eq_ignore_ascii_case("CBIT") {
                // Classical bit declarations appear in some dialects; the
                // mapper has no use for them, so they are accepted and
                // ignored.
                continue;
            }
            let gate: Gate = mnemonic
                .parse()
                .map_err(|kind| ParseError::at_line(line_no, kind))?;
            let operands: Vec<&str> = rest
                .split(',')
                .map(str::trim)
                .filter(|s| !s.is_empty())
                .collect();
            let result = match (gate.arity(), operands.as_slice()) {
                (GateArity::One, [q]) => {
                    let q = lookup(&program, q).map_err(|e| relocate(e, line_no))?;
                    program.apply1(gate, q)
                }
                (GateArity::Two, [c, t]) => {
                    let c = lookup(&program, c).map_err(|e| relocate(e, line_no))?;
                    let t = lookup(&program, t).map_err(|e| relocate(e, line_no))?;
                    program.apply2(gate, c, t)
                }
                (_, ops) => Err(ParseError::internal(ParseErrorKind::ArityMismatch {
                    gate,
                    given: ops.len(),
                })),
            };
            result.map_err(|e| relocate(e, line_no))?;
            seen_gate = true;
        }
        Ok(program)
    }
}

fn strip_comment(line: &str) -> &str {
    let cut = line
        .find('#')
        .into_iter()
        .chain(line.find("//"))
        .min()
        .unwrap_or(line.len());
    &line[..cut]
}

fn relocate(err: ParseError, line: usize) -> ParseError {
    ParseError::at_line(line, err.kind().clone())
}

fn parse_declaration(program: &mut Program, rest: &str) -> Result<(), ParseError> {
    if rest.is_empty() {
        return Err(ParseError::internal(ParseErrorKind::Malformed));
    }
    let mut parts = rest.split(',').map(str::trim);
    let name = parts.next().unwrap_or("");
    let initial = match parts.next() {
        None | Some("") => None,
        Some(v) => Some(
            v.parse::<u8>()
                .map_err(|_| ParseError::internal(ParseErrorKind::Malformed))?,
        ),
    };
    if parts.next().is_some() {
        return Err(ParseError::internal(ParseErrorKind::Malformed));
    }
    program.add_qubit_with_initial(name, initial)?;
    Ok(())
}

fn lookup(program: &Program, name: &str) -> Result<crate::ast::QubitId, ParseError> {
    program
        .qubit_id(name)
        .ok_or_else(|| ParseError::internal(ParseErrorKind::UndeclaredQubit(name.to_owned())))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Operands;

    /// The paper's Fig. 3 program, transcribed verbatim (instruction 16 is
    /// absent in the paper's numbering; 17 instructions total).
    pub const FIG3: &str = "\
QUBIT q0,0
QUBIT q1,0
QUBIT q2,0
QUBIT q3
QUBIT q4,0
H q0
H q1
H q2
H q4
C-X q3,q2
C-Z q4,q2
C-Y q2,q1
C-Y q3,q1
C-X q4,q1
C-Z q2,q0
C-Y q3,q0
C-Z q4,q0
";

    #[test]
    fn parses_fig3_verbatim() {
        let p = Program::parse(FIG3).unwrap();
        assert_eq!(p.num_qubits(), 5);
        assert_eq!(p.instructions().len(), 12);
        assert_eq!(p.one_qubit_gate_count(), 4);
        assert_eq!(p.two_qubit_gate_count(), 8);
        assert_eq!(p.qubits()[3].initial(), None);
        assert_eq!(p.qubits()[0].initial(), Some(0));
    }

    #[test]
    fn control_target_order_is_preserved() {
        let p = Program::parse("QUBIT a\nQUBIT b\nC-X b,a\n").unwrap();
        match p.instructions()[0].operands {
            Operands::Two { control, target } => {
                assert_eq!(p.qubit_name(control), "b");
                assert_eq!(p.qubit_name(target), "a");
            }
            _ => panic!("expected two-qubit operands"),
        }
    }

    #[test]
    fn comments_and_blanks_are_ignored() {
        let src = "\n# leading comment\nQUBIT a // trailing\n\n  // indented comment\nH a # trailing too\n";
        let p = Program::parse(src).unwrap();
        assert_eq!(p.num_qubits(), 1);
        assert_eq!(p.instructions().len(), 1);
    }

    #[test]
    fn error_carries_line_number() {
        let err = Program::parse("QUBIT a\nFROB a\n").unwrap_err();
        assert_eq!(err.line(), Some(2));
        assert!(matches!(err.kind(), ParseErrorKind::UnknownGate(_)));
    }

    #[test]
    fn undeclared_qubit_is_reported() {
        let err = Program::parse("QUBIT a\nH b\n").unwrap_err();
        assert_eq!(err.line(), Some(2));
        assert!(matches!(err.kind(), ParseErrorKind::UndeclaredQubit(_)));
    }

    #[test]
    fn late_declaration_is_rejected() {
        let err = Program::parse("QUBIT a\nH a\nQUBIT b\n").unwrap_err();
        assert!(matches!(err.kind(), ParseErrorKind::LateDeclaration));
    }

    #[test]
    fn wrong_operand_count_is_rejected() {
        let err = Program::parse("QUBIT a\nQUBIT b\nC-X a\n").unwrap_err();
        assert!(matches!(err.kind(), ParseErrorKind::ArityMismatch { .. }));
        let err = Program::parse("QUBIT a\nH a,a\n").unwrap_err();
        assert!(matches!(err.kind(), ParseErrorKind::ArityMismatch { .. }));
    }

    #[test]
    fn declaration_with_garbage_is_rejected() {
        assert!(Program::parse("QUBIT\n").is_err());
        assert!(Program::parse("QUBIT a,x\n").is_err());
        assert!(Program::parse("QUBIT a,0,1\n").is_err());
    }

    #[test]
    fn cbit_lines_are_ignored() {
        let p = Program::parse("QUBIT a\nCBIT c0\nH a\n").unwrap();
        assert_eq!(p.num_qubits(), 1);
        assert_eq!(p.instructions().len(), 1);
    }

    #[test]
    fn whitespace_variants_parse() {
        let p = Program::parse("QUBIT   a , 0\nQUBIT b\nC-X   a ,  b\n").unwrap();
        assert_eq!(p.two_qubit_gate_count(), 1);
        assert_eq!(p.qubits()[0].initial(), Some(0));
    }
}
