//! Program representation: qubits, instructions, and the uncompute
//! transformation.

use std::fmt;

use crate::error::{ParseError, ParseErrorKind};
use crate::gate::{Gate, GateArity};

/// Identifier of a qubit inside a [`Program`], a dense index.
///
/// # Examples
///
/// ```
/// use qspr_qasm::{Program, QubitId};
///
/// let mut program = Program::new();
/// let q = program.add_qubit("q0").unwrap();
/// assert_eq!(q, QubitId(0));
/// assert_eq!(program.qubit_name(q), "q0");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QubitId(pub u32);

impl QubitId {
    /// The dense index of this qubit, usable for array indexing.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for QubitId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q#{}", self.0)
    }
}

/// A qubit declaration (`QUBIT name[,initial]` in QASM).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QubitDecl {
    name: String,
    initial: Option<u8>,
}

impl QubitDecl {
    /// The declared name, e.g. `q3`.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The optional declared initial classical value (`0` or `1`).
    pub fn initial(&self) -> Option<u8> {
        self.initial
    }
}

/// Operand list of an instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operands {
    /// A single-qubit operation.
    One(QubitId),
    /// A two-qubit operation. In the paper's terminology the control is the
    /// *source* qubit and the target the *destination* qubit.
    Two {
        /// Control / source operand (moves in single-movement policies).
        control: QubitId,
        /// Target / destination operand.
        target: QubitId,
    },
}

impl Operands {
    /// Qubits referenced by the operation, in declaration order.
    pub fn qubits(&self) -> impl Iterator<Item = QubitId> + '_ {
        let (a, b) = match *self {
            Operands::One(q) => (q, None),
            Operands::Two { control, target } => (control, Some(target)),
        };
        std::iter::once(a).chain(b)
    }

    /// Number of qubit operands (1 or 2).
    pub fn len(&self) -> usize {
        match self {
            Operands::One(_) => 1,
            Operands::Two { .. } => 2,
        }
    }

    /// Always `false`; an instruction has at least one operand.
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// One gate-level instruction of a program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Instruction {
    /// The gate to apply.
    pub gate: Gate,
    /// Its qubit operands.
    pub operands: Operands,
}

impl Instruction {
    /// Qubits touched by this instruction.
    pub fn qubits(&self) -> impl Iterator<Item = QubitId> + '_ {
        self.operands.qubits()
    }

    /// The inverse instruction (same operands, inverse gate), used when
    /// constructing the uncompute program.
    pub fn inverse(&self) -> Instruction {
        Instruction {
            gate: self.gate.inverse(),
            operands: self.operands,
        }
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.operands {
            Operands::One(q) => write!(f, "{} {}", self.gate, q),
            Operands::Two { control, target } => {
                write!(f, "{} {},{}", self.gate, control, target)
            }
        }
    }
}

/// A QASM program: an ordered list of qubit declarations followed by
/// gate-level instructions.
///
/// Construction enforces the invariants the rest of the mapper relies on:
/// qubit names are unique, every instruction references declared qubits,
/// and two-qubit instructions have distinct operands.
///
/// # Examples
///
/// ```
/// use qspr_qasm::{Gate, Program};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut program = Program::new();
/// let a = program.add_qubit("a")?;
/// let b = program.add_qubit("b")?;
/// program.apply1(Gate::H, a)?;
/// program.apply2(Gate::CX, a, b)?;
/// assert_eq!(program.two_qubit_gate_count(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Program {
    qubits: Vec<QubitDecl>,
    instructions: Vec<Instruction>,
}

impl Program {
    /// Creates an empty program.
    pub fn new() -> Program {
        Program::default()
    }

    /// Declares a qubit with no initial value annotation.
    ///
    /// # Errors
    ///
    /// Returns an error if the name is empty or already declared.
    pub fn add_qubit(&mut self, name: &str) -> Result<QubitId, ParseError> {
        self.add_qubit_with_initial(name, None)
    }

    /// Declares a qubit with an optional initial value (`QUBIT q0,0`).
    ///
    /// # Errors
    ///
    /// Returns an error if the name is empty or already declared, or the
    /// initial value is not 0/1.
    pub fn add_qubit_with_initial(
        &mut self,
        name: &str,
        initial: Option<u8>,
    ) -> Result<QubitId, ParseError> {
        if name.is_empty() {
            return Err(ParseError::internal(ParseErrorKind::EmptyQubitName));
        }
        if self.qubit_id(name).is_some() {
            return Err(ParseError::internal(ParseErrorKind::DuplicateQubit(
                name.to_owned(),
            )));
        }
        if let Some(v) = initial {
            if v > 1 {
                return Err(ParseError::internal(ParseErrorKind::BadInitialValue(v)));
            }
        }
        let id = QubitId(self.qubits.len() as u32);
        self.qubits.push(QubitDecl {
            name: name.to_owned(),
            initial,
        });
        Ok(id)
    }

    /// Appends a single-qubit instruction.
    ///
    /// # Errors
    ///
    /// Returns an error if the gate is not single-qubit or the qubit is not
    /// declared.
    pub fn apply1(&mut self, gate: Gate, qubit: QubitId) -> Result<(), ParseError> {
        if gate.arity() != GateArity::One {
            return Err(ParseError::internal(ParseErrorKind::ArityMismatch {
                gate,
                given: 1,
            }));
        }
        self.check_declared(qubit)?;
        self.instructions.push(Instruction {
            gate,
            operands: Operands::One(qubit),
        });
        Ok(())
    }

    /// Appends a two-qubit instruction (`control` is the paper's *source*).
    ///
    /// # Errors
    ///
    /// Returns an error if the gate is not two-qubit, either qubit is
    /// undeclared, or the operands coincide.
    pub fn apply2(
        &mut self,
        gate: Gate,
        control: QubitId,
        target: QubitId,
    ) -> Result<(), ParseError> {
        if gate.arity() != GateArity::Two {
            return Err(ParseError::internal(ParseErrorKind::ArityMismatch {
                gate,
                given: 2,
            }));
        }
        self.check_declared(control)?;
        self.check_declared(target)?;
        if control == target {
            return Err(ParseError::internal(ParseErrorKind::RepeatedOperand));
        }
        self.instructions.push(Instruction {
            gate,
            operands: Operands::Two { control, target },
        });
        Ok(())
    }

    fn check_declared(&self, qubit: QubitId) -> Result<(), ParseError> {
        if qubit.index() < self.qubits.len() {
            Ok(())
        } else {
            Err(ParseError::internal(ParseErrorKind::UndeclaredQubit(
                format!("{qubit}"),
            )))
        }
    }

    /// Number of declared qubits.
    pub fn num_qubits(&self) -> usize {
        self.qubits.len()
    }

    /// The declared qubits, in declaration order.
    pub fn qubits(&self) -> &[QubitDecl] {
        &self.qubits
    }

    /// The instruction list, in program order.
    pub fn instructions(&self) -> &[Instruction] {
        &self.instructions
    }

    /// Looks up a qubit id by declared name.
    pub fn qubit_id(&self, name: &str) -> Option<QubitId> {
        self.qubits
            .iter()
            .position(|q| q.name == name)
            .map(|i| QubitId(i as u32))
    }

    /// The declared name of `qubit`.
    ///
    /// # Panics
    ///
    /// Panics if `qubit` was not declared in this program.
    pub fn qubit_name(&self, qubit: QubitId) -> &str {
        &self.qubits[qubit.index()].name
    }

    /// Count of two-qubit instructions (the expensive ones to map).
    pub fn two_qubit_gate_count(&self) -> usize {
        self.instructions
            .iter()
            .filter(|i| i.gate.is_two_qubit())
            .count()
    }

    /// Count of single-qubit instructions.
    pub fn one_qubit_gate_count(&self) -> usize {
        self.instructions.len() - self.two_qubit_gate_count()
    }

    /// The *uncompute* program: instructions in reverse order, each replaced
    /// by its inverse. Executing it undoes this program; the QSPR MVFB
    /// placer alternates between the two (QIDG and UIDG in the paper).
    ///
    /// ```
    /// use qspr_qasm::Program;
    /// let p = Program::parse("QUBIT a\nQUBIT b\nH a\nC-X a,b\n").unwrap();
    /// let u = p.reversed();
    /// assert_eq!(u.reversed(), p);
    /// ```
    pub fn reversed(&self) -> Program {
        Program {
            qubits: self.qubits.clone(),
            instructions: self
                .instructions
                .iter()
                .rev()
                .map(|i| i.inverse())
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Program {
        let mut p = Program::new();
        let a = p.add_qubit_with_initial("a", Some(0)).unwrap();
        let b = p.add_qubit("b").unwrap();
        p.apply1(Gate::H, a).unwrap();
        p.apply1(Gate::S, b).unwrap();
        p.apply2(Gate::CX, a, b).unwrap();
        p
    }

    #[test]
    fn qubit_lookup_round_trips() {
        let p = sample();
        for decl in p.qubits() {
            let id = p.qubit_id(decl.name()).unwrap();
            assert_eq!(p.qubit_name(id), decl.name());
        }
        assert!(p.qubit_id("nope").is_none());
    }

    #[test]
    fn duplicate_qubit_rejected() {
        let mut p = Program::new();
        p.add_qubit("a").unwrap();
        assert!(p.add_qubit("a").is_err());
    }

    #[test]
    fn bad_initial_value_rejected() {
        let mut p = Program::new();
        assert!(p.add_qubit_with_initial("a", Some(2)).is_err());
    }

    #[test]
    fn arity_mismatch_rejected() {
        let mut p = Program::new();
        let a = p.add_qubit("a").unwrap();
        let b = p.add_qubit("b").unwrap();
        assert!(p.apply1(Gate::CX, a).is_err());
        assert!(p.apply2(Gate::H, a, b).is_err());
    }

    #[test]
    fn repeated_operand_rejected() {
        let mut p = Program::new();
        let a = p.add_qubit("a").unwrap();
        p.add_qubit("b").unwrap();
        assert!(p.apply2(Gate::CX, a, a).is_err());
    }

    #[test]
    fn undeclared_operand_rejected() {
        let mut p = Program::new();
        let a = p.add_qubit("a").unwrap();
        assert!(p.apply1(Gate::H, QubitId(4)).is_err());
        assert!(p.apply2(Gate::CZ, a, QubitId(9)).is_err());
    }

    #[test]
    fn gate_counts() {
        let p = sample();
        assert_eq!(p.one_qubit_gate_count(), 2);
        assert_eq!(p.two_qubit_gate_count(), 1);
    }

    #[test]
    fn reversed_is_involutive() {
        let p = sample();
        assert_eq!(p.reversed().reversed(), p);
    }

    #[test]
    fn reversed_reverses_order_and_inverts() {
        let p = sample();
        let u = p.reversed();
        assert_eq!(u.instructions()[0].gate, Gate::CX);
        assert_eq!(u.instructions()[1].gate, Gate::Sdg);
        assert_eq!(u.instructions()[2].gate, Gate::H);
    }
}
