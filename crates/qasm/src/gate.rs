//! The gate set understood by the mapper.

use std::fmt;
use std::str::FromStr;

use crate::error::ParseErrorKind;

/// Number of qubit operands a gate takes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum GateArity {
    /// Gate acts on a single qubit inside one trap.
    One,
    /// Gate acts on two qubits that must be brought into the same trap.
    Two,
}

/// A quantum gate-level operation.
///
/// The set is a superset of the gates used by the QSPR paper's benchmarks
/// (`H`, `C-X`, `C-Y`, `C-Z`) extended with the common Clifford+T
/// single-qubit gates, preparation/measurement and `SWAP` so that the
/// parser accepts realistic synthesized QASM.
///
/// # Examples
///
/// ```
/// use qspr_qasm::{Gate, GateArity};
///
/// assert_eq!(Gate::CX.arity(), GateArity::Two);
/// assert_eq!(Gate::S.inverse(), Gate::Sdg);
/// assert_eq!("C-X".parse::<Gate>().unwrap(), Gate::CX);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Gate {
    /// Hadamard.
    H,
    /// Pauli X.
    X,
    /// Pauli Y.
    Y,
    /// Pauli Z.
    Z,
    /// Phase gate (√Z).
    S,
    /// Inverse phase gate.
    Sdg,
    /// π/8 gate (√S).
    T,
    /// Inverse π/8 gate.
    Tdg,
    /// Preparation of |0⟩ in the Z basis.
    PrepZ,
    /// Measurement in the Z basis.
    MeasZ,
    /// Controlled-X (CNOT). First operand is the control (source), second
    /// the target (destination), matching the paper's `C-X c,t` syntax.
    CX,
    /// Controlled-Y.
    CY,
    /// Controlled-Z.
    CZ,
    /// Swap of two qubits.
    Swap,
}

impl Gate {
    /// All gates, in a stable order. Useful for exhaustive tests.
    pub const ALL: [Gate; 14] = [
        Gate::H,
        Gate::X,
        Gate::Y,
        Gate::Z,
        Gate::S,
        Gate::Sdg,
        Gate::T,
        Gate::Tdg,
        Gate::PrepZ,
        Gate::MeasZ,
        Gate::CX,
        Gate::CY,
        Gate::CZ,
        Gate::Swap,
    ];

    /// Returns how many qubits this gate operates on.
    ///
    /// ```
    /// use qspr_qasm::{Gate, GateArity};
    /// assert_eq!(Gate::H.arity(), GateArity::One);
    /// assert_eq!(Gate::Swap.arity(), GateArity::Two);
    /// ```
    pub fn arity(self) -> GateArity {
        match self {
            Gate::H
            | Gate::X
            | Gate::Y
            | Gate::Z
            | Gate::S
            | Gate::Sdg
            | Gate::T
            | Gate::Tdg
            | Gate::PrepZ
            | Gate::MeasZ => GateArity::One,
            Gate::CX | Gate::CY | Gate::CZ | Gate::Swap => GateArity::Two,
        }
    }

    /// `true` when the gate needs two qubits co-located in one trap.
    pub fn is_two_qubit(self) -> bool {
        self.arity() == GateArity::Two
    }

    /// The inverse gate, used to build the *uncompute* program (UIDG).
    ///
    /// Preparation and measurement are mapped onto each other: undoing a
    /// Z-basis preparation is a Z-basis measurement in the reverse-executed
    /// program, and vice versa. All other gates in the set are either
    /// self-inverse or have their inverse in the set.
    ///
    /// ```
    /// use qspr_qasm::Gate;
    /// for gate in Gate::ALL {
    ///     assert_eq!(gate.inverse().inverse(), gate);
    /// }
    /// ```
    pub fn inverse(self) -> Gate {
        match self {
            Gate::S => Gate::Sdg,
            Gate::Sdg => Gate::S,
            Gate::T => Gate::Tdg,
            Gate::Tdg => Gate::T,
            Gate::PrepZ => Gate::MeasZ,
            Gate::MeasZ => Gate::PrepZ,
            other => other,
        }
    }

    /// Canonical QASM mnemonic, matching the paper's spelling.
    pub fn mnemonic(self) -> &'static str {
        match self {
            Gate::H => "H",
            Gate::X => "X",
            Gate::Y => "Y",
            Gate::Z => "Z",
            Gate::S => "S",
            Gate::Sdg => "Sdg",
            Gate::T => "T",
            Gate::Tdg => "Tdg",
            Gate::PrepZ => "PrepZ",
            Gate::MeasZ => "MeasZ",
            Gate::CX => "C-X",
            Gate::CY => "C-Y",
            Gate::CZ => "C-Z",
            Gate::Swap => "SWAP",
        }
    }
}

impl fmt::Display for Gate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

impl FromStr for Gate {
    type Err = ParseErrorKind;

    /// Parses a gate mnemonic, case-insensitively, accepting the common
    /// aliases found in QASM dialects (`CNOT` for `C-X`, `MEASURE` for
    /// `MeasZ`, …).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let upper = s.to_ascii_uppercase();
        Ok(match upper.as_str() {
            "H" => Gate::H,
            "X" | "NOT" => Gate::X,
            "Y" => Gate::Y,
            "Z" => Gate::Z,
            "S" | "P" => Gate::S,
            "SDG" | "SDAG" | "S-DAG" => Gate::Sdg,
            "T" => Gate::T,
            "TDG" | "TDAG" | "T-DAG" => Gate::Tdg,
            "PREPZ" | "PREP" => Gate::PrepZ,
            "MEASZ" | "MEASURE" | "MEAS" => Gate::MeasZ,
            "C-X" | "CX" | "CNOT" => Gate::CX,
            "C-Y" | "CY" => Gate::CY,
            "C-Z" | "CZ" | "CPHASE" => Gate::CZ,
            "SWAP" => Gate::Swap,
            _ => return Err(ParseErrorKind::UnknownGate(s.to_owned())),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arity_matches_operand_count() {
        assert_eq!(Gate::H.arity(), GateArity::One);
        assert_eq!(Gate::MeasZ.arity(), GateArity::One);
        assert_eq!(Gate::CX.arity(), GateArity::Two);
        assert_eq!(Gate::CZ.arity(), GateArity::Two);
    }

    #[test]
    fn inverse_is_an_involution() {
        for gate in Gate::ALL {
            assert_eq!(gate.inverse().inverse(), gate, "gate {gate}");
        }
    }

    #[test]
    fn inverse_preserves_arity() {
        for gate in Gate::ALL {
            assert_eq!(gate.inverse().arity(), gate.arity(), "gate {gate}");
        }
    }

    #[test]
    fn paper_mnemonics_round_trip() {
        for gate in Gate::ALL {
            let parsed: Gate = gate.mnemonic().parse().unwrap();
            assert_eq!(parsed, gate);
        }
    }

    #[test]
    fn aliases_are_accepted() {
        assert_eq!("cnot".parse::<Gate>().unwrap(), Gate::CX);
        assert_eq!("MEASURE".parse::<Gate>().unwrap(), Gate::MeasZ);
        assert_eq!("cphase".parse::<Gate>().unwrap(), Gate::CZ);
    }

    #[test]
    fn unknown_gate_is_rejected() {
        assert!("FROB".parse::<Gate>().is_err());
    }
}
