//! Property tests of the declarative spec layer: any programmatic
//! [`RegularFabricSpec`], exported to a [`FabricSpec`] JSON document
//! and re-elaborated from the parsed text, must reproduce the direct
//! constructor's fabric exactly.

use proptest::prelude::*;

use qspr_fabric::{FabricSpec, RegularFabricSpec};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `RegularFabricSpec -> FabricSpec -> JSON -> parse -> build`
    /// equals the direct constructor (grid, topology, capacities, and
    /// the ASCII rendering), with spec provenance attached only on the
    /// round-tripped side. Degenerate geometries must fail identically
    /// through both paths.
    #[test]
    fn regular_specs_round_trip_through_json(
        rows in 2u16..26,
        cols in 2u16..26,
        pitch in 2u16..7,
    ) {
        let programmatic = RegularFabricSpec::new(rows, cols, pitch);
        let document = programmatic.to_spec().to_json();
        let parsed = FabricSpec::parse_json(&document)
            .expect("to_json emits parseable spec documents");
        // The document itself round-trips byte-for-byte.
        prop_assert_eq!(parsed.to_json(), document);
        match programmatic.build() {
            Ok(direct) => {
                let rebuilt = parsed.build().expect("direct path built");
                prop_assert_eq!(&rebuilt, &direct);
                prop_assert_eq!(rebuilt.to_ascii(), direct.to_ascii());
                prop_assert!(direct.info().is_none(), "wrappers stay anonymous");
                let info = rebuilt.info().expect("spec builds carry provenance");
                prop_assert_eq!(info.family.as_str(), "regular");
                prop_assert_eq!(info.regions, 1);
            }
            Err(e) => {
                prop_assert_eq!(parsed.build().unwrap_err(), e);
            }
        }
    }
}
