//! Derived connectivity of a fabric: channel segments, junctions and trap
//! ports.

use std::fmt;

use crate::cell::{Cell, Coord, Orientation};
use crate::error::FabricError;
use crate::search::SearchGraph;

/// Identifier of a channel [`Segment`] within a [`Topology`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SegmentId(pub u32);

/// Identifier of a [`Junction`] within a [`Topology`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JunctionId(pub u32);

/// Identifier of a [`Trap`] within a [`Topology`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TrapId(pub u32);

impl SegmentId {
    /// Dense index for array addressing.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}
impl JunctionId {
    /// Dense index for array addressing.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}
impl TrapId {
    /// Dense index for array addressing.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for SegmentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "seg#{}", self.0)
    }
}
impl fmt::Display for JunctionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "jct#{}", self.0)
    }
}
impl fmt::Display for TrapId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trap#{}", self.0)
    }
}

/// What a segment end attaches to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SegmentEnd {
    /// The segment continues into a junction.
    Junction(JunctionId),
    /// The segment dead-ends (fabric edge or empty cell).
    Dead,
}

impl SegmentEnd {
    /// The junction id, if this end attaches to one.
    pub fn junction(self) -> Option<JunctionId> {
        match self {
            SegmentEnd::Junction(j) => Some(j),
            SegmentEnd::Dead => None,
        }
    }
}

/// A maximal straight run of channel cells between junctions/dead ends.
///
/// Cells are ordered from the north/west end (`offset 0`) towards the
/// south/east end (`offset len-1`). `ends()[0]` is the attachment on the
/// north/west side, `ends()[1]` on the south/east side.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Segment {
    orientation: Orientation,
    start: Coord,
    len: u16,
    ends: [SegmentEnd; 2],
}

impl Segment {
    /// Channel direction of this segment.
    pub fn orientation(&self) -> Orientation {
        self.orientation
    }

    /// Number of channel cells in the segment. Traversing the full segment
    /// between its two end junctions costs `len + 1` moves.
    pub fn len(&self) -> u16 {
        self.len
    }

    /// Segments always contain at least one cell.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Attachments at the two ends: `[north-or-west, south-or-east]`.
    pub fn ends(&self) -> [SegmentEnd; 2] {
        self.ends
    }

    /// The coordinate of the channel cell at `offset`.
    ///
    /// # Panics
    ///
    /// Panics if `offset >= len()`.
    pub fn cell_at(&self, offset: u16) -> Coord {
        assert!(offset < self.len, "offset {offset} out of segment");
        match self.orientation {
            Orientation::Horizontal => Coord::new(self.start.row, self.start.col + offset),
            Orientation::Vertical => Coord::new(self.start.row + offset, self.start.col),
        }
    }

    /// Iterates the segment's cells from offset 0 upward.
    pub fn cells(&self) -> impl Iterator<Item = Coord> + '_ {
        (0..self.len).map(move |o| self.cell_at(o))
    }

    /// Which end (0 or 1) attaches to junction `j`, if either.
    pub fn end_attached_to(&self, j: JunctionId) -> Option<usize> {
        self.ends.iter().position(|e| *e == SegmentEnd::Junction(j))
    }

    /// Moves needed to go from the cell at `offset` onto the end junction
    /// `end` (0 = north/west, 1 = south/east): the cells in between plus
    /// the final step onto the junction itself.
    ///
    /// # Panics
    ///
    /// Panics if `offset >= len()` or `end > 1`.
    pub fn moves_to_end(&self, offset: u16, end: usize) -> u32 {
        assert!(offset < self.len, "offset {offset} out of segment");
        match end {
            0 => offset as u32 + 1,
            1 => (self.len - offset) as u32,
            _ => panic!("segment end index {end} out of range"),
        }
    }
}

/// Compass direction used to address a junction's incident segments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Decreasing row.
    North,
    /// Increasing row.
    South,
    /// Decreasing column.
    West,
    /// Increasing column.
    East,
}

impl Direction {
    /// All four directions in N, S, W, E order.
    pub const ALL: [Direction; 4] = [
        Direction::North,
        Direction::South,
        Direction::West,
        Direction::East,
    ];

    fn index(self) -> usize {
        match self {
            Direction::North => 0,
            Direction::South => 1,
            Direction::West => 2,
            Direction::East => 3,
        }
    }
}

/// A junction cell: the only place a qubit may change between horizontal
/// and vertical movement (a *turn*, costing `T_turn`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Junction {
    coord: Coord,
    incident: [Option<SegmentId>; 4],
}

impl Junction {
    /// Grid position of the junction.
    pub fn coord(&self) -> Coord {
        self.coord
    }

    /// The segment leaving this junction in `direction`, if any.
    pub fn incident(&self, direction: Direction) -> Option<SegmentId> {
        self.incident[direction.index()]
    }

    /// All incident segments with their directions.
    pub fn incident_segments(&self) -> impl Iterator<Item = (Direction, SegmentId)> + '_ {
        Direction::ALL
            .into_iter()
            .filter_map(move |d| self.incident(d).map(|s| (d, s)))
    }

    /// Number of connected segments (degree of the junction).
    pub fn degree(&self) -> usize {
        self.incident.iter().flatten().count()
    }
}

/// The channel cell through which a qubit enters/exits a trap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Port {
    /// Segment containing the port cell.
    pub segment: SegmentId,
    /// Offset of the port cell within that segment.
    pub offset: u16,
    /// Grid position of the port cell.
    pub coord: Coord,
}

/// A gate-execution site. Holds one qubit for 1-qubit gates, two for
/// 2-qubit gates; entering or leaving costs one move through the port.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trap {
    coord: Coord,
    port: Port,
}

impl Trap {
    /// Grid position of the trap.
    pub fn coord(&self) -> Coord {
        self.coord
    }

    /// The trap's single access port.
    pub fn port(&self) -> Port {
        self.port
    }
}

/// Derived connectivity of a [`crate::Fabric`].
///
/// Built eagerly at fabric construction; all mapper stages (placement,
/// routing, simulation) work on this view rather than raw cells.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Topology {
    rows: u16,
    cols: u16,
    segments: Vec<Segment>,
    junctions: Vec<Junction>,
    traps: Vec<Trap>,
    // Dense per-cell indexes (row-major).
    junction_at: Vec<Option<JunctionId>>,
    trap_at: Vec<Option<TrapId>>,
    channel_at: Vec<Option<(SegmentId, u16)>>,
    // Per-resource capacity overrides (`None` = the technology default).
    segment_caps: Vec<Option<u8>>,
    junction_caps: Vec<Option<u8>>,
    search: SearchGraph,
}

impl Topology {
    /// All channel segments.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// All junctions.
    pub fn junctions(&self) -> &[Junction] {
        &self.junctions
    }

    /// All traps.
    pub fn traps(&self) -> &[Trap] {
        &self.traps
    }

    /// The segment with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this topology.
    pub fn segment(&self, id: SegmentId) -> &Segment {
        &self.segments[id.index()]
    }

    /// The junction with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this topology.
    pub fn junction(&self, id: JunctionId) -> &Junction {
        &self.junctions[id.index()]
    }

    /// The trap with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this topology.
    pub fn trap(&self, id: TrapId) -> &Trap {
        &self.traps[id.index()]
    }

    fn cell_index(&self, coord: Coord) -> Option<usize> {
        (coord.row < self.rows && coord.col < self.cols)
            .then(|| coord.row as usize * self.cols as usize + coord.col as usize)
    }

    /// The junction occupying `coord`, if any.
    pub fn junction_at(&self, coord: Coord) -> Option<JunctionId> {
        self.cell_index(coord).and_then(|i| self.junction_at[i])
    }

    /// The trap occupying `coord`, if any.
    pub fn trap_at(&self, coord: Coord) -> Option<TrapId> {
        self.cell_index(coord).and_then(|i| self.trap_at[i])
    }

    /// The segment and offset of the channel cell at `coord`, if any.
    pub fn channel_at(&self, coord: Coord) -> Option<(SegmentId, u16)> {
        self.cell_index(coord).and_then(|i| self.channel_at[i])
    }

    /// The precomputed `(junction, orientation)` search graph routers
    /// run shortest-path queries over (see [`SearchGraph`]).
    pub fn search_graph(&self) -> &SearchGraph {
        &self.search
    }

    /// The capacity override of a segment, `None` when it uses the
    /// technology default. Overrides come from a fabric spec's capacity
    /// assignments; a segment spanning several overridden cells takes
    /// the minimum (the narrowest cell bounds the whole run).
    pub fn segment_cap(&self, id: SegmentId) -> Option<u8> {
        self.segment_caps[id.index()]
    }

    /// The capacity override of a junction, `None` for the default.
    pub fn junction_cap(&self, id: JunctionId) -> Option<u8> {
        self.junction_caps[id.index()]
    }

    /// Per-segment capacity overrides, indexed by [`SegmentId`].
    pub fn segment_caps(&self) -> &[Option<u8>] {
        &self.segment_caps
    }

    /// Per-junction capacity overrides, indexed by [`JunctionId`].
    pub fn junction_caps(&self) -> &[Option<u8>] {
        &self.junction_caps
    }

    /// `true` when any resource carries a capacity override, i.e. the
    /// fabric is *heterogeneous* and the global technology capacities do
    /// not tell the whole story.
    pub fn has_capacity_overrides(&self) -> bool {
        self.segment_caps.iter().any(Option::is_some)
            || self.junction_caps.iter().any(Option::is_some)
    }

    /// Occupancy-capacity histogram over all segments and junctions:
    /// `(override, count)` pairs with `None` (the technology default)
    /// first, then ascending capacity values.
    pub fn capacity_histogram(&self) -> Vec<(Option<u8>, usize)> {
        let mut histogram: Vec<(Option<u8>, usize)> = Vec::new();
        for cap in self.segment_caps.iter().chain(&self.junction_caps) {
            match histogram.iter_mut().find(|(c, _)| c == cap) {
                Some((_, n)) => *n += 1,
                None => histogram.push((*cap, 1)),
            }
        }
        histogram.sort_by_key(|(c, _)| c.map_or(0u16, |v| v as u16 + 1));
        histogram
    }

    /// The trap nearest to `to` (Manhattan metric) among those for which
    /// `candidate` returns `true`. Ties break towards the smaller trap id,
    /// keeping the mapper deterministic.
    pub fn nearest_trap<F>(&self, to: Coord, mut candidate: F) -> Option<TrapId>
    where
        F: FnMut(TrapId) -> bool,
    {
        let mut best: Option<(u32, TrapId)> = None;
        for (i, trap) in self.traps.iter().enumerate() {
            let id = TrapId(i as u32);
            if !candidate(id) {
                continue;
            }
            let d = trap.coord.manhattan(to);
            if best.map_or(true, |(bd, bid)| (d, id) < (bd, bid)) {
                best = Some((d, id));
            }
        }
        best.map(|(_, id)| id)
    }

    /// All traps sorted by (Manhattan distance to `to`, trap id).
    /// The head of this list is QUALE's "center placement" order when `to`
    /// is the fabric center.
    pub fn traps_by_distance(&self, to: Coord) -> Vec<TrapId> {
        let mut ids: Vec<TrapId> = (0..self.traps.len() as u32).map(TrapId).collect();
        ids.sort_by_key(|id| (self.trap(*id).coord.manhattan(to), *id));
        ids
    }

    /// Builds the topology for a validated grid. Called by
    /// [`crate::Fabric::new`]; exposed for tests.
    ///
    /// `cell_caps` carries per-cell capacity overrides from the spec
    /// elaborator (row-major, same dimensions as `grid`, or empty for a
    /// uniform fabric). A junction takes its own cell's override; a
    /// segment takes the minimum override among its member cells.
    ///
    /// # Errors
    ///
    /// Returns [`FabricError::NoTraps`] or [`FabricError::TrapWithoutPort`]
    /// when the fabric cannot host computation.
    pub(crate) fn build(
        rows: u16,
        cols: u16,
        grid: &[Cell],
        cell_caps: &[Option<u8>],
    ) -> Result<Topology, FabricError> {
        let cell = |r: u16, c: u16| grid[r as usize * cols as usize + c as usize];
        let n_cells = rows as usize * cols as usize;

        let mut junctions = Vec::new();
        let mut junction_at = vec![None; n_cells];
        for r in 0..rows {
            for c in 0..cols {
                if cell(r, c) == Cell::Junction {
                    let id = JunctionId(junctions.len() as u32);
                    junction_at[r as usize * cols as usize + c as usize] = Some(id);
                    junctions.push(Junction {
                        coord: Coord::new(r, c),
                        incident: [None; 4],
                    });
                }
            }
        }

        let mut segments = Vec::new();
        let mut channel_at = vec![None; n_cells];
        let idx = |r: u16, c: u16| r as usize * cols as usize + c as usize;

        // Horizontal runs.
        for r in 0..rows {
            let mut c = 0;
            while c < cols {
                if cell(r, c) != Cell::HChannel {
                    c += 1;
                    continue;
                }
                let start = c;
                while c < cols && cell(r, c) == Cell::HChannel {
                    c += 1;
                }
                let end = c; // exclusive
                let id = SegmentId(segments.len() as u32);
                let west = start
                    .checked_sub(1)
                    .and_then(|pc| junction_at[idx(r, pc)])
                    .map_or(SegmentEnd::Dead, SegmentEnd::Junction);
                let east = (end < cols)
                    .then(|| junction_at[idx(r, end)])
                    .flatten()
                    .map_or(SegmentEnd::Dead, SegmentEnd::Junction);
                for (o, cc) in (start..end).enumerate() {
                    channel_at[idx(r, cc)] = Some((id, o as u16));
                }
                if let SegmentEnd::Junction(j) = west {
                    junctions[j.index()].incident[Direction::East.index()] = Some(id);
                }
                if let SegmentEnd::Junction(j) = east {
                    junctions[j.index()].incident[Direction::West.index()] = Some(id);
                }
                segments.push(Segment {
                    orientation: Orientation::Horizontal,
                    start: Coord::new(r, start),
                    len: end - start,
                    ends: [west, east],
                });
            }
        }

        // Vertical runs.
        for c in 0..cols {
            let mut r = 0;
            while r < rows {
                if cell(r, c) != Cell::VChannel {
                    r += 1;
                    continue;
                }
                let start = r;
                while r < rows && cell(r, c) == Cell::VChannel {
                    r += 1;
                }
                let end = r;
                let id = SegmentId(segments.len() as u32);
                let north = start
                    .checked_sub(1)
                    .and_then(|pr| junction_at[idx(pr, c)])
                    .map_or(SegmentEnd::Dead, SegmentEnd::Junction);
                let south = (end < rows)
                    .then(|| junction_at[idx(end, c)])
                    .flatten()
                    .map_or(SegmentEnd::Dead, SegmentEnd::Junction);
                for (o, rr) in (start..end).enumerate() {
                    channel_at[idx(rr, c)] = Some((id, o as u16));
                }
                if let SegmentEnd::Junction(j) = north {
                    junctions[j.index()].incident[Direction::South.index()] = Some(id);
                }
                if let SegmentEnd::Junction(j) = south {
                    junctions[j.index()].incident[Direction::North.index()] = Some(id);
                }
                segments.push(Segment {
                    orientation: Orientation::Vertical,
                    start: Coord::new(start, c),
                    len: end - start,
                    ends: [north, south],
                });
            }
        }

        // Traps and their ports.
        let mut traps = Vec::new();
        let mut trap_at = vec![None; n_cells];
        for r in 0..rows {
            for c in 0..cols {
                if cell(r, c) != Cell::Trap {
                    continue;
                }
                let coord = Coord::new(r, c);
                let port = coord
                    .neighbors(rows, cols)
                    .find_map(|n| {
                        channel_at[idx(n.row, n.col)].map(|(segment, offset)| Port {
                            segment,
                            offset,
                            coord: n,
                        })
                    })
                    .ok_or(FabricError::TrapWithoutPort(coord))?;
                let id = TrapId(traps.len() as u32);
                trap_at[idx(r, c)] = Some(id);
                traps.push(Trap { coord, port });
            }
        }
        if traps.is_empty() {
            return Err(FabricError::NoTraps);
        }

        // Fold per-cell overrides into per-resource capacities.
        let cap_at = |coord: Coord| cell_caps.get(idx(coord.row, coord.col)).copied().flatten();
        let segment_caps: Vec<Option<u8>> = segments
            .iter()
            .map(|seg| seg.cells().filter_map(cap_at).min())
            .collect();
        let junction_caps: Vec<Option<u8>> = junctions.iter().map(|j| cap_at(j.coord)).collect();

        let search = SearchGraph::build(&segments, &junctions);
        Ok(Topology {
            rows,
            cols,
            segments,
            junctions,
            traps,
            junction_at,
            trap_at,
            channel_at,
            segment_caps,
            junction_caps,
            search,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::Fabric;

    /// A 5×5 cross: one junction in the middle, four channel stubs, traps
    /// hanging off the vertical stubs.
    const CROSS: &str = "\
..|..
T.|..
--+--
..|.T
..|..
";

    #[test]
    fn cross_topology_shape() {
        let f = Fabric::from_ascii(CROSS).unwrap();
        let t = f.topology();
        assert_eq!(t.junctions().len(), 1);
        assert_eq!(t.segments().len(), 4);
        assert_eq!(t.traps().len(), 2);
        let j = &t.junctions()[0];
        assert_eq!(j.coord(), Coord::new(2, 2));
        assert_eq!(j.degree(), 4);
    }

    #[test]
    fn segment_ends_attach_to_junction() {
        let f = Fabric::from_ascii(CROSS).unwrap();
        let t = f.topology();
        let j = JunctionId(0);
        for seg in t.segments() {
            // Each stub has one junction end and one dead end.
            let ends = seg.ends();
            assert!(ends.contains(&SegmentEnd::Junction(j)), "{seg:?}");
            assert!(ends.contains(&SegmentEnd::Dead), "{seg:?}");
            assert_eq!(seg.len(), 2);
        }
    }

    #[test]
    fn junction_incidence_directions() {
        let f = Fabric::from_ascii(CROSS).unwrap();
        let t = f.topology();
        let j = &t.junctions()[0];
        for d in Direction::ALL {
            let seg = j.incident(d).expect("cross has all four directions");
            let expected = match d {
                Direction::North | Direction::South => Orientation::Vertical,
                Direction::West | Direction::East => Orientation::Horizontal,
            };
            assert_eq!(t.segment(seg).orientation(), expected);
        }
    }

    #[test]
    fn trap_ports_point_to_channels() {
        let f = Fabric::from_ascii(CROSS).unwrap();
        let t = f.topology();
        for trap in t.traps() {
            let port = trap.port();
            let (seg, off) = t.channel_at(port.coord).unwrap();
            assert_eq!(seg, port.segment);
            assert_eq!(off, port.offset);
            assert_eq!(trap.coord().manhattan(port.coord), 1);
        }
    }

    #[test]
    fn channel_cells_know_their_segment() {
        let f = Fabric::from_ascii(CROSS).unwrap();
        let t = f.topology();
        for (i, seg) in t.segments().iter().enumerate() {
            for (o, coord) in seg.cells().enumerate() {
                assert_eq!(t.channel_at(coord), Some((SegmentId(i as u32), o as u16)));
            }
        }
    }

    #[test]
    fn moves_to_end_counts_cells_plus_junction_step() {
        let f = Fabric::from_ascii(CROSS).unwrap();
        let t = f.topology();
        let seg = &t.segments()[0];
        assert_eq!(seg.len(), 2);
        // From offset 0: 1 move onto end 0's neighbour, 2 moves to end 1.
        assert_eq!(seg.moves_to_end(0, 0), 1);
        assert_eq!(seg.moves_to_end(0, 1), 2);
        assert_eq!(seg.moves_to_end(1, 0), 2);
        assert_eq!(seg.moves_to_end(1, 1), 1);
    }

    #[test]
    fn trap_without_port_is_rejected() {
        let err = Fabric::from_ascii("T....\n.....\n--+--\n").unwrap_err();
        assert_eq!(err, FabricError::TrapWithoutPort(Coord::new(0, 0)));
    }

    #[test]
    fn no_traps_is_rejected() {
        let err = Fabric::from_ascii("--+--\n").unwrap_err();
        assert_eq!(err, FabricError::NoTraps);
    }

    #[test]
    fn nearest_trap_with_predicate() {
        let f = Fabric::from_ascii(CROSS).unwrap();
        let t = f.topology();
        let near_top_left = t.nearest_trap(Coord::new(0, 0), |_| true).unwrap();
        assert_eq!(t.trap(near_top_left).coord(), Coord::new(1, 0));
        let excluded = t
            .nearest_trap(Coord::new(0, 0), |id| id != near_top_left)
            .unwrap();
        assert_eq!(t.trap(excluded).coord(), Coord::new(3, 4));
        assert_eq!(t.nearest_trap(Coord::new(0, 0), |_| false), None);
    }

    #[test]
    fn traps_by_distance_is_sorted() {
        let f = Fabric::from_ascii(CROSS).unwrap();
        let t = f.topology();
        let order = t.traps_by_distance(Coord::new(2, 2));
        let dists: Vec<u32> = order
            .iter()
            .map(|id| t.trap(*id).coord().manhattan(Coord::new(2, 2)))
            .collect();
        let mut sorted = dists.clone();
        sorted.sort_unstable();
        assert_eq!(dists, sorted);
        assert_eq!(order.len(), t.traps().len());
    }

    #[test]
    fn parallel_channels_stay_disconnected() {
        // Two horizontal channels stacked with no junction: 2 segments.
        let f = Fabric::from_ascii("---\n---\nT..\n").unwrap();
        let t = f.topology();
        assert_eq!(t.segments().len(), 2);
        for seg in t.segments() {
            assert_eq!(seg.ends(), [SegmentEnd::Dead, SegmentEnd::Dead]);
        }
    }

    #[test]
    fn port_prefers_north_neighbor() {
        // Trap with channels both north and east: port picks north first.
        let f = Fabric::from_ascii(".-.\n.T-\n...\n").unwrap();
        let t = f.topology();
        let port = t.traps()[0].port();
        assert_eq!(port.coord, Coord::new(0, 1));
    }
}
