//! Declarative fabric descriptions: parse, compose, elaborate.
//!
//! A [`FabricSpec`] is a *document* describing a fabric — resource
//! types with per-type capacities, reusable tile macros, a list of
//! placed regions, inter-region channel links and capacity assignments
//! — that a single elaborator, [`FabricSpec::build`], compiles into a
//! concrete [`Fabric`]. Two front ends produce specs:
//!
//! * **JSON** ([`FabricSpec::parse_json`]), read by the strict RFC 8259
//!   parser in `qspr-json`. The grammar is documented in
//!   `docs/FABRIC_SPEC.md`; `examples/fabrics/` ships working files.
//! * **ASCII art** ([`FabricSpec::from_ascii`]), wrapping the classic
//!   one-character-per-cell format as a single-region spec.
//!
//! The programmatic constructors ([`FabricSpec::regular`], and
//! [`crate::RegularFabricSpec::build`] which now routes through it) emit
//! the same document, so every fabric in the workspace — hardcoded,
//! file-loaded or generated — flows through one elaboration pipeline:
//!
//! ```text
//! JSON / ASCII / constructor  →  FabricSpec  →  paint regions →
//! paint links → assign capacities  →  Fabric::with_capacities
//! ```
//!
//! # Region families
//!
//! | family | parameters | produces |
//! |---|---|---|
//! | `regular` | `rows`, `cols`, `pitch` | the paper's §II.B macro-tile grid |
//! | `nearest_neighbor` | `sites_rows`, `sites_cols` | a pitch-2 lattice with one trap per site, channels on all four sides |
//! | `ascii` | `art` | verbatim cells |
//! | `tiled` | `tile`, `tile_rows`, `tile_cols` | a named tile macro stamped in a grid |
//!
//! # Examples
//!
//! ```
//! use qspr_fabric::FabricSpec;
//!
//! let spec = FabricSpec::parse_json(
//!     r#"{
//!       "name": "demo",
//!       "types": [{"name": "express", "kind": "channel", "capacity": 4}],
//!       "regions": [
//!         {"family": "regular", "rows": 9, "cols": 9, "pitch": 4}
//!       ],
//!       "capacities": [{"type": "express", "rect": [0, 1, 0, 7]}]
//!     }"#,
//! )?;
//! let fabric = spec.build()?;
//! assert_eq!(fabric.info().unwrap().name, "demo");
//! assert!(fabric.topology().has_capacity_overrides());
//! # Ok::<(), qspr_fabric::FabricError>(())
//! ```

use qspr_json::{JsonArray, JsonObject, JsonValue};

use crate::cell::{Cell, Coord};
use crate::error::FabricError;
use crate::grid::Fabric;

/// Provenance metadata the elaborator attaches to a built [`Fabric`]:
/// what the spec was called and how it was composed. Descriptive only —
/// excluded from fabric equality, surfaced in the CLI's JSON `fabric`
/// summary block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FabricInfo {
    /// The spec's `name` field.
    pub name: String,
    /// The single region's family, or `"composite"` for multi-region
    /// specs.
    pub family: String,
    /// Number of regions the spec instantiated.
    pub regions: usize,
}

/// What kind of resource a capacity type applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TypeKind {
    Junction,
    Channel,
}

impl TypeKind {
    fn as_str(self) -> &'static str {
        match self {
            TypeKind::Junction => "junction",
            TypeKind::Channel => "channel",
        }
    }
}

/// A named resource type with its occupancy capacity.
#[derive(Debug, Clone, PartialEq, Eq)]
struct TypeDecl {
    name: String,
    kind: TypeKind,
    capacity: u8,
}

/// A named tile macro: a small ASCII-art cell patch for stamping.
#[derive(Debug, Clone, PartialEq, Eq)]
struct TileDecl {
    name: String,
    art: Vec<String>,
}

/// How one region's cells are generated.
#[derive(Debug, Clone, PartialEq, Eq)]
enum RegionKind {
    Regular {
        rows: u16,
        cols: u16,
        pitch: u16,
    },
    NearestNeighbor {
        sites_rows: u16,
        sites_cols: u16,
    },
    Ascii {
        art: Vec<String>,
    },
    Tiled {
        tile: String,
        tile_rows: u16,
        tile_cols: u16,
    },
}

impl RegionKind {
    fn family(&self) -> &'static str {
        match self {
            RegionKind::Regular { .. } => "regular",
            RegionKind::NearestNeighbor { .. } => "nearest_neighbor",
            RegionKind::Ascii { .. } => "ascii",
            RegionKind::Tiled { .. } => "tiled",
        }
    }
}

/// One placed region of the fabric canvas.
#[derive(Debug, Clone, PartialEq, Eq)]
struct RegionDecl {
    name: String,
    origin: (u16, u16),
    kind: RegionKind,
}

/// A straight inter-region channel painted between two canvas cells.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct LinkDecl {
    from: (u16, u16),
    to: (u16, u16),
}

/// Which cells a capacity assignment targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Selector {
    /// One cell.
    At(u16, u16),
    /// An inclusive rectangle `(r0, c0, r1, c1)`.
    Rect(u16, u16, u16, u16),
}

/// Assigns a declared type (and thereby its capacity) to cells.
#[derive(Debug, Clone, PartialEq, Eq)]
struct CapacityRule {
    type_name: String,
    selector: Selector,
}

/// A declarative fabric description; the grammar is documented in
/// `docs/FABRIC_SPEC.md` at the repository root.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FabricSpec {
    name: String,
    types: Vec<TypeDecl>,
    tiles: Vec<TileDecl>,
    regions: Vec<RegionDecl>,
    links: Vec<LinkDecl>,
    capacities: Vec<CapacityRule>,
}

fn bad(msg: impl Into<String>) -> FabricError {
    FabricError::BadSpec(msg.into())
}

impl FabricSpec {
    /// The spec's name (echoed into [`FabricInfo`]).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The composition family: the single region's family, or
    /// `"composite"` when several regions are placed.
    pub fn family(&self) -> &str {
        match self.regions.as_slice() {
            [only] => only.kind.family(),
            _ => "composite",
        }
    }

    /// Number of regions the spec places.
    pub fn regions(&self) -> usize {
        self.regions.len()
    }

    /// A single-region spec generating the paper's regular macro-tile
    /// grid — the document form of [`crate::RegularFabricSpec`].
    pub fn regular(name: &str, rows: u16, cols: u16, pitch: u16) -> FabricSpec {
        FabricSpec {
            name: name.to_owned(),
            types: Vec::new(),
            tiles: Vec::new(),
            regions: vec![RegionDecl {
                name: "main".to_owned(),
                origin: (0, 0),
                kind: RegionKind::Regular { rows, cols, pitch },
            }],
            links: Vec::new(),
            capacities: Vec::new(),
        }
    }

    /// Wraps classic ASCII fabric art as a single-region spec (the
    /// second front end next to JSON).
    pub fn from_ascii(name: &str, art: &str) -> FabricSpec {
        FabricSpec {
            name: name.to_owned(),
            types: Vec::new(),
            tiles: Vec::new(),
            regions: vec![RegionDecl {
                name: "main".to_owned(),
                origin: (0, 0),
                kind: RegionKind::Ascii {
                    art: art.lines().map(str::to_owned).collect(),
                },
            }],
            links: Vec::new(),
            capacities: Vec::new(),
        }
    }

    /// Parses a JSON spec document (grammar: `docs/FABRIC_SPEC.md`).
    ///
    /// # Errors
    ///
    /// Returns [`FabricError::BadSpec`] for syntax errors (with the byte
    /// offset from the strict RFC 8259 parser) and for schema
    /// violations: unknown fields, missing required fields, values out
    /// of range.
    pub fn parse_json(text: &str) -> Result<FabricSpec, FabricError> {
        let value = JsonValue::parse(text).map_err(|e| bad(e.to_string()))?;
        let fields = value
            .as_object()
            .ok_or_else(|| bad("document must be a JSON object"))?;
        check_fields(
            fields,
            &["name", "types", "tiles", "regions", "links", "capacities"],
            "document",
        )?;
        let name = req_str(&value, "name", "document")?.to_owned();
        let types = opt_list(&value, "types", parse_type)?;
        let tiles = opt_list(&value, "tiles", parse_tile)?;
        let regions = opt_list(&value, "regions", parse_region)?;
        if regions.is_empty() {
            return Err(bad("document needs at least one region"));
        }
        let links = opt_list(&value, "links", parse_link)?;
        let capacities = opt_list(&value, "capacities", parse_capacity)?;
        Ok(FabricSpec {
            name,
            types,
            tiles,
            regions,
            links,
            capacities,
        })
    }

    /// Renders the spec back to its JSON document form. Parsing the
    /// output reproduces the spec (`parse_json(spec.to_json()) == spec`,
    /// property-tested), which is what lets generated specs be written
    /// to disk and swept by `archcompare`.
    pub fn to_json(&self) -> String {
        let mut doc = JsonObject::new().string("name", &self.name);
        if !self.types.is_empty() {
            let mut arr = JsonArray::new();
            for t in &self.types {
                arr.push_raw(
                    &JsonObject::new()
                        .string("name", &t.name)
                        .string("kind", t.kind.as_str())
                        .number("capacity", t.capacity as u64)
                        .build(),
                );
            }
            doc = doc.raw("types", &arr.build());
        }
        if !self.tiles.is_empty() {
            let mut arr = JsonArray::new();
            for tile in &self.tiles {
                arr.push_raw(
                    &JsonObject::new()
                        .string("name", &tile.name)
                        .raw("art", &string_array(&tile.art))
                        .build(),
                );
            }
            doc = doc.raw("tiles", &arr.build());
        }
        let mut regions = JsonArray::new();
        for region in &self.regions {
            let mut obj = JsonObject::new()
                .string("name", &region.name)
                .string("family", region.kind.family())
                .raw(
                    "origin",
                    &format!("[{},{}]", region.origin.0, region.origin.1),
                );
            obj = match &region.kind {
                RegionKind::Regular { rows, cols, pitch } => obj
                    .number("rows", *rows as u64)
                    .number("cols", *cols as u64)
                    .number("pitch", *pitch as u64),
                RegionKind::NearestNeighbor {
                    sites_rows,
                    sites_cols,
                } => obj
                    .number("sites_rows", *sites_rows as u64)
                    .number("sites_cols", *sites_cols as u64),
                RegionKind::Ascii { art } => obj.raw("art", &string_array(art)),
                RegionKind::Tiled {
                    tile,
                    tile_rows,
                    tile_cols,
                } => obj
                    .string("tile", tile)
                    .number("tile_rows", *tile_rows as u64)
                    .number("tile_cols", *tile_cols as u64),
            };
            regions.push_raw(&obj.build());
        }
        doc = doc.raw("regions", &regions.build());
        if !self.links.is_empty() {
            let mut arr = JsonArray::new();
            for link in &self.links {
                arr.push_raw(
                    &JsonObject::new()
                        .raw("from", &format!("[{},{}]", link.from.0, link.from.1))
                        .raw("to", &format!("[{},{}]", link.to.0, link.to.1))
                        .build(),
                );
            }
            doc = doc.raw("links", &arr.build());
        }
        if !self.capacities.is_empty() {
            let mut arr = JsonArray::new();
            for rule in &self.capacities {
                let obj = JsonObject::new().string("type", &rule.type_name);
                let obj = match rule.selector {
                    Selector::At(r, c) => obj.raw("at", &format!("[{r},{c}]")),
                    Selector::Rect(r0, c0, r1, c1) => {
                        obj.raw("rect", &format!("[{r0},{c0},{r1},{c1}]"))
                    }
                };
                arr.push_raw(&obj.build());
            }
            doc = doc.raw("capacities", &arr.build());
        }
        doc.build()
    }

    /// Elaborates the spec into a concrete [`Fabric`]: paints every
    /// region onto a common canvas, paints the inter-region links,
    /// applies the capacity assignments, and validates the result
    /// through [`Fabric::with_capacities`]. The built fabric carries a
    /// [`FabricInfo`] recording the spec's name and composition.
    ///
    /// # Errors
    ///
    /// Returns [`FabricError::BadSpec`] for inconsistent documents
    /// (overlapping regions, dangling tile or type references, links
    /// through occupied cells, capacity rules matching nothing) and any
    /// validation error from [`Fabric::with_capacities`].
    pub fn build(&self) -> Result<Fabric, FabricError> {
        // Pass 1: elaborate each region to its local cell patch.
        let mut patches: Vec<(&RegionDecl, u16, u16, Vec<Cell>)> = Vec::new();
        for region in &self.regions {
            let (rows, cols, cells) = match &region.kind {
                RegionKind::Regular { rows, cols, pitch } => {
                    (*rows, *cols, paint_regular(*rows, *cols, *pitch)?)
                }
                RegionKind::NearestNeighbor {
                    sites_rows,
                    sites_cols,
                } => {
                    if *sites_rows == 0 || *sites_cols == 0 {
                        return Err(bad(format!(
                            "region {:?}: nearest_neighbor needs at least one site",
                            region.name
                        )));
                    }
                    if *sites_rows > (u16::MAX - 1) / 2 || *sites_cols > (u16::MAX - 1) / 2 {
                        return Err(bad(format!(
                            "region {:?}: nearest_neighbor site grid too large",
                            region.name
                        )));
                    }
                    let rows = 2 * sites_rows + 1;
                    let cols = 2 * sites_cols + 1;
                    (rows, cols, paint_regular(rows, cols, 2)?)
                }
                RegionKind::Ascii { art } => parse_art(&region.name, art)?,
                RegionKind::Tiled {
                    tile,
                    tile_rows,
                    tile_cols,
                } => {
                    let decl = self.tiles.iter().find(|t| t.name == *tile).ok_or_else(|| {
                        bad(format!(
                            "region {:?} references unknown tile {tile:?}",
                            region.name
                        ))
                    })?;
                    if *tile_rows == 0 || *tile_cols == 0 {
                        return Err(bad(format!(
                            "region {:?}: tile repetitions must be positive",
                            region.name
                        )));
                    }
                    let (trows, tcols, tcells) = parse_art(&decl.name, &decl.art)?;
                    stamp_tile(trows, tcols, &tcells, *tile_rows, *tile_cols).ok_or_else(|| {
                        bad(format!("region {:?}: tiled area too large", region.name))
                    })?
                }
            };
            patches.push((region, rows, cols, cells));
        }

        // Canvas bounding box over regions and link endpoints.
        let mut canvas_rows = 0usize;
        let mut canvas_cols = 0usize;
        for (region, rows, cols, _) in &patches {
            canvas_rows = canvas_rows.max(region.origin.0 as usize + *rows as usize);
            canvas_cols = canvas_cols.max(region.origin.1 as usize + *cols as usize);
        }
        for link in &self.links {
            canvas_rows = canvas_rows.max(link.from.0.max(link.to.0) as usize + 1);
            canvas_cols = canvas_cols.max(link.from.1.max(link.to.1) as usize + 1);
        }
        if canvas_rows == 0 || canvas_cols == 0 {
            return Err(FabricError::EmptyGrid);
        }
        if canvas_rows > u16::MAX as usize || canvas_cols > u16::MAX as usize {
            return Err(FabricError::TooLarge {
                rows: canvas_rows,
                cols: canvas_cols,
            });
        }
        let mut canvas = vec![Cell::Empty; canvas_rows * canvas_cols];
        let idx = |r: u16, c: u16| r as usize * canvas_cols + c as usize;

        // Pass 2: blit regions (identical cells may coincide; anything
        // else is an overlap error).
        for (region, rows, cols, cells) in &patches {
            for r in 0..*rows {
                for c in 0..*cols {
                    let cell = cells[r as usize * *cols as usize + c as usize];
                    if cell == Cell::Empty {
                        continue;
                    }
                    let (gr, gc) = (region.origin.0 + r, region.origin.1 + c);
                    let slot = &mut canvas[idx(gr, gc)];
                    if *slot != Cell::Empty && *slot != cell {
                        return Err(bad(format!(
                            "region {:?} overlaps existing {:?} cell at ({gr}, {gc})",
                            region.name, *slot
                        )));
                    }
                    *slot = cell;
                }
            }
        }

        // Pass 3: inter-region links — straight channel runs that may
        // pass through (but not overwrite) junctions and aligned
        // channels at their attachment points.
        for link in &self.links {
            let (from, to) = (link.from, link.to);
            let (channel, cells): (Cell, Vec<(u16, u16)>) = if from.0 == to.0 {
                let (lo, hi) = (from.1.min(to.1), from.1.max(to.1));
                (Cell::HChannel, (lo..=hi).map(|c| (from.0, c)).collect())
            } else if from.1 == to.1 {
                let (lo, hi) = (from.0.min(to.0), from.0.max(to.0));
                (Cell::VChannel, (lo..=hi).map(|r| (r, from.1)).collect())
            } else {
                return Err(bad(format!(
                    "link ({}, {}) -> ({}, {}) is not axis-aligned",
                    from.0, from.1, to.0, to.1
                )));
            };
            for (r, c) in cells {
                let slot = &mut canvas[idx(r, c)];
                match *slot {
                    Cell::Empty => *slot = channel,
                    Cell::Junction => {}
                    cell if cell == channel => {}
                    cell => {
                        return Err(bad(format!("link cell ({r}, {c}) already holds {cell:?}")))
                    }
                }
            }
        }

        // Pass 4: capacity assignments.
        let mut cell_caps = vec![None; canvas_rows * canvas_cols];
        for rule in &self.capacities {
            let decl = self
                .types
                .iter()
                .find(|t| t.name == rule.type_name)
                .ok_or_else(|| bad(format!("unknown capacity type {:?}", rule.type_name)))?;
            let (r0, c0, r1, c1) = match rule.selector {
                Selector::At(r, c) => (r, c, r, c),
                Selector::Rect(r0, c0, r1, c1) => (r0, c0, r1, c1),
            };
            if r1 < r0 || c1 < c0 {
                return Err(bad(format!(
                    "capacity rect [{r0},{c0},{r1},{c1}] is inverted"
                )));
            }
            if r1 as usize >= canvas_rows || c1 as usize >= canvas_cols {
                return Err(bad(format!(
                    "capacity selector [{r0},{c0},{r1},{c1}] outside the \
                     {canvas_rows}×{canvas_cols} canvas"
                )));
            }
            let mut matched = 0usize;
            for r in r0..=r1 {
                for c in c0..=c1 {
                    let applies = match decl.kind {
                        TypeKind::Junction => canvas[idx(r, c)] == Cell::Junction,
                        TypeKind::Channel => canvas[idx(r, c)].is_channel(),
                    };
                    if applies {
                        cell_caps[idx(r, c)] = Some(decl.capacity);
                        matched += 1;
                    }
                }
            }
            if matched == 0 {
                return Err(bad(format!(
                    "capacity type {:?} matched no {} cell in [{r0},{c0},{r1},{c1}]",
                    rule.type_name,
                    decl.kind.as_str()
                )));
            }
        }

        let mut fabric = Fabric::with_capacities(canvas_rows, canvas_cols, canvas, &cell_caps)?;
        fabric.set_info(Some(FabricInfo {
            name: self.name.clone(),
            family: self.family().to_owned(),
            regions: self.regions.len(),
        }));
        Ok(fabric)
    }

    /// Builds and then drops the provenance metadata — for programmatic
    /// wrappers like [`crate::RegularFabricSpec::build`] that must stay
    /// indistinguishable from the pre-spec direct constructors.
    pub(crate) fn build_anonymous(&self) -> Result<Fabric, FabricError> {
        let mut fabric = self.build()?;
        fabric.set_info(None);
        Ok(fabric)
    }
}

impl Fabric {
    /// Parses a fabric description through either front end: documents
    /// whose first non-whitespace byte is `{` are [`FabricSpec`] JSON
    /// (built with provenance attached); anything else is ASCII art,
    /// delegated to [`Fabric::from_ascii`] unchanged (no provenance, so
    /// reports for ASCII fabrics stay byte-identical to the pre-spec
    /// loader).
    ///
    /// This is the loader behind every `--fabric <file>` flag.
    ///
    /// # Errors
    ///
    /// Returns [`FabricError::BadSpec`] for malformed spec documents
    /// and the usual grid errors for malformed ASCII art.
    pub fn parse(text: &str) -> Result<Fabric, FabricError> {
        if text.trim_start().starts_with('{') {
            FabricSpec::parse_json(text)?.build()
        } else {
            Fabric::from_ascii(text)
        }
    }
}

/// Renders a `Vec<String>` as a JSON array of strings.
fn string_array(items: &[String]) -> String {
    let mut arr = JsonArray::new();
    for item in items {
        arr.push_raw(&format!("\"{}\"", qspr_json::escape(item)));
    }
    arr.build()
}

/// Paints the regular macro-tile pattern (the cell program previously
/// private to `fabric::regular`): channel rows/columns at every multiple
/// of `pitch`, junctions at crossings, traps at tile-interior corners
/// adjacent to a channel.
pub(crate) fn paint_regular(rows: u16, cols: u16, pitch: u16) -> Result<Vec<Cell>, FabricError> {
    if pitch < 2 {
        return Err(bad(format!("pitch must be at least 2, got {pitch}")));
    }
    if rows < pitch + 1 || cols < pitch + 1 {
        return Err(bad(format!(
            "grid {rows}×{cols} smaller than one tile (pitch {pitch})"
        )));
    }
    let mut cells = vec![Cell::Empty; rows as usize * cols as usize];
    let idx = |r: u16, c: u16| r as usize * cols as usize + c as usize;
    for r in 0..rows {
        for c in 0..cols {
            let on_h = r % pitch == 0;
            let on_v = c % pitch == 0;
            cells[idx(r, c)] = match (on_h, on_v) {
                (true, true) => Cell::Junction,
                (true, false) => Cell::HChannel,
                (false, true) => Cell::VChannel,
                (false, false) => Cell::Empty,
            };
        }
    }
    // Traps at tile-interior corners, only where a channel is adjacent
    // (this guards partial tiles at ragged edges).
    for r in 1..rows {
        for c in 1..cols {
            let (ro, co) = (r % pitch, c % pitch);
            let corner_row = ro == 1 || ro == pitch - 1;
            let corner_col = co == 1 || co == pitch - 1;
            if !(corner_row && corner_col) || ro == 0 || co == 0 {
                continue;
            }
            let coord = Coord::new(r, c);
            let has_port = coord
                .neighbors(rows, cols)
                .any(|n| cells[idx(n.row, n.col)].is_channel());
            if has_port && cells[idx(r, c)] == Cell::Empty {
                cells[idx(r, c)] = Cell::Trap;
            }
        }
    }
    Ok(cells)
}

/// Parses region/tile ASCII art into a `(rows, cols, cells)` patch,
/// padding ragged lines with empty cells on the right.
fn parse_art(name: &str, art: &[String]) -> Result<(u16, u16, Vec<Cell>), FabricError> {
    let rows = art.len();
    let cols = art.iter().map(|l| l.chars().count()).max().unwrap_or(0);
    if rows == 0 || cols == 0 {
        return Err(bad(format!("region {name:?}: empty art")));
    }
    if rows > u16::MAX as usize || cols > u16::MAX as usize {
        return Err(bad(format!("region {name:?}: art exceeds u16 addressing")));
    }
    let mut cells = Vec::with_capacity(rows * cols);
    for (ln, line) in art.iter().enumerate() {
        let mut count = 0;
        for (cn, ch) in line.chars().enumerate() {
            let cell = Cell::from_char(ch).ok_or_else(|| {
                bad(format!(
                    "region {name:?}: unknown cell character {ch:?} at line {}, column {}",
                    ln + 1,
                    cn + 1
                ))
            })?;
            cells.push(cell);
            count += 1;
        }
        cells.extend(std::iter::repeat(Cell::Empty).take(cols - count));
    }
    Ok((rows as u16, cols as u16, cells))
}

/// Stamps a tile patch `reps_r × reps_c` times; `None` on u16 overflow.
fn stamp_tile(
    trows: u16,
    tcols: u16,
    tcells: &[Cell],
    reps_r: u16,
    reps_c: u16,
) -> Option<(u16, u16, Vec<Cell>)> {
    let rows = (trows as usize).checked_mul(reps_r as usize)?;
    let cols = (tcols as usize).checked_mul(reps_c as usize)?;
    if rows > u16::MAX as usize || cols > u16::MAX as usize {
        return None;
    }
    let mut cells = vec![Cell::Empty; rows * cols];
    for r in 0..rows {
        for c in 0..cols {
            let tr = r % trows as usize;
            let tc = c % tcols as usize;
            cells[r * cols + c] = tcells[tr * tcols as usize + tc];
        }
    }
    Some((rows as u16, cols as u16, cells))
}

// ---------------------------------------------------------------------
// JSON schema helpers (strict: unknown fields are errors, like the
// service request bodies).

fn check_fields(
    fields: &[(String, JsonValue)],
    allowed: &[&str],
    ctx: &str,
) -> Result<(), FabricError> {
    for (key, _) in fields {
        if !allowed.contains(&key.as_str()) {
            return Err(bad(format!(
                "{ctx}: unknown field {key:?} (allowed: {})",
                allowed.join(", ")
            )));
        }
    }
    Ok(())
}

fn req_str<'a>(value: &'a JsonValue, key: &str, ctx: &str) -> Result<&'a str, FabricError> {
    value
        .get(key)
        .and_then(JsonValue::as_str)
        .ok_or_else(|| bad(format!("{ctx}: field {key:?} (string) is required")))
}

fn req_u16(value: &JsonValue, key: &str, ctx: &str) -> Result<u16, FabricError> {
    let n = value
        .get(key)
        .and_then(JsonValue::as_u64)
        .ok_or_else(|| bad(format!("{ctx}: field {key:?} (integer) is required")))?;
    u16::try_from(n).map_err(|_| bad(format!("{ctx}: field {key:?} exceeds {}", u16::MAX)))
}

fn opt_list<T>(
    value: &JsonValue,
    key: &str,
    parse: impl Fn(usize, &JsonValue) -> Result<T, FabricError>,
) -> Result<Vec<T>, FabricError> {
    match value.get(key) {
        None => Ok(Vec::new()),
        Some(v) => {
            let items = v
                .as_array()
                .ok_or_else(|| bad(format!("field {key:?} must be an array")))?;
            items
                .iter()
                .enumerate()
                .map(|(i, item)| parse(i, item))
                .collect()
        }
    }
}

/// Parses a `[row, col]` (or longer, per `len`) coordinate array of
/// u16 components.
fn coord_array(value: &JsonValue, len: usize, ctx: &str) -> Result<Vec<u16>, FabricError> {
    let items = value
        .as_array()
        .ok_or_else(|| bad(format!("{ctx} must be an array of {len} integers")))?;
    if items.len() != len {
        return Err(bad(format!("{ctx} must have exactly {len} elements")));
    }
    items
        .iter()
        .map(|item| {
            item.as_u64()
                .and_then(|n| u16::try_from(n).ok())
                .ok_or_else(|| {
                    bad(format!(
                        "{ctx}: components must be integers in 0..{}",
                        u16::MAX
                    ))
                })
        })
        .collect()
}

fn parse_type(i: usize, value: &JsonValue) -> Result<TypeDecl, FabricError> {
    let ctx = format!("types[{i}]");
    let fields = value
        .as_object()
        .ok_or_else(|| bad(format!("{ctx} must be an object")))?;
    check_fields(fields, &["name", "kind", "capacity"], &ctx)?;
    let name = req_str(value, "name", &ctx)?.to_owned();
    let kind = match req_str(value, "kind", &ctx)? {
        "junction" => TypeKind::Junction,
        "channel" => TypeKind::Channel,
        other => {
            return Err(bad(format!(
                "{ctx}: unknown kind {other:?} (expected junction or channel)"
            )))
        }
    };
    let capacity = value
        .get("capacity")
        .and_then(JsonValue::as_u64)
        .ok_or_else(|| bad(format!("{ctx}: field \"capacity\" (integer) is required")))?;
    let capacity = match u8::try_from(capacity) {
        Ok(c) if c >= 1 => c,
        _ => return Err(bad(format!("{ctx}: capacity must be in 1..=255"))),
    };
    Ok(TypeDecl {
        name,
        kind,
        capacity,
    })
}

fn parse_art_field(value: &JsonValue, ctx: &str) -> Result<Vec<String>, FabricError> {
    let items = value
        .get("art")
        .and_then(JsonValue::as_array)
        .ok_or_else(|| {
            bad(format!(
                "{ctx}: field \"art\" (array of strings) is required"
            ))
        })?;
    items
        .iter()
        .map(|line| {
            line.as_str()
                .map(str::to_owned)
                .ok_or_else(|| bad(format!("{ctx}: art lines must be strings")))
        })
        .collect()
}

fn parse_tile(i: usize, value: &JsonValue) -> Result<TileDecl, FabricError> {
    let ctx = format!("tiles[{i}]");
    let fields = value
        .as_object()
        .ok_or_else(|| bad(format!("{ctx} must be an object")))?;
    check_fields(fields, &["name", "art"], &ctx)?;
    Ok(TileDecl {
        name: req_str(value, "name", &ctx)?.to_owned(),
        art: parse_art_field(value, &ctx)?,
    })
}

fn parse_region(i: usize, value: &JsonValue) -> Result<RegionDecl, FabricError> {
    let ctx = format!("regions[{i}]");
    let fields = value
        .as_object()
        .ok_or_else(|| bad(format!("{ctx} must be an object")))?;
    let family = req_str(value, "family", &ctx)?;
    let common = ["name", "family", "origin"];
    let kind = match family {
        "regular" => {
            check_fields(
                fields,
                &[&common[..], &["rows", "cols", "pitch"]].concat(),
                &ctx,
            )?;
            RegionKind::Regular {
                rows: req_u16(value, "rows", &ctx)?,
                cols: req_u16(value, "cols", &ctx)?,
                pitch: req_u16(value, "pitch", &ctx)?,
            }
        }
        "nearest_neighbor" => {
            check_fields(
                fields,
                &[&common[..], &["sites_rows", "sites_cols"]].concat(),
                &ctx,
            )?;
            RegionKind::NearestNeighbor {
                sites_rows: req_u16(value, "sites_rows", &ctx)?,
                sites_cols: req_u16(value, "sites_cols", &ctx)?,
            }
        }
        "ascii" => {
            check_fields(fields, &[&common[..], &["art"]].concat(), &ctx)?;
            RegionKind::Ascii {
                art: parse_art_field(value, &ctx)?,
            }
        }
        "tiled" => {
            check_fields(
                fields,
                &[&common[..], &["tile", "tile_rows", "tile_cols"]].concat(),
                &ctx,
            )?;
            RegionKind::Tiled {
                tile: req_str(value, "tile", &ctx)?.to_owned(),
                tile_rows: req_u16(value, "tile_rows", &ctx)?,
                tile_cols: req_u16(value, "tile_cols", &ctx)?,
            }
        }
        other => {
            return Err(bad(format!(
                "{ctx}: unknown family {other:?} (expected regular, \
                 nearest_neighbor, ascii or tiled)"
            )))
        }
    };
    let name = match value.get("name") {
        None => format!("region{i}"),
        Some(v) => v
            .as_str()
            .ok_or_else(|| bad(format!("{ctx}: field \"name\" must be a string")))?
            .to_owned(),
    };
    let origin = match value.get("origin") {
        None => (0, 0),
        Some(v) => {
            let rc = coord_array(v, 2, &format!("{ctx}: origin"))?;
            (rc[0], rc[1])
        }
    };
    Ok(RegionDecl { name, origin, kind })
}

fn parse_link(i: usize, value: &JsonValue) -> Result<LinkDecl, FabricError> {
    let ctx = format!("links[{i}]");
    let fields = value
        .as_object()
        .ok_or_else(|| bad(format!("{ctx} must be an object")))?;
    check_fields(fields, &["from", "to"], &ctx)?;
    let from = coord_array(
        value
            .get("from")
            .ok_or_else(|| bad(format!("{ctx}: field \"from\" is required")))?,
        2,
        &format!("{ctx}: from"),
    )?;
    let to = coord_array(
        value
            .get("to")
            .ok_or_else(|| bad(format!("{ctx}: field \"to\" is required")))?,
        2,
        &format!("{ctx}: to"),
    )?;
    Ok(LinkDecl {
        from: (from[0], from[1]),
        to: (to[0], to[1]),
    })
}

fn parse_capacity(i: usize, value: &JsonValue) -> Result<CapacityRule, FabricError> {
    let ctx = format!("capacities[{i}]");
    let fields = value
        .as_object()
        .ok_or_else(|| bad(format!("{ctx} must be an object")))?;
    check_fields(fields, &["type", "at", "rect"], &ctx)?;
    let type_name = req_str(value, "type", &ctx)?.to_owned();
    let selector = match (value.get("at"), value.get("rect")) {
        (Some(at), None) => {
            let rc = coord_array(at, 2, &format!("{ctx}: at"))?;
            Selector::At(rc[0], rc[1])
        }
        (None, Some(rect)) => {
            let rc = coord_array(rect, 4, &format!("{ctx}: rect"))?;
            Selector::Rect(rc[0], rc[1], rc[2], rc[3])
        }
        _ => {
            return Err(bad(format!(
                "{ctx}: exactly one of \"at\" or \"rect\" is required"
            )))
        }
    };
    Ok(CapacityRule {
        type_name,
        selector,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regular::RegularFabricSpec;
    use crate::topology::SegmentId;

    #[test]
    fn regular_spec_matches_direct_constructor() {
        for (rows, cols, pitch) in [(9u16, 9u16, 4u16), (45, 85, 4), (31, 61, 3), (5, 5, 2)] {
            let direct = RegularFabricSpec::new(rows, cols, pitch).build().unwrap();
            let spec = FabricSpec::regular("r", rows, cols, pitch);
            let elaborated = spec.build().unwrap();
            assert_eq!(direct, elaborated);
            assert_eq!(direct.to_ascii(), elaborated.to_ascii());
            // Provenance is attached by the spec path only.
            assert!(direct.info().is_none());
            assert_eq!(elaborated.info().unwrap().family, "regular");
        }
    }

    #[test]
    fn json_round_trips_through_to_json() {
        let text = r#"{
            "name": "round-trip",
            "types": [{"name": "hub", "kind": "junction", "capacity": 3}],
            "tiles": [{"name": "ulb", "art": ["-T", "-T"]}],
            "regions": [
                {"name": "a", "family": "regular", "rows": 5, "cols": 5, "pitch": 2},
                {"name": "b", "family": "tiled", "origin": [0, 8], "tile": "ulb",
                 "tile_rows": 2, "tile_cols": 1}
            ],
            "links": [{"from": [0, 4], "to": [0, 8]}],
            "capacities": [{"type": "hub", "at": [0, 0]}]
        }"#;
        let spec = FabricSpec::parse_json(text).unwrap();
        let reparsed = FabricSpec::parse_json(&spec.to_json()).unwrap();
        assert_eq!(spec, reparsed);
        assert_eq!(spec.build().unwrap(), reparsed.build().unwrap());
    }

    #[test]
    fn ascii_front_end_matches_from_ascii() {
        let art = "..|..\nT.|..\n--+--\n..|.T\n..|..\n";
        let via_spec = FabricSpec::from_ascii("cross", art).build().unwrap();
        let direct = Fabric::from_ascii(art).unwrap();
        assert_eq!(via_spec, direct);
        assert_eq!(via_spec.to_ascii(), direct.to_ascii());
        assert_eq!(via_spec.info().unwrap().family, "ascii");
    }

    #[test]
    fn nearest_neighbor_family_shape() {
        let spec = FabricSpec::parse_json(
            r#"{"name":"nn","regions":[
                {"family":"nearest_neighbor","sites_rows":3,"sites_cols":4}]}"#,
        )
        .unwrap();
        let fabric = spec.build().unwrap();
        assert_eq!((fabric.rows(), fabric.cols()), (7, 9));
        let t = fabric.topology();
        // One trap per site; every site touches channels on all sides.
        assert_eq!(t.traps().len(), 12);
        assert_eq!(t.junctions().len(), 4 * 5);
        for trap in t.traps() {
            let channel_neighbors = trap
                .coord()
                .neighbors(fabric.rows(), fabric.cols())
                .filter(|n| fabric.cell(*n).is_channel())
                .count();
            assert_eq!(channel_neighbors, 4);
        }
    }

    #[test]
    fn two_regions_join_via_link() {
        let spec = FabricSpec::parse_json(
            r#"{
                "name": "pair",
                "regions": [
                    {"name": "west", "family": "regular", "rows": 5, "cols": 5, "pitch": 4},
                    {"name": "east", "family": "regular", "origin": [0, 9],
                     "rows": 5, "cols": 5, "pitch": 4}
                ],
                "links": [{"from": [0, 4], "to": [0, 9]}]
            }"#,
        )
        .unwrap();
        let fabric = spec.build().unwrap();
        assert_eq!((fabric.rows(), fabric.cols()), (5, 14));
        assert_eq!(fabric.info().unwrap().family, "composite");
        assert_eq!(fabric.info().unwrap().regions, 2);
        // The link cells between the two east/west edge junctions became
        // one horizontal segment connecting them.
        let t = fabric.topology();
        let west_edge = t.junction_at(Coord::new(0, 4)).unwrap();
        let east_edge = t.junction_at(Coord::new(0, 9)).unwrap();
        let bridge = t
            .junction(west_edge)
            .incident(crate::topology::Direction::East)
            .unwrap();
        let ends = t.segment(bridge).ends();
        assert!(ends.contains(&crate::topology::SegmentEnd::Junction(east_edge)));
    }

    #[test]
    fn capacity_assignments_reach_the_topology() {
        let spec = FabricSpec::parse_json(
            r#"{
                "name": "het",
                "types": [
                    {"name": "express", "kind": "channel", "capacity": 4},
                    {"name": "hub", "kind": "junction", "capacity": 1}
                ],
                "regions": [{"family": "regular", "rows": 9, "cols": 9, "pitch": 4}],
                "capacities": [
                    {"type": "express", "rect": [0, 0, 0, 8]},
                    {"type": "hub", "at": [4, 4]}
                ]
            }"#,
        )
        .unwrap();
        let fabric = spec.build().unwrap();
        let t = fabric.topology();
        assert!(t.has_capacity_overrides());
        // Top-row horizontal segments carry the express override.
        let (seg, _) = t.channel_at(Coord::new(0, 1)).unwrap();
        assert_eq!(t.segment_cap(seg), Some(4));
        // The center junction carries the hub override.
        let j = t.junction_at(Coord::new(4, 4)).unwrap();
        assert_eq!(t.junction_cap(j), Some(1));
        // Untouched resources keep the default.
        let (other, _) = t.channel_at(Coord::new(1, 0)).unwrap();
        assert_eq!(t.segment_cap(other), None);
        // Histogram: default bucket plus the two override values.
        let hist = fabric.topology().capacity_histogram();
        assert_eq!(hist[0].0, None);
        assert!(hist.contains(&(Some(1), 1)));
        assert!(hist.iter().any(|(c, n)| *c == Some(4) && *n > 0));
    }

    #[test]
    fn segment_cap_is_min_over_member_cells() {
        // Two overrides on one 3-cell segment: the narrowest wins.
        let spec = FabricSpec::parse_json(
            r#"{
                "name": "min",
                "types": [
                    {"name": "wide", "kind": "channel", "capacity": 9},
                    {"name": "narrow", "kind": "channel", "capacity": 3}
                ],
                "regions": [{"family": "regular", "rows": 5, "cols": 5, "pitch": 4}],
                "capacities": [
                    {"type": "wide", "at": [0, 1]},
                    {"type": "narrow", "at": [0, 2]}
                ]
            }"#,
        )
        .unwrap();
        let t = spec.build().unwrap();
        let (seg, _) = t.topology().channel_at(Coord::new(0, 1)).unwrap();
        assert_eq!(t.topology().segment_cap(seg), Some(3));
    }

    #[test]
    fn uniform_specs_report_no_overrides() {
        let fabric = FabricSpec::regular("u", 9, 9, 4).build().unwrap();
        let t = fabric.topology();
        assert!(!t.has_capacity_overrides());
        assert_eq!(t.capacity_histogram().len(), 1);
        assert_eq!(t.segment_cap(SegmentId(0)), None);
    }

    #[test]
    fn bad_documents_are_rejected_with_context() {
        let cases: &[(&str, &str)] = &[
            ("not json", "at byte"),
            ("[1]", "must be a JSON object"),
            (r#"{"regions":[]}"#, "\"name\""),
            (r#"{"name":"x"}"#, "at least one region"),
            (r#"{"name":"x","regions":[],"frob":1}"#, "unknown field"),
            (
                r#"{"name":"x","regions":[{"family":"warp"}]}"#,
                "unknown family",
            ),
            (
                r#"{"name":"x","regions":[{"family":"regular","rows":5,"cols":5}]}"#,
                "\"pitch\"",
            ),
            (
                r#"{"name":"x","regions":[{"family":"regular","rows":5,"cols":5,"pitch":1}]}"#,
                "pitch must be at least 2",
            ),
            (
                r#"{"name":"x","regions":[{"family":"tiled","tile":"nope","tile_rows":1,"tile_cols":1}]}"#,
                "unknown tile",
            ),
            (
                r#"{"name":"x","types":[{"name":"t","kind":"channel","capacity":0}],
                   "regions":[{"family":"regular","rows":5,"cols":5,"pitch":2}]}"#,
                "1..=255",
            ),
            (
                r#"{"name":"x","regions":[{"family":"regular","rows":5,"cols":5,"pitch":2}],
                   "capacities":[{"type":"ghost","at":[0,0]}]}"#,
                "unknown capacity type",
            ),
            (
                r#"{"name":"x","types":[{"name":"t","kind":"junction","capacity":2}],
                   "regions":[{"family":"regular","rows":5,"cols":5,"pitch":2}],
                   "capacities":[{"type":"t","at":[1,1]}]}"#,
                "matched no junction cell",
            ),
            (
                r#"{"name":"x","regions":[{"family":"regular","rows":5,"cols":5,"pitch":2}],
                   "links":[{"from":[0,0],"to":[1,1]}]}"#,
                "not axis-aligned",
            ),
            (
                r#"{"name":"x","regions":[
                    {"family":"regular","rows":5,"cols":5,"pitch":2},
                    {"family":"ascii","art":["T-"],"origin":[0,1]}]}"#,
                "overlaps",
            ),
        ];
        for (text, needle) in cases {
            let err = FabricSpec::parse_json(text)
                .and_then(|s| s.build())
                .unwrap_err();
            let msg = err.to_string();
            assert!(
                msg.contains(needle),
                "expected {needle:?} in error for {text:?}, got: {msg}"
            );
        }
    }

    #[test]
    fn tiled_region_stamps_the_macro() {
        let spec = FabricSpec::parse_json(
            r#"{
                "name": "ulb-grid",
                "tiles": [{"name": "ulb", "art": ["+-", "|T"]}],
                "regions": [{"family": "tiled", "tile": "ulb",
                             "tile_rows": 2, "tile_cols": 3}]
            }"#,
        )
        .unwrap();
        let fabric = spec.build().unwrap();
        assert_eq!((fabric.rows(), fabric.cols()), (4, 6));
        // Each stamped tile contributes its one trap.
        assert_eq!(fabric.topology().traps().len(), 2 * 3);
        // Stamps repeat exactly.
        assert_eq!(fabric.cell(Coord::new(0, 0)), fabric.cell(Coord::new(2, 2)));
    }
}
