//! Generator for regular macro-tile fabrics, including the 45×85 layout
//! standing in for the fabric released with QUALE.

use crate::cell::Cell;
use crate::error::FabricError;
use crate::grid::Fabric;
use crate::spec::FabricSpec;

/// Parameters of a regular grid fabric.
///
/// Channel rows and columns run at every multiple of `pitch`; junctions sit
/// at their crossings; traps occupy the corners of each tile interior
/// (cells whose in-tile offsets are 1 or `pitch-1` in both axes), which
/// puts every trap adjacent to a channel.
///
/// With `pitch = 4` this reproduces the macro-structure of the QUALE
/// fabric: a sea of 3×3 tile interiors with four traps each.
///
/// # Examples
///
/// ```
/// use qspr_fabric::RegularFabricSpec;
///
/// let fabric = RegularFabricSpec::new(9, 9, 4).build()?;
/// assert_eq!(fabric.topology().junctions().len(), 9);
/// assert_eq!(fabric.topology().traps().len(), 16);
/// # Ok::<(), qspr_fabric::FabricError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegularFabricSpec {
    rows: u16,
    cols: u16,
    pitch: u16,
}

impl RegularFabricSpec {
    /// Creates a spec; validation happens in [`RegularFabricSpec::build`].
    pub fn new(rows: u16, cols: u16, pitch: u16) -> RegularFabricSpec {
        RegularFabricSpec { rows, cols, pitch }
    }

    /// Grid rows.
    pub fn rows(&self) -> u16 {
        self.rows
    }

    /// Grid columns.
    pub fn cols(&self) -> u16 {
        self.cols
    }

    /// Channel pitch (distance between consecutive channel rows/columns).
    pub fn pitch(&self) -> u16 {
        self.pitch
    }

    /// The equivalent declarative document: a single-region
    /// [`FabricSpec`] with the `regular` family. Serializing it with
    /// [`FabricSpec::to_json`] yields a file the CLI and `archcompare`
    /// can load.
    pub fn to_spec(&self) -> FabricSpec {
        FabricSpec::regular(
            &format!("regular-{}x{}-p{}", self.rows, self.cols, self.pitch),
            self.rows,
            self.cols,
            self.pitch,
        )
    }

    /// Generates the fabric by elaborating [`RegularFabricSpec::to_spec`]
    /// — this type is now a thin wrapper over the declarative spec
    /// layer, and produces a byte-identical fabric to the pre-spec
    /// direct painter (pinned by round-trip tests).
    ///
    /// # Errors
    ///
    /// Returns [`FabricError::BadSpec`] when `pitch < 2` or the grid is too
    /// small to contain a full tile (needs at least `pitch+1` in each
    /// dimension), plus any validation error from [`Fabric::new`].
    pub fn build(&self) -> Result<Fabric, FabricError> {
        self.to_spec().build_anonymous()
    }
}

impl Fabric {
    /// The 45×85 fabric used for every experiment in the paper (Fig. 4),
    /// reconstructed as a regular pitch-4 macro-tile layout: 264 junctions,
    /// 924 traps.
    ///
    /// ```
    /// use qspr_fabric::Fabric;
    /// let f = Fabric::quale_45x85();
    /// assert_eq!(f.topology().junctions().len(), 264);
    /// ```
    pub fn quale_45x85() -> Fabric {
        RegularFabricSpec::new(45, 85, 4)
            .build()
            .expect("the QUALE spec is statically valid")
    }

    /// A *linear* QCCD fabric (Kielpinski–Monroe–Wineland style, the
    /// paper's reference \[7\]): one shared horizontal channel with
    /// `traps_per_side` traps above and below. There are no junctions —
    /// qubits never turn — but every relocation contends for the single
    /// channel, which is exactly why 2D fabrics with multiplexed channels
    /// win on larger circuits.
    ///
    /// # Panics
    ///
    /// Panics if `traps_per_side == 0` or the width would exceed `u16`.
    ///
    /// ```
    /// use qspr_fabric::Fabric;
    /// let f = Fabric::linear(6);
    /// assert_eq!(f.topology().traps().len(), 12);
    /// assert!(f.topology().junctions().is_empty());
    /// assert_eq!(f.topology().segments().len(), 1);
    /// ```
    pub fn linear(traps_per_side: u16) -> Fabric {
        assert!(traps_per_side >= 1, "a linear fabric needs traps");
        let cols = traps_per_side as usize * 2 + 1;
        let mut cells = vec![Cell::Empty; 3 * cols];
        for c in 0..cols {
            cells[cols + c] = Cell::HChannel; // middle row
            if c % 2 == 1 {
                cells[c] = Cell::Trap; // above
                cells[2 * cols + c] = Cell::Trap; // below
            }
        }
        Fabric::new(3, cols, cells).expect("linear layouts are statically valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::{Coord, Orientation};
    use crate::topology::SegmentEnd;

    #[test]
    fn quale_dimensions_and_counts() {
        let f = Fabric::quale_45x85();
        assert_eq!((f.rows(), f.cols()), (45, 85));
        let t = f.topology();
        // 12 channel rows × 22 channel cols.
        assert_eq!(t.junctions().len(), 12 * 22);
        // Tiles: 11 × 21, four traps each.
        assert_eq!(t.traps().len(), 11 * 21 * 4);
        // H segments: 12 rows × 21 gaps; V segments: 22 cols × 11 gaps.
        assert_eq!(t.segments().len(), 12 * 21 + 22 * 11);
    }

    #[test]
    fn quale_segments_are_length_3_and_junction_bounded() {
        let f = Fabric::quale_45x85();
        for seg in f.topology().segments() {
            assert_eq!(seg.len(), 3);
            for end in seg.ends() {
                assert!(matches!(end, SegmentEnd::Junction(_)));
            }
        }
    }

    #[test]
    fn quale_interior_junctions_have_degree_4() {
        let f = Fabric::quale_45x85();
        let t = f.topology();
        let mut degree4 = 0;
        for j in t.junctions() {
            let Coord { row, col } = j.coord();
            let interior = row != 0 && row != 44 && col != 0 && col != 84;
            if interior {
                assert_eq!(j.degree(), 4);
                degree4 += 1;
            } else {
                assert!(j.degree() >= 2, "edge junction under-connected");
            }
        }
        assert_eq!(degree4, 10 * 20);
    }

    #[test]
    fn traps_touch_vertical_or_horizontal_channels() {
        let f = Fabric::quale_45x85();
        let t = f.topology();
        for trap in t.traps() {
            let port = trap.port();
            let seg = t.segment(port.segment);
            assert!(matches!(
                seg.orientation(),
                Orientation::Horizontal | Orientation::Vertical
            ));
        }
    }

    #[test]
    fn bad_specs_are_rejected() {
        assert!(matches!(
            RegularFabricSpec::new(45, 85, 1).build(),
            Err(FabricError::BadSpec(_))
        ));
        assert!(matches!(
            RegularFabricSpec::new(3, 85, 4).build(),
            Err(FabricError::BadSpec(_))
        ));
    }

    #[test]
    fn minimal_pitch_2_builds() {
        let f = RegularFabricSpec::new(5, 5, 2).build().unwrap();
        assert!(!f.topology().traps().is_empty());
    }

    #[test]
    fn ragged_edges_still_build() {
        // 10×11 with pitch 4 leaves partial tiles on the south/east edges.
        let f = RegularFabricSpec::new(10, 11, 4).build().unwrap();
        assert!(!f.topology().traps().is_empty());
        // Round-trips like any other fabric.
        let g = Fabric::from_ascii(&f.to_ascii()).unwrap();
        assert_eq!(f, g);
    }
}

#[cfg(test)]
mod linear_tests {
    use super::*;

    #[test]
    fn linear_fabric_shape() {
        let f = Fabric::linear(4);
        assert_eq!((f.rows(), f.cols()), (3, 9));
        let t = f.topology();
        assert_eq!(t.traps().len(), 8);
        assert!(t.junctions().is_empty());
        assert_eq!(t.segments().len(), 1);
        // Every trap ports onto the single shared channel.
        for trap in t.traps() {
            assert_eq!(trap.port().segment, crate::topology::SegmentId(0));
        }
    }

    #[test]
    fn linear_fabric_round_trips_ascii() {
        let f = Fabric::linear(3);
        let g = Fabric::from_ascii(&f.to_ascii()).unwrap();
        assert_eq!(f, g);
    }

    #[test]
    #[should_panic(expected = "needs traps")]
    fn zero_traps_panics() {
        let _ = Fabric::linear(0);
    }
}
