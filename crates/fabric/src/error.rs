//! Fabric construction and validation errors.

use std::error::Error;
use std::fmt;

use crate::cell::Coord;

/// Why a fabric description was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum FabricError {
    /// The ASCII description contained a character that is not a cell.
    UnknownChar {
        /// 1-based line of the offending character.
        line: usize,
        /// 1-based column of the offending character.
        column: usize,
        /// The character itself.
        ch: char,
    },
    /// The description had no rows or no columns.
    EmptyGrid,
    /// The grid dimensions exceed `u16` addressing.
    TooLarge {
        /// Supplied row count.
        rows: usize,
        /// Supplied column count.
        cols: usize,
    },
    /// The cell vector length does not match `rows × cols`.
    DimensionMismatch {
        /// Expected number of cells.
        expected: usize,
        /// Supplied number of cells.
        actual: usize,
    },
    /// A fabric needs at least one trap to host computation.
    NoTraps,
    /// A trap has no adjacent channel cell, so no qubit can ever enter it.
    TrapWithoutPort(Coord),
    /// A regular-fabric spec was inconsistent (e.g. pitch < 2).
    BadSpec(String),
    /// A booking counter hit its hard ceiling (`u8::MAX` concurrent
    /// bookings on one resource): the capacity configuration admits more
    /// simultaneous users than the occupancy accounting can count.
    CapacityOverflow {
        /// Display form of the saturated resource (e.g. `seg#3`).
        resource: String,
    },
}

impl fmt::Display for FabricError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FabricError::UnknownChar { line, column, ch } => {
                write!(
                    f,
                    "line {line}, column {column}: unknown cell character {ch:?}"
                )
            }
            FabricError::EmptyGrid => write!(f, "fabric grid is empty"),
            FabricError::TooLarge { rows, cols } => {
                write!(f, "grid {rows}×{cols} exceeds u16 addressing")
            }
            FabricError::DimensionMismatch { expected, actual } => {
                write!(f, "expected {expected} cells, got {actual}")
            }
            FabricError::NoTraps => write!(f, "fabric contains no traps"),
            FabricError::TrapWithoutPort(c) => {
                write!(f, "trap at {c} has no adjacent channel cell")
            }
            FabricError::BadSpec(msg) => write!(f, "invalid fabric spec: {msg}"),
            FabricError::CapacityOverflow { resource } => {
                write!(f, "booking counter saturated on {resource}")
            }
        }
    }
}

impl Error for FabricError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        let e = FabricError::UnknownChar {
            line: 2,
            column: 5,
            ch: '?',
        };
        assert!(e.to_string().contains("line 2"));
        assert!(e.to_string().contains('?'));
        let e = FabricError::TrapWithoutPort(Coord::new(1, 1));
        assert!(e.to_string().contains("(1, 1)"));
    }

    #[test]
    fn implements_error_trait() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<FabricError>();
    }
}
