//! Grid primitives: coordinates, orientations and cell kinds.

use std::fmt;

/// A grid coordinate, `(row, col)`, row 0 at the top.
///
/// # Examples
///
/// ```
/// use qspr_fabric::Coord;
///
/// let a = Coord::new(2, 3);
/// let b = Coord::new(5, 1);
/// assert_eq!(a.manhattan(b), 5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Coord {
    /// Row index (0 = top).
    pub row: u16,
    /// Column index (0 = left).
    pub col: u16,
}

impl Coord {
    /// Creates a coordinate.
    pub fn new(row: u16, col: u16) -> Coord {
        Coord { row, col }
    }

    /// Manhattan (L1) distance to `other`, the natural metric on a fabric
    /// where qubits move one cell at a time.
    pub fn manhattan(self, other: Coord) -> u32 {
        self.row.abs_diff(other.row) as u32 + self.col.abs_diff(other.col) as u32
    }

    /// The four axis-aligned neighbours that stay inside a
    /// `rows × cols` grid, in N, S, W, E order.
    pub fn neighbors(self, rows: u16, cols: u16) -> impl Iterator<Item = Coord> {
        let Coord { row, col } = self;
        let north = row.checked_sub(1).map(|r| Coord::new(r, col));
        let south = (row + 1 < rows).then(|| Coord::new(row + 1, col));
        let west = col.checked_sub(1).map(|c| Coord::new(row, c));
        let east = (col + 1 < cols).then(|| Coord::new(row, col + 1));
        [north, south, west, east].into_iter().flatten()
    }
}

impl fmt::Display for Coord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.row, self.col)
    }
}

/// Channel direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Orientation {
    /// Left–right travel.
    Horizontal,
    /// Up–down travel.
    Vertical,
}

impl Orientation {
    /// The other orientation; switching between the two at a junction is a
    /// *turn* and costs `T_turn`.
    pub fn perpendicular(self) -> Orientation {
        match self {
            Orientation::Horizontal => Orientation::Vertical,
            Orientation::Vertical => Orientation::Horizontal,
        }
    }
}

impl fmt::Display for Orientation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Orientation::Horizontal => f.write_str("horizontal"),
            Orientation::Vertical => f.write_str("vertical"),
        }
    }
}

/// One cell of the fabric grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Cell {
    /// Unused area of the die.
    #[default]
    Empty,
    /// A trap site where gates execute (1 qubit for a 1-qubit gate, 2 for a
    /// 2-qubit gate).
    Trap,
    /// A horizontal channel cell.
    HChannel,
    /// A vertical channel cell.
    VChannel,
    /// A junction connecting horizontal and vertical channels.
    Junction,
}

impl Cell {
    /// The ASCII character used in the textual fabric format.
    pub fn to_char(self) -> char {
        match self {
            Cell::Empty => '.',
            Cell::Trap => 'T',
            Cell::HChannel => '-',
            Cell::VChannel => '|',
            Cell::Junction => '+',
        }
    }

    /// Parses one ASCII fabric character. Space is an alias for `.`,
    /// `J` for `+`.
    pub fn from_char(c: char) -> Option<Cell> {
        Some(match c {
            '.' | ' ' => Cell::Empty,
            'T' | 't' => Cell::Trap,
            '-' => Cell::HChannel,
            '|' => Cell::VChannel,
            '+' | 'J' | 'j' => Cell::Junction,
            _ => return None,
        })
    }

    /// `true` for channel cells (either orientation).
    pub fn is_channel(self) -> bool {
        matches!(self, Cell::HChannel | Cell::VChannel)
    }

    /// The orientation of a channel cell, `None` otherwise.
    pub fn channel_orientation(self) -> Option<Orientation> {
        match self {
            Cell::HChannel => Some(Orientation::Horizontal),
            Cell::VChannel => Some(Orientation::Vertical),
            _ => None,
        }
    }
}

impl fmt::Display for Cell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_char())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manhattan_is_symmetric_and_zero_on_self() {
        let a = Coord::new(3, 9);
        let b = Coord::new(7, 2);
        assert_eq!(a.manhattan(b), b.manhattan(a));
        assert_eq!(a.manhattan(a), 0);
    }

    #[test]
    fn neighbors_respect_bounds() {
        let corner = Coord::new(0, 0);
        let n: Vec<_> = corner.neighbors(3, 3).collect();
        assert_eq!(n, vec![Coord::new(1, 0), Coord::new(0, 1)]);

        let middle = Coord::new(1, 1);
        assert_eq!(middle.neighbors(3, 3).count(), 4);

        let far_corner = Coord::new(2, 2);
        let n: Vec<_> = far_corner.neighbors(3, 3).collect();
        assert_eq!(n, vec![Coord::new(1, 2), Coord::new(2, 1)]);
    }

    #[test]
    fn cell_chars_round_trip() {
        for cell in [
            Cell::Empty,
            Cell::Trap,
            Cell::HChannel,
            Cell::VChannel,
            Cell::Junction,
        ] {
            assert_eq!(Cell::from_char(cell.to_char()), Some(cell));
        }
        assert_eq!(Cell::from_char(' '), Some(Cell::Empty));
        assert_eq!(Cell::from_char('J'), Some(Cell::Junction));
        assert_eq!(Cell::from_char('x'), None);
    }

    #[test]
    fn perpendicular_is_involutive() {
        for o in [Orientation::Horizontal, Orientation::Vertical] {
            assert_eq!(o.perpendicular().perpendicular(), o);
        }
    }

    #[test]
    fn channel_orientation() {
        assert_eq!(
            Cell::HChannel.channel_orientation(),
            Some(Orientation::Horizontal)
        );
        assert_eq!(
            Cell::VChannel.channel_orientation(),
            Some(Orientation::Vertical)
        );
        assert_eq!(Cell::Junction.channel_orientation(), None);
        assert!(Cell::HChannel.is_channel());
        assert!(!Cell::Trap.is_channel());
    }
}
