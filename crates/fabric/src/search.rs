//! Precomputed routing-search graph over a topology.
//!
//! Path search (qspr-route's Dijkstra) runs over *(junction,
//! orientation)* nodes: a junction is split into a horizontal and a
//! vertical node so turn delays become an edge weight. The naive
//! formulation re-derives each node's outgoing edges on every heap pop —
//! scanning the junction's incident segments, filtering by orientation,
//! and looking up which end attaches where. Routing is the innermost
//! loop of the whole mapper, so [`Topology`](crate::Topology) instead
//! precomputes this [`SearchGraph`] once at construction: a CSR-style
//! flat edge list per node, each edge carrying the segment, the far
//! junction, the far node and the move count. A search then touches
//! nothing but two flat arrays.
//!
//! # Examples
//!
//! ```
//! use qspr_fabric::{Fabric, Orientation, SearchGraph};
//!
//! let fabric = Fabric::quale_45x85();
//! let graph = fabric.topology().search_graph();
//! assert_eq!(graph.num_nodes(), fabric.topology().junctions().len() * 2);
//! for node in 0..graph.num_nodes() {
//!     for edge in graph.edges(node) {
//!         let (j, orientation) = SearchGraph::parts(node);
//!         assert_ne!(edge.to_junction, j, "no self loops");
//!         let seg = fabric.topology().segment(edge.segment);
//!         assert_eq!(seg.orientation(), orientation);
//!         assert_eq!(edge.moves, u32::from(seg.len()) + 1);
//!     }
//! }
//! ```

use crate::cell::Orientation;
use crate::topology::{Junction, JunctionId, Segment, SegmentId};

/// One outgoing edge of a search-graph node: traversing `segment` from
/// the node's junction to `to_junction`, staying in the node's
/// orientation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SearchEdge {
    /// The channel segment this edge traverses.
    pub segment: SegmentId,
    /// The junction at the far end of the segment.
    pub to_junction: JunctionId,
    /// Dense node index of `(to_junction, same orientation)`.
    pub to_node: u32,
    /// Moves to cross the segment junction-to-junction (`len + 1`).
    pub moves: u32,
}

/// CSR adjacency of the `(junction, orientation)` search nodes.
///
/// Node `2·j` is junction `j` travelling horizontally, node `2·j + 1`
/// vertically; the perpendicular *turn* partner of a node is therefore
/// [`SearchGraph::turn_of`] — `node ^ 1`, no lookup needed. Edges only
/// connect junction-attached segment ends; dead ends and trap ports are
/// handled by the router's source/target legs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SearchGraph {
    /// `edge_start[n]..edge_start[n + 1]` indexes `edges` for node `n`.
    edge_start: Vec<u32>,
    edges: Vec<SearchEdge>,
}

impl SearchGraph {
    /// Dense index of the `(junction, orientation)` node.
    pub fn node(j: JunctionId, orientation: Orientation) -> usize {
        j.index() * 2
            + match orientation {
                Orientation::Horizontal => 0,
                Orientation::Vertical => 1,
            }
    }

    /// Inverse of [`SearchGraph::node`].
    pub fn parts(node: usize) -> (JunctionId, Orientation) {
        let orientation = if node % 2 == 0 {
            Orientation::Horizontal
        } else {
            Orientation::Vertical
        };
        (JunctionId((node / 2) as u32), orientation)
    }

    /// The perpendicular node at the same junction (the turn edge's
    /// target).
    pub fn turn_of(node: usize) -> usize {
        node ^ 1
    }

    /// Number of search nodes (`2 ×` junction count).
    pub fn num_nodes(&self) -> usize {
        self.edge_start.len() - 1
    }

    /// The outgoing edges of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node >= num_nodes()`.
    pub fn edges(&self, node: usize) -> &[SearchEdge] {
        let start = self.edge_start[node] as usize;
        let end = self.edge_start[node + 1] as usize;
        &self.edges[start..end]
    }

    /// Builds the graph from a topology's segments and junctions.
    /// Edge order within a node follows the junction's incident-segment
    /// order (N, S, W, E), mirroring the on-the-fly scan it replaces.
    pub(crate) fn build(segments: &[Segment], junctions: &[Junction]) -> SearchGraph {
        let n_nodes = junctions.len() * 2;
        let mut edge_start = Vec::with_capacity(n_nodes + 1);
        let mut edges = Vec::new();
        edge_start.push(0);
        for (ji, junction) in junctions.iter().enumerate() {
            let j = JunctionId(ji as u32);
            for orientation in [Orientation::Horizontal, Orientation::Vertical] {
                for (_, seg_id) in junction.incident_segments() {
                    let seg = &segments[seg_id.index()];
                    if seg.orientation() != orientation {
                        continue;
                    }
                    let Some(my_end) = seg.end_attached_to(j) else {
                        continue;
                    };
                    let Some(j2) = seg.ends()[1 - my_end].junction() else {
                        continue;
                    };
                    if j2 == j {
                        continue;
                    }
                    edges.push(SearchEdge {
                        segment: seg_id,
                        to_junction: j2,
                        to_node: SearchGraph::node(j2, orientation) as u32,
                        moves: u32::from(seg.len()) + 1,
                    });
                }
                edge_start.push(edges.len() as u32);
            }
        }
        SearchGraph { edge_start, edges }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::Fabric;

    #[test]
    fn node_indexing_round_trips() {
        for j in [0u32, 1, 7, 400] {
            for o in [Orientation::Horizontal, Orientation::Vertical] {
                let n = SearchGraph::node(JunctionId(j), o);
                assert_eq!(SearchGraph::parts(n), (JunctionId(j), o));
                let (tj, to) = SearchGraph::parts(SearchGraph::turn_of(n));
                assert_eq!(tj, JunctionId(j));
                assert_eq!(to, o.perpendicular());
            }
        }
    }

    #[test]
    fn graph_matches_incidence_scan() {
        // Every edge the old per-pop scan would produce appears, in the
        // same order, and nothing else.
        let fabric = Fabric::quale_45x85();
        let topo = fabric.topology();
        let graph = topo.search_graph();
        assert_eq!(graph.num_nodes(), topo.junctions().len() * 2);
        for (ji, junction) in topo.junctions().iter().enumerate() {
            let j = JunctionId(ji as u32);
            for orientation in [Orientation::Horizontal, Orientation::Vertical] {
                let expected: Vec<SearchEdge> = junction
                    .incident_segments()
                    .filter_map(|(_, seg_id)| {
                        let seg = topo.segment(seg_id);
                        if seg.orientation() != orientation {
                            return None;
                        }
                        let my_end = seg.end_attached_to(j)?;
                        let j2 = seg.ends()[1 - my_end].junction()?;
                        (j2 != j).then(|| SearchEdge {
                            segment: seg_id,
                            to_junction: j2,
                            to_node: SearchGraph::node(j2, orientation) as u32,
                            moves: u32::from(seg.len()) + 1,
                        })
                    })
                    .collect();
                assert_eq!(graph.edges(SearchGraph::node(j, orientation)), expected);
            }
        }
    }

    #[test]
    fn dead_end_stubs_produce_no_edges() {
        // The 5x5 cross: four stub segments, each with one dead end, so
        // no junction-to-junction edge exists anywhere.
        let f = Fabric::from_ascii(
            "..|..\n\
             T.|..\n\
             --+--\n\
             ..|.T\n\
             ..|..\n",
        )
        .unwrap();
        let graph = f.topology().search_graph();
        assert_eq!(graph.num_nodes(), 2);
        for node in 0..graph.num_nodes() {
            assert!(graph.edges(node).is_empty());
        }
    }
}
