//! Ion-trap quantum circuit fabric model for the QSPR mapper.
//!
//! An ion-trap fabric (paper §II.B, Fig. 4) is a finite grid of cells:
//!
//! * **traps** (`T`) — sites where 1- and 2-qubit gate operations execute;
//! * **channels** — wires the ion qubits travel through, horizontal (`-`)
//!   or vertical (`|`);
//! * **junctions** (`+`) — where horizontal and vertical channels meet and
//!   qubits *turn* (a slow operation, 5–30× a straight move);
//! * **empty** cells (`.`).
//!
//! [`Fabric`] owns the grid and eagerly derives a [`Topology`]: maximal
//! channel *segments* between junctions, junction adjacency, and one *port*
//! per trap (the channel cell a qubit steps through to enter the trap).
//! Routers and the event-driven simulator work exclusively on this derived
//! topology.
//!
//! The 45×85 fabric released with QUALE is not recoverable, so
//! [`Fabric::quale_45x85`] generates a regular macro-tile layout with the
//! same dimensions (junction pitch 4, four traps per tile); see DESIGN.md
//! for the substitution rationale. Arbitrary layouts can be supplied in
//! ASCII via [`Fabric::from_ascii`].
//!
//! # Examples
//!
//! ```
//! use qspr_fabric::Fabric;
//!
//! let fabric = Fabric::quale_45x85();
//! assert_eq!((fabric.rows(), fabric.cols()), (45, 85));
//! assert_eq!(fabric.topology().traps().len(), 924);
//!
//! // Layouts round-trip through ASCII.
//! let same = Fabric::from_ascii(&fabric.to_ascii()).unwrap();
//! assert_eq!(same.to_ascii(), fabric.to_ascii());
//! ```

mod cell;
mod error;
mod grid;
mod pmd;
mod regular;
mod search;
mod spec;
mod stats;
mod topology;

pub use cell::{Cell, Coord, Orientation};
pub use error::FabricError;
pub use grid::Fabric;
pub use pmd::{TechParams, Time};
pub use regular::RegularFabricSpec;
pub use search::{SearchEdge, SearchGraph};
pub use spec::{FabricInfo, FabricSpec};
pub use stats::FabricStats;
pub use topology::{
    Direction, Junction, JunctionId, Port, Segment, SegmentEnd, SegmentId, Topology, Trap, TrapId,
};
