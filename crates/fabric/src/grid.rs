//! The fabric grid container and its ASCII format.

use std::fmt;

use crate::cell::{Cell, Coord};
use crate::error::FabricError;
use crate::spec::FabricInfo;
use crate::topology::Topology;

/// An ion-trap circuit fabric: a rectangular grid of cells plus its derived
/// [`Topology`].
///
/// # Examples
///
/// ```
/// use qspr_fabric::{Cell, Coord, Fabric};
///
/// let fabric = Fabric::from_ascii(
///     "..|..\n\
///      T.|..\n\
///      --+--\n\
///      ..|.T\n\
///      ..|..\n",
/// )?;
/// assert_eq!(fabric.cell(Coord::new(2, 2)), Cell::Junction);
/// assert_eq!(fabric.topology().traps().len(), 2);
/// # Ok::<(), qspr_fabric::FabricError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Fabric {
    rows: u16,
    cols: u16,
    grid: Vec<Cell>,
    topology: Topology,
    /// Provenance metadata attached by the spec elaborator (absent on
    /// directly constructed fabrics). Descriptive only — never physics.
    info: Option<FabricInfo>,
}

impl PartialEq for Fabric {
    fn eq(&self, other: &Fabric) -> bool {
        // The topology is a pure function of the grid plus the capacity
        // overrides, so comparing those compares the physics. The `info`
        // metadata is provenance, not physics, and is excluded: a fabric
        // built from a spec equals the same fabric built directly.
        self.rows == other.rows
            && self.cols == other.cols
            && self.grid == other.grid
            && self.topology.segment_caps() == other.topology.segment_caps()
            && self.topology.junction_caps() == other.topology.junction_caps()
    }
}

impl Eq for Fabric {}

impl Fabric {
    /// Builds a fabric from a row-major cell vector and validates it.
    ///
    /// # Errors
    ///
    /// * [`FabricError::EmptyGrid`] if either dimension is zero;
    /// * [`FabricError::TooLarge`] if a dimension exceeds `u16`;
    /// * [`FabricError::DimensionMismatch`] if `cells.len() != rows*cols`;
    /// * [`FabricError::NoTraps`] / [`FabricError::TrapWithoutPort`] if the
    ///   layout cannot host computation.
    pub fn new(rows: usize, cols: usize, cells: Vec<Cell>) -> Result<Fabric, FabricError> {
        Fabric::with_capacities(rows, cols, cells, &[])
    }

    /// Like [`Fabric::new`], with per-cell capacity overrides (row-major,
    /// same dimensions; empty for a uniform fabric). This is the spec
    /// elaborator's entry point; see [`crate::FabricSpec`].
    ///
    /// # Errors
    ///
    /// As [`Fabric::new`], plus [`FabricError::DimensionMismatch`] when a
    /// non-empty `cell_caps` has the wrong length.
    pub fn with_capacities(
        rows: usize,
        cols: usize,
        cells: Vec<Cell>,
        cell_caps: &[Option<u8>],
    ) -> Result<Fabric, FabricError> {
        if rows == 0 || cols == 0 {
            return Err(FabricError::EmptyGrid);
        }
        if rows > u16::MAX as usize || cols > u16::MAX as usize {
            return Err(FabricError::TooLarge { rows, cols });
        }
        if cells.len() != rows * cols {
            return Err(FabricError::DimensionMismatch {
                expected: rows * cols,
                actual: cells.len(),
            });
        }
        if !cell_caps.is_empty() && cell_caps.len() != rows * cols {
            return Err(FabricError::DimensionMismatch {
                expected: rows * cols,
                actual: cell_caps.len(),
            });
        }
        let (rows, cols) = (rows as u16, cols as u16);
        let topology = Topology::build(rows, cols, &cells, cell_caps)?;
        Ok(Fabric {
            rows,
            cols,
            grid: cells,
            topology,
            info: None,
        })
    }

    /// Parses the ASCII fabric format: one row per line, cells `.`/space
    /// (empty), `T` (trap), `-`/`|` (channels), `+`/`J` (junction). Ragged
    /// lines are padded with empty cells on the right.
    ///
    /// # Errors
    ///
    /// Returns [`FabricError::UnknownChar`] for unrecognized characters and
    /// any validation error from [`Fabric::new`].
    pub fn from_ascii(text: &str) -> Result<Fabric, FabricError> {
        let lines: Vec<&str> = text.lines().collect();
        let rows = lines.len();
        let cols = lines.iter().map(|l| l.chars().count()).max().unwrap_or(0);
        if rows == 0 || cols == 0 {
            return Err(FabricError::EmptyGrid);
        }
        let mut cells = Vec::with_capacity(rows * cols);
        for (ln, line) in lines.iter().enumerate() {
            let mut count = 0;
            for (cn, ch) in line.chars().enumerate() {
                let cell = Cell::from_char(ch).ok_or(FabricError::UnknownChar {
                    line: ln + 1,
                    column: cn + 1,
                    ch,
                })?;
                cells.push(cell);
                count += 1;
            }
            cells.extend(std::iter::repeat(Cell::Empty).take(cols - count));
        }
        Fabric::new(rows, cols, cells)
    }

    /// Renders the fabric in the ASCII format accepted by
    /// [`Fabric::from_ascii`], with a trailing newline.
    pub fn to_ascii(&self) -> String {
        let mut out = String::with_capacity((self.cols as usize + 1) * self.rows as usize);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.push(self.cell(Coord::new(r, c)).to_char());
            }
            out.push('\n');
        }
        out
    }

    /// Number of grid rows.
    pub fn rows(&self) -> u16 {
        self.rows
    }

    /// Number of grid columns.
    pub fn cols(&self) -> u16 {
        self.cols
    }

    /// The cell at `coord`.
    ///
    /// # Panics
    ///
    /// Panics if `coord` lies outside the grid.
    pub fn cell(&self, coord: Coord) -> Cell {
        assert!(
            coord.row < self.rows && coord.col < self.cols,
            "coordinate {coord} outside {}×{} fabric",
            self.rows,
            self.cols
        );
        self.grid[coord.row as usize * self.cols as usize + coord.col as usize]
    }

    /// `true` when `coord` lies inside the grid.
    pub fn in_bounds(&self, coord: Coord) -> bool {
        coord.row < self.rows && coord.col < self.cols
    }

    /// The geometric center of the fabric, the anchor of QUALE-style
    /// center placement.
    pub fn center(&self) -> Coord {
        Coord::new(self.rows / 2, self.cols / 2)
    }

    /// The derived connectivity (segments, junctions, trap ports).
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Spec provenance metadata, when this fabric was elaborated from a
    /// [`crate::FabricSpec`]; `None` for directly constructed fabrics.
    pub fn info(&self) -> Option<&FabricInfo> {
        self.info.as_ref()
    }

    /// Attaches (or clears) spec provenance metadata.
    pub(crate) fn set_info(&mut self, info: Option<FabricInfo>) {
        self.info = info;
    }
}

impl fmt::Display for Fabric {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_ascii())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SMALL: &str = "\
..|..
T.|..
--+--
..|.T
..|..
";

    #[test]
    fn ascii_round_trip() {
        let f = Fabric::from_ascii(SMALL).unwrap();
        assert_eq!(f.to_ascii(), SMALL);
        let g = Fabric::from_ascii(&f.to_ascii()).unwrap();
        assert_eq!(f, g);
    }

    #[test]
    fn ragged_lines_are_padded() {
        let f = Fabric::from_ascii("--+--\n..|\n..T\n").unwrap();
        assert_eq!(f.cols(), 5);
        assert_eq!(f.cell(Coord::new(1, 4)), Cell::Empty);
    }

    #[test]
    fn unknown_char_is_located() {
        let err = Fabric::from_ascii("--+--\n..X..\n").unwrap_err();
        assert_eq!(
            err,
            FabricError::UnknownChar {
                line: 2,
                column: 3,
                ch: 'X'
            }
        );
    }

    #[test]
    fn empty_inputs_rejected() {
        assert_eq!(Fabric::from_ascii(""), Err(FabricError::EmptyGrid));
        assert_eq!(Fabric::new(0, 5, vec![]), Err(FabricError::EmptyGrid));
        assert!(matches!(
            Fabric::new(2, 2, vec![Cell::Empty; 3]),
            Err(FabricError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn center_is_middle_cell() {
        let f = Fabric::from_ascii(SMALL).unwrap();
        assert_eq!(f.center(), Coord::new(2, 2));
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn cell_out_of_bounds_panics() {
        let f = Fabric::from_ascii(SMALL).unwrap();
        let _ = f.cell(Coord::new(99, 0));
    }

    #[test]
    fn in_bounds() {
        let f = Fabric::from_ascii(SMALL).unwrap();
        assert!(f.in_bounds(Coord::new(4, 4)));
        assert!(!f.in_bounds(Coord::new(5, 0)));
        assert!(!f.in_bounds(Coord::new(0, 5)));
    }

    #[test]
    fn display_matches_ascii() {
        let f = Fabric::from_ascii(SMALL).unwrap();
        assert_eq!(format!("{f}"), SMALL);
    }
}
