//! Physical machine description (PMD): the technology timing and capacity
//! parameters of an ion-trap fabric.
//!
//! The paper's CAD flow (Fig. 1) feeds a PMD into every mapping stage; the
//! experimental values of §V.A are provided by [`TechParams::date2012`].

/// Simulation time in microseconds. All paper constants are integral, so
/// integer time keeps event ordering exact.
pub type Time = u64;

/// Ion-trap technology parameters.
///
/// # Examples
///
/// ```
/// use qspr_fabric::TechParams;
///
/// let tech = TechParams::date2012();
/// assert_eq!(tech.t_move, 1);
/// assert_eq!(tech.t_turn, 10);
/// assert!(tech.t_turn >= 5 * tech.t_move, "turns are 5-30x moves");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TechParams {
    /// Delay of relocating a qubit by one cell without changing direction.
    pub t_move: Time,
    /// Delay of changing movement direction at a junction.
    pub t_turn: Time,
    /// Delay of a 1-qubit gate operation inside a trap.
    pub t_gate_1q: Time,
    /// Delay of a 2-qubit gate operation inside a trap.
    pub t_gate_2q: Time,
    /// Maximum number of qubits concurrently inside one channel segment.
    /// The paper's QSPR uses 2 (ion multiplexing); earlier tools assumed 1.
    pub channel_capacity: u8,
    /// Maximum number of qubits concurrently routed through one junction.
    pub junction_capacity: u8,
}

impl TechParams {
    /// The parameter set used for all experiments in the paper (§V.A):
    /// `T_move = 1µs`, `T_turn = 10µs`, `T_1q = 10µs`, `T_2q = 100µs`,
    /// channel capacity 2 (junctions likewise route up to two qubits).
    pub fn date2012() -> TechParams {
        TechParams {
            t_move: 1,
            t_turn: 10,
            t_gate_1q: 10,
            t_gate_2q: 100,
            channel_capacity: 2,
            junction_capacity: 2,
        }
    }

    /// The same technology with all multiplexing disabled (capacity 1), the
    /// assumption under which QUALE and QPOS operate.
    pub fn without_multiplexing(mut self) -> TechParams {
        self.channel_capacity = 1;
        self.junction_capacity = 1;
        self
    }
}

impl Default for TechParams {
    /// Defaults to the paper's experimental parameters.
    fn default() -> TechParams {
        TechParams::date2012()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn date2012_matches_paper() {
        let t = TechParams::date2012();
        assert_eq!(
            (t.t_move, t.t_turn, t.t_gate_1q, t.t_gate_2q),
            (1, 10, 10, 100)
        );
        assert_eq!(t.channel_capacity, 2);
    }

    #[test]
    fn default_is_date2012() {
        assert_eq!(TechParams::default(), TechParams::date2012());
    }

    #[test]
    fn without_multiplexing_only_touches_capacities() {
        let t = TechParams::date2012().without_multiplexing();
        assert_eq!(t.channel_capacity, 1);
        assert_eq!(t.junction_capacity, 1);
        assert_eq!(t.t_turn, TechParams::date2012().t_turn);
    }
}
