//! Aggregate fabric metrics: connectivity, distances, diameter.

use crate::cell::Cell;
use crate::grid::Fabric;
use crate::topology::SegmentEnd;

/// Summary statistics of a fabric, as printed by the `qspr fabric`
/// command and used to sanity-check generated layouts.
///
/// # Examples
///
/// ```
/// use qspr_fabric::Fabric;
///
/// let stats = Fabric::quale_45x85().stats();
/// assert_eq!(stats.traps, 924);
/// assert_eq!(stats.junctions, 264);
/// assert!(stats.connected);
/// // Crossing the whole 45x85 fabric takes on the order of 120 moves.
/// assert!(stats.junction_diameter_moves > 100);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FabricStats {
    /// Number of traps.
    pub traps: usize,
    /// Number of junctions.
    pub junctions: usize,
    /// Number of channel segments.
    pub segments: usize,
    /// Total channel cells (the fabric's "wiring area").
    pub channel_cells: usize,
    /// Fraction of the die that is empty.
    pub empty_fraction: f64,
    /// `true` when every junction can reach every other junction.
    pub connected: bool,
    /// Largest junction-to-junction distance in *moves* (cells
    /// traversed), i.e. the worst-case straight-line component of any
    /// route across the fabric.
    pub junction_diameter_moves: u32,
    /// Largest junction-to-junction distance in *segments* (how many
    /// channel hops — an upper bound on unavoidable turns is one less).
    pub junction_diameter_hops: u32,
    /// Mean Manhattan distance between distinct trap pairs.
    pub mean_trap_distance: f64,
}

impl Fabric {
    /// Computes aggregate metrics (BFS over the junction graph plus
    /// cell-level counting). Cost is O(junctions · segments) — instant
    /// for realistic fabrics.
    pub fn stats(&self) -> FabricStats {
        let topo = self.topology();
        let n_j = topo.junctions().len();

        // BFS over junctions, both in hop count and in move distance.
        let adjacency: Vec<Vec<(usize, u32)>> = (0..n_j)
            .map(|j| {
                topo.junctions()[j]
                    .incident_segments()
                    .filter_map(|(_, sid)| {
                        let seg = topo.segment(sid);
                        let moves = u32::from(seg.len()) + 1;
                        let other = seg.ends().iter().find_map(|e| match e {
                            SegmentEnd::Junction(o) if o.index() != j => Some(o.index()),
                            _ => None,
                        })?;
                        Some((other, moves))
                    })
                    .collect()
            })
            .collect();

        let mut diameter_moves = 0;
        let mut diameter_hops = 0;
        let mut connected = n_j <= 1;
        if n_j > 0 {
            connected = true;
            for start in 0..n_j {
                let mut dist = vec![u32::MAX; n_j];
                let mut hops = vec![u32::MAX; n_j];
                dist[start] = 0;
                hops[start] = 0;
                // Dijkstra-lite: weights are small; a BFS over hops with
                // relaxation on moves is enough given uniform segments,
                // but use a proper priority queue for irregular fabrics.
                let mut heap = std::collections::BinaryHeap::new();
                heap.push(std::cmp::Reverse((0u32, start)));
                while let Some(std::cmp::Reverse((d, u))) = heap.pop() {
                    if d > dist[u] {
                        continue;
                    }
                    for &(v, w) in &adjacency[u] {
                        if d + w < dist[v] {
                            dist[v] = d + w;
                            hops[v] = hops[u] + 1;
                            heap.push(std::cmp::Reverse((dist[v], v)));
                        }
                    }
                }
                for j in 0..n_j {
                    if dist[j] == u32::MAX {
                        connected = false;
                    } else {
                        diameter_moves = diameter_moves.max(dist[j]);
                        diameter_hops = diameter_hops.max(hops[j]);
                    }
                }
            }
        }

        // Trap distance statistics.
        let traps = topo.traps();
        let mut sum = 0u64;
        let mut pairs = 0u64;
        for (i, a) in traps.iter().enumerate() {
            for b in traps.iter().skip(i + 1) {
                sum += u64::from(a.coord().manhattan(b.coord()));
                pairs += 1;
            }
        }
        let mean_trap_distance = if pairs == 0 {
            0.0
        } else {
            sum as f64 / pairs as f64
        };

        let mut channel_cells = 0;
        let mut empty = 0usize;
        for r in 0..self.rows() {
            for c in 0..self.cols() {
                match self.cell(crate::cell::Coord::new(r, c)) {
                    Cell::HChannel | Cell::VChannel => channel_cells += 1,
                    Cell::Empty => empty += 1,
                    _ => {}
                }
            }
        }

        FabricStats {
            traps: traps.len(),
            junctions: n_j,
            segments: topo.segments().len(),
            channel_cells,
            empty_fraction: empty as f64 / (self.rows() as f64 * self.cols() as f64),
            connected,
            junction_diameter_moves: diameter_moves,
            junction_diameter_hops: diameter_hops,
            mean_trap_distance,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quale_fabric_stats() {
        let s = Fabric::quale_45x85().stats();
        assert_eq!(s.traps, 924);
        assert_eq!(s.junctions, 264);
        assert_eq!(s.segments, 12 * 21 + 22 * 11);
        assert!(s.connected);
        // Corner to corner: (44 + 84) cells of travel.
        assert_eq!(s.junction_diameter_moves, 44 + 84);
        // 11 + 21 segment hops.
        assert_eq!(s.junction_diameter_hops, 32);
        assert!(s.mean_trap_distance > 10.0);
        assert!(s.empty_fraction > 0.3 && s.empty_fraction < 0.7);
    }

    #[test]
    fn disconnected_fabrics_are_detected() {
        let f = Fabric::from_ascii(
            ".T....T.\n\
             +-+..+-+\n",
        )
        .unwrap();
        assert!(!f.stats().connected);
    }

    #[test]
    fn single_junction_fabric() {
        let f = Fabric::from_ascii(
            "..|..\n\
             T.|..\n\
             --+--\n\
             ..|.T\n\
             ..|..\n",
        )
        .unwrap();
        let s = f.stats();
        assert_eq!(s.junctions, 1);
        assert!(s.connected);
        assert_eq!(s.junction_diameter_moves, 0);
    }

    #[test]
    fn channel_cells_counted() {
        let f = Fabric::from_ascii(".T.\n+-+\n").unwrap();
        let s = f.stats();
        assert_eq!(s.channel_cells, 1);
        assert_eq!(s.junctions, 2);
        assert_eq!(s.traps, 1);
        assert!(s.connected);
        assert_eq!(s.junction_diameter_moves, 2);
    }
}
