//! Resource-free schedules over a QIDG.

use qspr_fabric::Time;

use crate::qidg::InstrId;

/// A start-time assignment for every instruction of a QIDG.
///
/// Produced by [`crate::Qidg::asap`] and [`crate::Qidg::alap`]; these
/// schedules ignore fabric resources (`T_routing = T_congestion = 0`), so
/// the ASAP makespan is the paper's ideal lower bound on mapped latency.
///
/// # Examples
///
/// ```
/// use qspr_fabric::TechParams;
/// use qspr_qasm::Program;
/// use qspr_sched::{InstrId, Qidg};
///
/// # fn main() -> Result<(), qspr_qasm::ParseError> {
/// let p = Program::parse("QUBIT a\nH a\nX a\n")?;
/// let s = Qidg::new(&p, &TechParams::date2012()).asap();
/// assert_eq!(s.start(InstrId(1)), 10);
/// assert_eq!(s.makespan(), 20);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule {
    start: Vec<Time>,
    delay: Vec<Time>,
    makespan: Time,
}

impl Schedule {
    pub(crate) fn new(start: Vec<Time>, delay: Vec<Time>) -> Schedule {
        debug_assert_eq!(start.len(), delay.len());
        let makespan = start
            .iter()
            .zip(&delay)
            .map(|(s, d)| s + d)
            .max()
            .unwrap_or(0);
        Schedule {
            start,
            delay,
            makespan,
        }
    }

    /// Number of scheduled instructions.
    pub fn len(&self) -> usize {
        self.start.len()
    }

    /// `true` for an empty program.
    pub fn is_empty(&self) -> bool {
        self.start.is_empty()
    }

    /// Scheduled start time of `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn start(&self, id: InstrId) -> Time {
        self.start[id.index()]
    }

    /// Scheduled finish time of `id` (start plus gate delay).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn finish(&self, id: InstrId) -> Time {
        self.start[id.index()] + self.delay[id.index()]
    }

    /// Time at which the last instruction finishes.
    pub fn makespan(&self) -> Time {
        self.makespan
    }

    /// Instruction ids sorted by (start time, id) — the issue order QUALE
    /// derives from its ALAP schedule.
    pub fn issue_order(&self) -> Vec<InstrId> {
        let mut ids: Vec<InstrId> = (0..self.start.len() as u32).map(InstrId).collect();
        ids.sort_by_key(|id| (self.start[id.index()], *id));
        ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn makespan_of_empty_schedule_is_zero() {
        let s = Schedule::new(vec![], vec![]);
        assert!(s.is_empty());
        assert_eq!(s.makespan(), 0);
    }

    #[test]
    fn finish_adds_delay() {
        let s = Schedule::new(vec![0, 10], vec![10, 100]);
        assert_eq!(s.finish(InstrId(0)), 10);
        assert_eq!(s.finish(InstrId(1)), 110);
        assert_eq!(s.makespan(), 110);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn issue_order_sorts_by_start_then_id() {
        let s = Schedule::new(vec![5, 0, 5], vec![1, 1, 1]);
        assert_eq!(s.issue_order(), vec![InstrId(1), InstrId(0), InstrId(2)]);
    }
}
