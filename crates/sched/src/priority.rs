//! The paper's list-scheduling priority function.

/// Weights of the two priority terms of §III: the number of (transitive)
/// dependents of an instruction and the longest gate-delay path from the
/// instruction to the end of the QIDG.
///
/// * QSPR uses both terms (`default()`);
/// * QPOS uses only the dependent count (`dependents_only()`);
/// * the Whitney et al. variant uses only the path delay
///   (`path_delay_only()`).
///
/// # Examples
///
/// ```
/// use qspr_sched::PriorityWeights;
///
/// let w = PriorityWeights::default();
/// assert_eq!((w.dependents, w.path), (1.0, 1.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PriorityWeights {
    /// Weight of the transitive-dependent count term.
    pub dependents: f64,
    /// Weight of the longest-path-delay term (per microsecond).
    pub path: f64,
}

impl PriorityWeights {
    /// Creates explicit weights.
    pub fn new(dependents: f64, path: f64) -> PriorityWeights {
        PriorityWeights { dependents, path }
    }

    /// QPOS's initial priority: instructions with more dependents first.
    pub fn dependents_only() -> PriorityWeights {
        PriorityWeights::new(1.0, 0.0)
    }

    /// The Whitney et al. tweak: total delay of dependent instructions.
    pub fn path_delay_only() -> PriorityWeights {
        PriorityWeights::new(0.0, 1.0)
    }
}

impl Default for PriorityWeights {
    /// The paper's linear combination with unit weights.
    fn default() -> PriorityWeights {
        PriorityWeights::new(1.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets() {
        assert_eq!(PriorityWeights::dependents_only().path, 0.0);
        assert_eq!(PriorityWeights::path_delay_only().dependents, 0.0);
        let d = PriorityWeights::default();
        assert_eq!((d.dependents, d.path), (1.0, 1.0));
    }
}
