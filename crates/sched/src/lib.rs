//! Quantum instruction dependency graph (QIDG) and scheduling analyses.
//!
//! The QSPR paper (§III) schedules QASM instructions under
//! Minimum-Latency Resource-Constrained (MLRC) semantics, where the
//! resource constraints are the fabric's channel and junction capacities.
//! The *static* side of that problem lives here:
//!
//! * [`Qidg`] — the dependency DAG extracted from a
//!   [`qspr_qasm::Program`] (one node per instruction, one edge per
//!   qubit-carried dependency);
//! * [`Schedule`] — resource-free ASAP and ALAP schedules
//!   ([`Qidg::asap`], [`Qidg::alap`]); the ASAP makespan is the paper's
//!   *ideal baseline* latency (`T_routing = T_congestion = 0`);
//! * [`PriorityWeights`] — the paper's list-scheduling priority: a linear
//!   combination of how many operations transitively depend on an
//!   instruction and the longest delay path from it to the end of the
//!   QIDG.
//!
//! The *dynamic* side — interleaved scheduling and routing on a concrete
//! fabric — lives in `qspr-sim`, which consumes the priorities computed
//! here. The *uncompute* graph (UIDG) used by the MVFB placer is simply
//! `Qidg::new(&program.reversed(), tech)`.
//!
//! # Examples
//!
//! ```
//! use qspr_fabric::TechParams;
//! use qspr_qasm::Program;
//! use qspr_sched::Qidg;
//!
//! # fn main() -> Result<(), qspr_qasm::ParseError> {
//! let program = Program::parse("QUBIT a\nQUBIT b\nH a\nC-X a,b\nH b\n")?;
//! let qidg = Qidg::new(&program, &TechParams::date2012());
//! // H(a) -> CX(a,b) -> H(b): a pure chain.
//! assert_eq!(qidg.critical_path_delay(), 10 + 100 + 10);
//! # Ok(())
//! # }
//! ```
//!
//! # Design notes
//!
//! **QIDG construction is a single forward scan.** For each qubit the
//! builder remembers the last instruction that touched it; the next
//! instruction on that qubit adds one edge from the remembered node.
//! This yields exactly the qubit-carried (RAW) dependencies — never a
//! transitive duplicate of them — and since every edge points from a
//! lower to a higher instruction index, **program order is already a
//! topological order**: every analysis below is one array sweep in
//! instruction order (forward) or reverse order (backward), no
//! worklists, no cycle checks.
//!
//! **Schedules are the two boundary sweeps.** [`Qidg::asap`] pushes
//! each node as early as its predecessors allow (forward sweep);
//! [`Qidg::alap`] pulls it as late as its successors allow (backward
//! sweep against the ASAP makespan). Both are *resource-free*: they
//! assume infinite channels, which is precisely the paper's ideal
//! baseline — [`Qidg::critical_path_delay`] (= the ASAP makespan) is
//! the `T_routing = T_congestion = 0` lower bound that Table 2 reports
//! against, and the ALAP order doubles as the QUALE baseline's issue
//! order in `qspr-sim`.
//!
//! **The priority scheme is one backward sweep with two accumulators**
//! (the paper's §III list-scheduling key, [`PriorityWeights`]): for
//! each node, (a) how many instructions transitively depend on it and
//! (b) the longest gate-delay path from it to the QIDG's end.
//! `priority = w_d · dependents + w_p · path_delay`; QSPR weighs both
//! terms (`default()`), QPOS keeps only the dependent count, Whitney
//! et al. keep only the path term. Ties fall back to instruction order,
//! which keeps the dynamic scheduler deterministic.
//!
//! ```
//! use qspr_fabric::TechParams;
//! use qspr_qasm::Program;
//! use qspr_sched::{PriorityWeights, Qidg};
//!
//! # fn main() -> Result<(), qspr_qasm::ParseError> {
//! // A chain: every instruction unlocks everything after it, so both
//! // priority terms — and their combination — strictly decrease.
//! let chain = Program::parse("QUBIT a\nQUBIT b\nH a\nC-X a,b\nH b\n")?;
//! let qidg = Qidg::new(&chain, &TechParams::date2012());
//! let priorities = qidg.priorities(&PriorityWeights::default());
//! assert!(priorities[0] > priorities[1] && priorities[1] > priorities[2]);
//!
//! // The ALAP start of the chain's head equals its slack-free ASAP
//! // start: on a critical path the two schedules agree.
//! assert_eq!(qidg.asap().makespan(), qidg.alap().makespan());
//! # Ok(())
//! # }
//! ```

mod priority;
mod qidg;
mod schedule;

pub use priority::PriorityWeights;
pub use qidg::{gate_delay, InstrId, Qidg};
pub use schedule::Schedule;
