//! Quantum instruction dependency graph (QIDG) and scheduling analyses.
//!
//! The QSPR paper (§III) schedules QASM instructions under
//! Minimum-Latency Resource-Constrained (MLRC) semantics, where the
//! resource constraints are the fabric's channel and junction capacities.
//! The *static* side of that problem lives here:
//!
//! * [`Qidg`] — the dependency DAG extracted from a
//!   [`qspr_qasm::Program`] (one node per instruction, one edge per
//!   qubit-carried dependency);
//! * [`Schedule`] — resource-free ASAP and ALAP schedules
//!   ([`Qidg::asap`], [`Qidg::alap`]); the ASAP makespan is the paper's
//!   *ideal baseline* latency (`T_routing = T_congestion = 0`);
//! * [`PriorityWeights`] — the paper's list-scheduling priority: a linear
//!   combination of how many operations transitively depend on an
//!   instruction and the longest delay path from it to the end of the
//!   QIDG.
//!
//! The *dynamic* side — interleaved scheduling and routing on a concrete
//! fabric — lives in `qspr-sim`, which consumes the priorities computed
//! here. The *uncompute* graph (UIDG) used by the MVFB placer is simply
//! `Qidg::new(&program.reversed(), tech)`.
//!
//! # Examples
//!
//! ```
//! use qspr_fabric::TechParams;
//! use qspr_qasm::Program;
//! use qspr_sched::Qidg;
//!
//! # fn main() -> Result<(), qspr_qasm::ParseError> {
//! let program = Program::parse("QUBIT a\nQUBIT b\nH a\nC-X a,b\nH b\n")?;
//! let qidg = Qidg::new(&program, &TechParams::date2012());
//! // H(a) -> CX(a,b) -> H(b): a pure chain.
//! assert_eq!(qidg.critical_path_delay(), 10 + 100 + 10);
//! # Ok(())
//! # }
//! ```

mod priority;
mod qidg;
mod schedule;

pub use priority::PriorityWeights;
pub use qidg::{gate_delay, InstrId, Qidg};
pub use schedule::Schedule;
