//! QIDG construction and graph analyses.

use std::fmt;

use qspr_fabric::{TechParams, Time};
use qspr_qasm::{Gate, GateArity, Instruction, Program};

use crate::priority::PriorityWeights;
use crate::schedule::Schedule;

/// Identifier of an instruction node in a [`Qidg`]; equals the
/// instruction's index in the originating program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct InstrId(pub u32);

impl InstrId {
    /// Dense index for array addressing.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for InstrId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "i#{}", self.0)
    }
}

/// The trap-resident execution delay of `gate` under `tech` (the paper's
/// `T_gate` of Eq. 1). Routing and congestion delays are added by the
/// simulator, not here.
pub fn gate_delay(gate: Gate, tech: &TechParams) -> Time {
    match gate.arity() {
        GateArity::One => tech.t_gate_1q,
        GateArity::Two => tech.t_gate_2q,
    }
}

/// Quantum instruction dependency graph.
///
/// One node per instruction; a directed edge `a → b` whenever `b` is the
/// next instruction after `a` touching one of `a`'s qubits. Edges always
/// point from a lower to a higher instruction index, so instruction order
/// is already a topological order.
///
/// # Examples
///
/// ```
/// use qspr_fabric::TechParams;
/// use qspr_qasm::Program;
/// use qspr_sched::{InstrId, Qidg};
///
/// # fn main() -> Result<(), qspr_qasm::ParseError> {
/// let p = Program::parse("QUBIT a\nQUBIT b\nH a\nH b\nC-X a,b\n")?;
/// let g = Qidg::new(&p, &TechParams::date2012());
/// assert_eq!(g.preds(InstrId(2)), &[InstrId(0), InstrId(1)]);
/// assert!(g.succs(InstrId(2)).is_empty());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Qidg {
    instructions: Vec<Instruction>,
    delays: Vec<Time>,
    preds: Vec<Vec<InstrId>>,
    succs: Vec<Vec<InstrId>>,
    num_qubits: usize,
}

impl Qidg {
    /// Builds the dependency graph of `program` with node delays taken
    /// from `tech`.
    pub fn new(program: &Program, tech: &TechParams) -> Qidg {
        let _span = qspr_obs::span("qidg");
        let n = program.instructions().len();
        let mut preds: Vec<Vec<InstrId>> = vec![Vec::new(); n];
        let mut succs: Vec<Vec<InstrId>> = vec![Vec::new(); n];
        // Last instruction that touched each qubit.
        let mut last: Vec<Option<InstrId>> = vec![None; program.num_qubits()];
        for (i, instr) in program.instructions().iter().enumerate() {
            let id = InstrId(i as u32);
            for q in instr.qubits() {
                if let Some(p) = last[q.index()] {
                    // A CX a,b following a CZ a,b would add the edge twice.
                    if !preds[id.index()].contains(&p) {
                        preds[id.index()].push(p);
                        succs[p.index()].push(id);
                    }
                }
                last[q.index()] = Some(id);
            }
        }
        let delays = program
            .instructions()
            .iter()
            .map(|i| gate_delay(i.gate, tech))
            .collect();
        Qidg {
            instructions: program.instructions().to_vec(),
            delays,
            preds,
            succs,
            num_qubits: program.num_qubits(),
        }
    }

    /// Number of instruction nodes.
    pub fn len(&self) -> usize {
        self.instructions.len()
    }

    /// `true` when the program had no instructions.
    pub fn is_empty(&self) -> bool {
        self.instructions.is_empty()
    }

    /// Number of qubits in the originating program.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// The instruction at node `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn instruction(&self, id: InstrId) -> &Instruction {
        &self.instructions[id.index()]
    }

    /// The gate delay of node `id` (`T_gate` only).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn delay(&self, id: InstrId) -> Time {
        self.delays[id.index()]
    }

    /// Direct dependencies of `id` (instructions that must finish first).
    pub fn preds(&self, id: InstrId) -> &[InstrId] {
        &self.preds[id.index()]
    }

    /// Direct dependents of `id`.
    pub fn succs(&self, id: InstrId) -> &[InstrId] {
        &self.succs[id.index()]
    }

    /// Nodes with no dependencies, ready at time zero.
    pub fn roots(&self) -> impl Iterator<Item = InstrId> + '_ {
        (0..self.len() as u32)
            .map(InstrId)
            .filter(|id| self.preds(*id).is_empty())
    }

    /// Node ids in a topological order (instruction order, by
    /// construction).
    pub fn topo_order(&self) -> impl Iterator<Item = InstrId> + '_ {
        (0..self.len() as u32).map(InstrId)
    }

    /// Resource-free as-soon-as-possible schedule. Its makespan is the
    /// paper's ideal-baseline latency.
    pub fn asap(&self) -> Schedule {
        let mut start = vec![0; self.len()];
        let mut makespan = 0;
        for id in self.topo_order() {
            let s = self
                .preds(id)
                .iter()
                .map(|p| start[p.index()] + self.delay(*p))
                .max()
                .unwrap_or(0);
            start[id.index()] = s;
            makespan = makespan.max(s + self.delay(id));
        }
        Schedule::new(start, self.delays.clone())
    }

    /// Resource-free as-late-as-possible schedule, anchored so the last
    /// instruction finishes at the ASAP makespan (QUALE extracts its
    /// issue order from this schedule).
    pub fn alap(&self) -> Schedule {
        let horizon = self.asap().makespan();
        let mut start = vec![0; self.len()];
        for id in self.topo_order().collect::<Vec<_>>().into_iter().rev() {
            let finish = self
                .succs(id)
                .iter()
                .map(|s| start[s.index()])
                .min()
                .unwrap_or(horizon);
            start[id.index()] = finish - self.delay(id);
        }
        Schedule::new(start, self.delays.clone())
    }

    /// The ASAP makespan: the length (in time) of the longest
    /// gate-delay path through the QIDG.
    pub fn critical_path_delay(&self) -> Time {
        self.asap().makespan()
    }

    /// For every node, the longest delay path from that node (inclusive)
    /// to any end node of the QIDG — the second term of the paper's
    /// scheduling priority.
    pub fn longest_path_to_sink(&self) -> Vec<Time> {
        let mut dist = vec![0; self.len()];
        for id in self.topo_order().collect::<Vec<_>>().into_iter().rev() {
            let tail = self
                .succs(id)
                .iter()
                .map(|s| dist[s.index()])
                .max()
                .unwrap_or(0);
            dist[id.index()] = self.delay(id) + tail;
        }
        dist
    }

    /// For every node, how many distinct instructions transitively depend
    /// on it — the first term of the paper's scheduling priority.
    ///
    /// Computed with bitset reachability over the reverse topological
    /// order, O(V·E/64).
    pub fn dependent_count(&self) -> Vec<u32> {
        let n = self.len();
        let words = n.div_ceil(64);
        let mut reach = vec![0u64; n * words];
        let mut counts = vec![0u32; n];
        for id in self.topo_order().collect::<Vec<_>>().into_iter().rev() {
            let i = id.index();
            // Union the successors' reachable sets plus the successors
            // themselves.
            let mut acc = vec![0u64; words];
            for s in self.succs(id) {
                let si = s.index();
                acc[si / 64] |= 1u64 << (si % 64);
                for w in 0..words {
                    acc[w] |= reach[si * words + w];
                }
            }
            counts[i] = acc.iter().map(|w| w.count_ones()).sum();
            reach[i * words..(i + 1) * words].swap_with_slice(&mut acc);
        }
        counts
    }

    /// The paper's list-scheduling priorities: for each node,
    /// `w_dependents · dependent_count + w_path · longest_path_to_sink`.
    /// Higher priority instructions issue first.
    pub fn priorities(&self, weights: &PriorityWeights) -> Vec<f64> {
        self.priorities_with_boost(weights, &[])
    }

    /// [`Qidg::priorities`] plus a per-instruction timing boost in
    /// microseconds, scaled like the path term (`w_path`).
    ///
    /// The boost is how static timing analysis feeds measured
    /// criticality back into list scheduling (`--sta-feedback`): an
    /// instruction whose *executed* slack was low gets a large boost —
    /// its measured critical distance extends the static longest-path
    /// estimate — so ready-queue ties break toward the instructions
    /// that actually paced the previous run. An empty boost slice is the
    /// plain priority function; missing tail entries count as zero.
    pub fn priorities_with_boost(&self, weights: &PriorityWeights, boost: &[Time]) -> Vec<f64> {
        let deps = self.dependent_count();
        let paths = self.longest_path_to_sink();
        deps.iter()
            .zip(&paths)
            .enumerate()
            .map(|(i, (d, p))| {
                let extra = boost.get(i).copied().unwrap_or(0);
                weights.dependents * f64::from(*d) + weights.path * (*p + extra) as f64
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FIG3: &str = "\
QUBIT q0,0
QUBIT q1,0
QUBIT q2,0
QUBIT q3
QUBIT q4,0
H q0
H q1
H q2
H q4
C-X q3,q2
C-Z q4,q2
C-Y q2,q1
C-Y q3,q1
C-X q4,q1
C-Z q2,q0
C-Y q3,q0
C-Z q4,q0
";

    fn fig3() -> Qidg {
        let p = Program::parse(FIG3).unwrap();
        Qidg::new(&p, &TechParams::date2012())
    }

    #[test]
    fn edges_follow_qubit_chains() {
        let g = fig3();
        // Instruction 4 = C-X q3,q2 depends on H q2 (instr 2) only.
        assert_eq!(g.preds(InstrId(4)), &[InstrId(2)]);
        // Instruction 5 = C-Z q4,q2 depends on H q4 (3) and C-X q3,q2 (4).
        let mut p = g.preds(InstrId(5)).to_vec();
        p.sort();
        assert_eq!(p, vec![InstrId(3), InstrId(4)]);
    }

    #[test]
    fn roots_are_the_hadamards() {
        let g = fig3();
        let roots: Vec<_> = g.roots().collect();
        // H q0, H q1, H q2, H q4 and C-X q3,q2? No: C-X q3,q2 depends on
        // H q2. q3 has no prior op, but q2 does.
        assert_eq!(roots, vec![InstrId(0), InstrId(1), InstrId(2), InstrId(3)]);
    }

    #[test]
    fn duplicate_edges_are_collapsed() {
        let p = Program::parse("QUBIT a\nQUBIT b\nC-X a,b\nC-Z a,b\n").unwrap();
        let g = Qidg::new(&p, &TechParams::date2012());
        assert_eq!(g.preds(InstrId(1)), &[InstrId(0)]);
        assert_eq!(g.succs(InstrId(0)), &[InstrId(1)]);
    }

    #[test]
    fn asap_respects_dependencies() {
        let g = fig3();
        let s = g.asap();
        for id in g.topo_order() {
            for p in g.preds(id) {
                assert!(
                    s.finish(*p) <= s.start(id),
                    "{p} finishes after {id} starts"
                );
            }
        }
    }

    #[test]
    fn fig3_critical_path() {
        // Hand-derived ASAP chain: H q2 (10), then the q2 chain
        // C-X q3,q2 / C-Z q4,q2 / C-Y q2,q1 (300), C-X q4,q1 via q1...
        // longest chain finishes at 610.
        assert_eq!(fig3().critical_path_delay(), 610);
    }

    #[test]
    fn alap_is_no_earlier_than_asap_and_same_makespan() {
        let g = fig3();
        let asap = g.asap();
        let alap = g.alap();
        assert_eq!(asap.makespan(), alap.makespan());
        for id in g.topo_order() {
            assert!(alap.start(id) >= asap.start(id), "{id}");
        }
    }

    #[test]
    fn alap_respects_dependencies() {
        let g = fig3();
        let s = g.alap();
        for id in g.topo_order() {
            for p in g.preds(id) {
                assert!(s.finish(*p) <= s.start(id));
            }
        }
    }

    #[test]
    fn dependent_count_on_chain() {
        let p = Program::parse("QUBIT a\nH a\nX a\nY a\n").unwrap();
        let g = Qidg::new(&p, &TechParams::date2012());
        assert_eq!(g.dependent_count(), vec![2, 1, 0]);
    }

    #[test]
    fn dependent_count_on_diamond() {
        // H a ; H b ; CX a,b — both H's have 1 dependent.
        let p = Program::parse("QUBIT a\nQUBIT b\nH a\nH b\nC-X a,b\n").unwrap();
        let g = Qidg::new(&p, &TechParams::date2012());
        assert_eq!(g.dependent_count(), vec![1, 1, 0]);
    }

    #[test]
    fn dependent_count_does_not_double_count() {
        // a fans out to two ops that reconverge: a,b,c distinct qubits.
        //   H a ; CX a,b ; CX a,c ; CX b,c
        let p =
            Program::parse("QUBIT a\nQUBIT b\nQUBIT c\nH a\nC-X a,b\nC-X a,c\nC-X b,c\n").unwrap();
        let g = Qidg::new(&p, &TechParams::date2012());
        // H a reaches {1,2,3}: count 3 (3 reachable, not 4 via two paths).
        assert_eq!(g.dependent_count()[0], 3);
    }

    #[test]
    fn longest_path_includes_own_delay() {
        let p = Program::parse("QUBIT a\nH a\nX a\n").unwrap();
        let g = Qidg::new(&p, &TechParams::date2012());
        assert_eq!(g.longest_path_to_sink(), vec![20, 10]);
    }

    #[test]
    fn priorities_combine_both_terms() {
        let p = Program::parse("QUBIT a\nH a\nX a\n").unwrap();
        let g = Qidg::new(&p, &TechParams::date2012());
        let pr = g.priorities(&PriorityWeights::default());
        assert!(pr[0] > pr[1]);
        let only_deps = g.priorities(&PriorityWeights::new(1.0, 0.0));
        assert_eq!(only_deps, vec![1.0, 0.0]);
    }

    #[test]
    fn boost_adds_to_the_path_term_only() {
        let p = Program::parse("QUBIT a\nH a\nX a\n").unwrap();
        let g = Qidg::new(&p, &TechParams::date2012());
        let w = PriorityWeights::default();
        let base = g.priorities(&w);
        // Boosting the second instruction by 100µs lifts exactly its
        // priority, by w.path · 100.
        let boosted = g.priorities_with_boost(&w, &[0, 100]);
        assert_eq!(boosted[0], base[0]);
        assert_eq!(boosted[1], base[1] + w.path * 100.0);
        // An empty or short boost slice means no boost.
        assert_eq!(g.priorities_with_boost(&w, &[]), base);
        assert_eq!(g.priorities_with_boost(&w, &[0]), base);
    }

    #[test]
    fn empty_program() {
        let p = Program::parse("QUBIT a\n").unwrap();
        let g = Qidg::new(&p, &TechParams::date2012());
        assert!(g.is_empty());
        assert_eq!(g.critical_path_delay(), 0);
        assert_eq!(g.asap().makespan(), 0);
    }

    #[test]
    fn uidg_has_same_critical_path() {
        let p = Program::parse(FIG3).unwrap();
        let g = Qidg::new(&p, &TechParams::date2012());
        let u = Qidg::new(&p.reversed(), &TechParams::date2012());
        assert_eq!(g.critical_path_delay(), u.critical_path_delay());
        assert_eq!(g.len(), u.len());
    }
}

#[cfg(test)]
mod large_graph_tests {
    use super::*;
    use qspr_qasm::{random_program, RandomProgramConfig};

    /// Chains longer than 64 instructions exercise the multi-word bitset
    /// reachability in `dependent_count`.
    #[test]
    fn dependent_count_crosses_word_boundaries() {
        let mut p = Program::parse("QUBIT a\n").unwrap();
        for _ in 0..100 {
            p.apply1(qspr_qasm::Gate::X, qspr_qasm::QubitId(0)).unwrap();
        }
        let g = Qidg::new(&p, &TechParams::date2012());
        let counts = g.dependent_count();
        for (i, c) in counts.iter().enumerate() {
            assert_eq!(*c as usize, 99 - i, "instruction {i}");
        }
    }

    #[test]
    fn wide_graph_dependent_counts() {
        // 70 independent single-qubit gates fanning into one CX chain.
        let mut p = Program::new();
        for i in 0..70 {
            p.add_qubit(&format!("q{i}")).unwrap();
        }
        for i in 0..70 {
            p.apply1(qspr_qasm::Gate::H, qspr_qasm::QubitId(i)).unwrap();
        }
        p.apply2(
            qspr_qasm::Gate::CX,
            qspr_qasm::QubitId(0),
            qspr_qasm::QubitId(1),
        )
        .unwrap();
        let g = Qidg::new(&p, &TechParams::date2012());
        let counts = g.dependent_count();
        assert_eq!(counts[0], 1); // H q0 -> CX
        assert_eq!(counts[1], 1); // H q1 -> CX
        assert_eq!(counts[2], 0); // H q2 has no dependents
        assert_eq!(counts[70], 0); // the CX itself
    }

    /// ASAP and ALAP agree on makespan for arbitrary programs, and both
    /// respect dependencies.
    #[test]
    fn schedules_agree_on_random_programs() {
        let tech = TechParams::date2012();
        for seed in 0..20 {
            let p = random_program(&RandomProgramConfig::new(7, 80), seed);
            let g = Qidg::new(&p, &tech);
            let asap = g.asap();
            let alap = g.alap();
            assert_eq!(asap.makespan(), alap.makespan(), "seed {seed}");
            for id in g.topo_order() {
                assert!(alap.start(id) >= asap.start(id));
                for pr in g.preds(id) {
                    assert!(asap.finish(*pr) <= asap.start(id));
                    assert!(alap.finish(*pr) <= alap.start(id));
                }
            }
        }
    }

    /// The ALAP issue order is a valid topological order.
    #[test]
    fn alap_issue_order_is_topological() {
        let tech = TechParams::date2012();
        for seed in 0..10 {
            let p = random_program(&RandomProgramConfig::new(6, 60), seed);
            let g = Qidg::new(&p, &tech);
            let order = g.alap().issue_order();
            let mut position = vec![0usize; g.len()];
            for (pos, id) in order.iter().enumerate() {
                position[id.index()] = pos;
            }
            for id in g.topo_order() {
                for pr in g.preds(id) {
                    assert!(
                        position[pr.index()] < position[id.index()],
                        "seed {seed}: {pr} after {id}"
                    );
                }
            }
        }
    }

    /// Priorities decrease along every dependency chain when both terms
    /// are positive (a dependent can never outrank its prerequisite).
    #[test]
    fn priorities_decrease_along_chains() {
        let tech = TechParams::date2012();
        for seed in 0..10 {
            let p = random_program(&RandomProgramConfig::new(6, 60), seed);
            let g = Qidg::new(&p, &tech);
            let pr = g.priorities(&PriorityWeights::default());
            for id in g.topo_order() {
                for s in g.succs(id) {
                    assert!(pr[id.index()] > pr[s.index()], "seed {seed}: {id} vs {s}");
                }
            }
        }
    }
}
