//! Report rows matching the paper's result tables.

use std::fmt;
use std::time::Duration;

use qspr_fabric::Time;

use crate::json::{JsonObject, ToJson};

/// One row of the paper's Table 2: ideal baseline vs QUALE vs QSPR.
///
/// # Examples
///
/// ```
/// use qspr::ComparisonRow;
///
/// let row = ComparisonRow::new("[[5,1,3]]", 510, 832, 634);
/// assert_eq!(row.quale_overhead(), 322);
/// assert_eq!(row.qspr_overhead(), 124);
/// assert!((row.improvement_pct() - 23.80).abs() < 0.01);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ComparisonRow {
    /// Benchmark circuit name.
    pub circuit: String,
    /// Ideal (resource-free) execution latency, µs.
    pub baseline: Time,
    /// QUALE mapped latency, µs.
    pub quale: Time,
    /// QSPR mapped latency, µs.
    pub qspr: Time,
}

impl ComparisonRow {
    /// Creates a row.
    pub fn new(circuit: &str, baseline: Time, quale: Time, qspr: Time) -> ComparisonRow {
        ComparisonRow {
            circuit: circuit.to_owned(),
            baseline,
            quale,
            qspr,
        }
    }

    /// QUALE's `T_routing + T_congestion` overhead over the baseline.
    pub fn quale_overhead(&self) -> Time {
        self.quale.saturating_sub(self.baseline)
    }

    /// QSPR's `T_routing + T_congestion` overhead over the baseline.
    pub fn qspr_overhead(&self) -> Time {
        self.qspr.saturating_sub(self.baseline)
    }

    /// Percentage improvement of QSPR over QUALE (the paper's last
    /// column; 24–55% in the original experiments).
    pub fn improvement_pct(&self) -> f64 {
        if self.quale == 0 {
            return 0.0;
        }
        100.0 * (self.quale as f64 - self.qspr as f64) / self.quale as f64
    }
}

impl ToJson for ComparisonRow {
    /// Stable JSON schema, pinned by a golden test:
    /// `{"circuit","baseline_us","quale_us","qspr_us","quale_overhead_us",
    /// "qspr_overhead_us","improvement_pct"}`.
    fn to_json(&self) -> String {
        JsonObject::new()
            .string("circuit", &self.circuit)
            .number("baseline_us", self.baseline)
            .number("quale_us", self.quale)
            .number("qspr_us", self.qspr)
            .number("quale_overhead_us", self.quale_overhead())
            .number("qspr_overhead_us", self.qspr_overhead())
            .float("improvement_pct", self.improvement_pct())
            .build()
    }
}

impl fmt::Display for ComparisonRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<12} baseline {:>8}µs  QUALE {:>8}µs (+{:>7})  QSPR {:>8}µs (+{:>7})  improvement {:>6.2}%",
            self.circuit,
            self.baseline,
            self.quale,
            self.quale_overhead(),
            self.qspr,
            self.qspr_overhead(),
            self.improvement_pct()
        )
    }
}

/// One row of the paper's Table 1: MVFB vs Monte Carlo at equal placement
/// runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlacerComparisonRow {
    /// Benchmark circuit name.
    pub circuit: String,
    /// Number of MVFB random seeds (`m`).
    pub m: usize,
    /// Total placement runs MVFB consumed (`m'`), also given to MC.
    pub runs: usize,
    /// Best MVFB latency, µs.
    pub mvfb_latency: Time,
    /// MVFB wall-clock time.
    pub mvfb_cpu: Duration,
    /// Best Monte Carlo latency, µs.
    pub mc_latency: Time,
    /// Monte Carlo wall-clock time.
    pub mc_cpu: Duration,
}

impl PlacerComparisonRow {
    /// `true` when MVFB matched or beat Monte Carlo (the paper's
    /// observation for every circuit and both values of `m`).
    pub fn mvfb_wins(&self) -> bool {
        self.mvfb_latency <= self.mc_latency
    }
}

impl ToJson for PlacerComparisonRow {
    /// Stable JSON schema, pinned by a golden test:
    /// `{"circuit","m","runs","mvfb_latency_us","mvfb_cpu_ms",
    /// "mc_latency_us","mc_cpu_ms","mvfb_wins"}`.
    fn to_json(&self) -> String {
        JsonObject::new()
            .string("circuit", &self.circuit)
            .number("m", self.m as u64)
            .number("runs", self.runs as u64)
            .number("mvfb_latency_us", self.mvfb_latency)
            .number("mvfb_cpu_ms", self.mvfb_cpu.as_millis() as u64)
            .number("mc_latency_us", self.mc_latency)
            .number("mc_cpu_ms", self.mc_cpu.as_millis() as u64)
            .boolean("mvfb_wins", self.mvfb_wins())
            .build()
    }
}

impl fmt::Display for PlacerComparisonRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<12} m={:<4} runs={:<5} MVFB {:>8}µs ({:>6}ms)  MC {:>8}µs ({:>6}ms)",
            self.circuit,
            self.m,
            self.runs,
            self.mvfb_latency,
            self.mvfb_cpu.as_millis(),
            self.mc_latency,
            self.mc_cpu.as_millis(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_row_arithmetic() {
        // Paper Table 2, [[9,1,3]]: baseline 910, QUALE 2216, QSPR 1159.
        let row = ComparisonRow::new("[[9,1,3]]", 910, 2216, 1159);
        assert_eq!(row.quale_overhead(), 1306);
        assert_eq!(row.qspr_overhead(), 249);
        assert!((row.improvement_pct() - 47.70).abs() < 0.01);
    }

    #[test]
    fn zero_quale_does_not_divide_by_zero() {
        let row = ComparisonRow::new("x", 0, 0, 0);
        assert_eq!(row.improvement_pct(), 0.0);
    }

    #[test]
    fn display_contains_fields() {
        let row = ComparisonRow::new("[[5,1,3]]", 510, 832, 634);
        let s = row.to_string();
        assert!(s.contains("[[5,1,3]]"));
        assert!(s.contains("510"));
        assert!(s.contains("832"));

        let prow = PlacerComparisonRow {
            circuit: "[[5,1,3]]".into(),
            m: 25,
            runs: 88,
            mvfb_latency: 634,
            mvfb_cpu: Duration::from_millis(546),
            mc_latency: 664,
            mc_cpu: Duration::from_millis(562),
        };
        assert!(prow.mvfb_wins());
        assert!(prow.to_string().contains("runs=88"));
    }

    #[test]
    fn comparison_row_json_golden() {
        // Golden test: this string IS the schema contract. Changing it
        // breaks downstream consumers of `--format json`.
        let row = ComparisonRow::new("[[5,1,3]]", 510, 832, 634);
        assert_eq!(
            row.to_json(),
            r#"{"circuit":"[[5,1,3]]","baseline_us":510,"quale_us":832,"qspr_us":634,"quale_overhead_us":322,"qspr_overhead_us":124,"improvement_pct":23.80}"#
        );
    }

    #[test]
    fn placer_comparison_row_json_golden() {
        let row = PlacerComparisonRow {
            circuit: "[[9,1,3]]".into(),
            m: 25,
            runs: 86,
            mvfb_latency: 1159,
            mvfb_cpu: Duration::from_millis(546),
            mc_latency: 1212,
            mc_cpu: Duration::from_millis(562),
        };
        assert_eq!(
            row.to_json(),
            r#"{"circuit":"[[9,1,3]]","m":25,"runs":86,"mvfb_latency_us":1159,"mvfb_cpu_ms":546,"mc_latency_us":1212,"mc_cpu_ms":562,"mvfb_wins":true}"#
        );
    }

    #[test]
    fn json_escapes_circuit_names() {
        let row = ComparisonRow::new("odd\"name", 1, 2, 2);
        assert!(row.to_json().starts_with(r#"{"circuit":"odd\"name""#));
    }
}
