//! Parallel batch mapping: run the full QSPR comparison flow over a
//! whole suite of circuits on a thread pool.
//!
//! The paper evaluates the mapper one benchmark at a time; reproducing
//! Table 1/Table 2 (and any scaling study) means mapping many circuits,
//! each of which is internally sequential but independent of the
//! others. [`BatchMapper`] wraps a [`Flow`] — which owns its fabric, so
//! there is no lifetime parameter to thread through — and fans a job
//! list out over `N` worker threads with a lock-free work-stealing
//! counter, records per-circuit wall time, and returns results **in
//! input order** regardless of thread count or scheduling. Because the
//! underlying flow is seed-determined, the reported latencies are
//! identical at any thread count — only wall-clock time changes.
//!
//! # Examples
//!
//! ```
//! use qspr::{BatchJob, BatchMapper, Flow};
//! use qspr_fabric::Fabric;
//! use qspr_qasm::Program;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let jobs = vec![
//!     BatchJob::new("bell", Program::parse("QUBIT a\nQUBIT b\nH a\nC-X a,b\n")?),
//!     BatchJob::new("ghz3", Program::parse(
//!         "QUBIT a\nQUBIT b\nQUBIT c\nH a\nC-X a,b\nC-X b,c\n",
//!     )?),
//! ];
//! let report = BatchMapper::new(Flow::on(Fabric::quale_45x85()).seeds(4))
//!     .threads(2)
//!     .run(&jobs)?;
//! assert_eq!(report.items.len(), 2);
//! assert_eq!(report.items[0].name, "bell"); // input order preserved
//! # Ok(())
//! # }
//! ```

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::thread;
use std::time::{Duration, Instant};

use qspr_qasm::Program;

use crate::error::QsprError;
use crate::flow::Flow;
use crate::json::{JsonArray, JsonObject, ToJson};
use crate::report::ComparisonRow;

/// One named circuit in a batch.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchJob {
    /// Display name (circuit name or source path).
    pub name: String,
    /// The program to map.
    pub program: Program,
}

impl BatchJob {
    /// Creates a job.
    pub fn new(name: impl Into<String>, program: Program) -> BatchJob {
        BatchJob {
            name: name.into(),
            program,
        }
    }
}

impl From<qspr_qecc::codes::Benchmark> for BatchJob {
    /// Adopts a paper benchmark (its encoding circuit) as a batch job.
    fn from(bench: qspr_qecc::codes::Benchmark) -> BatchJob {
        BatchJob {
            name: bench.name,
            program: bench.program,
        }
    }
}

/// The per-circuit outcome of a batch run.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchItem {
    /// The job's name.
    pub name: String,
    /// Ideal baseline vs QUALE vs QSPR latencies (a Table 2 row).
    pub row: ComparisonRow,
    /// Wall-clock time this circuit took on its worker thread.
    pub cpu: Duration,
}

impl ToJson for BatchItem {
    /// Stable JSON schema: the [`ComparisonRow`] fields plus `cpu_ms`.
    fn to_json(&self) -> String {
        // The row already carries the circuit name; splice cpu_ms into
        // its object rather than nesting one level deeper.
        let row = self.row.to_json();
        let inner = row
            .strip_prefix('{')
            .and_then(|r| r.strip_suffix('}'))
            .expect("rows serialize to objects");
        format!("{{{inner},\"cpu_ms\":{}}}", self.cpu.as_millis())
    }
}

/// A mapping failure attributed to the circuit that caused it.
#[derive(Debug)]
pub struct BatchError {
    /// Name of the failing job.
    pub circuit: String,
    /// The underlying flow error.
    pub source: QsprError,
}

impl fmt::Display for BatchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.circuit, self.source)
    }
}

impl std::error::Error for BatchError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.source)
    }
}

/// The aggregate of one batch run.
#[derive(Debug, Clone)]
pub struct BatchReport {
    /// Per-circuit results, **in input order**.
    pub items: Vec<BatchItem>,
    /// Worker threads actually used.
    pub threads: usize,
    /// End-to-end wall-clock time of the whole batch.
    pub wall: Duration,
}

impl BatchReport {
    /// Sum of per-circuit worker times (the sequential cost estimate).
    pub fn total_cpu(&self) -> Duration {
        self.items.iter().map(|i| i.cpu).sum()
    }

    /// Parallel speedup: total worker time over wall time (≈1 with one
    /// thread, approaching `threads` for balanced suites).
    pub fn speedup(&self) -> f64 {
        let wall = self.wall.as_secs_f64();
        if wall == 0.0 {
            return 1.0;
        }
        self.total_cpu().as_secs_f64() / wall
    }

    /// Mean QSPR-over-QUALE improvement across the suite (the paper
    /// reports 24–55% per circuit).
    pub fn mean_improvement_pct(&self) -> f64 {
        if self.items.is_empty() {
            return 0.0;
        }
        let sum: f64 = self.items.iter().map(|i| i.row.improvement_pct()).sum();
        sum / self.items.len() as f64
    }
}

impl ToJson for BatchReport {
    /// Stable JSON schema, pinned by a golden test:
    /// `{"items":[...],"threads","wall_ms","total_cpu_ms","speedup",
    /// "mean_improvement_pct"}`.
    fn to_json(&self) -> String {
        JsonObject::new()
            .raw("items", &JsonArray::of(self.items.iter()))
            .number("threads", self.threads as u64)
            .number("wall_ms", self.wall.as_millis() as u64)
            .number("total_cpu_ms", self.total_cpu().as_millis() as u64)
            .float("speedup", self.speedup())
            .float("mean_improvement_pct", self.mean_improvement_pct())
            .build()
    }
}

/// Maps a suite of circuits in parallel with deterministic results.
///
/// Owns its [`Flow`] (and through it the fabric), so it has no lifetime
/// parameter and can itself move across threads or into long-lived
/// services. See the module docs for an example.
#[derive(Debug, Clone)]
pub struct BatchMapper {
    flow: Flow,
    threads: usize,
}

impl BatchMapper {
    /// Creates a batch mapper running `flow` on all available CPUs.
    pub fn new(flow: Flow) -> BatchMapper {
        let threads = thread::available_parallelism().map_or(1, |n| n.get());
        BatchMapper { flow, threads }
    }

    /// Sets the worker thread count (clamped to at least 1).
    pub fn threads(mut self, threads: usize) -> BatchMapper {
        self.threads = threads.max(1);
        self
    }

    /// The configured worker thread count.
    pub fn thread_count(&self) -> usize {
        self.threads
    }

    /// The flow each worker runs.
    pub fn flow(&self) -> &Flow {
        &self.flow
    }

    /// Runs the full comparison flow (ideal baseline, QUALE, QSPR) on
    /// every job, fanned out over the thread pool.
    ///
    /// Results come back in input order; latencies are independent of
    /// the thread count because the flow is seed-determined. An empty
    /// job list yields an empty report.
    ///
    /// # Errors
    ///
    /// Returns the [`BatchError`] of the **earliest** (by input order)
    /// failing circuit — also independent of the thread count. On the
    /// first failure, unclaimed jobs are cancelled rather than mapped
    /// to completion (in-flight jobs finish). This cannot change which
    /// error is reported: the work counter hands out indices in input
    /// order, so every job earlier than a failing one was already
    /// claimed and completes.
    pub fn run(&self, jobs: &[BatchJob]) -> Result<BatchReport, BatchError> {
        let started = Instant::now();
        let threads = self.threads.min(jobs.len()).max(1);
        let next = AtomicUsize::new(0);
        let cancelled = AtomicBool::new(false);
        let slots: Vec<Mutex<Option<Result<BatchItem, BatchError>>>> =
            jobs.iter().map(|_| Mutex::new(None)).collect();

        thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| {
                    // Workers share the flow immutably; the fabric
                    // behind its Arc is read-only.
                    let flow = &self.flow;
                    while !cancelled.load(Ordering::Relaxed) {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(job) = jobs.get(i) else { break };
                        let t0 = Instant::now();
                        let result = flow
                            .compare(&job.name, &job.program)
                            .map(|row| BatchItem {
                                name: job.name.clone(),
                                row,
                                cpu: t0.elapsed(),
                            })
                            .map_err(|source| BatchError {
                                circuit: job.name.clone(),
                                source,
                            });
                        if result.is_err() {
                            cancelled.store(true, Ordering::Relaxed);
                        }
                        *slots[i].lock().expect("no worker panics holding it") = Some(result);
                    }
                });
            }
        });

        let mut items = Vec::with_capacity(jobs.len());
        let mut first_error = None;
        for slot in slots {
            match slot.into_inner().expect("no worker panics holding it") {
                Some(Ok(item)) => items.push(item),
                Some(Err(e)) => {
                    first_error = Some(e);
                    break;
                }
                // Unfilled slots are the cancelled tail; the loop above
                // reaches one only after passing the error that caused
                // the cancellation — or never, when all jobs ran.
                None => break,
            }
        }
        if let Some(e) = first_error {
            return Err(e);
        }
        debug_assert_eq!(items.len(), jobs.len(), "no error, so every job ran");
        Ok(BatchReport {
            items,
            threads,
            wall: started.elapsed(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qspr_fabric::Fabric;
    use qspr_qasm::{random_program, RandomProgramConfig};

    fn fast_flow() -> Flow {
        Flow::on(Fabric::quale_45x85()).seeds(4)
    }

    fn jobs(n: usize) -> Vec<BatchJob> {
        (0..n)
            .map(|i| {
                BatchJob::new(
                    format!("rand{i}"),
                    random_program(&RandomProgramConfig::new(4, 12), i as u64),
                )
            })
            .collect()
    }

    #[test]
    fn batch_mapper_is_send_and_static() {
        fn assert_send<T: Send + 'static>() {}
        assert_send::<BatchMapper>();
    }

    #[test]
    fn empty_batch_yields_empty_report() {
        let report = BatchMapper::new(fast_flow()).run(&[]).unwrap();
        assert!(report.items.is_empty());
        assert_eq!(report.mean_improvement_pct(), 0.0);
    }

    #[test]
    fn results_preserve_input_order() {
        let jobs = jobs(5);
        let report = BatchMapper::new(fast_flow()).threads(3).run(&jobs).unwrap();
        let names: Vec<&str> = report.items.iter().map(|i| i.name.as_str()).collect();
        assert_eq!(names, ["rand0", "rand1", "rand2", "rand3", "rand4"]);
        for item in &report.items {
            assert!(item.row.baseline <= item.row.qspr, "{}", item.name);
        }
    }

    #[test]
    fn thread_count_does_not_change_latencies() {
        let jobs = jobs(6);
        let mapper = BatchMapper::new(fast_flow());
        let serial = mapper.clone().threads(1).run(&jobs).unwrap();
        let parallel = mapper.threads(8).run(&jobs).unwrap();
        assert_eq!(serial.threads, 1);
        let serial_rows: Vec<_> = serial.items.iter().map(|i| &i.row).collect();
        let parallel_rows: Vec<_> = parallel.items.iter().map(|i| &i.row).collect();
        assert_eq!(serial_rows, parallel_rows);
    }

    #[test]
    fn failures_name_the_earliest_offending_circuit() {
        // Zero MVFB seeds stalls every circuit; regardless of which
        // worker fails first, the reported error must belong to the
        // earliest job in input order.
        let err = BatchMapper::new(fast_flow().seeds(0))
            .threads(4)
            .run(&jobs(5))
            .unwrap_err();
        assert_eq!(err.circuit, "rand0");
        assert!(err.to_string().starts_with("rand0: "));
        assert!(matches!(err.source, QsprError::Map(_)));
    }

    #[test]
    fn benchmark_conversion_keeps_names() {
        let bench = qspr_qecc::codes::benchmark_suite().swap_remove(0);
        let name = bench.name.clone();
        let job = BatchJob::from(bench);
        assert_eq!(job.name, name);
        assert!(job.program.num_qubits() > 0);
    }

    #[test]
    fn batch_report_json_golden() {
        // Golden test: this string IS the schema contract for
        // `qspr batch --format json`.
        let report = BatchReport {
            items: vec![BatchItem {
                name: "[[5,1,3]]".into(),
                row: ComparisonRow::new("[[5,1,3]]", 510, 832, 634),
                cpu: Duration::from_millis(12),
            }],
            threads: 2,
            wall: Duration::from_millis(40),
        };
        assert_eq!(
            report.to_json(),
            r#"{"items":[{"circuit":"[[5,1,3]]","baseline_us":510,"quale_us":832,"qspr_us":634,"quale_overhead_us":322,"qspr_overhead_us":124,"improvement_pct":23.80,"cpu_ms":12}],"threads":2,"wall_ms":40,"total_cpu_ms":12,"speedup":0.30,"mean_improvement_pct":23.80}"#
        );
    }
}
