//! QSPR — Quantum mapper based on Scheduling, Placement and Routing.
//!
//! Top-level reproduction of the DATE 2012 paper *"Minimizing the Latency
//! of Quantum Circuits during Mapping to the Ion-Trap Circuit Fabric"*
//! (Dousti & Pedram). This crate ties the substrates together into the
//! tool the paper evaluates:
//!
//! * [`Flow`] — the full flow as one owned, composable value: QASM
//!   program → QIDG scheduling → placement (through any
//!   [`qspr_place::Placer`] engine; MVFB by default) → turn-aware
//!   congestion-weighted routing → event-driven simulation → latency,
//!   stats and a micro-command trace. A `Flow` owns its fabric behind
//!   an `Arc`, so it is `Send + 'static` — ready for thread pools and
//!   services;
//! * [`FlowPolicy`] — QSPR or the paper's **QUALE**/**QPOS** baselines,
//!   selected with one builder call; the **ideal** lower bound
//!   (`T_routing = T_congestion = 0`) is [`Flow::ideal_latency`];
//! * [`RouterKind`] — the batch-routing engine behind the mapper:
//!   `Greedy` (sequential first-answer routing) or `Negotiated`
//!   (PathFinder-style rip-up-and-reroute), selected with
//!   [`Flow::router`]; per-run congestion stats land in
//!   [`FlowSummary`];
//! * [`QsprError`] — the workspace-wide error enum wrapping parse,
//!   fabric, mapping, batch and I/O failures;
//! * [`BatchMapper`] — the same flow over a whole suite of circuits on
//!   a thread pool, with per-circuit timing and deterministic,
//!   input-ordered results at any thread count;
//! * [`ComparisonRow`] / [`PlacerComparisonRow`] — the rows of the
//!   paper's Table 2 and Table 1, JSON-serializable via [`json::ToJson`]
//!   like every other report type;
//! * [`ablation_policies`] — one policy per QSPR design claim, for the
//!   ablation benches called out in DESIGN.md;
//! * [`service`] — the `qspr serve` subsystem: a resident HTTP/1.1 JSON
//!   mapping service with a fixed worker pool, a seed-deterministic
//!   LRU result cache keyed by [`Flow::fingerprint`], and a
//!   Prometheus-format `GET /metrics` endpoint;
//! * [`obs`] — the observability substrate (`qspr-obs`): hierarchical
//!   span tracing over the whole pipeline (near-zero cost when idle),
//!   counters/gauges/latency histograms, and the golden-tested
//!   [`obs::ProfileReport`] behind `qspr map --profile`;
//! * [`sta`] — static timing analysis over a recorded trace:
//!   [`Flow::timing_report`] reconstructs per-instruction slack, the
//!   critical path and resource bottlenecks, and
//!   [`Flow::sta_feedback`] folds the report back into a second
//!   mapping pass (critical-segment congestion pricing plus low-slack
//!   scheduling priority), keeping whichever run is faster.
//!
//! For the end-to-end dataflow and the paper-to-code map, see
//! `docs/ARCHITECTURE.md` at the repository root.
//!
//! # Examples
//!
//! ```
//! use qspr::Flow;
//! use qspr_fabric::Fabric;
//! use qspr_qasm::Program;
//!
//! # fn main() -> Result<(), qspr::QsprError> {
//! let program = Program::parse("QUBIT a\nQUBIT b\nH a\nC-X a,b\n")?;
//! let flow = Flow::on(Fabric::quale_45x85()).seeds(4);
//!
//! let result = flow.run(&program)?;
//! assert!(result.latency >= flow.ideal_latency(&program));
//! # Ok(())
//! # }
//! ```
//!
//! # Migrating from `QsprTool`
//!
//! The deprecated `QsprTool` facade was removed after its one-release
//! grace period; [`Flow`] is the only front door. The call-by-call
//! migration table lives in the README's "Migrating from `QsprTool`"
//! section.

mod ablation;
mod batch;
mod error;
mod flow;
pub mod json;
mod noise;
mod report;
pub mod service;

pub use ablation::ablation_policies;
pub use batch::{BatchError, BatchItem, BatchJob, BatchMapper, BatchReport};
pub use error::QsprError;
pub use flow::{FabricSummary, Flow, FlowPolicy, FlowResult, FlowSummary, FlowTiming};
pub use json::ToJson;
pub use noise::NoiseModel;
pub use report::{ComparisonRow, PlacerComparisonRow};
// The routing-engine seam, re-exported for `Flow::router` callers.
pub use qspr_route::{RouterFactory, RouterKind, RoutingEngine, RoutingStats};

// Re-export the layered API so downstream users need only one dependency.
pub use qspr_fabric as fabric;
pub use qspr_obs as obs;
pub use qspr_place as place;
pub use qspr_qasm as qasm;
pub use qspr_qecc as qecc;
pub use qspr_route as route;
pub use qspr_sched as sched;
pub use qspr_sim as sim;
pub use qspr_sta as sta;
