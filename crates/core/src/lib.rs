//! QSPR — Quantum mapper based on Scheduling, Placement and Routing.
//!
//! Top-level reproduction of the DATE 2012 paper *"Minimizing the Latency
//! of Quantum Circuits during Mapping to the Ion-Trap Circuit Fabric"*
//! (Dousti & Pedram). This crate ties the substrates together into the
//! tool the paper evaluates:
//!
//! * [`QsprTool`] — the full flow: QASM program → QIDG scheduling → MVFB
//!   placement → turn-aware congestion-weighted routing → event-driven
//!   simulation → latency, stats and a micro-command trace;
//! * [`BatchMapper`] — the same flow over a whole suite of circuits on
//!   a thread pool, with per-circuit timing and deterministic,
//!   input-ordered results at any thread count;
//! * baselines: the **ideal** lower bound (`T_routing = T_congestion =
//!   0`), a reimplementation of **QUALE** (center placement, ALAP
//!   extraction, turn-blind PathFinder-style routing, no channel
//!   multiplexing, single moving qubit) and of **QPOS** (ASAP +
//!   dependent-count priority, destination operand fixed);
//! * [`ComparisonRow`] / [`PlacerComparisonRow`] — the rows of the
//!   paper's Table 2 and Table 1;
//! * [`ablation_policies`] — one policy per QSPR design claim, for the
//!   ablation benches called out in DESIGN.md.
//!
//! # Examples
//!
//! ```
//! use qspr::{QsprConfig, QsprTool};
//! use qspr_fabric::Fabric;
//! use qspr_qasm::Program;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let fabric = Fabric::quale_45x85();
//! let tool = QsprTool::new(&fabric, QsprConfig::fast());
//! let program = Program::parse("QUBIT a\nQUBIT b\nH a\nC-X a,b\n")?;
//!
//! let result = tool.map(&program)?;
//! let ideal = tool.ideal_latency(&program);
//! assert!(result.latency >= ideal);
//! # Ok(())
//! # }
//! ```

mod ablation;
mod batch;
mod noise;
mod report;
mod tool;

pub use ablation::ablation_policies;
pub use batch::{BatchError, BatchItem, BatchJob, BatchMapper, BatchReport};
pub use noise::NoiseModel;
pub use report::{ComparisonRow, PlacerComparisonRow};
pub use tool::{QsprConfig, QsprResult, QsprTool};

// Re-export the layered API so downstream users need only one dependency.
pub use qspr_fabric as fabric;
pub use qspr_place as place;
pub use qspr_qasm as qasm;
pub use qspr_qecc as qecc;
pub use qspr_route as route;
pub use qspr_sched as sched;
pub use qspr_sim as sim;
