//! The end-to-end QSPR tool and its baselines.

use std::time::Duration;

use qspr_fabric::{Fabric, TechParams, Time};
use qspr_place::{MonteCarloPlacer, MvfbConfig, MvfbPlacer, PassDirection};
use qspr_qasm::Program;
use qspr_sched::Qidg;
use qspr_sim::{MapError, Mapper, MapperPolicy, MappingOutcome, Placement, Trace};

use crate::report::{ComparisonRow, PlacerComparisonRow};

/// Configuration of the full QSPR flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QsprConfig {
    /// Technology parameters (defaults to the paper's §V.A values).
    pub tech: TechParams,
    /// MVFB placer parameters. The paper's headline results use `m = 100`
    /// seeds; [`QsprConfig::fast`] uses 4 for tests and quick runs.
    pub mvfb: MvfbConfig,
    /// Record the winning micro-command trace during [`QsprTool::map`].
    pub record_trace: bool,
}

impl QsprConfig {
    /// The paper's experimental configuration: `m = 100`, patience 3.
    pub fn paper() -> QsprConfig {
        QsprConfig {
            tech: TechParams::date2012(),
            mvfb: MvfbConfig::new(100, 0xD57E_2012),
            record_trace: false,
        }
    }

    /// The paper's configuration with `m = 25` (the second column block of
    /// Table 1).
    pub fn paper_m25() -> QsprConfig {
        QsprConfig {
            mvfb: MvfbConfig::new(25, 0xD57E_2012),
            ..QsprConfig::paper()
        }
    }

    /// A light configuration (`m = 4`) for tests and examples.
    pub fn fast() -> QsprConfig {
        QsprConfig {
            mvfb: MvfbConfig::new(4, 0xD57E_2012),
            ..QsprConfig::paper()
        }
    }

    /// Same config with a different number of MVFB seeds (the paper's
    /// sensitivity parameter `m`).
    pub fn with_seeds(mut self, m: usize) -> QsprConfig {
        self.mvfb.seeds = m;
        self
    }
}

impl Default for QsprConfig {
    /// Defaults to the paper's configuration.
    fn default() -> QsprConfig {
        QsprConfig::paper()
    }
}

/// Result of the full QSPR flow on one program.
#[derive(Debug, Clone, PartialEq)]
pub struct QsprResult {
    /// Best mapped execution latency (µs).
    pub latency: Time,
    /// Direction of the winning MVFB pass.
    pub direction: PassDirection,
    /// Placement the winning pass started from.
    pub initial_placement: Placement,
    /// Total MVFB placement runs (`m'`).
    pub runs: usize,
    /// Placer wall-clock time.
    pub cpu: Duration,
    /// Full outcome (stats, final placement) of the winning pass.
    pub outcome: MappingOutcome,
    /// Forward-executing micro-command trace, when
    /// [`QsprConfig::record_trace`] was set.
    pub forward_trace: Option<Trace>,
}

/// The QSPR mapper plus the paper's baselines, bound to one fabric.
///
/// See the crate docs for an example.
#[derive(Debug, Clone)]
pub struct QsprTool<'a> {
    fabric: &'a Fabric,
    config: QsprConfig,
}

impl<'a> QsprTool<'a> {
    /// Creates the tool for `fabric`.
    pub fn new(fabric: &'a Fabric, config: QsprConfig) -> QsprTool<'a> {
        QsprTool { fabric, config }
    }

    /// The fabric experiments run on.
    pub fn fabric(&self) -> &Fabric {
        self.fabric
    }

    /// The active configuration.
    pub fn config(&self) -> &QsprConfig {
        &self.config
    }

    /// Runs the full QSPR flow (priority scheduling + MVFB placement +
    /// turn-aware multiplexed routing) on `program`.
    ///
    /// # Errors
    ///
    /// Propagates [`MapError`] from the underlying mapper (stalls on
    /// degenerate fabrics, placement mismatches).
    pub fn map(&self, program: &Program) -> Result<QsprResult, MapError> {
        let mapper = self.mapper(MapperPolicy::qspr(&self.config.tech));
        let placer = MvfbPlacer::new(self.config.mvfb);
        let solution = placer.place(&mapper, program)?;
        let (outcome, forward_trace) = if self.config.record_trace {
            let (outcome, trace) = solution.replay(&mapper, program)?;
            (outcome, Some(trace))
        } else {
            let prog = match solution.direction {
                PassDirection::Forward => program.clone(),
                PassDirection::Backward => program.reversed(),
            };
            (mapper.map(&prog, &solution.initial_placement)?, None)
        };
        debug_assert_eq!(outcome.latency(), solution.latency);
        Ok(QsprResult {
            latency: solution.latency,
            direction: solution.direction,
            initial_placement: solution.initial_placement,
            runs: solution.runs,
            cpu: solution.cpu,
            outcome,
            forward_trace,
        })
    }

    /// Maps `program` with an explicit policy and placement (the
    /// escape hatch for ablations and custom flows).
    ///
    /// # Errors
    ///
    /// Propagates [`MapError`] from the mapper.
    pub fn map_with(
        &self,
        program: &Program,
        policy: MapperPolicy,
        placement: &Placement,
    ) -> Result<MappingOutcome, MapError> {
        self.mapper(policy).map(program, placement)
    }

    /// The QUALE baseline: deterministic center placement, ALAP
    /// extraction, turn-blind negotiated routing, capacity-1 channels,
    /// and only the source qubit moving.
    ///
    /// # Errors
    ///
    /// Propagates [`MapError`] from the mapper.
    pub fn map_quale(&self, program: &Program) -> Result<MappingOutcome, MapError> {
        let placement = Placement::center(self.fabric, program.num_qubits());
        self.map_with(program, MapperPolicy::quale(&self.config.tech), &placement)
    }

    /// The QPOS baseline: center placement, ASAP + dependent-count
    /// priority, destination operand fixed, capacity-1 channels.
    ///
    /// # Errors
    ///
    /// Propagates [`MapError`] from the mapper.
    pub fn map_qpos(&self, program: &Program) -> Result<MappingOutcome, MapError> {
        let placement = Placement::center(self.fabric, program.num_qubits());
        self.map_with(program, MapperPolicy::qpos(&self.config.tech), &placement)
    }

    /// The paper's ideal baseline: execution latency on a fabric with
    /// `T_congestion = T_routing = 0`, i.e. the gate-delay critical path
    /// of the QIDG. A lower bound for any placed-and-routed result.
    pub fn ideal_latency(&self, program: &Program) -> Time {
        Qidg::new(program, &self.config.tech).critical_path_delay()
    }

    /// Produces one row of the paper's Table 2 for `program`.
    ///
    /// # Errors
    ///
    /// Propagates [`MapError`] from either mapper.
    pub fn compare(&self, name: &str, program: &Program) -> Result<ComparisonRow, MapError> {
        let baseline = self.ideal_latency(program);
        let quale = self.map_quale(program)?.latency();
        let qspr = self.map(program)?.latency;
        Ok(ComparisonRow::new(name, baseline, quale, qspr))
    }

    /// Produces one row of the paper's Table 1 for `program`: MVFB with
    /// the configured `m` seeds versus Monte Carlo given exactly the same
    /// number of placement runs (the paper's equal-effort design).
    ///
    /// # Errors
    ///
    /// Propagates [`MapError`] from either placer.
    pub fn compare_placers(
        &self,
        name: &str,
        program: &Program,
    ) -> Result<PlacerComparisonRow, MapError> {
        let mapper = self.mapper(MapperPolicy::qspr(&self.config.tech));
        let mvfb = MvfbPlacer::new(self.config.mvfb).place(&mapper, program)?;
        let mc = MonteCarloPlacer::new(mvfb.runs, self.config.mvfb.rng_seed ^ 0x4D43)
            .place(&mapper, program)?;
        Ok(PlacerComparisonRow {
            circuit: name.to_owned(),
            m: self.config.mvfb.seeds,
            runs: mvfb.runs,
            mvfb_latency: mvfb.latency,
            mvfb_cpu: mvfb.cpu,
            mc_latency: mc.latency,
            mc_cpu: mc.cpu,
        })
    }

    fn mapper(&self, policy: MapperPolicy) -> Mapper<'a> {
        Mapper::new(self.fabric, self.config.tech, policy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FIG3: &str = "\
QUBIT q0,0
QUBIT q1,0
QUBIT q2,0
QUBIT q3
QUBIT q4,0
H q0
H q1
H q2
H q4
C-X q3,q2
C-Z q4,q2
C-Y q2,q1
C-Y q3,q1
C-X q4,q1
C-Z q2,q0
C-Y q3,q0
C-Z q4,q0
";

    fn setup() -> (Fabric, Program) {
        (Fabric::quale_45x85(), Program::parse(FIG3).unwrap())
    }

    #[test]
    fn table2_shape_holds_on_fig3() {
        let (fabric, program) = setup();
        let tool = QsprTool::new(&fabric, QsprConfig::fast());
        let row = tool.compare("[[5,1,3]]", &program).unwrap();
        assert!(row.baseline <= row.qspr, "baseline is a lower bound");
        assert!(row.qspr <= row.quale, "qspr must beat quale");
        assert!(row.improvement_pct() >= 0.0);
    }

    #[test]
    fn qspr_result_is_reproducible() {
        let (fabric, program) = setup();
        let tool = QsprTool::new(&fabric, QsprConfig::fast());
        let a = tool.map(&program).unwrap();
        let b = tool.map(&program).unwrap();
        assert_eq!(a.latency, b.latency);
        assert_eq!(a.runs, b.runs);
    }

    #[test]
    fn recorded_trace_matches_totals() {
        let (fabric, program) = setup();
        let mut config = QsprConfig::fast();
        config.record_trace = true;
        let tool = QsprTool::new(&fabric, config);
        let result = tool.map(&program).unwrap();
        let trace = result.forward_trace.as_ref().unwrap();
        assert_eq!(trace.move_count() as u64, result.outcome.totals().moves);
        assert_eq!(trace.turn_count() as u64, result.outcome.totals().turns);
    }

    #[test]
    fn placer_comparison_row_uses_equal_runs() {
        let (fabric, program) = setup();
        let tool = QsprTool::new(&fabric, QsprConfig::fast());
        let row = tool.compare_placers("[[5,1,3]]", &program).unwrap();
        assert!(row.runs >= 4);
        assert!(row.mvfb_latency > 0 && row.mc_latency > 0);
    }

    #[test]
    fn qpos_baseline_runs() {
        let (fabric, program) = setup();
        let tool = QsprTool::new(&fabric, QsprConfig::fast());
        let qpos = tool.map_qpos(&program).unwrap();
        assert!(qpos.latency() >= tool.ideal_latency(&program));
    }

    #[test]
    fn ideal_latency_matches_hand_computation() {
        let (fabric, program) = setup();
        let tool = QsprTool::new(&fabric, QsprConfig::fast());
        assert_eq!(tool.ideal_latency(&program), 610);
    }
}
