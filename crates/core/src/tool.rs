//! The legacy `QsprTool` facade, now a thin shim over [`Flow`].
//!
//! New code should use [`Flow`] directly — it owns its fabric (no
//! lifetime parameter), exposes every knob as a builder method, and
//! returns the unified [`crate::QsprError`]. The shim is kept for one
//! release so existing callers migrate on their own schedule; see the
//! migration table in the crate docs.

use std::time::Duration;

use qspr_fabric::{Fabric, TechParams, Time};
use qspr_place::{MvfbConfig, PassDirection};
use qspr_qasm::Program;
use qspr_sim::{MapError, MapperPolicy, MappingOutcome, Placement, Trace};

use crate::error::QsprError;
use crate::flow::{Flow, FlowPolicy};
use crate::report::{ComparisonRow, PlacerComparisonRow};

/// Configuration of the full QSPR flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QsprConfig {
    /// Technology parameters (defaults to the paper's §V.A values).
    pub tech: TechParams,
    /// MVFB placer parameters. The paper's headline results use `m = 100`
    /// seeds; [`QsprConfig::fast`] uses 4 for tests and quick runs.
    pub mvfb: MvfbConfig,
    /// Record the winning micro-command trace during mapping.
    pub record_trace: bool,
}

impl QsprConfig {
    /// The paper's experimental configuration: `m = 100`, patience 3.
    pub fn paper() -> QsprConfig {
        QsprConfig {
            tech: TechParams::date2012(),
            mvfb: MvfbConfig::new(100, 0xD57E_2012),
            record_trace: false,
        }
    }

    /// The paper's configuration with `m = 25` (the second column block of
    /// Table 1).
    pub fn paper_m25() -> QsprConfig {
        QsprConfig {
            mvfb: MvfbConfig::new(25, 0xD57E_2012),
            ..QsprConfig::paper()
        }
    }

    /// A light configuration (`m = 4`) for tests and examples.
    pub fn fast() -> QsprConfig {
        QsprConfig {
            mvfb: MvfbConfig::new(4, 0xD57E_2012),
            ..QsprConfig::paper()
        }
    }

    /// Same config with a different number of MVFB seeds (the paper's
    /// sensitivity parameter `m`).
    pub fn with_seeds(mut self, m: usize) -> QsprConfig {
        self.mvfb.seeds = m;
        self
    }

    /// The equivalent [`Flow`] on `fabric` — the forward-migration path.
    pub fn into_flow(self, fabric: impl Into<std::sync::Arc<Fabric>>) -> Flow {
        Flow::on(fabric)
            .tech(self.tech)
            .mvfb_config(self.mvfb)
            .record_trace(self.record_trace)
    }
}

impl Default for QsprConfig {
    /// Defaults to the paper's configuration.
    fn default() -> QsprConfig {
        QsprConfig::paper()
    }
}

/// Result of the full QSPR flow on one program.
#[derive(Debug, Clone, PartialEq)]
pub struct QsprResult {
    /// Best mapped execution latency (µs).
    pub latency: Time,
    /// Direction of the winning MVFB pass.
    pub direction: PassDirection,
    /// Placement the winning pass started from.
    pub initial_placement: Placement,
    /// Total MVFB placement runs (`m'`).
    pub runs: usize,
    /// Placer wall-clock time.
    pub cpu: Duration,
    /// Full outcome (stats, final placement) of the winning pass.
    pub outcome: MappingOutcome,
    /// Forward-executing micro-command trace, when
    /// [`QsprConfig::record_trace`] was set.
    pub forward_trace: Option<Trace>,
}

/// The QSPR mapper plus the paper's baselines, bound to one fabric.
///
/// Deprecated: this borrows its fabric and hardcodes the MVFB placer.
/// [`Flow`] owns the fabric (`Send + 'static`), takes any [`Placer`]
/// (`qspr_place::Placer`) engine, and reports unified errors. The full
/// call-by-call migration table lives in the [crate docs](crate).
///
/// [`Placer`]: qspr_place::Placer
#[deprecated(
    since = "0.1.0",
    note = "use `qspr::Flow`, which owns its fabric and takes pluggable placers"
)]
#[derive(Debug, Clone)]
pub struct QsprTool<'a> {
    fabric: &'a Fabric,
    config: QsprConfig,
    flow: Flow,
}

/// Shim-internal: `Flow` can only fail with a `MapError` here (programs
/// and fabrics are already constructed), so unwrap the legacy type.
fn legacy(e: QsprError) -> MapError {
    match e {
        QsprError::Map(e) => e,
        other => unreachable!("flow on in-memory inputs only maps: {other}"),
    }
}

#[allow(deprecated)]
impl<'a> QsprTool<'a> {
    /// Creates the tool for `fabric`.
    ///
    /// Note: the shim clones `fabric` once into the owned [`Flow`] it
    /// wraps; hot loops constructing a tool per iteration should build
    /// one `Flow` (or one tool) up front instead.
    pub fn new(fabric: &'a Fabric, config: QsprConfig) -> QsprTool<'a> {
        QsprTool {
            fabric,
            config,
            flow: config.into_flow(fabric.clone()),
        }
    }

    /// The fabric experiments run on.
    pub fn fabric(&self) -> &Fabric {
        self.fabric
    }

    /// The active configuration.
    pub fn config(&self) -> &QsprConfig {
        &self.config
    }

    /// Runs the full QSPR flow (priority scheduling + MVFB placement +
    /// turn-aware multiplexed routing) on `program`.
    ///
    /// # Errors
    ///
    /// Propagates [`MapError`] from the underlying mapper (stalls on
    /// degenerate fabrics, placement mismatches).
    pub fn map(&self, program: &Program) -> Result<QsprResult, MapError> {
        let result = self.flow.run(program).map_err(legacy)?;
        Ok(QsprResult {
            latency: result.latency,
            direction: result.direction,
            initial_placement: result.initial_placement,
            runs: result.runs,
            cpu: result.cpu,
            outcome: result.outcome,
            forward_trace: result.forward_trace,
        })
    }

    /// Maps `program` with an explicit policy and placement (the
    /// escape hatch for ablations and custom flows).
    ///
    /// # Errors
    ///
    /// Propagates [`MapError`] from the mapper.
    pub fn map_with(
        &self,
        program: &Program,
        policy: MapperPolicy,
        placement: &Placement,
    ) -> Result<MappingOutcome, MapError> {
        self.flow
            .map_with(program, policy, placement)
            .map_err(legacy)
    }

    /// The QUALE baseline: deterministic center placement, ALAP
    /// extraction, turn-blind negotiated routing, capacity-1 channels,
    /// and only the source qubit moving.
    ///
    /// # Errors
    ///
    /// Propagates [`MapError`] from the mapper.
    pub fn map_quale(&self, program: &Program) -> Result<MappingOutcome, MapError> {
        let result = self
            .flow
            .clone()
            .policy(FlowPolicy::Quale)
            .run(program)
            .map_err(legacy)?;
        Ok(result.outcome)
    }

    /// The QPOS baseline: center placement, ASAP + dependent-count
    /// priority, destination operand fixed, capacity-1 channels.
    ///
    /// # Errors
    ///
    /// Propagates [`MapError`] from the mapper.
    pub fn map_qpos(&self, program: &Program) -> Result<MappingOutcome, MapError> {
        let result = self
            .flow
            .clone()
            .policy(FlowPolicy::Qpos)
            .run(program)
            .map_err(legacy)?;
        Ok(result.outcome)
    }

    /// The paper's ideal baseline: execution latency on a fabric with
    /// `T_congestion = T_routing = 0`, i.e. the gate-delay critical path
    /// of the QIDG. A lower bound for any placed-and-routed result.
    pub fn ideal_latency(&self, program: &Program) -> Time {
        self.flow.ideal_latency(program)
    }

    /// Produces one row of the paper's Table 2 for `program`.
    ///
    /// # Errors
    ///
    /// Propagates [`MapError`] from either mapper.
    pub fn compare(&self, name: &str, program: &Program) -> Result<ComparisonRow, MapError> {
        self.flow.compare(name, program).map_err(legacy)
    }

    /// Produces one row of the paper's Table 1 for `program`: MVFB with
    /// the configured `m` seeds versus Monte Carlo given exactly the same
    /// number of placement runs (the paper's equal-effort design).
    ///
    /// # Errors
    ///
    /// Propagates [`MapError`] from either placer.
    pub fn compare_placers(
        &self,
        name: &str,
        program: &Program,
    ) -> Result<PlacerComparisonRow, MapError> {
        self.flow.compare_placers(name, program).map_err(legacy)
    }
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;

    const FIG3: &str = "\
QUBIT q0,0
QUBIT q1,0
QUBIT q2,0
QUBIT q3
QUBIT q4,0
H q0
H q1
H q2
H q4
C-X q3,q2
C-Z q4,q2
C-Y q2,q1
C-Y q3,q1
C-X q4,q1
C-Z q2,q0
C-Y q3,q0
C-Z q4,q0
";

    fn setup() -> (Fabric, Program) {
        (Fabric::quale_45x85(), Program::parse(FIG3).unwrap())
    }

    #[test]
    fn table2_shape_holds_on_fig3() {
        let (fabric, program) = setup();
        let tool = QsprTool::new(&fabric, QsprConfig::fast());
        let row = tool.compare("[[5,1,3]]", &program).unwrap();
        assert!(row.baseline <= row.qspr, "baseline is a lower bound");
        assert!(row.qspr <= row.quale, "qspr must beat quale");
        assert!(row.improvement_pct() >= 0.0);
    }

    #[test]
    fn shim_matches_flow_exactly() {
        // The deprecated facade must stay a pure delegation: identical
        // latencies, runs and placements to the Flow it wraps.
        let (fabric, program) = setup();
        let tool = QsprTool::new(&fabric, QsprConfig::fast());
        let flow = QsprConfig::fast().into_flow(fabric.clone());
        let old = tool.map(&program).unwrap();
        let new = flow.run(&program).unwrap();
        assert_eq!(old.latency, new.latency);
        assert_eq!(old.runs, new.runs);
        assert_eq!(old.direction, new.direction);
        assert_eq!(old.initial_placement, new.initial_placement);
        assert_eq!(
            tool.map_quale(&program).unwrap().latency(),
            flow.clone()
                .policy(FlowPolicy::Quale)
                .run(&program)
                .unwrap()
                .latency
        );
    }

    #[test]
    fn recorded_trace_matches_totals() {
        let (fabric, program) = setup();
        let mut config = QsprConfig::fast();
        config.record_trace = true;
        let tool = QsprTool::new(&fabric, config);
        let result = tool.map(&program).unwrap();
        let trace = result.forward_trace.as_ref().unwrap();
        assert_eq!(trace.move_count() as u64, result.outcome.totals().moves);
        assert_eq!(trace.turn_count() as u64, result.outcome.totals().turns);
    }

    #[test]
    fn placer_comparison_row_uses_equal_runs() {
        let (fabric, program) = setup();
        let tool = QsprTool::new(&fabric, QsprConfig::fast());
        let row = tool.compare_placers("[[5,1,3]]", &program).unwrap();
        assert!(row.runs >= 4);
        assert!(row.mvfb_latency > 0 && row.mc_latency > 0);
    }

    #[test]
    fn qpos_baseline_runs() {
        let (fabric, program) = setup();
        let tool = QsprTool::new(&fabric, QsprConfig::fast());
        let qpos = tool.map_qpos(&program).unwrap();
        assert!(qpos.latency() >= tool.ideal_latency(&program));
    }

    #[test]
    fn ideal_latency_matches_hand_computation() {
        let (fabric, program) = setup();
        let tool = QsprTool::new(&fabric, QsprConfig::fast());
        assert_eq!(tool.ideal_latency(&program), 610);
    }
}
