//! The workspace-wide error type: one enum for every way a QSPR flow
//! can fail, from reading a file to a stalled simulation.

use std::error::Error;
use std::fmt;
use std::io;

use qspr_fabric::FabricError;
use qspr_qasm::ParseError;
use qspr_sim::MapError;
use qspr_sta::StaError;

use crate::batch::BatchError;

/// Any failure of the QSPR flow.
///
/// Every layer's error converts into this enum (via `From` or the
/// [`QsprError::io`] constructor), so application code — the `qspr`
/// CLI included — propagates one type with `?` instead of stringly
/// plumbing.
///
/// # Examples
///
/// ```
/// use qspr::QsprError;
/// use qspr_qasm::Program;
///
/// fn parse(src: &str) -> Result<Program, QsprError> {
///     Ok(Program::parse(src)?)
/// }
///
/// let err = parse("FROB q\n").unwrap_err();
/// assert!(matches!(err, QsprError::Parse(_)));
/// assert!(err.to_string().contains("unknown gate"));
/// ```
#[derive(Debug)]
#[non_exhaustive]
pub enum QsprError {
    /// QASM source was rejected by the parser.
    Parse(ParseError),
    /// A fabric description was rejected.
    Fabric(FabricError),
    /// The mapper could not map a program.
    Map(MapError),
    /// A batch run failed on a named circuit.
    Batch(Box<BatchError>),
    /// Static timing analysis rejected its inputs.
    Sta(StaError),
    /// A file could not be read.
    Io {
        /// The path that failed.
        path: String,
        /// The underlying I/O error.
        source: io::Error,
    },
    /// Invalid usage or configuration (unknown flag, bad option value).
    Usage(String),
}

impl QsprError {
    /// An I/O failure attributed to `path`.
    pub fn io(path: impl Into<String>, source: io::Error) -> QsprError {
        QsprError::Io {
            path: path.into(),
            source,
        }
    }

    /// A usage/configuration error with a human-readable message.
    pub fn usage(message: impl Into<String>) -> QsprError {
        QsprError::Usage(message.into())
    }
}

impl fmt::Display for QsprError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QsprError::Parse(e) => write!(f, "{e}"),
            QsprError::Fabric(e) => write!(f, "invalid fabric: {e}"),
            QsprError::Map(e) => write!(f, "{e}"),
            QsprError::Batch(e) => write!(f, "{e}"),
            QsprError::Sta(e) => write!(f, "{e}"),
            QsprError::Io { path, source } => write!(f, "cannot read {path}: {source}"),
            QsprError::Usage(msg) => write!(f, "{msg}"),
        }
    }
}

impl Error for QsprError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            QsprError::Parse(e) => Some(e),
            QsprError::Fabric(e) => Some(e),
            QsprError::Map(e) => Some(e),
            QsprError::Batch(e) => Some(e),
            QsprError::Sta(e) => Some(e),
            QsprError::Io { source, .. } => Some(source),
            QsprError::Usage(_) => None,
        }
    }
}

impl From<ParseError> for QsprError {
    fn from(e: ParseError) -> QsprError {
        QsprError::Parse(e)
    }
}

impl From<FabricError> for QsprError {
    fn from(e: FabricError) -> QsprError {
        QsprError::Fabric(e)
    }
}

impl From<MapError> for QsprError {
    fn from(e: MapError) -> QsprError {
        QsprError::Map(e)
    }
}

impl From<BatchError> for QsprError {
    fn from(e: BatchError) -> QsprError {
        QsprError::Batch(Box::new(e))
    }
}

impl From<StaError> for QsprError {
    fn from(e: StaError) -> QsprError {
        QsprError::Sta(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_every_layer() {
        let parse = qspr_qasm::Program::parse("FROB q\n").unwrap_err();
        let e = QsprError::from(parse);
        assert!(matches!(e, QsprError::Parse(_)));
        assert!(e.source().is_some());

        let fabric = qspr_fabric::Fabric::from_ascii("").unwrap_err();
        let e = QsprError::from(fabric);
        assert!(e.to_string().starts_with("invalid fabric:"));

        let e = QsprError::from(MapError::Stalled { remaining: 2 });
        assert!(e.to_string().contains("2 instruction"));

        let e = QsprError::from(StaError::MissingTrace);
        assert!(e.to_string().contains("trace"));
        assert!(e.source().is_some());

        let e = QsprError::io("missing.qasm", io::Error::other("boom"));
        assert!(e.to_string().contains("missing.qasm"));

        let e = QsprError::usage("unknown flag --frob");
        assert_eq!(e.to_string(), "unknown flag --frob");
        assert!(e.source().is_none());
    }

    #[test]
    fn is_a_send_sync_std_error() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<QsprError>();
    }
}
