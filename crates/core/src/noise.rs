//! Post-mapping error analysis: the paper's motivation, quantified.
//!
//! The paper's introduction argues that minimizing mapped latency
//! minimizes the noise a circuit absorbs (and hence the QECC overhead
//! the synthesizer must add, closing the loop of Fig. 1). This module
//! provides the simple first-order noise model that turns a
//! [`MappingOutcome`] into a success probability, so the QSPR-vs-QUALE
//! latency gap can be read in fidelity terms.

use qspr_qasm::Program;
use qspr_sim::MappingOutcome;

/// First-order ion-trap noise model: exponential dephasing during the
/// circuit plus independent per-operation error probabilities.
///
/// Success probability of a mapped execution:
///
/// ```text
/// P = exp(−n·L / T2) · (1−e1)^#1q · (1−e2)^#2q · (1−em)^#moves · (1−et)^#turns
/// ```
///
/// where `n` is the qubit count and `L` the mapped latency — the term
/// the QSPR mapper minimizes.
///
/// # Examples
///
/// ```
/// use qspr::NoiseModel;
///
/// let model = NoiseModel::ion_trap_2012();
/// assert!(model.memory_fidelity(5, 634) > model.memory_fidelity(5, 832));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseModel {
    /// Dephasing (memory) time constant, µs per qubit.
    pub t2: f64,
    /// Error probability of a one-qubit gate.
    pub gate_error_1q: f64,
    /// Error probability of a two-qubit gate.
    pub gate_error_2q: f64,
    /// Error probability of one ballistic cell move.
    pub move_error: f64,
    /// Error probability of one junction turn.
    pub turn_error: f64,
}

impl NoiseModel {
    /// Plausible 2012-era trapped-ion parameters: T2 = 0.1s, 10⁻⁴
    /// one-qubit and 10⁻³ two-qubit gate errors, 10⁻⁵ per relocation.
    pub fn ion_trap_2012() -> NoiseModel {
        NoiseModel {
            t2: 100_000.0,
            gate_error_1q: 1e-4,
            gate_error_2q: 1e-3,
            move_error: 1e-5,
            turn_error: 1e-5,
        }
    }

    /// The collective memory fidelity of `qubits` idling for `latency`
    /// microseconds: `exp(−qubits·latency/T2)`.
    pub fn memory_fidelity(&self, qubits: usize, latency: u64) -> f64 {
        (-(qubits as f64) * latency as f64 / self.t2).exp()
    }

    /// Estimated success probability of a mapped execution.
    ///
    /// # Examples
    ///
    /// ```
    /// use qspr::{Flow, FlowPolicy, NoiseModel};
    /// use qspr_fabric::Fabric;
    /// use qspr_qasm::Program;
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let flow = Flow::on(Fabric::quale_45x85()).seeds(4);
    /// let program = Program::parse("QUBIT a,0\nQUBIT b,0\nC-X a,b\n")?;
    /// let qspr = flow.run(&program)?;
    /// let quale = flow.clone().policy(FlowPolicy::Quale).run(&program)?;
    /// let model = NoiseModel::ion_trap_2012();
    /// let p_qspr = model.success_probability(&program, &qspr.outcome);
    /// let p_quale = model.success_probability(&program, &quale.outcome);
    /// assert!(p_qspr >= p_quale, "lower latency means higher fidelity");
    /// # Ok(())
    /// # }
    /// ```
    pub fn success_probability(&self, program: &Program, outcome: &MappingOutcome) -> f64 {
        let memory = self.memory_fidelity(program.num_qubits(), outcome.latency());
        let gates_1q = program.one_qubit_gate_count() as f64;
        let gates_2q = program.two_qubit_gate_count() as f64;
        let totals = outcome.totals();
        memory
            * (1.0 - self.gate_error_1q).powf(gates_1q)
            * (1.0 - self.gate_error_2q).powf(gates_2q)
            * (1.0 - self.move_error).powf(totals.moves as f64)
            * (1.0 - self.turn_error).powf(totals.turns as f64)
    }
}

impl Default for NoiseModel {
    /// Defaults to [`NoiseModel::ion_trap_2012`].
    fn default() -> NoiseModel {
        NoiseModel::ion_trap_2012()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qspr_fabric::{Fabric, TechParams};
    use qspr_sim::{Mapper, MapperPolicy, Placement};

    #[test]
    fn memory_fidelity_decays_with_latency_and_qubits() {
        let m = NoiseModel::ion_trap_2012();
        assert!(m.memory_fidelity(5, 100) > m.memory_fidelity(5, 1000));
        assert!(m.memory_fidelity(5, 100) > m.memory_fidelity(10, 100));
        assert_eq!(m.memory_fidelity(5, 0), 1.0);
    }

    #[test]
    fn success_probability_is_a_probability() {
        let fabric = Fabric::quale_45x85();
        let tech = TechParams::date2012();
        let program = Program::parse("QUBIT a,0\nQUBIT b,0\nH a\nC-X a,b\n").unwrap();
        let placement = Placement::center(&fabric, 2);
        let outcome = Mapper::new(&fabric, tech, MapperPolicy::qspr(&tech))
            .map(&program, &placement)
            .unwrap();
        let p = NoiseModel::ion_trap_2012().success_probability(&program, &outcome);
        assert!(p > 0.0 && p <= 1.0);
    }

    #[test]
    fn qspr_beats_quale_in_fidelity_on_the_suite() {
        let fabric = Fabric::quale_45x85();
        let tech = TechParams::date2012();
        let model = NoiseModel::ion_trap_2012();
        for bench in qspr_qecc::codes::benchmark_suite().into_iter().take(3) {
            let placement = Placement::center(&fabric, bench.program.num_qubits());
            let qspr = Mapper::new(&fabric, tech, MapperPolicy::qspr(&tech))
                .map(&bench.program, &placement)
                .unwrap();
            let quale = Mapper::new(&fabric, tech, MapperPolicy::quale(&tech))
                .map(&bench.program, &placement)
                .unwrap();
            let p_qspr = model.success_probability(&bench.program, &qspr);
            let p_quale = model.success_probability(&bench.program, &quale);
            assert!(p_qspr >= p_quale, "{}: {p_qspr} vs {p_quale}", bench.name);
        }
    }
}
