//! The owned, composable QSPR flow — the service-grade front door of
//! the crate.
//!
//! [`Flow`] owns its fabric behind an [`Arc`], so it is `Send +
//! 'static`: it can be cloned into worker threads, stored in a service
//! state, or moved into async tasks without lifetime plumbing. Every
//! knob of the paper's flow is a builder method, and the placement
//! engine is a pluggable [`Placer`] trait object.
//!
//! # Examples
//!
//! ```
//! use qspr::{Flow, FlowPolicy};
//! use qspr_fabric::Fabric;
//! use qspr_qasm::Program;
//!
//! # fn main() -> Result<(), qspr::QsprError> {
//! let program = Program::parse("QUBIT a\nQUBIT b\nH a\nC-X a,b\n")?;
//! let flow = Flow::on(Fabric::quale_45x85()).seeds(4);
//!
//! let result = flow.run(&program)?;
//! assert!(result.latency >= flow.ideal_latency(&program));
//!
//! // The same flow, rebound to a baseline policy, is one line away.
//! let quale = flow.clone().policy(FlowPolicy::Quale).run(&program)?;
//! assert!(quale.latency >= result.latency);
//! # Ok(())
//! # }
//! ```

use std::fmt;
use std::str::FromStr;
use std::sync::Arc;
use std::time::{Duration, Instant};

use qspr_fabric::{Fabric, TechParams, Time};
use qspr_place::{MonteCarloPlacer, MvfbConfig, MvfbPlacer, PassDirection, Placer, PlacerSolution};
use qspr_qasm::Program;
use qspr_route::{RouterFactory, RouterKind, RoutingStats, SeededNegotiated};
use qspr_sched::Qidg;
use qspr_sim::{Mapper, MapperPolicy, MappingOutcome, Placement, Trace};
use qspr_sta::{TimingAnalysis, TimingReport};

use crate::error::QsprError;
use crate::json::{JsonArray, JsonObject, ToJson};
use crate::report::{ComparisonRow, PlacerComparisonRow};

/// Which mapper policy a [`Flow`] runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum FlowPolicy {
    /// The paper's full tool: priority scheduling, placer-driven
    /// placement, turn-aware multiplexed routing.
    Qspr,
    /// The QUALE baseline: center placement, ALAP extraction,
    /// turn-blind routing, capacity-1 channels, single moving qubit.
    Quale,
    /// The QPOS baseline: center placement, ASAP + dependent-count
    /// priority, destination operand fixed, capacity-1 channels.
    Qpos,
}

impl FlowPolicy {
    /// Stable lowercase name (`"qspr"` / `"quale"` / `"qpos"`).
    pub fn as_str(self) -> &'static str {
        match self {
            FlowPolicy::Qspr => "qspr",
            FlowPolicy::Quale => "quale",
            FlowPolicy::Qpos => "qpos",
        }
    }

    fn mapper_policy(self, tech: &TechParams) -> MapperPolicy {
        match self {
            FlowPolicy::Qspr => MapperPolicy::qspr(tech),
            FlowPolicy::Quale => MapperPolicy::quale(tech),
            FlowPolicy::Qpos => MapperPolicy::qpos(tech),
        }
    }
}

impl fmt::Display for FlowPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for FlowPolicy {
    type Err = QsprError;

    fn from_str(s: &str) -> Result<FlowPolicy, QsprError> {
        match s {
            "qspr" => Ok(FlowPolicy::Qspr),
            "quale" => Ok(FlowPolicy::Quale),
            "qpos" => Ok(FlowPolicy::Qpos),
            other => Err(QsprError::usage(format!(
                "unknown policy {other:?} (expected qspr, quale or qpos)"
            ))),
        }
    }
}

/// The full QSPR flow as an owned, reusable value.
///
/// Built with [`Flow::on`] and configured through chained builder
/// methods; [`Flow::run`] executes QIDG scheduling, placement (through
/// the configured [`Placer`]) and turn-aware routing on one program.
/// Because the fabric lives behind an [`Arc`], a `Flow` is `Send +
/// 'static` and cheap to clone — the foundation for batch and service
/// front ends.
///
/// See the crate docs for an example and the `QsprTool` migration
/// table.
#[derive(Clone)]
pub struct Flow {
    fabric: Arc<Fabric>,
    tech: TechParams,
    policy: FlowPolicy,
    mvfb: MvfbConfig,
    placer: Option<Arc<dyn Placer + Send + Sync>>,
    router: Arc<dyn RouterFactory + Send + Sync>,
    record_trace: bool,
    sta_feedback: bool,
    // Internal: installed by the feedback re-run, never set directly by
    // callers (so it has no fingerprint axis of its own).
    order_boost: Option<Arc<Vec<Time>>>,
    jobs: usize,
}

impl Flow {
    /// Starts a flow on `fabric` with the paper's defaults: DATE 2012
    /// technology parameters, the full QSPR policy, and the built-in
    /// MVFB placer with `m = 100` seeds.
    ///
    /// Accepts an owned [`Fabric`] or an existing `Arc<Fabric>` (to
    /// share one fabric across many flows without copying it).
    pub fn on(fabric: impl Into<Arc<Fabric>>) -> Flow {
        Flow {
            fabric: fabric.into(),
            tech: TechParams::date2012(),
            policy: FlowPolicy::Qspr,
            mvfb: MvfbConfig::new(100, 0xD57E_2012),
            placer: None,
            router: Arc::new(RouterKind::Greedy),
            record_trace: false,
            sta_feedback: false,
            order_boost: None,
            jobs: 1,
        }
    }

    /// Sets the technology parameters.
    pub fn tech(mut self, tech: TechParams) -> Flow {
        self.tech = tech;
        self
    }

    /// Sets the mapper policy (QSPR or one of the paper's baselines).
    pub fn policy(mut self, policy: FlowPolicy) -> Flow {
        self.policy = policy;
        self
    }

    /// Installs a custom placement engine, replacing the built-in MVFB
    /// placer. Only consulted under [`FlowPolicy::Qspr`]; the baselines
    /// specify their own (center) placement.
    pub fn placer(mut self, placer: impl Placer + Send + Sync + 'static) -> Flow {
        self.placer = Some(Arc::new(placer));
        self
    }

    /// Selects the batch-routing engine: a [`RouterKind`] for the
    /// built-in greedy/negotiated engines, or any custom
    /// [`RouterFactory`]. Applies to every policy this flow runs
    /// (including the QUALE/QPOS baselines of [`Flow::compare`]).
    pub fn router(mut self, router: impl RouterFactory + Send + Sync + 'static) -> Flow {
        self.router = Arc::new(router);
        self
    }

    /// Sets the MVFB seed count `m` for the built-in placer (ignored
    /// once a custom [`Flow::placer`] is installed). Also the `m`
    /// reported by [`Flow::compare_placers`].
    pub fn seeds(mut self, m: usize) -> Flow {
        self.mvfb.seeds = m;
        self
    }

    /// Replaces the whole MVFB configuration of the built-in placer.
    pub fn mvfb_config(mut self, config: MvfbConfig) -> Flow {
        self.mvfb = config;
        self
    }

    /// Enables or disables recording of the winning micro-command trace
    /// (off by default; placers run thousands of mappings and only need
    /// latencies).
    pub fn record_trace(mut self, record: bool) -> Flow {
        self.record_trace = record;
        self
    }

    /// Enables slack-aware feedback (off by default): [`Flow::run`]
    /// first maps normally (the *pilot*, with trace recording forced
    /// on), performs static timing analysis on the winning pass, then
    /// remaps with the analysis folded back in — critical-path segments
    /// pre-priced into a seeded negotiated router and low-slack
    /// instructions boosted in the scheduler's priority order. The
    /// faster of the two runs is returned, so enabling feedback never
    /// increases latency. The re-run always negotiates (its router
    /// reports as `"negotiated+sta"`), so the mode is meant to pair
    /// with [`RouterKind::Negotiated`] pilots — the CLI enforces that
    /// pairing.
    pub fn sta_feedback(mut self, enabled: bool) -> Flow {
        self.sta_feedback = enabled;
        self
    }

    /// Whether slack-aware feedback is enabled.
    pub fn sta_feedback_enabled(&self) -> bool {
        self.sta_feedback
    }

    /// Grants the flow up to `jobs` worker threads (clamped to at
    /// least 1; default 1): the routing engine may parallelize inside
    /// an epoch (the mapper additionally clamps its grant to the
    /// host's cores — oversubscription only adds speculation
    /// overhead), and `--router race` runs its engine legs
    /// concurrently.
    /// Purely a performance hint — results are byte-identical at every
    /// value, so `jobs` is deliberately *not* a [`Flow::fingerprint`]
    /// axis and cached answers remain valid across thread counts.
    pub fn jobs(mut self, jobs: usize) -> Flow {
        self.jobs = jobs.max(1);
        self
    }

    /// The configured worker-thread budget.
    pub fn job_count(&self) -> usize {
        self.jobs
    }

    /// The fabric this flow maps onto.
    pub fn fabric(&self) -> &Fabric {
        &self.fabric
    }

    /// The shared handle to the fabric (clone it to build sibling flows
    /// without copying the fabric).
    pub fn fabric_arc(&self) -> &Arc<Fabric> {
        &self.fabric
    }

    /// The technology parameters in use.
    pub fn tech_params(&self) -> &TechParams {
        &self.tech
    }

    /// The configured MVFB seed count `m`.
    pub fn seed_count(&self) -> usize {
        self.mvfb.seeds
    }

    /// The name of the active placement engine.
    pub fn placer_name(&self) -> &str {
        match &self.placer {
            Some(p) => p.name(),
            None => "mvfb",
        }
    }

    /// The name of the active routing engine.
    pub fn router_name(&self) -> &str {
        self.router.name()
    }

    fn mapper(&self, policy: MapperPolicy) -> Mapper<'_> {
        let mut mapper = Mapper::new(&self.fabric, self.tech, policy)
            .router(Arc::clone(&self.router))
            .jobs(self.jobs);
        if let Some(boost) = &self.order_boost {
            mapper = mapper.order_boost(boost.as_ref().clone());
        }
        mapper
    }

    /// A canonical fingerprint of *this configuration applied to
    /// `program_text`*: every input that determines a [`Flow::run`]
    /// result — fabric (dimensions plus a content hash of its ASCII
    /// rendering), technology parameters, policy, placer and router
    /// names, MVFB seed count and RNG seed, trace recording and the
    /// slack-feedback mode — followed by the program text verbatim.
    ///
    /// Because the whole flow is seed-determined, equal fingerprints
    /// imply byte-identical [`FlowSummary`] JSON; the `qspr serve`
    /// mapping cache uses the fingerprint as its key. Custom placers
    /// and routers are identified by [`Placer::name`] /
    /// `RouterFactory::name` only, so two *different* engines sharing a
    /// name would collide — give plugged-in engines distinct names.
    ///
    /// # Examples
    ///
    /// ```
    /// use qspr::Flow;
    /// use qspr_fabric::Fabric;
    ///
    /// let flow = Flow::on(Fabric::quale_45x85());
    /// let a = flow.fingerprint("QUBIT a\nH a\n");
    /// assert_eq!(a, flow.fingerprint("QUBIT a\nH a\n"));
    /// assert_ne!(a, flow.fingerprint("QUBIT b\nH b\n"));
    /// assert_ne!(a, flow.clone().seeds(4).fingerprint("QUBIT a\nH a\n"));
    /// ```
    pub fn fingerprint(&self, program_text: &str) -> String {
        let fabric_hash = fnv1a_64(self.fabric.to_string().as_bytes());
        // The ASCII rendering carries geometry but not per-resource
        // capacity overrides, so spec-declared capacities get their own
        // digest. Uniform fabrics contribute nothing, keeping their
        // fingerprints byte-identical to the pre-spec format.
        let caps_digest = if self.fabric.topology().has_capacity_overrides() {
            let mut bytes = Vec::new();
            for cap in self
                .fabric
                .topology()
                .segment_caps()
                .iter()
                .chain(self.fabric.topology().junction_caps())
            {
                match cap {
                    Some(v) => bytes.extend_from_slice(&[1, *v]),
                    None => bytes.push(0),
                }
            }
            format!(":caps{:016x}", fnv1a_64(&bytes))
        } else {
            String::new()
        };
        // Feedback mode changes the result, so it gets its own axis;
        // plain flows keep the pre-sta fingerprint bytes.
        let feedback = if self.sta_feedback { "|fb=1" } else { "" };
        format!(
            "qspr-fp-v1|fabric={}x{}:{:016x}{}|tech={},{},{},{},{},{}|policy={}|placer={}|router={}|m={},{},{}|rng={:#x}|trace={}{}|prog={}|{}",
            self.fabric.rows(),
            self.fabric.cols(),
            fabric_hash,
            caps_digest,
            self.tech.t_move,
            self.tech.t_turn,
            self.tech.t_gate_1q,
            self.tech.t_gate_2q,
            self.tech.channel_capacity,
            self.tech.junction_capacity,
            self.policy,
            self.placer_name(),
            self.router_name(),
            self.mvfb.seeds,
            self.mvfb.patience,
            self.mvfb.max_passes_per_seed,
            self.mvfb.rng_seed,
            self.record_trace,
            feedback,
            program_text.len(),
            program_text,
        )
    }

    /// Runs the flow on `program`.
    ///
    /// Under [`FlowPolicy::Qspr`] the configured placer searches for
    /// the best initial placement; the baselines map once from the
    /// deterministic center placement.
    ///
    /// # Errors
    ///
    /// Returns [`QsprError::Map`] when the program cannot be mapped
    /// (stalls on degenerate fabrics, placement mismatches).
    pub fn run(&self, program: &Program) -> Result<FlowResult, QsprError> {
        if self.router_name() == "race" {
            return self.run_race(program);
        }
        if self.sta_feedback {
            return self.run_with_feedback(program);
        }
        let run_started = Instant::now();
        let mapper = self.mapper(self.policy.mapper_policy(&self.tech));
        // Baselines map exactly once; keep that outcome rather than
        // recomputing it below.
        let (solution, baseline_outcome) = match self.policy {
            FlowPolicy::Qspr => {
                let default_placer;
                let placer: &dyn Placer = match &self.placer {
                    Some(p) => p,
                    None => {
                        default_placer = MvfbPlacer::new(self.mvfb);
                        &default_placer
                    }
                };
                (placer.place(&mapper, program)?, None)
            }
            FlowPolicy::Quale | FlowPolicy::Qpos => {
                let started = Instant::now();
                let placement = Placement::center(&self.fabric, program.num_qubits());
                // Baselines map exactly once, tracing inline if asked.
                let outcome = mapper
                    .clone()
                    .record_trace(self.record_trace)
                    .map(program, &placement)?;
                let solution = PlacerSolution {
                    latency: outcome.latency(),
                    direction: PassDirection::Forward,
                    initial_placement: placement,
                    runs: 1,
                    cpu: started.elapsed(),
                };
                (solution, Some(outcome))
            }
        };
        let (outcome, forward_trace) = match baseline_outcome {
            Some(outcome) => {
                let trace = outcome.trace().cloned();
                (outcome, trace)
            }
            None if self.record_trace => {
                let (outcome, trace) = solution.replay(&mapper, program)?;
                (outcome, Some(trace))
            }
            None => {
                let prog = match solution.direction {
                    PassDirection::Forward => program.clone(),
                    PassDirection::Backward => program.reversed(),
                };
                (mapper.map(&prog, &solution.initial_placement)?, None)
            }
        };
        // The re-mapped outcome is ground truth. A conforming placer's
        // reported latency matches it exactly; a misreporting placer is
        // reconciled here rather than poisoning downstream reports.
        let latency = outcome.latency();
        Ok(FlowResult {
            policy: self.policy,
            fabric: self.fabric_summary(),
            // Baselines bypass the placer for their fixed center
            // placement; report what actually ran.
            placer: match self.policy {
                FlowPolicy::Qspr => self.placer_name().to_owned(),
                FlowPolicy::Quale | FlowPolicy::Qpos => "center".to_owned(),
            },
            router: self.router_name().to_owned(),
            latency,
            direction: solution.direction,
            initial_placement: solution.initial_placement,
            runs: solution.runs,
            cpu: solution.cpu,
            wall: run_started.elapsed(),
            outcome,
            forward_trace,
        })
    }

    /// The speculative racing driver behind `--router race`
    /// ([`qspr_route::RouterKind::Race`]): run the greedy and
    /// negotiated engines on the whole flow — plus the slack-feedback
    /// pilot when [`Flow::sta_feedback`] is enabled — and keep the leg
    /// with the lowest latency, breaking ties toward the earlier leg in
    /// the fixed `[greedy, negotiated, negotiated+sta]` order. Every
    /// leg is seed-deterministic and the winner is chosen by a pure
    /// config-order rule, so the race result is byte-identical whether
    /// the legs run sequentially (`jobs = 1`) or concurrently.
    fn run_race(&self, program: &Program) -> Result<FlowResult, QsprError> {
        let run_started = Instant::now();
        let _race = qspr_obs::span("race");
        let mut legs: Vec<Flow> = Vec::new();
        let mut base = self.clone();
        base.sta_feedback = false;
        legs.push(base.clone().router(RouterKind::Greedy));
        legs.push(base.clone().router(RouterKind::Negotiated));
        if self.sta_feedback {
            legs.push(base.router(RouterKind::Negotiated).sta_feedback(true));
        }
        let results: Vec<Result<FlowResult, QsprError>> = if self.jobs > 1 {
            let relay = qspr_obs::Relay::capture();
            std::thread::scope(|scope| {
                let handles: Vec<_> = legs
                    .iter()
                    .map(|leg| {
                        let relay = relay.clone();
                        scope.spawn(move || {
                            let _sink = relay.install();
                            let _leg = qspr_obs::span("race_leg");
                            leg.run(program)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("race leg panicked"))
                    .collect()
            })
        } else {
            legs.iter()
                .map(|leg| {
                    let _leg = qspr_obs::span("race_leg");
                    leg.run(program)
                })
                .collect()
        };
        // Every leg always runs to completion; the earliest error in
        // leg order wins error reporting, the lowest latency (earliest
        // leg on ties) wins the race.
        let mut best: Option<FlowResult> = None;
        for result in results {
            let result = result?;
            let better = match &best {
                Some(b) => result.latency < b.latency,
                None => true,
            };
            if better {
                best = Some(result);
            }
        }
        let mut best = best.expect("race always has at least two legs");
        // The whole driver is the wall-clock cost of the answer.
        best.wall = run_started.elapsed();
        Ok(best)
    }

    /// The best-of-two feedback driver behind [`Flow::sta_feedback`]:
    /// pilot run (trace forced on) → timing analysis → re-run with a
    /// seeded negotiated router and a criticality-boosted issue order →
    /// keep whichever run finished the circuit sooner. Both halves are
    /// seed-deterministic, so the whole composition is too.
    fn run_with_feedback(&self, program: &Program) -> Result<FlowResult, QsprError> {
        let run_started = Instant::now();
        let mut pilot_flow = self.clone();
        pilot_flow.sta_feedback = false;
        pilot_flow.record_trace = true;
        let mut pilot = pilot_flow.run(program)?;
        let report = pilot_flow.timing_report(program, &pilot)?;
        // Cap the per-segment seed so a long pilot cannot price a
        // segment beyond what a few epochs of real negotiation would.
        let seed: Vec<u32> = report.segment_seed().iter().map(|&c| c.min(8)).collect();
        // Criticality indexes the analyzed (pass-direction) program;
        // flip it for backward pilots so it lines up with `program`.
        let mut boost = report.criticality().to_vec();
        if pilot.direction == PassDirection::Backward {
            boost.reverse();
        }
        let mut feedback_flow = self.clone();
        feedback_flow.sta_feedback = false;
        feedback_flow.router = Arc::new(SeededNegotiated::new("negotiated+sta", seed));
        feedback_flow.order_boost = Some(Arc::new(boost));
        let mut feedback = feedback_flow.run(program)?;
        if feedback.latency < pilot.latency {
            // The whole driver (pilot + analysis + re-run) is the
            // wall-clock cost of the answer.
            feedback.wall = run_started.elapsed();
            return Ok(feedback);
        }
        // The pilot's forced trace is an implementation detail; hand it
        // back only when the caller asked for one.
        if !self.record_trace {
            pilot.forward_trace = None;
        }
        pilot.wall = run_started.elapsed();
        Ok(pilot)
    }

    /// Static timing analysis (`qspr-sta`) of a finished [`Flow::run`].
    ///
    /// `result` must carry a recorded trace (run the flow with
    /// [`Flow::record_trace`] enabled). When the winning pass ran
    /// backward, the analysis is performed on the reversed program —
    /// the one the recorded outcome actually executed — so instruction
    /// ids in the report index that pass.
    ///
    /// # Errors
    ///
    /// Returns [`QsprError::Sta`] when `result` has no trace or does
    /// not match `program`.
    ///
    /// # Examples
    ///
    /// ```
    /// use qspr::Flow;
    /// use qspr_fabric::Fabric;
    /// use qspr_qasm::Program;
    ///
    /// # fn main() -> Result<(), qspr::QsprError> {
    /// let program = Program::parse("QUBIT a\nQUBIT b\nH a\nC-X a,b\n")?;
    /// let flow = Flow::on(Fabric::quale_45x85()).seeds(4).record_trace(true);
    /// let result = flow.run(&program)?;
    /// let report = flow.timing_report(&program, &result)?;
    /// assert_eq!(report.makespan(), result.latency);
    /// assert_eq!(report.min_slack(), Some(0));
    /// # Ok(())
    /// # }
    /// ```
    pub fn timing_report(
        &self,
        program: &Program,
        result: &FlowResult,
    ) -> Result<TimingReport, QsprError> {
        let reversed;
        let analyzed = match result.direction {
            PassDirection::Forward => program,
            PassDirection::Backward => {
                reversed = program.reversed();
                &reversed
            }
        };
        Ok(TimingAnalysis::new(&self.fabric, self.tech).analyze(analyzed, &result.outcome)?)
    }

    /// Maps `program` with an explicit policy and placement (the escape
    /// hatch for ablations and custom flows).
    ///
    /// # Errors
    ///
    /// Returns [`QsprError::Map`] on mapper failures.
    pub fn map_with(
        &self,
        program: &Program,
        policy: MapperPolicy,
        placement: &Placement,
    ) -> Result<MappingOutcome, QsprError> {
        Ok(self.mapper(policy).map(program, placement)?)
    }

    /// Provenance summary of the fabric, when the fabric was built by a
    /// [`qspr_fabric::FabricSpec`] (programmatic constructors carry no
    /// provenance, and their reports stay byte-identical).
    fn fabric_summary(&self) -> Option<FabricSummary> {
        self.fabric.info().map(|info| FabricSummary {
            name: info.name.clone(),
            family: info.family.clone(),
            regions: info.regions,
            capacity_histogram: self.fabric.topology().capacity_histogram(),
        })
    }

    /// The paper's ideal baseline: execution latency on a fabric with
    /// `T_congestion = T_routing = 0`, i.e. the gate-delay critical path
    /// of the QIDG. A lower bound for any placed-and-routed result.
    pub fn ideal_latency(&self, program: &Program) -> Time {
        Qidg::new(program, &self.tech).critical_path_delay()
    }

    /// Produces one row of the paper's Table 2 for `program`: the ideal
    /// lower bound, the QUALE baseline, and this flow's configured
    /// policy/placer.
    ///
    /// # Errors
    ///
    /// Returns [`QsprError::Map`] when either mapping fails.
    pub fn compare(&self, name: &str, program: &Program) -> Result<ComparisonRow, QsprError> {
        let baseline = self.ideal_latency(program);
        let placement = Placement::center(&self.fabric, program.num_qubits());
        let quale = self
            .map_with(program, MapperPolicy::quale(&self.tech), &placement)?
            .latency();
        let qspr = self.run(program)?.latency;
        Ok(ComparisonRow::new(name, baseline, quale, qspr))
    }

    /// Produces one row of the paper's Table 1 for `program`: MVFB with
    /// the configured `m` seeds versus Monte Carlo given exactly the
    /// same number of placement runs (the paper's equal-effort design).
    /// Both engines run through the [`Placer`] trait seam.
    ///
    /// # Errors
    ///
    /// Returns [`QsprError::Map`] when either placer fails.
    pub fn compare_placers(
        &self,
        name: &str,
        program: &Program,
    ) -> Result<PlacerComparisonRow, QsprError> {
        let mapper = self.mapper(MapperPolicy::qspr(&self.tech));
        let mvfb_engine = MvfbPlacer::new(self.mvfb);
        let mvfb = (&mvfb_engine as &dyn Placer).place(&mapper, program)?;
        let mc_engine = MonteCarloPlacer::new(mvfb.runs, self.mvfb.rng_seed ^ 0x4D43);
        let mc = (&mc_engine as &dyn Placer).place(&mapper, program)?;
        Ok(PlacerComparisonRow {
            circuit: name.to_owned(),
            m: self.mvfb.seeds,
            runs: mvfb.runs,
            mvfb_latency: mvfb.latency,
            mvfb_cpu: mvfb.cpu,
            mc_latency: mc.latency,
            mc_cpu: mc.cpu,
        })
    }
}

/// FNV-1a 64-bit: the classic tiny non-cryptographic hash, used to
/// condense the fabric's ASCII rendering inside [`Flow::fingerprint`].
fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

impl fmt::Debug for Flow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Flow")
            .field(
                "fabric",
                &format_args!("{}x{}", self.fabric.rows(), self.fabric.cols()),
            )
            .field("policy", &self.policy)
            .field("placer", &self.placer_name())
            .field("router", &self.router_name())
            .field("mvfb", &self.mvfb)
            .field("record_trace", &self.record_trace)
            .field("sta_feedback", &self.sta_feedback)
            .finish()
    }
}

/// Result of one [`Flow::run`].
#[derive(Debug, Clone)]
pub struct FlowResult {
    /// The policy that produced this result.
    pub policy: FlowPolicy,
    /// Provenance of the fabric, when it was built from a
    /// [`qspr_fabric::FabricSpec`] document.
    pub fabric: Option<FabricSummary>,
    /// Name of the placement engine used (`"mvfb"` unless swapped).
    pub placer: String,
    /// Name of the routing engine used (`"greedy"` unless swapped).
    pub router: String,
    /// Best mapped execution latency (µs).
    pub latency: Time,
    /// Direction of the winning placement pass.
    pub direction: PassDirection,
    /// Placement the winning pass started from.
    pub initial_placement: Placement,
    /// Total placement runs executed (`m'` for MVFB, 1 for baselines).
    pub runs: usize,
    /// Placement wall-clock time.
    pub cpu: Duration,
    /// Total wall-clock time of the whole run (placement search plus
    /// the final map/replay; for feedback flows, the full best-of-two
    /// driver).
    pub wall: Duration,
    /// Full outcome (stats, final placement) of the winning pass.
    pub outcome: MappingOutcome,
    /// Forward-executing micro-command trace, when
    /// [`Flow::record_trace`] was set.
    pub forward_trace: Option<Trace>,
}

impl FlowResult {
    /// Condenses the result into the flat, JSON-serializable
    /// [`FlowSummary`].
    pub fn summary(&self) -> FlowSummary {
        let totals = self.outcome.totals();
        FlowSummary {
            policy: self.policy,
            fabric: self.fabric.clone(),
            placer: self.placer.clone(),
            router: self.router.clone(),
            latency: self.latency,
            direction: self.direction,
            runs: self.runs,
            timing: FlowTiming {
                cpu_ms: self.cpu.as_millis() as u64,
                wall_us: self.wall.as_micros() as u64,
            },
            moves: totals.moves,
            turns: totals.turns,
            congestion_wait: totals.congestion_wait,
            routing: self.outcome.routing_stats(),
            trace_commands: self.forward_trace.as_ref().map(|t| t.len()),
        }
    }
}

/// The flat summary of a [`FlowResult`], made for reports and JSON.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlowSummary {
    /// The policy that produced this result.
    pub policy: FlowPolicy,
    /// Name of the placement engine used.
    pub placer: String,
    /// Name of the routing engine used.
    pub router: String,
    /// Best mapped execution latency (µs).
    pub latency: Time,
    /// Direction of the winning placement pass.
    pub direction: PassDirection,
    /// Total placement runs executed.
    pub runs: usize,
    /// Wall-clock timing (the summary's only nondeterministic fields,
    /// grouped so oracles can strip one key).
    pub timing: FlowTiming,
    /// Total qubit moves in the winning mapping.
    pub moves: u64,
    /// Total junction turns in the winning mapping.
    pub turns: u64,
    /// Total congestion wait (µs) across instructions.
    pub congestion_wait: Time,
    /// Routing-engine congestion stats of the winning mapping.
    pub routing: RoutingStats,
    /// Provenance of the fabric, when it was built from a
    /// [`qspr_fabric::FabricSpec`] document.
    pub fabric: Option<FabricSummary>,
    /// Command count of the recorded trace, when one was recorded.
    pub trace_commands: Option<usize>,
}

/// Wall-clock timing of one flow run. The only nondeterministic fields
/// of a [`FlowSummary`], grouped under the single `"timing"` JSON key
/// so byte-exact oracle comparisons (loadgen, cache identity tests)
/// strip one block instead of patching fields one by one.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlowTiming {
    /// Placement wall-clock time, whole milliseconds.
    pub cpu_ms: u64,
    /// Total run wall time in microseconds (placement search plus the
    /// final map/replay).
    pub wall_us: u64,
}

impl ToJson for FlowTiming {
    /// `{"cpu_ms":n,"wall_us":n}`.
    fn to_json(&self) -> String {
        JsonObject::new()
            .number("cpu_ms", self.cpu_ms)
            .number("wall_us", self.wall_us)
            .build()
    }
}

/// Provenance summary of a spec-built fabric, surfaced in
/// [`FlowSummary`] JSON as the optional `fabric` block. Fabrics built
/// by programmatic constructors (`Fabric::regular`, `from_ascii`, ...)
/// have no provenance and omit the block entirely, keeping their report
/// bytes identical to the pre-spec format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FabricSummary {
    /// The spec document's `name`.
    pub name: String,
    /// Region family (`"regular"`, `"ascii"`, ..., or `"composite"`
    /// for multi-region fabrics).
    pub family: String,
    /// Number of regions the spec declared.
    pub regions: usize,
    /// Occupancy-capacity histogram over all segments and junctions:
    /// `(override, count)` with `None` (the technology default) first.
    pub capacity_histogram: Vec<(Option<u8>, usize)>,
}

impl ToJson for FabricSummary {
    /// `{"name","family","regions":[..],"capacity_histogram":
    /// [{"capacity":null|n,"count":n},..]}`; pinned by the golden test
    /// in [`crate::json`].
    fn to_json(&self) -> String {
        let mut histogram = JsonArray::new();
        for &(cap, count) in &self.capacity_histogram {
            let bucket = match cap {
                Some(v) => JsonObject::new().number("capacity", u64::from(v)),
                None => JsonObject::new().raw("capacity", "null"),
            };
            histogram.push_raw(&bucket.number("count", count as u64).build());
        }
        JsonObject::new()
            .string("name", &self.name)
            .string("family", &self.family)
            .number("regions", self.regions as u64)
            .raw("capacity_histogram", &histogram.build())
            .build()
    }
}

impl ToJson for FlowSummary {
    /// Stable JSON schema, pinned by the golden test in [`crate::json`]:
    /// `{"policy","placer","router","latency_us","direction","runs",
    /// "timing":{"cpu_ms","wall_us"},"moves","turns",
    /// "congestion_wait_us","epochs","rip_iterations","ripped_routes",
    /// "max_segment_pressure"[,"fabric"][,"trace_commands"]}`.
    fn to_json(&self) -> String {
        let mut obj = JsonObject::new()
            .string("policy", self.policy.as_str())
            .string("placer", &self.placer)
            .string("router", &self.router)
            .number("latency_us", self.latency)
            .string("direction", self.direction.as_str())
            .number("runs", self.runs as u64)
            .raw("timing", &self.timing.to_json())
            .number("moves", self.moves)
            .number("turns", self.turns)
            .number("congestion_wait_us", self.congestion_wait)
            .number("epochs", self.routing.epochs)
            .number("rip_iterations", self.routing.iterations)
            .number("ripped_routes", self.routing.ripped)
            .number("max_segment_pressure", u64::from(self.routing.max_pressure));
        if let Some(fabric) = &self.fabric {
            obj = obj.raw("fabric", &fabric.to_json());
        }
        if let Some(n) = self.trace_commands {
            obj = obj.number("trace_commands", n as u64);
        }
        obj.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FIG3: &str = "\
QUBIT q0,0
QUBIT q1,0
QUBIT q2,0
QUBIT q3
QUBIT q4,0
H q0
H q1
H q2
H q4
C-X q3,q2
C-Z q4,q2
C-Y q2,q1
C-Y q3,q1
C-X q4,q1
C-Z q2,q0
C-Y q3,q0
C-Z q4,q0
";

    fn fast_flow() -> Flow {
        Flow::on(Fabric::quale_45x85()).seeds(4)
    }

    fn program() -> Program {
        Program::parse(FIG3).unwrap()
    }

    #[test]
    fn flow_is_send_sync_and_static() {
        // Compile-time assertion: the service-grade contract.
        fn assert_send_sync<T: Send + Sync + 'static>() {}
        assert_send_sync::<Flow>();
        assert_send_sync::<FlowResult>();
    }

    #[test]
    fn run_is_reproducible() {
        let flow = fast_flow();
        let program = program();
        let a = flow.run(&program).unwrap();
        let b = flow.run(&program).unwrap();
        assert_eq!(a.latency, b.latency);
        assert_eq!(a.runs, b.runs);
        assert_eq!(a.initial_placement, b.initial_placement);
    }

    #[test]
    fn policies_order_correctly() {
        let flow = fast_flow();
        let program = program();
        let qspr = flow.run(&program).unwrap();
        let quale = flow
            .clone()
            .policy(FlowPolicy::Quale)
            .run(&program)
            .unwrap();
        assert!(flow.ideal_latency(&program) <= qspr.latency);
        assert!(qspr.latency <= quale.latency);
        assert_eq!(quale.runs, 1);
        assert_eq!(quale.direction, PassDirection::Forward);
    }

    #[test]
    fn baseline_policies_record_traces_too() {
        let flow = fast_flow().policy(FlowPolicy::Qpos).record_trace(true);
        let result = flow.run(&program()).unwrap();
        let trace = result.forward_trace.as_ref().unwrap();
        assert_eq!(trace.move_count() as u64, result.outcome.totals().moves);
    }

    #[test]
    fn custom_placer_plugs_in() {
        use qspr_sim::MapError;

        struct CenterPlacer;
        impl Placer for CenterPlacer {
            fn name(&self) -> &str {
                "center"
            }
            fn place(
                &self,
                mapper: &Mapper<'_>,
                program: &Program,
            ) -> Result<PlacerSolution, MapError> {
                let placement = Placement::center(mapper.fabric(), program.num_qubits());
                let outcome = mapper.map(program, &placement)?;
                Ok(PlacerSolution {
                    latency: outcome.latency(),
                    direction: PassDirection::Forward,
                    initial_placement: placement,
                    runs: 1,
                    cpu: Duration::ZERO,
                })
            }
        }

        let flow = fast_flow().placer(CenterPlacer);
        assert_eq!(flow.placer_name(), "center");
        let result = flow.run(&program()).unwrap();
        assert_eq!(result.placer, "center");
        assert_eq!(result.runs, 1);
        // MVFB starts from random center permutations and searches; the
        // plain center placement is a valid but generally worse start.
        assert!(result.latency >= flow.ideal_latency(&program()));
    }

    #[test]
    fn compare_matches_manual_runs() {
        let flow = fast_flow();
        let program = program();
        let row = flow.compare("fig3", &program).unwrap();
        assert_eq!(row.qspr, flow.run(&program).unwrap().latency);
        assert_eq!(row.baseline, flow.ideal_latency(&program));
        assert!(row.baseline <= row.qspr && row.qspr <= row.quale);
    }

    #[test]
    fn compare_placers_goes_through_the_trait_seam() {
        let flow = fast_flow();
        let row = flow.compare_placers("fig3", &program()).unwrap();
        assert_eq!(row.m, 4);
        assert!(row.runs >= 4);
        assert!(row.mvfb_latency > 0 && row.mc_latency > 0);
    }

    #[test]
    fn policy_parses_and_displays() {
        assert_eq!("qspr".parse::<FlowPolicy>().unwrap(), FlowPolicy::Qspr);
        assert_eq!("quale".parse::<FlowPolicy>().unwrap(), FlowPolicy::Quale);
        assert_eq!("qpos".parse::<FlowPolicy>().unwrap(), FlowPolicy::Qpos);
        assert!("best".parse::<FlowPolicy>().is_err());
        assert_eq!(FlowPolicy::Qspr.to_string(), "qspr");
    }

    #[test]
    fn summary_serializes_stably() {
        let flow = fast_flow().record_trace(true);
        let summary = flow.run(&program()).unwrap().summary();
        let json = summary.to_json();
        assert!(
            json.starts_with(r#"{"policy":"qspr","placer":"mvfb","router":"greedy","latency_us":"#)
        );
        assert!(json.contains(&format!(r#""direction":"{}""#, summary.direction.as_str())));
        assert!(json.contains(r#""timing":{"cpu_ms":"#));
        assert!(json.contains(r#""epochs":"#));
        assert!(json.contains(r#""max_segment_pressure":"#));
        assert!(json.contains(r#""trace_commands":"#));
    }

    #[test]
    fn router_builder_selects_engines() {
        use qspr_route::RouterKind;

        let flow = fast_flow();
        assert_eq!(flow.router_name(), "greedy");
        let negotiated = flow.clone().router(RouterKind::Negotiated);
        assert_eq!(negotiated.router_name(), "negotiated");

        let program = program();
        let greedy_result = flow.run(&program).unwrap();
        let negotiated_result = negotiated.run(&program).unwrap();
        assert_eq!(greedy_result.router, "greedy");
        assert_eq!(negotiated_result.router, "negotiated");
        // Epochs are counted for both engines; rip-up only for the
        // negotiated one.
        assert!(greedy_result.outcome.routing_stats().epochs > 0);
        assert_eq!(greedy_result.outcome.routing_stats().iterations, 0);
        assert!(negotiated_result.outcome.routing_stats().epochs > 0);
    }

    #[test]
    fn race_router_keeps_the_best_leg_at_any_thread_count() {
        let program = program();
        let greedy = fast_flow().run(&program).unwrap();
        let negotiated = fast_flow()
            .router(RouterKind::Negotiated)
            .run(&program)
            .unwrap();
        let race = fast_flow().router(RouterKind::Race).run(&program).unwrap();
        assert_eq!(race.latency, greedy.latency.min(negotiated.latency));
        // Config-order tie-break: greedy wins ties.
        let expected = if greedy.latency <= negotiated.latency {
            "greedy"
        } else {
            "negotiated"
        };
        assert_eq!(race.router, expected);
        for jobs in [2, 4] {
            let par = fast_flow()
                .router(RouterKind::Race)
                .jobs(jobs)
                .run(&program)
                .unwrap();
            let mut a = race.summary();
            let mut b = par.summary();
            // Wall timing is the only nondeterministic block.
            a.timing = FlowTiming::default();
            b.timing = FlowTiming::default();
            assert_eq!(a, b, "race with jobs={jobs} diverged");
            assert_eq!(par.initial_placement, race.initial_placement);
        }
    }

    #[test]
    fn race_router_includes_the_sta_leg_when_feedback_is_on() {
        let program = program();
        let race = fast_flow()
            .router(RouterKind::Race)
            .sta_feedback(true)
            .run(&program)
            .unwrap();
        let sta = fast_flow()
            .router(RouterKind::Negotiated)
            .sta_feedback(true)
            .run(&program)
            .unwrap();
        let greedy = fast_flow().run(&program).unwrap();
        assert_eq!(race.latency, greedy.latency.min(sta.latency));
        assert!(["greedy", "negotiated", "negotiated+sta"].contains(&race.router.as_str()));
    }

    #[test]
    fn jobs_does_not_change_the_fingerprint() {
        let base = fast_flow();
        let fp = base.fingerprint(FIG3);
        assert_eq!(fp, base.clone().jobs(8).fingerprint(FIG3));
        assert_eq!(base.clone().jobs(0).job_count(), 1, "jobs clamps to 1");
    }

    #[test]
    fn fingerprint_separates_every_configuration_axis() {
        let base = fast_flow();
        let text = FIG3;
        let fp = base.fingerprint(text);
        // Stable across calls and across clones.
        assert_eq!(fp, base.fingerprint(text));
        assert_eq!(fp, base.clone().fingerprint(text));
        // Every knob lands in the key.
        assert_ne!(fp, base.clone().policy(FlowPolicy::Quale).fingerprint(text));
        assert_ne!(fp, base.clone().seeds(5).fingerprint(text));
        assert_ne!(
            fp,
            base.clone()
                .router(RouterKind::Negotiated)
                .fingerprint(text)
        );
        assert_ne!(fp, base.clone().record_trace(true).fingerprint(text));
        assert_ne!(fp, base.clone().sta_feedback(true).fingerprint(text));
        assert_ne!(
            fp,
            base.clone()
                .tech(TechParams::date2012().without_multiplexing())
                .fingerprint(text)
        );
        assert_ne!(fp, base.fingerprint("QUBIT a\nH a\n"));
        // Different fabrics hash differently even at equal dimensions
        // of the key prefix (content hash, not just rows x cols).
        let other = Flow::on(Fabric::from_ascii(qspr_route::FIG5_DEMO_FABRIC).unwrap()).seeds(4);
        assert_ne!(fp, other.fingerprint(text));
    }

    #[test]
    fn sta_feedback_never_loses_to_plain_negotiated() {
        let flow = fast_flow().router(RouterKind::Negotiated);
        let program = program();
        let plain = flow.clone().run(&program).unwrap();
        let fed = flow.clone().sta_feedback(true).run(&program).unwrap();
        // Best-of-two by construction: the pilot IS the plain run.
        assert!(fed.latency <= plain.latency);
        // The winning router names which half won.
        assert!(fed.router == "negotiated" || fed.router == "negotiated+sta");
        // Deterministic: a re-run reproduces the choice exactly.
        let again = flow.sta_feedback(true).run(&program).unwrap();
        assert_eq!(fed.latency, again.latency);
        assert_eq!(fed.router, again.router);
        assert_eq!(fed.initial_placement, again.initial_placement);
        // The pilot's forced trace is not leaked to the caller.
        assert!(fed.forward_trace.is_none());
    }

    #[test]
    fn sta_feedback_keeps_requested_traces() {
        let flow = fast_flow()
            .router(RouterKind::Negotiated)
            .record_trace(true)
            .sta_feedback(true);
        let result = flow.run(&program()).unwrap();
        let trace = result.forward_trace.as_ref().unwrap();
        assert_eq!(trace.move_count() as u64, result.outcome.totals().moves);
    }

    #[test]
    fn timing_report_matches_the_run() {
        let flow = fast_flow().record_trace(true);
        let program = program();
        let result = flow.run(&program).unwrap();
        let report = flow.timing_report(&program, &result).unwrap();
        assert_eq!(report.makespan(), result.latency);
        assert_eq!(report.critical_end(), Some(result.latency));
        assert_eq!(report.min_slack(), Some(0));
        assert_eq!(report.instructions().len(), program.instructions().len());
    }

    #[test]
    fn timing_report_requires_a_recorded_trace() {
        let flow = fast_flow();
        let program = program();
        let result = flow.run(&program).unwrap();
        let err = flow.timing_report(&program, &result).unwrap_err();
        assert!(matches!(err, QsprError::Sta(_)));
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv1a_64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a_64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a_64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn shared_fabric_arc_is_not_copied() {
        let fabric = Arc::new(Fabric::quale_45x85());
        let a = Flow::on(Arc::clone(&fabric));
        let b = Flow::on(Arc::clone(&fabric));
        assert!(Arc::ptr_eq(a.fabric_arc(), b.fabric_arc()));
    }
}
