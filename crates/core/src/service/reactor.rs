//! The readiness reactor behind [`Server::run`](super::Server::run):
//! one poll loop owning every socket, a fixed worker pool running
//! [`MapService::handle`](super::MapService::handle), and bounded
//! admission queues between them.
//!
//! # Shape
//!
//! The reactor thread does all I/O: it accepts connections, reads
//! whatever bytes are ready into each connection's incremental
//! [`Parser`](super::http::Parser), dispatches complete heavy requests
//! (`POST /map`, `/compare`, `/sta`, `/batch`) to the worker pool,
//! answers light endpoints inline, and writes buffered responses back
//! when sockets are writable. Workers never touch sockets — they
//! receive a parsed request, run the service, and hand the response
//! back over a channel, waking the poll loop through a self-wake pipe.
//!
//! # Ordering
//!
//! Pipelined requests on one connection are sequence-numbered at parse
//! time; responses are buffered in a per-connection reorder map and
//! flushed strictly in sequence, so the pool may *complete* requests
//! in any order but the wire never reorders. A `Connection: close`
//! request (or a protocol error) stops parsing; the connection closes
//! once everything up to that response has flushed.
//!
//! # Backpressure and self-protection
//!
//! Each heavy endpoint has a depth-bounded admission queue; a request
//! arriving past `max_queue` is answered `429` + `Retry-After` without
//! ever reaching a worker. Per-connection pipelining is capped, idle
//! and half-dead connections (slowloris dribbles, clients that never
//! read) are reaped on a deadline, and the total connection count is
//! bounded. On shutdown the reactor stops accepting and reading,
//! finishes in-flight requests, flushes every buffered response (with
//! a hard deadline), and joins its workers.

use std::collections::BTreeMap;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use qspr_obs::Gauge;

use super::http::{self, Request, Response};
use super::poll::{poll_fds, PollFd, Waker, POLLIN, POLLOUT};
use super::{access_log, MapService};

/// The transport knobs [`super::Server::bind`] resolved from its
/// [`super::ServeConfig`].
#[derive(Debug, Clone)]
pub(crate) struct ReactorConfig {
    /// Worker-pool size (≥ 1).
    pub threads: usize,
    /// Emit access-log lines.
    pub log: bool,
    /// Keep-alive idle timeout in seconds; 0 disables persistence
    /// (every response carries `Connection: close`).
    pub keep_alive_secs: u64,
    /// Per-endpoint admission-queue bound (≥ 1).
    pub max_queue: usize,
}

/// The heavy endpoints, in admission-queue slot order.
const HEAVY: [&str; 4] = ["/map", "/compare", "/sta", "/batch"];

/// Most requests one connection may have outstanding (dispatched or
/// awaiting flush) before the reactor stops reading from it.
const PIPELINE_CAP: usize = 64;

/// Most concurrently open connections; accepts beyond it are dropped.
const MAX_CONNS: usize = 1024;

/// Read chunk size per `read(2)` call.
const READ_CHUNK: usize = 16 * 1024;

/// Poll timeout — the reactor's housekeeping tick (timeout reaping,
/// shutdown-flag checks) when no I/O happens.
const TICK_MS: i32 = 200;

/// How long a drain may take before buffered-but-unread responses are
/// abandoned.
const DRAIN_DEADLINE: Duration = Duration::from_secs(5);

/// Longest wait for the *rest* of a partially received request before
/// the connection is dropped (the slowloris bound), further capped by
/// the keep-alive timeout when that is shorter.
const PARTIAL_TIMEOUT: Duration = Duration::from_secs(10);

/// The admission-queue slot for a request the worker pool must run,
/// or `None` for light endpoints the reactor answers inline.
fn heavy_slot(request: &Request) -> Option<usize> {
    if request.method != "POST" {
        return None;
    }
    HEAVY.iter().position(|&path| path == request.path)
}

/// A request dispatched to the worker pool.
struct Job {
    conn: usize,
    gen: u64,
    seq: u64,
    request: Request,
    close: bool,
    slot: usize,
    queued: Instant,
}

/// A completed response on its way back to the reactor.
struct Done {
    conn: usize,
    gen: u64,
    seq: u64,
    response: Response,
    close: bool,
}

/// Per-connection reactor state.
struct Conn {
    stream: TcpStream,
    parser: http::Parser,
    /// Encoded responses awaiting the socket.
    out: Vec<u8>,
    out_pos: usize,
    /// Sequence number for the next parsed request.
    next_seq: u64,
    /// Sequence number of the next response to flush.
    next_write: u64,
    /// Completed responses waiting for their turn on the wire.
    pending: BTreeMap<u64, (Response, bool)>,
    /// Requests currently in the worker pool.
    inflight: usize,
    /// Generation tag; completions for a recycled slot are discarded.
    gen: u64,
    last_activity: Instant,
    /// The response stream ends here: flush, then close.
    close_after_flush: bool,
    /// Stop reading bytes (EOF, error, or hang-up observed).
    read_done: bool,
    /// Stop parsing buffered bytes (a close-requested request or a
    /// protocol error was seen; EOF alone still parses the tail).
    parse_done: bool,
}

impl Conn {
    fn new(stream: TcpStream, gen: u64) -> Conn {
        Conn {
            stream,
            parser: http::Parser::new(),
            out: Vec::new(),
            out_pos: 0,
            next_seq: 0,
            next_write: 0,
            pending: BTreeMap::new(),
            inflight: 0,
            gen,
            last_activity: Instant::now(),
            close_after_flush: false,
            read_done: false,
            parse_done: false,
        }
    }

    /// Requests admitted but not yet flushed.
    fn outstanding(&self) -> usize {
        self.inflight + self.pending.len()
    }

    /// `true` when the write buffer is fully on the wire.
    fn flushed(&self) -> bool {
        self.out_pos == self.out.len()
    }

    /// `true` when nothing more will happen on this connection.
    fn finished(&self) -> bool {
        (self.read_done || self.close_after_flush)
            && self.inflight == 0
            && self.pending.is_empty()
            && self.flushed()
    }

    /// Moves in-order completed responses into the write buffer.
    fn flush_pending(&mut self) {
        while let Some((response, close)) = self.pending.remove(&self.next_write) {
            self.out
                .extend_from_slice(&http::encode_response(&response, !close));
            self.next_write += 1;
            if close {
                self.close_after_flush = true;
                // Anything sequenced after a close never reaches the
                // wire; drop it.
                self.pending.clear();
                break;
            }
        }
    }
}

/// What a pollfd slot refers to.
enum Role {
    Listener,
    Waker,
    Conn(usize),
}

/// Runs the reactor until a graceful drain completes or a fatal
/// listener/poll error occurs.
pub(crate) fn run(
    listener: TcpListener,
    service: &Arc<MapService>,
    config: &ReactorConfig,
) -> io::Result<()> {
    listener.set_nonblocking(true)?;
    let waker = Waker::new()?;
    let wake_handles = (0..config.threads)
        .map(|_| waker.handle())
        .collect::<io::Result<Vec<_>>>()?;
    let (job_tx, job_rx) = mpsc::channel::<Job>();
    let (done_tx, done_rx) = mpsc::channel::<Done>();
    let job_rx = Mutex::new(job_rx);
    let depths: [AtomicUsize; 4] = Default::default();
    let gauges: Vec<Arc<Gauge>> = HEAVY
        .iter()
        .map(|&endpoint| {
            service.metrics().gauge(
                "qspr_queue_depth",
                "Requests queued for the worker pool, by endpoint.",
                &[("endpoint", endpoint)],
            )
        })
        .collect();
    let wait_hist = service.metrics().histogram(
        "qspr_queue_wait_us",
        "Time requests spent queued for a worker, microseconds.",
        &[],
    );

    thread::scope(|scope| {
        for wake in wake_handles {
            let done_tx = done_tx.clone();
            let job_rx = &job_rx;
            let depths = &depths;
            let gauges = &gauges;
            let wait_hist = &wait_hist;
            let log = config.log;
            scope.spawn(move || loop {
                // Hold the receiver lock only to pull the next job,
                // never while serving it.
                let job = match job_rx.lock().expect("job queue lock").recv() {
                    Ok(job) => job,
                    Err(_) => break, // sender dropped: drain done
                };
                let depth = depths[job.slot].fetch_sub(1, Ordering::Relaxed) - 1;
                gauges[job.slot].set(depth as i64);
                let wait_us = job.queued.elapsed().as_micros() as u64;
                wait_hist.record(wait_us);
                let t0 = Instant::now();
                let response = service.handle(&job.request);
                if log {
                    access_log(
                        &job.request.method,
                        &job.request.path,
                        &response,
                        wait_us,
                        t0,
                    );
                }
                let _ = done_tx.send(Done {
                    conn: job.conn,
                    gen: job.gen,
                    seq: job.seq,
                    response,
                    close: job.close,
                });
                wake.notify();
            });
        }

        let mut reactor = Reactor {
            service,
            config,
            listener: Some(listener),
            waker: &waker,
            conns: Vec::new(),
            next_gen: 0,
            job_tx: Some(job_tx),
            done_rx,
            depths: &depths,
            gauges: &gauges,
            draining: false,
            drain_deadline: None,
        };
        let result = reactor.run();
        // Disconnect the job channel so idle workers exit; the scope
        // then joins them (in-flight handlers finish first).
        reactor.job_tx = None;
        result
    })
}

/// The poll loop and all its state; lives on the thread that called
/// [`super::Server::run`].
struct Reactor<'a> {
    service: &'a Arc<MapService>,
    config: &'a ReactorConfig,
    /// `None` once draining (closing the listener refuses new peers).
    listener: Option<TcpListener>,
    waker: &'a Waker,
    /// Connection slab; `None` slots are recycled by `accept`.
    conns: Vec<Option<Conn>>,
    next_gen: u64,
    /// `None` after drain, which disconnects the workers.
    job_tx: Option<mpsc::Sender<Job>>,
    done_rx: mpsc::Receiver<Done>,
    depths: &'a [AtomicUsize; 4],
    gauges: &'a [Arc<Gauge>],
    draining: bool,
    drain_deadline: Option<Instant>,
}

impl Reactor<'_> {
    fn run(&mut self) -> io::Result<()> {
        let mut fds: Vec<PollFd> = Vec::new();
        let mut roles: Vec<Role> = Vec::new();
        loop {
            if !self.draining && self.service.shutdown_requested() {
                self.draining = true;
                self.listener = None; // refuse new connections
                self.drain_deadline = Some(Instant::now() + DRAIN_DEADLINE);
            }
            if self.draining {
                self.reap_drained();
                let live = self.conns.iter().flatten().count();
                if live == 0 {
                    return Ok(());
                }
                if self.drain_deadline.is_some_and(|d| Instant::now() >= d) {
                    return Ok(()); // abandon unread responses
                }
            }

            fds.clear();
            roles.clear();
            if let Some(listener) = &self.listener {
                fds.push(PollFd::new(listener.as_raw_fd(), POLLIN));
                roles.push(Role::Listener);
            }
            fds.push(PollFd::new(self.waker.fd(), POLLIN));
            roles.push(Role::Waker);
            for (i, conn) in self.conns.iter().enumerate() {
                let Some(conn) = conn else { continue };
                let mut events = 0i16;
                let readable = !conn.read_done
                    && !conn.close_after_flush
                    && !self.draining
                    && conn.outstanding() < PIPELINE_CAP;
                if readable {
                    events |= POLLIN;
                }
                if !conn.flushed() {
                    events |= POLLOUT;
                }
                fds.push(PollFd::new(conn.stream.as_raw_fd(), events));
                roles.push(Role::Conn(i));
            }

            poll_fds(&mut fds, TICK_MS)?;
            self.waker.drain();
            self.apply_completions();
            for (fd, role) in fds.iter().zip(&roles) {
                match role {
                    Role::Listener => {
                        if fd.has(POLLIN) {
                            self.accept_ready()?;
                        }
                    }
                    Role::Waker => {}
                    Role::Conn(i) => self.service_conn(*i, fd),
                }
            }
            self.reap_idle();
        }
    }

    /// Accepts every ready connection (the listener is non-blocking).
    fn accept_ready(&mut self) -> io::Result<()> {
        loop {
            let Some(listener) = &self.listener else {
                return Ok(());
            };
            match listener.accept() {
                Ok((stream, _)) => {
                    let live = self.conns.iter().flatten().count();
                    if self.draining || live >= MAX_CONNS {
                        drop(stream); // refused
                        continue;
                    }
                    let _ = stream.set_nonblocking(true);
                    let _ = stream.set_nodelay(true);
                    self.next_gen += 1;
                    let conn = Conn::new(stream, self.next_gen);
                    match self.conns.iter().position(Option::is_none) {
                        Some(slot) => self.conns[slot] = Some(conn),
                        None => self.conns.push(Some(conn)),
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(()),
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::ConnectionAborted | io::ErrorKind::Interrupted
                    ) =>
                {
                    continue
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Applies every completion the workers queued: reorder, flush,
    /// and resume parsing on connections that freed pipeline slots.
    fn apply_completions(&mut self) {
        while let Ok(done) = self.done_rx.try_recv() {
            let Some(conn) = self.conns.get_mut(done.conn).and_then(Option::as_mut) else {
                continue; // connection died while the worker ran
            };
            if conn.gen != done.gen {
                continue; // slot was recycled
            }
            conn.inflight -= 1;
            conn.last_activity = Instant::now();
            conn.pending.insert(done.seq, (done.response, done.close));
            conn.flush_pending();
            self.flush_conn(done.conn);
            self.process_parsed(done.conn);
        }
    }

    /// Reads ready bytes, parses, dispatches, flushes — one
    /// connection's turn after poll.
    fn service_conn(&mut self, i: usize, fd: &PollFd) {
        {
            let Some(conn) = self.conns.get_mut(i).and_then(Option::as_mut) else {
                return;
            };
            if fd.failed() {
                conn.read_done = true;
            }
            if fd.has(POLLIN) && !conn.read_done {
                let mut buf = [0u8; READ_CHUNK];
                loop {
                    match conn.stream.read(&mut buf) {
                        Ok(0) => {
                            conn.read_done = true;
                            break;
                        }
                        Ok(n) => {
                            conn.parser.feed(&buf[..n]);
                            conn.last_activity = Instant::now();
                            if conn.outstanding() >= PIPELINE_CAP {
                                break; // stop pulling; poll re-arms later
                            }
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                        Err(_) => {
                            conn.read_done = true;
                            break;
                        }
                    }
                }
            }
        }
        self.process_parsed(i);
        self.flush_conn(i);
    }

    /// Drains the connection's parser: dispatches heavy requests
    /// (admission-control permitting), answers light ones inline, and
    /// turns protocol errors into terminal `400`/`413` responses.
    fn process_parsed(&mut self, i: usize) {
        loop {
            let Some(conn) = self.conns.get_mut(i).and_then(Option::as_mut) else {
                return;
            };
            if conn.parse_done || self.draining || conn.outstanding() >= PIPELINE_CAP {
                break;
            }
            match conn.parser.next_request() {
                Ok(None) => break,
                Ok(Some(request)) => {
                    let shutdown = request.method == "POST" && request.path == "/shutdown";
                    let close = request.close || self.config.keep_alive_secs == 0 || shutdown;
                    let seq = conn.next_seq;
                    conn.next_seq += 1;
                    if close {
                        conn.parse_done = true;
                    }
                    match heavy_slot(&request) {
                        Some(slot) => {
                            if self.depths[slot].load(Ordering::Relaxed) >= self.config.max_queue {
                                let response = self.service.reject(HEAVY[slot]);
                                if self.config.log {
                                    access_log(
                                        &request.method,
                                        &request.path,
                                        &response,
                                        0,
                                        Instant::now(),
                                    );
                                }
                                conn.pending.insert(seq, (response, close));
                            } else {
                                let depth = self.depths[slot].fetch_add(1, Ordering::Relaxed) + 1;
                                self.gauges[slot].set(depth as i64);
                                conn.inflight += 1;
                                let job = Job {
                                    conn: i,
                                    gen: conn.gen,
                                    seq,
                                    request,
                                    close,
                                    slot,
                                    queued: Instant::now(),
                                };
                                if let Some(tx) = &self.job_tx {
                                    let _ = tx.send(job);
                                }
                            }
                        }
                        None => {
                            let t0 = Instant::now();
                            let response = self.service.handle(&request);
                            if self.config.log {
                                access_log(&request.method, &request.path, &response, 0, t0);
                            }
                            conn.pending.insert(seq, (response, close));
                        }
                    }
                }
                Err(e) => {
                    // The connection is unsalvageable after a protocol
                    // error (no resynchronization), but everything
                    // already admitted still answers in order before
                    // the terminal error response closes it.
                    let response = self.service.protocol_response(&e);
                    if self.config.log {
                        access_log("-", "-", &response, 0, Instant::now());
                    }
                    let seq = conn.next_seq;
                    conn.next_seq += 1;
                    conn.pending.insert(seq, (response, true));
                    conn.parse_done = true;
                    conn.read_done = true;
                    break;
                }
            }
        }
        if let Some(conn) = self.conns.get_mut(i).and_then(Option::as_mut) {
            conn.flush_pending();
        }
        self.flush_conn(i);
    }

    /// Writes as much buffered response data as the socket accepts,
    /// then retires the connection if it is finished.
    fn flush_conn(&mut self, i: usize) {
        let Some(conn) = self.conns.get_mut(i).and_then(Option::as_mut) else {
            return;
        };
        let mut dead = false;
        while conn.out_pos < conn.out.len() {
            match conn.stream.write(&conn.out[conn.out_pos..]) {
                Ok(0) => {
                    dead = true;
                    break;
                }
                Ok(n) => {
                    conn.out_pos += n;
                    conn.last_activity = Instant::now();
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    dead = true;
                    break;
                }
            }
        }
        if conn.flushed() {
            conn.out.clear();
            conn.out_pos = 0;
        }
        if dead || conn.finished() {
            self.conns[i] = None;
        }
    }

    /// Drops connections that sit idle past their deadline. In-flight
    /// work always pins its connection (the response deserves a flush
    /// attempt); everything else — idle keep-alive peers, slowloris
    /// dribbles, clients that never read their response — times out.
    fn reap_idle(&mut self) {
        let now = Instant::now();
        let idle_timeout = Duration::from_secs(match self.config.keep_alive_secs {
            0 => 30, // close-per-request mode: the old blocking read timeout
            secs => secs,
        });
        let partial_timeout = idle_timeout.min(PARTIAL_TIMEOUT);
        for slot in self.conns.iter_mut() {
            let Some(conn) = slot else { continue };
            if conn.inflight > 0 {
                continue;
            }
            let idle = now.saturating_duration_since(conn.last_activity);
            let limit = if conn.parser.has_partial() {
                partial_timeout
            } else {
                idle_timeout
            };
            if idle >= limit {
                *slot = None;
            }
        }
    }

    /// During drain: retires every connection with nothing left to do
    /// (no in-flight work, nothing awaiting flush).
    fn reap_drained(&mut self) {
        for slot in self.conns.iter_mut() {
            let done = slot
                .as_ref()
                .is_some_and(|c| c.inflight == 0 && c.pending.is_empty() && c.flushed());
            if done {
                *slot = None;
            }
        }
    }
}
