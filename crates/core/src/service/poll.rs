//! A minimal `poll(2)` shim, declared directly against the platform C
//! library so the reactor needs no external crate. Only what the
//! readiness loop uses is exposed: readable/writable interest, the
//! error/hang-up result bits, and a self-wake pipe built from a
//! non-blocking [`UnixStream`] pair.
//!
//! The declaration matches the Linux ABI (`struct pollfd` is three
//! integers; `nfds_t` is an unsigned long) and the file-descriptor
//! counts involved are tiny, so the call is portable across the Unix
//! targets CI builds on.

use std::io::{self, Read, Write};
use std::os::fd::RawFd;
use std::os::unix::net::UnixStream;
use std::sync::Arc;

/// Readable interest / result bit (`POLLIN`).
pub const POLLIN: i16 = 0x001;
/// Writable interest / result bit (`POLLOUT`).
pub const POLLOUT: i16 = 0x004;
/// Error condition result bit (`POLLERR`, result only).
pub const POLLERR: i16 = 0x008;
/// Peer hang-up result bit (`POLLHUP`, result only).
pub const POLLHUP: i16 = 0x010;

/// `struct pollfd`, laid out exactly as `poll(2)` expects.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct PollFd {
    /// File descriptor to watch.
    pub fd: RawFd,
    /// Requested events (`POLLIN` / `POLLOUT`).
    pub events: i16,
    /// Returned events (filled by the kernel).
    pub revents: i16,
}

impl PollFd {
    /// Interest in `events` on `fd`.
    pub fn new(fd: RawFd, events: i16) -> PollFd {
        PollFd {
            fd,
            events,
            revents: 0,
        }
    }

    /// `true` when any of `bits` came back in `revents`.
    pub fn has(&self, bits: i16) -> bool {
        self.revents & bits != 0
    }

    /// `true` on error or hang-up (the connection should be torn
    /// down once buffered work is accounted for).
    pub fn failed(&self) -> bool {
        self.has(POLLERR | POLLHUP)
    }
}

extern "C" {
    fn poll(fds: *mut PollFd, nfds: u64, timeout: i32) -> i32;
}

/// Blocks until a watched descriptor is ready or `timeout_ms` elapses
/// (`-1` blocks indefinitely). Returns the number of ready
/// descriptors; `0` on timeout. `EINTR` is retried internally.
///
/// # Errors
///
/// The underlying `poll(2)` failure, `EINTR` excepted.
pub fn poll_fds(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
    loop {
        // SAFETY: `fds` is a valid, exclusively borrowed slice of
        // `#[repr(C)]` pollfd records, and `len()` is its true length.
        let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as u64, timeout_ms) };
        if rc >= 0 {
            return Ok(rc as usize);
        }
        let err = io::Error::last_os_error();
        if err.kind() != io::ErrorKind::Interrupted {
            return Err(err);
        }
    }
}

/// A self-wake channel for the reactor: workers [`notify`](Waker::notify)
/// when a result is ready, and the poll loop watches the read half.
/// Built from a non-blocking [`UnixStream`] pair — a saturated pipe
/// simply means a wake is already pending, so `WouldBlock` on notify
/// is success.
#[derive(Debug)]
pub struct Waker {
    read: UnixStream,
    write: UnixStream,
}

impl Waker {
    /// A fresh wake pipe, both ends non-blocking.
    ///
    /// # Errors
    ///
    /// Socket-pair creation or fcntl failure.
    pub fn new() -> io::Result<Waker> {
        let (read, write) = UnixStream::pair()?;
        read.set_nonblocking(true)?;
        write.set_nonblocking(true)?;
        Ok(Waker { read, write })
    }

    /// The descriptor the poll loop should watch with [`POLLIN`].
    pub fn fd(&self) -> RawFd {
        use std::os::fd::AsRawFd;
        self.read.as_raw_fd()
    }

    /// Drains all pending wake bytes (call once per poll iteration).
    pub fn drain(&self) {
        let mut sink = [0u8; 64];
        while matches!((&self.read).read(&mut sink), Ok(n) if n > 0) {}
    }
}

/// A cloneable handle that can wake the reactor from worker threads.
/// Writes on a shared `&UnixStream` are atomic single-byte sends, so
/// one duplicated descriptor serves every worker.
#[derive(Debug, Clone)]
pub struct WakeHandle {
    write: Arc<UnixStream>,
}

impl Waker {
    /// A handle workers can clone and keep.
    ///
    /// # Errors
    ///
    /// Descriptor duplication failure.
    pub fn handle(&self) -> io::Result<WakeHandle> {
        Ok(WakeHandle {
            write: Arc::new(self.write.try_clone()?),
        })
    }
}

impl WakeHandle {
    /// Wakes the poll loop. Cheap, non-blocking, and safe to call from
    /// any thread; `WouldBlock` (a wake already pending) and teardown
    /// races are deliberately ignored — a failed wake at shutdown is
    /// harmless.
    pub fn notify(&self) {
        let _ = (&*self.write).write(&[1u8]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn waker_wakes_poll_and_drains() {
        let waker = Waker::new().unwrap();
        let handle = waker.handle().unwrap();
        let mut fds = [PollFd::new(waker.fd(), POLLIN)];
        // Nothing pending: times out.
        assert_eq!(poll_fds(&mut fds, 0).unwrap(), 0);
        handle.notify();
        handle.notify(); // coalesces
        assert_eq!(poll_fds(&mut fds, 1000).unwrap(), 1);
        assert!(fds[0].has(POLLIN));
        waker.drain();
        fds[0].revents = 0;
        assert_eq!(poll_fds(&mut fds, 0).unwrap(), 0);
    }

    #[test]
    fn handle_wakes_from_another_thread() {
        let waker = Waker::new().unwrap();
        let handle = waker.handle().unwrap();
        let t = std::thread::spawn(move || handle.notify());
        let mut fds = [PollFd::new(waker.fd(), POLLIN)];
        assert_eq!(poll_fds(&mut fds, 5000).unwrap(), 1);
        t.join().unwrap();
        waker.drain();
    }
}
