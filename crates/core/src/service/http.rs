//! A deliberately tiny HTTP/1.1 subset: just enough wire protocol for
//! the `qspr serve` JSON endpoints, hand-rolled on `std::net` in the
//! same no-new-dependencies spirit as the vendored shims.
//!
//! Scope (and non-goals): request line + headers + `Content-Length`
//! bodies only — no chunked encoding and no TLS. Since the reactor
//! rewrite the server speaks **persistent HTTP/1.1**: responses
//! default to `Connection: keep-alive` and clients may pipeline
//! requests back-to-back on one connection; `Connection: close` (from
//! either side), protocol errors and server drain still close. Limits
//! on the request line, header count and body size bound what an
//! untrusted peer can make the server buffer.
//!
//! The server side parses with [`Parser`], an *incremental* state
//! machine fed arbitrary byte slices as they arrive off a non-blocking
//! socket. Parsing is restartable — each [`Parser::next_request`] call
//! re-examines the buffered prefix — so the outcome depends only on
//! the accumulated bytes, never on how reads were chunked; a property
//! test pins that feeding a stream split at arbitrary boundaries
//! yields byte-for-byte the same requests and errors as feeding it
//! whole.

use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Longest accepted request line or header line, bytes.
const MAX_REQUEST_LINE: usize = 8 * 1024;
/// Most headers accepted on one request.
const MAX_HEADERS: usize = 100;
/// Largest accepted request body, bytes (QASM programs are small; the
/// biggest paper circuit is under 4 KiB — `/batch` bodies carry a few
/// dozen of them at most).
pub const MAX_BODY: usize = 8 * 1024 * 1024;

/// One parsed HTTP request: method, path, (possibly empty) body, and
/// whether the client asked for the connection to close afterwards.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Uppercase method token (`GET`, `POST`, ...), as sent.
    pub method: String,
    /// Request target, e.g. `/map`.
    pub path: String,
    /// Decoded body (empty when no `Content-Length` was sent).
    pub body: String,
    /// `true` when the client sent `Connection: close`, or spoke
    /// HTTP/1.0 without `Connection: keep-alive` — the server answers
    /// this request and then closes.
    pub close: bool,
}

impl Request {
    /// A keep-alive request (the transport-free shape the service
    /// tests use).
    pub fn new(
        method: impl Into<String>,
        path: impl Into<String>,
        body: impl Into<String>,
    ) -> Request {
        Request {
            method: method.into(),
            path: path.into(),
            body: body.into(),
            close: false,
        }
    }
}

/// One response about to be written (or just read back by the client).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Response body.
    pub body: String,
    /// `Content-Type` to send (`application/json` for every endpoint
    /// except `GET /metrics`, which serves Prometheus text format).
    pub content_type: &'static str,
    /// `Retry-After` header value in seconds (sent on `429` when the
    /// admission queue is full; parsed back by [`Client`]).
    pub retry_after: Option<u64>,
}

impl Response {
    /// A JSON response with `status` and `body`.
    pub fn new(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            body: body.into(),
            content_type: "application/json",
            retry_after: None,
        }
    }

    /// A plain-text response (the Prometheus exposition content type,
    /// which generic text consumers accept too).
    pub fn text(status: u16, body: impl Into<String>) -> Response {
        Response {
            content_type: "text/plain; version=0.0.4",
            ..Response::new(status, body)
        }
    }

    /// Attaches a `Retry-After` hint (used by the `429` admission
    /// response).
    #[must_use]
    pub fn with_retry_after(mut self, seconds: u64) -> Response {
        self.retry_after = Some(seconds);
        self
    }

    /// The standard reason phrase for the status codes this service
    /// emits (anything unlisted degrades to `"Unknown"`).
    pub fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            413 => "Content Too Large",
            422 => "Unprocessable Content",
            429 => "Too Many Requests",
            500 => "Internal Server Error",
            _ => "Unknown",
        }
    }
}

/// Serializes `response` as a complete HTTP/1.1 message. `keep_alive`
/// selects the `Connection` header; the reactor passes `false` on the
/// last response before it closes a connection.
pub fn encode_response(response: &Response, keep_alive: bool) -> Vec<u8> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\n",
        response.status,
        response.reason(),
        response.content_type,
        response.body.len(),
    );
    if let Some(seconds) = response.retry_after {
        head.push_str(&format!("Retry-After: {seconds}\r\n"));
    }
    head.push_str(if keep_alive {
        "Connection: keep-alive\r\n\r\n"
    } else {
        "Connection: close\r\n\r\n"
    });
    let mut bytes = head.into_bytes();
    bytes.extend_from_slice(response.body.as_bytes());
    bytes
}

/// Writes `response` as a complete `Connection: close` HTTP/1.1
/// message (the one-shot shape; the reactor uses [`encode_response`]
/// into its write buffers instead).
pub fn write_response(stream: &mut TcpStream, response: &Response) -> io::Result<()> {
    stream.write_all(&encode_response(response, false))?;
    stream.flush()
}

// ---------------------------------------------------------------------------
// Incremental request parser (server side)
// ---------------------------------------------------------------------------

/// An incremental HTTP/1.1 request parser over a growable byte buffer.
///
/// Feed bytes as they arrive with [`Parser::feed`], then drain
/// complete requests with [`Parser::next_request`]. Line endings
/// follow the historical server's tolerance: lines terminate on `\n`
/// and every `\r` is dropped. A protocol violation is returned as an
/// `io::Error` (`InvalidData` → answer `400`; `InvalidInput` → the
/// body limit, answer `413`) and poisons the parser — the connection
/// must close, there is no resynchronization after junk.
///
/// # Examples
///
/// ```
/// use qspr::service::http::Parser;
///
/// let mut parser = Parser::new();
/// // Two pipelined requests, fed in arbitrary chunks.
/// let wire = b"GET /healthz HTTP/1.1\r\n\r\nPOST /map HTTP/1.1\r\nContent-Length: 2\r\n\r\n{}";
/// let (a, b) = wire.split_at(10);
/// parser.feed(a);
/// assert!(parser.next_request().unwrap().is_none()); // incomplete
/// parser.feed(b);
/// let first = parser.next_request().unwrap().unwrap();
/// assert_eq!((first.method.as_str(), first.path.as_str()), ("GET", "/healthz"));
/// let second = parser.next_request().unwrap().unwrap();
/// assert_eq!(second.body, "{}");
/// assert!(parser.next_request().unwrap().is_none());
/// ```
#[derive(Debug, Default)]
pub struct Parser {
    buf: Vec<u8>,
    /// Offset of the first byte of the current (unparsed) request.
    start: usize,
    /// A protocol error sticks: once violated, the connection closes.
    poisoned: bool,
}

/// How far `scan_line` got.
enum Line {
    /// A complete line (CRs stripped) ending before `next`.
    Done { text: String, next: usize },
    /// No terminator yet; more bytes are needed.
    Partial,
}

impl Parser {
    /// An empty parser.
    pub fn new() -> Parser {
        Parser::default()
    }

    /// Appends newly received bytes.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// `true` when bytes of an incomplete request are buffered (the
    /// slowloris signal: the reactor times these out).
    pub fn has_partial(&self) -> bool {
        !self.poisoned && self.buf.len() > self.start
    }

    /// Bytes currently buffered and not yet consumed by a request.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Extracts one CR-stripped, `\n`-terminated line starting at
    /// `at`, enforcing the line-length limit.
    fn scan_line(&self, at: usize) -> io::Result<Line> {
        let mut text = Vec::new();
        for (i, &b) in self.buf[at..].iter().enumerate() {
            match b {
                b'\n' => {
                    let text = String::from_utf8(text).map_err(|_| bad("non-UTF-8 line"))?;
                    return Ok(Line::Done {
                        text,
                        next: at + i + 1,
                    });
                }
                b'\r' => {}
                b => text.push(b),
            }
            if text.len() > MAX_REQUEST_LINE {
                return Err(bad("line exceeds limit"));
            }
        }
        Ok(Line::Partial)
    }

    /// Attempts to parse the next complete request from the buffer.
    ///
    /// Returns `Ok(None)` when more bytes are needed. The outcome is a
    /// pure function of the bytes fed so far — chunking never changes
    /// it.
    ///
    /// # Errors
    ///
    /// `InvalidData` for protocol violations (malformed request line or
    /// header, unsupported version, over-long line, too many headers,
    /// non-UTF-8 text), `InvalidInput` when `Content-Length` exceeds
    /// [`MAX_BODY`]. Errors are sticky.
    pub fn next_request(&mut self) -> io::Result<Option<Request>> {
        if self.poisoned {
            return Err(bad("parser poisoned by an earlier protocol error"));
        }
        match self.try_parse() {
            Ok(Some((request, consumed))) => {
                self.start = consumed;
                // Compact once the dead prefix outgrows the live tail,
                // keeping the buffer proportional to pending data.
                if self.start > 4096 && self.start * 2 > self.buf.len() {
                    self.buf.drain(..self.start);
                    self.start = 0;
                }
                Ok(Some(request))
            }
            Ok(None) => Ok(None),
            Err(e) => {
                self.poisoned = true;
                Err(e)
            }
        }
    }

    fn try_parse(&self) -> io::Result<Option<(Request, usize)>> {
        let Line::Done { text: line, next } = self.scan_line(self.start)? else {
            return Ok(None);
        };
        let mut parts = line.split_whitespace();
        let (method, path, version) = match (parts.next(), parts.next(), parts.next(), parts.next())
        {
            (Some(m), Some(p), Some(v), None) => (m, p, v),
            _ => return Err(bad("malformed request line")),
        };
        if !matches!(version, "HTTP/1.1" | "HTTP/1.0") {
            return Err(bad("unsupported HTTP version"));
        }
        // HTTP/1.0 closes by default; 1.1 keeps alive by default.
        let mut close = version == "HTTP/1.0";
        let mut content_length: usize = 0;
        let mut at = next;
        for _ in 0..MAX_HEADERS {
            let Line::Done { text: header, next } = self.scan_line(at)? else {
                return Ok(None);
            };
            at = next;
            if header.is_empty() {
                // Headers done; the body needs `content_length` bytes.
                let body_end = at
                    .checked_add(content_length)
                    .ok_or_else(|| bad("bad length"))?;
                if self.buf.len() < body_end {
                    return Ok(None);
                }
                let body = String::from_utf8(self.buf[at..body_end].to_vec())
                    .map_err(|_| bad("non-UTF-8 body"))?;
                let request = Request {
                    method: method.to_owned(),
                    path: path.to_owned(),
                    body,
                    close,
                };
                return Ok(Some((request, body_end)));
            }
            let Some((name, value)) = header.split_once(':') else {
                return Err(bad("malformed header"));
            };
            let name = name.trim();
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| bad("invalid Content-Length"))?;
                if content_length > MAX_BODY {
                    // InvalidInput (vs InvalidData for syntax errors)
                    // lets the server answer 413 instead of 400.
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidInput,
                        "body exceeds limit",
                    ));
                }
            } else if name.eq_ignore_ascii_case("connection") {
                let value = value.trim();
                if value.eq_ignore_ascii_case("close") {
                    close = true;
                } else if value.eq_ignore_ascii_case("keep-alive") {
                    close = false;
                }
            }
        }
        Err(bad("too many headers"))
    }
}

// ---------------------------------------------------------------------------
// Client side
// ---------------------------------------------------------------------------

/// A persistent (keep-alive) HTTP client for one connection to the
/// service: the client side `loadgen`, the fault-injection tests and
/// the integration tests drive the server with.
///
/// [`Client::send`] writes one request and blocks for its response;
/// [`Client::write_request`] / [`Client::read_response`] split the two
/// halves so callers can pipeline several requests before reading any
/// response. After a response carrying `Connection: close` (or an I/O
/// error) the connection is dead — [`Client::is_closed`] reports it
/// and the caller reconnects.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    closed: bool,
}

impl Client {
    /// Connects to `addr` with generous read/write timeouts (mapping a
    /// cold circuit can take a while under load).
    ///
    /// # Errors
    ///
    /// Any socket failure.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(Duration::from_secs(120)))?;
        stream.set_write_timeout(Some(Duration::from_secs(120)))?;
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
            closed: false,
        })
    }

    /// `true` once the server closed (or will close) the connection;
    /// further sends fail, reconnect instead.
    pub fn is_closed(&self) -> bool {
        self.closed
    }

    /// Writes one keep-alive request without waiting for the response
    /// (the pipelining half; pair with [`Client::read_response`]).
    ///
    /// # Errors
    ///
    /// Any socket failure.
    pub fn write_request(&mut self, method: &str, path: &str, body: &str) -> io::Result<()> {
        let head = format!(
            "{method} {path} HTTP/1.1\r\nHost: qspr\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n",
            body.len(),
        );
        self.writer.write_all(head.as_bytes())?;
        self.writer.write_all(body.as_bytes())?;
        self.writer.flush()
    }

    /// Reads one response off the connection (in pipeline order).
    ///
    /// # Errors
    ///
    /// Any socket failure, or a malformed / over-limit response.
    pub fn read_response(&mut self) -> io::Result<Response> {
        let status_line =
            read_line(&mut self.reader, MAX_REQUEST_LINE)?.ok_or_else(|| bad("empty response"))?;
        let status: u16 = status_line
            .strip_prefix("HTTP/1.1 ")
            .or_else(|| status_line.strip_prefix("HTTP/1.0 "))
            .and_then(|rest| rest.split_whitespace().next())
            .and_then(|code| code.parse().ok())
            .ok_or_else(|| bad("malformed status line"))?;
        let mut content_length: usize = 0;
        let mut retry_after = None;
        for _ in 0..MAX_HEADERS {
            let header = read_line(&mut self.reader, MAX_REQUEST_LINE)?
                .ok_or_else(|| bad("truncated headers"))?;
            if header.is_empty() {
                let body = read_body(&mut self.reader, content_length)?;
                // The client does not parse Content-Type back; it
                // reports the default.
                let mut response = Response::new(status, body);
                response.retry_after = retry_after;
                return Ok(response);
            }
            let Some((name, value)) = header.split_once(':') else {
                continue;
            };
            let (name, value) = (name.trim(), value.trim());
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.parse().map_err(|_| bad("invalid Content-Length"))?;
                if content_length > MAX_BODY {
                    return Err(bad("response body exceeds limit"));
                }
            } else if name.eq_ignore_ascii_case("retry-after") {
                retry_after = value.parse().ok();
            } else if name.eq_ignore_ascii_case("connection") && value.eq_ignore_ascii_case("close")
            {
                self.closed = true;
            }
        }
        Err(bad("too many headers"))
    }

    /// One request, one response, in order.
    ///
    /// # Errors
    ///
    /// Any socket failure, or a malformed / over-limit response.
    pub fn send(&mut self, method: &str, path: &str, body: &str) -> io::Result<Response> {
        if self.closed {
            return Err(io::Error::new(
                io::ErrorKind::NotConnected,
                "connection was closed by the server",
            ));
        }
        self.write_request(method, path, body)?;
        self.read_response()
    }
}

/// One-shot HTTP client: connects to `addr`, sends a single
/// `Connection: close` request and reads the response. Kept alongside
/// [`Client`] for callers that genuinely want one request per
/// connection (health probes, the shutdown call).
///
/// # Errors
///
/// Any socket failure, or a malformed / over-limit response.
pub fn call(
    addr: impl ToSocketAddrs,
    method: &str,
    path: &str,
    body: &str,
) -> io::Result<Response> {
    let mut client = Client::connect(addr)?;
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: qspr\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len(),
    );
    client.writer.write_all(head.as_bytes())?;
    client.writer.write_all(body.as_bytes())?;
    client.writer.flush()?;
    client.read_response()
}

fn bad(message: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, message.to_owned())
}

/// Reads one CRLF- (or bare-LF-) terminated line, without the
/// terminator. `Ok(None)` only on EOF before the first byte.
fn read_line<R: BufRead>(reader: &mut R, limit: usize) -> io::Result<Option<String>> {
    let mut buf = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        match reader.read(&mut byte)? {
            0 => {
                if buf.is_empty() {
                    return Ok(None);
                }
                return Err(bad("unexpected EOF in line"));
            }
            _ => match byte[0] {
                b'\n' => break,
                b'\r' => {}
                b => buf.push(b),
            },
        }
        if buf.len() > limit {
            return Err(bad("line exceeds limit"));
        }
    }
    String::from_utf8(buf)
        .map(Some)
        .map_err(|_| bad("non-UTF-8 line"))
}

/// Reads exactly `length` body bytes.
fn read_body<R: BufRead>(reader: &mut R, length: usize) -> io::Result<String> {
    let mut body = vec![0u8; length];
    reader.read_exact(&mut body)?;
    String::from_utf8(body).map_err(|_| bad("non-UTF-8 body"))
}
