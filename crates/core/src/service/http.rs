//! A deliberately tiny HTTP/1.1 subset: just enough wire protocol for
//! the `qspr serve` JSON endpoints, hand-rolled on `std::net` in the
//! same no-new-dependencies spirit as the vendored shims.
//!
//! Scope (and non-goals): request line + headers + `Content-Length`
//! bodies only — no chunked encoding, no TLS, no keep-alive (every
//! response carries `Connection: close`, which keeps the fixed worker
//! pool starvation-free: a connection can never pin a worker between
//! requests). Limits on the request line, header count and body size
//! bound what an untrusted peer can make the server buffer.

use std::io::{self, BufReader, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Longest accepted request line (method + path + version), bytes.
const MAX_REQUEST_LINE: usize = 8 * 1024;
/// Most headers accepted on one request.
const MAX_HEADERS: usize = 100;
/// Largest accepted request body, bytes (QASM programs are small; the
/// biggest paper circuit is under 4 KiB).
pub const MAX_BODY: usize = 8 * 1024 * 1024;

/// One parsed HTTP request: method, path and (possibly empty) body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Uppercase method token (`GET`, `POST`, ...), as sent.
    pub method: String,
    /// Request target, e.g. `/map`.
    pub path: String,
    /// Decoded body (empty when no `Content-Length` was sent).
    pub body: String,
}

/// One response about to be written (or just read back by the client).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Response body.
    pub body: String,
    /// `Content-Type` to send (`application/json` for every endpoint
    /// except `GET /metrics`, which serves Prometheus text format).
    pub content_type: &'static str,
}

impl Response {
    /// A JSON response with `status` and `body`.
    pub fn new(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            body: body.into(),
            content_type: "application/json",
        }
    }

    /// A plain-text response (the Prometheus exposition content type,
    /// which generic text consumers accept too).
    pub fn text(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            body: body.into(),
            content_type: "text/plain; version=0.0.4",
        }
    }

    /// The standard reason phrase for the status codes this service
    /// emits (anything unlisted degrades to `"Unknown"`).
    pub fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            413 => "Content Too Large",
            422 => "Unprocessable Content",
            500 => "Internal Server Error",
            _ => "Unknown",
        }
    }
}

/// Reads one request from `stream`. Returns `Ok(None)` on a clean EOF
/// before any byte (the peer connected and left); protocol violations
/// surface as `io::ErrorKind::InvalidData` so the caller can answer
/// with `400`.
pub fn read_request(stream: &mut BufReader<TcpStream>) -> io::Result<Option<Request>> {
    let Some(line) = read_line(stream, MAX_REQUEST_LINE)? else {
        return Ok(None);
    };
    let mut parts = line.split_whitespace();
    let (method, path, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v), None) => (m, p, v),
        _ => return Err(bad("malformed request line")),
    };
    if !matches!(version, "HTTP/1.1" | "HTTP/1.0") {
        return Err(bad("unsupported HTTP version"));
    }
    let mut content_length: usize = 0;
    for _ in 0..MAX_HEADERS {
        let header =
            read_line(stream, MAX_REQUEST_LINE)?.ok_or_else(|| bad("truncated headers"))?;
        if header.is_empty() {
            let body = read_body(stream, content_length)?;
            return Ok(Some(Request {
                method: method.to_owned(),
                path: path.to_owned(),
                body,
            }));
        }
        let Some((name, value)) = header.split_once(':') else {
            return Err(bad("malformed header"));
        };
        if name.trim().eq_ignore_ascii_case("content-length") {
            content_length = value
                .trim()
                .parse()
                .map_err(|_| bad("invalid Content-Length"))?;
            if content_length > MAX_BODY {
                // InvalidInput (vs InvalidData for syntax errors) lets
                // the server answer 413 instead of 400.
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    "body exceeds limit",
                ));
            }
        }
    }
    Err(bad("too many headers"))
}

/// Writes `response` as a complete `Connection: close` HTTP/1.1
/// message.
pub fn write_response(stream: &mut TcpStream, response: &Response) -> io::Result<()> {
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        response.status,
        response.reason(),
        response.content_type,
        response.body.len(),
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(response.body.as_bytes())?;
    stream.flush()
}

/// One-shot HTTP client: connects to `addr`, sends a single request and
/// reads the response. This is the client side used by `loadgen`, the
/// integration tests and the CI smoke — and a reference for how to talk
/// to the service from anything else.
///
/// # Errors
///
/// Any socket failure, or a malformed / over-limit response.
pub fn call(
    addr: impl ToSocketAddrs,
    method: &str,
    path: &str,
    body: &str,
) -> io::Result<Response> {
    let stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(120)))?;
    stream.set_write_timeout(Some(Duration::from_secs(120)))?;
    let mut writer = stream.try_clone()?;
    writer.write_all(
        format!(
            "{method} {path} HTTP/1.1\r\nHost: qspr\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
            body.len(),
        )
        .as_bytes(),
    )?;
    writer.write_all(body.as_bytes())?;
    writer.flush()?;

    let mut reader = BufReader::new(stream);
    let status_line =
        read_line(&mut reader, MAX_REQUEST_LINE)?.ok_or_else(|| bad("empty response"))?;
    let status: u16 = status_line
        .strip_prefix("HTTP/1.1 ")
        .or_else(|| status_line.strip_prefix("HTTP/1.0 "))
        .and_then(|rest| rest.split_whitespace().next())
        .and_then(|code| code.parse().ok())
        .ok_or_else(|| bad("malformed status line"))?;
    let mut content_length: usize = 0;
    for _ in 0..MAX_HEADERS {
        let header =
            read_line(&mut reader, MAX_REQUEST_LINE)?.ok_or_else(|| bad("truncated headers"))?;
        if header.is_empty() {
            let body = read_body(&mut reader, content_length)?;
            // The one-shot client does not parse the Content-Type
            // header back; it reports the default.
            return Ok(Response::new(status, body));
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| bad("invalid Content-Length"))?;
                if content_length > MAX_BODY {
                    return Err(bad("response body exceeds limit"));
                }
            }
        }
    }
    Err(bad("too many headers"))
}

fn bad(message: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, message.to_owned())
}

/// Reads one CRLF- (or bare-LF-) terminated line, without the
/// terminator. `Ok(None)` only on EOF before the first byte.
fn read_line(reader: &mut BufReader<TcpStream>, limit: usize) -> io::Result<Option<String>> {
    let mut buf = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        match reader.read(&mut byte)? {
            0 => {
                if buf.is_empty() {
                    return Ok(None);
                }
                return Err(bad("unexpected EOF in line"));
            }
            _ => match byte[0] {
                b'\n' => break,
                b'\r' => {}
                b => buf.push(b),
            },
        }
        if buf.len() > limit {
            return Err(bad("line exceeds limit"));
        }
    }
    String::from_utf8(buf)
        .map(Some)
        .map_err(|_| bad("non-UTF-8 line"))
}

/// Reads exactly `length` body bytes.
fn read_body(reader: &mut BufReader<TcpStream>, length: usize) -> io::Result<String> {
    let mut body = vec![0u8; length];
    reader.read_exact(&mut body)?;
    String::from_utf8(body).map_err(|_| bad("non-UTF-8 body"))
}
