//! `qspr serve` — a long-running mapping service with a result cache.
//!
//! Every other entry point in the workspace is a one-shot process: the
//! CLI and [`BatchMapper`](crate::BatchMapper) re-parse, re-place and
//! re-route from scratch on each invocation, even though the flow is
//! fully seed-determined and identical requests are common (the same
//! QECC encode blocks recur across suites). This module keeps the
//! mapper resident: a hand-rolled HTTP/1.1 JSON server (on
//! `std::net::TcpListener` — no new dependencies, same spirit as the
//! vendored shims) with a fixed worker thread pool, one
//! `Arc<Fabric>`-sharing [`Flow`] per requested configuration, and a
//! seed-deterministic LRU **mapping cache** keyed by the canonical
//! [`Flow::fingerprint`], so repeated requests return byte-identical
//! cached responses without touching the mapper.
//!
//! # Endpoints
//!
//! | endpoint | body | response |
//! |---|---|---|
//! | `POST /map` | `{"program", "policy"?, "router"?, "m"?, "jobs"?, "trace"?, "fabric"?}` | the [`FlowSummary`](crate::FlowSummary) JSON of `qspr map --format json` |
//! | `POST /compare` | `{"program", "name"?, "router"?, "m"?, "jobs"?, "fabric"?}` | the [`ComparisonRow`](crate::ComparisonRow) JSON of `qspr compare --format json` |
//! | `POST /sta` | `{"program", "policy"?, "router"?, "m"?, "jobs"?, "feedback"?, "fabric"?}` | the [`qspr_sta::TimingReport`] JSON of `qspr sta --format json` |
//! | `GET /healthz` | — | `{"status":"ok","version":...}` (the crate version the CLI reports) |
//! | `GET /stats` | — | [`StatsSnapshot`] JSON: requests, cache hits/misses, worker busy time, uptime, bound address |
//! | `GET /metrics` | — | Prometheus text exposition: request counts by endpoint/status, cache hits/misses, queue-wait and handler-latency histograms, per-phase span timings |
//! | `POST /shutdown` | — | `{"status":"shutting-down"}`, then a graceful stop |
//!
//! Defaults mirror the CLI: `policy` `"qspr"`, `router` `"greedy"`,
//! `m` 25, `jobs` 1, `trace` false. The `"jobs"` field grants the
//! mapper worker threads for intra-request parallelism (the `--jobs`
//! flag of `qspr map`); it never changes response bytes, and the
//! service clamps it to [`MapService::jobs_budget`] so concurrent
//! request workers times intra-map threads cannot oversubscribe the
//! host. The optional `"fabric"` field carries a
//! fabric description *document* (a JSON [`qspr_fabric::FabricSpec`]
//! embedded as a string, or ASCII art) and maps that request onto the
//! described fabric instead of the server's resident one; a malformed
//! document is `422`. Unknown body fields are rejected (`400`), an
//! unmappable program is `422`, and every response is
//! `application/json` (except `GET /metrics`, which is Prometheus
//! plain text) with `Connection: close` (one request per connection
//! keeps the fixed pool starvation-free). Untrusted input
//! is bounded on every axis: request line/header/body size limits in
//! [`http`], JSON nesting depth in the parser, and `m` (the one field
//! that scales *work*, not input size) capped at 10 000 seeds per
//! request.
//!
//! # Determinism and the cache
//!
//! The flow is seed-determined, so a request's response bytes are a
//! pure function of the fingerprint **except** for the `"timing"`
//! object of `/map` (placement/run wall-clock, reported exactly like
//! the CLI does — see [`normalize_timing`]). The cache stores the cold
//! response verbatim, so repeated requests are byte-identical;
//! `/compare` responses carry no clock at all and are byte-identical
//! to the CLI's for the same inputs. The `loadgen` binary in
//! `qspr-bench` asserts both properties under concurrent load.
//!
//! # Examples
//!
//! ```
//! use std::sync::Arc;
//! use qspr::service::{MapService, ServeConfig, Server, http};
//! use qspr_fabric::Fabric;
//!
//! # fn main() -> std::io::Result<()> {
//! let service = Arc::new(MapService::new(Fabric::quale_45x85(), 64)); // 64-entry cache
//! let config = ServeConfig {
//!     addr: "127.0.0.1:0".into(), // ephemeral port
//!     threads: 2,
//!     log: false,
//! };
//! let handle = Server::bind(Arc::clone(&service), &config)?.spawn();
//!
//! let health = http::call(handle.addr(), "GET", "/healthz", "")?;
//! assert_eq!(health.status, 200);
//! assert!(health.body.starts_with(r#"{"status":"ok","version":"#));
//!
//! let metrics = http::call(handle.addr(), "GET", "/metrics", "")?;
//! assert!(metrics.body.contains("# TYPE qspr_http_requests_total counter"));
//!
//! handle.shutdown()?;
//! # Ok(())
//! # }
//! ```

pub mod http;

mod cache;

pub use cache::LruCache;
pub use http::{Request, Response};

use std::collections::HashMap;
use std::fmt;
use std::io;
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

use qspr_fabric::Fabric;
use qspr_obs::Registry;
use qspr_qasm::Program;
use qspr_route::RouterKind;

use crate::error::QsprError;
use crate::flow::{Flow, FlowPolicy};
use crate::json::{JsonObject, JsonValue, ToJson};

/// How a [`Server`] binds and sizes its worker pool. (The result-cache
/// capacity belongs to [`MapService::new`] — the service, not the
/// transport, owns the cache.)
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeConfig {
    /// Bind address (`host:port`; port 0 picks an ephemeral port).
    pub addr: String,
    /// Fixed worker-pool size (clamped to at least 1).
    pub threads: usize,
    /// Emit one structured access-log line per request to stderr
    /// (`--log` on the CLI).
    pub log: bool,
}

impl Default for ServeConfig {
    /// `127.0.0.1:7878`, one worker per CPU, no access log.
    fn default() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:7878".into(),
            threads: thread::available_parallelism().map_or(1, |n| n.get()),
            log: false,
        }
    }
}

/// Default MVFB seed count when a request omits `"m"` — the same
/// default the CLI applies to `--m`.
const DEFAULT_SEEDS: usize = 25;

/// Largest `"m"` accepted from a request body. Seeds are the one
/// request field that scales *work* rather than input size (each seed
/// is a full placement search), so an untrusted body must not be able
/// to pin a worker with `m = 4e9` the way the CLI's operator-supplied
/// `--m` legitimately may. 10k is ~100x the paper's largest setting.
const MAX_SEEDS: usize = 10_000;

/// Monotonic service counters (updated with relaxed atomics; the
/// counters are statistics, not synchronization).
#[derive(Debug, Default)]
struct Counters {
    requests: AtomicU64,
    map_requests: AtomicU64,
    compare_requests: AtomicU64,
    sta_requests: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    errors: AtomicU64,
    busy_us: AtomicU64,
}

/// A point-in-time copy of the service counters, serialized by
/// `GET /stats`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Total requests handled (every endpoint, every status).
    pub requests: u64,
    /// `POST /map` requests.
    pub map_requests: u64,
    /// `POST /compare` requests.
    pub compare_requests: u64,
    /// `POST /sta` requests.
    pub sta_requests: u64,
    /// Mapping-cache hits.
    pub cache_hits: u64,
    /// Mapping-cache misses (cold mappings executed).
    pub cache_misses: u64,
    /// Entries currently cached.
    pub cache_entries: u64,
    /// Configured cache capacity.
    pub cache_capacity: u64,
    /// Responses with a 4xx/5xx status.
    pub errors: u64,
    /// Cumulative wall-clock time workers spent handling requests, µs.
    pub busy_us: u64,
    /// Milliseconds since the service was created.
    pub uptime_ms: u64,
    /// Whole seconds since the service was created (`uptime_ms /
    /// 1000`, pre-divided for dashboards).
    pub uptime_s: u64,
    /// The server's bound address (empty until a [`Server`] binds the
    /// service to a socket).
    pub addr: String,
}

impl ToJson for StatsSnapshot {
    /// Stable JSON schema, pinned by a golden test:
    /// `{"requests","map_requests","compare_requests","sta_requests",
    /// "cache_hits","cache_misses","cache_entries","cache_capacity",
    /// "errors","busy_us","uptime_ms","uptime_s","addr"}`.
    fn to_json(&self) -> String {
        JsonObject::new()
            .number("requests", self.requests)
            .number("map_requests", self.map_requests)
            .number("compare_requests", self.compare_requests)
            .number("sta_requests", self.sta_requests)
            .number("cache_hits", self.cache_hits)
            .number("cache_misses", self.cache_misses)
            .number("cache_entries", self.cache_entries)
            .number("cache_capacity", self.cache_capacity)
            .number("errors", self.errors)
            .number("busy_us", self.busy_us)
            .number("uptime_ms", self.uptime_ms)
            .number("uptime_s", self.uptime_s)
            .string("addr", &self.addr)
            .build()
    }
}

/// The resident mapping service: one shared fabric, one [`Flow`] per
/// requested configuration, one LRU cache of response bodies.
///
/// `MapService` is transport-free — [`MapService::handle`] maps a
/// parsed [`Request`] to a [`Response`] and is what the golden tests
/// exercise; [`Server`] adds the TCP listener and worker pool on top.
pub struct MapService {
    fabric: Arc<Fabric>,
    /// Upper bound on a request's `"jobs"` value (see
    /// [`MapService::jobs_budget`]).
    jobs_budget: usize,
    /// One configured `Flow` per `(policy, router, m, trace, jobs)`,
    /// all sharing `fabric` behind the same `Arc`.
    flows: Mutex<HashMap<String, Flow>>,
    cache: Mutex<LruCache<String>>,
    counters: Counters,
    /// The Prometheus-rendered metrics behind `GET /metrics`.
    metrics: Arc<Registry>,
    /// Set by [`Server::bind`]; surfaced in `/stats`.
    bound_addr: Mutex<Option<SocketAddr>>,
    started: Instant,
    shutdown: AtomicBool,
}

impl fmt::Debug for MapService {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MapService")
            .field(
                "fabric",
                &format_args!("{}x{}", self.fabric.rows(), self.fabric.cols()),
            )
            .field("started", &self.started)
            .field("shutdown", &self.shutdown)
            .finish_non_exhaustive()
    }
}

/// Which mapping endpoint a request hit (they differ in allowed fields
/// and response schema).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Endpoint {
    Map,
    Compare,
    Sta,
}

/// A parsed, validated mapping request body.
#[derive(Debug)]
struct MapRequest {
    program_text: String,
    program: Program,
    policy: FlowPolicy,
    router: RouterKind,
    seeds: usize,
    trace: bool,
    /// Worker threads granted to the mapper (clamped to the service's
    /// [`MapService::jobs_budget`] before use; never changes bytes).
    jobs: usize,
    /// `/compare` only: the circuit name echoed in the row.
    name: String,
    /// `/sta` only: remap with slack-aware feedback, keeping the
    /// faster run.
    feedback: bool,
    /// Optional fabric description document (spec JSON or ASCII art)
    /// overriding the server's resident fabric for this request.
    fabric: Option<String>,
}

impl MapService {
    /// Creates a service mapping onto `fabric` with a
    /// `cache_capacity`-entry result cache.
    pub fn new(fabric: impl Into<Arc<Fabric>>, cache_capacity: usize) -> MapService {
        MapService {
            fabric: fabric.into(),
            jobs_budget: thread::available_parallelism().map_or(1, |n| n.get()),
            flows: Mutex::new(HashMap::new()),
            cache: Mutex::new(LruCache::new(cache_capacity)),
            counters: Counters::default(),
            metrics: Arc::new(Registry::new()),
            bound_addr: Mutex::new(None),
            started: Instant::now(),
            shutdown: AtomicBool::new(false),
        }
    }

    /// The fabric every request maps onto.
    pub fn fabric(&self) -> &Arc<Fabric> {
        &self.fabric
    }

    /// Sets the server-wide cap on per-request `"jobs"` values
    /// (clamped to at least 1; defaults to the host's available
    /// parallelism).
    ///
    /// `"jobs"` scales *threads* the way `"m"` scales work, so an
    /// untrusted body must not be able to multiply the worker pool.
    /// Values above the budget are clamped silently rather than
    /// rejected — `"jobs"` is a performance hint that never changes
    /// response bytes, so clamping preserves the answer.
    #[must_use]
    pub fn with_jobs_budget(mut self, budget: usize) -> MapService {
        self.jobs_budget = budget.max(1);
        self
    }

    /// The largest `"jobs"` value a request is granted; anything above
    /// is clamped down before the flow is configured.
    pub fn jobs_budget(&self) -> usize {
        self.jobs_budget
    }

    /// The metrics registry rendered by `GET /metrics`. Shared so the
    /// CLI can install a [`qspr_obs::MetricsSpanSink`] over the same
    /// registry and surface per-phase mapping spans alongside the
    /// request metrics.
    pub fn metrics(&self) -> &Arc<Registry> {
        &self.metrics
    }

    /// Records the address a [`Server`] bound this service to (surfaced
    /// in `/stats`).
    pub fn set_bound_addr(&self, addr: SocketAddr) {
        *self.bound_addr.lock().expect("bound_addr lock") = Some(addr);
    }

    /// `true` once a `POST /shutdown` (or [`MapService::request_shutdown`])
    /// asked the server to stop accepting connections.
    pub fn shutdown_requested(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Asks the accept loop to stop (idempotent).
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// A copy of the current counters.
    pub fn stats(&self) -> StatsSnapshot {
        let c = &self.counters;
        let (cache_entries, cache_capacity) = {
            let cache = self.cache.lock().expect("cache lock");
            (cache.len() as u64, cache.capacity() as u64)
        };
        let uptime = self.started.elapsed();
        StatsSnapshot {
            requests: c.requests.load(Ordering::Relaxed),
            map_requests: c.map_requests.load(Ordering::Relaxed),
            compare_requests: c.compare_requests.load(Ordering::Relaxed),
            sta_requests: c.sta_requests.load(Ordering::Relaxed),
            cache_hits: c.cache_hits.load(Ordering::Relaxed),
            cache_misses: c.cache_misses.load(Ordering::Relaxed),
            cache_entries,
            cache_capacity,
            errors: c.errors.load(Ordering::Relaxed),
            busy_us: c.busy_us.load(Ordering::Relaxed),
            uptime_ms: uptime.as_millis() as u64,
            uptime_s: uptime.as_secs(),
            addr: self
                .bound_addr
                .lock()
                .expect("bound_addr lock")
                .map_or(String::new(), |addr| addr.to_string()),
        }
    }

    /// Routes one request to its endpoint and produces the response.
    ///
    /// This is the whole service minus the socket: deterministic,
    /// lock-scoped, safe to call from any number of threads.
    pub fn handle(&self, request: &Request) -> Response {
        let t0 = Instant::now();
        self.counters.requests.fetch_add(1, Ordering::Relaxed);
        const KNOWN: &[&str] = &[
            "/healthz",
            "/stats",
            "/metrics",
            "/shutdown",
            "/map",
            "/compare",
            "/sta",
        ];
        let response = match (request.method.as_str(), request.path.as_str()) {
            // The version is the one `qspr --version` prints; both read
            // the same Cargo manifest field at compile time.
            ("GET", "/healthz") => Response::new(
                200,
                concat!(
                    r#"{"status":"ok","version":""#,
                    env!("CARGO_PKG_VERSION"),
                    "\"}"
                ),
            ),
            ("GET", "/stats") => Response::new(200, self.stats().to_json()),
            ("GET", "/metrics") => Response::text(200, self.metrics.render()),
            ("POST", "/shutdown") => {
                self.request_shutdown();
                Response::new(200, r#"{"status":"shutting-down"}"#)
            }
            ("POST", "/map") => self.mapping(Endpoint::Map, &request.body),
            ("POST", "/compare") => self.mapping(Endpoint::Compare, &request.body),
            ("POST", "/sta") => self.mapping(Endpoint::Sta, &request.body),
            (_, path) if KNOWN.contains(&path) => {
                error_response(405, &format!("method {} not allowed here", request.method))
            }
            (_, path) => error_response(404, &format!("no endpoint {path}")),
        };
        if response.status >= 400 {
            self.counters.errors.fetch_add(1, Ordering::Relaxed);
        }
        let elapsed_us = t0.elapsed().as_micros() as u64;
        self.counters
            .busy_us
            .fetch_add(elapsed_us, Ordering::Relaxed);
        // Per-endpoint request count (by status) and handler latency.
        // Unknown paths share one "other" label so an untrusted peer
        // cannot grow the registry without bound.
        let endpoint = if KNOWN.contains(&request.path.as_str()) {
            request.path.as_str()
        } else {
            "other"
        };
        let status = response.status.to_string();
        self.metrics
            .counter(
                "qspr_http_requests_total",
                "Requests handled, by endpoint and status.",
                &[("endpoint", endpoint), ("status", &status)],
            )
            .inc();
        self.metrics
            .histogram(
                "qspr_handler_latency_us",
                "Wall-clock handler time per request, microseconds.",
                &[("endpoint", endpoint)],
            )
            .record(elapsed_us);
        response
    }

    /// `POST /map`, `POST /compare` and `POST /sta`: parse, consult
    /// the cache, run the flow on a miss, store and return the body.
    fn mapping(&self, endpoint: Endpoint, body: &str) -> Response {
        let counter = match endpoint {
            Endpoint::Map => &self.counters.map_requests,
            Endpoint::Compare => &self.counters.compare_requests,
            Endpoint::Sta => &self.counters.sta_requests,
        };
        counter.fetch_add(1, Ordering::Relaxed);
        let mut request = match parse_mapping_request(endpoint, body) {
            Ok(request) => request,
            Err(e) => return error_response(400, &e.to_string()),
        };
        // The budget clamp keeps batch-level concurrency (the worker
        // pool) times intra-map parallelism bounded no matter what the
        // body asked for; results are byte-identical at every value.
        request.jobs = request.jobs.min(self.jobs_budget);
        // A request-supplied fabric document replaces the resident
        // fabric for this request only; a document that fails to parse
        // is well-formed JSON carrying unprocessable content, i.e. 422.
        let fabric = match &request.fabric {
            None => None,
            Some(text) => match Fabric::parse(text) {
                Ok(fabric) => Some(Arc::new(fabric)),
                Err(e) => return error_response(422, &e.to_string()),
            },
        };
        let mut flow = self.flow_for(&request, fabric);
        // Timing analysis replays the recorded trace, so `/sta` forces
        // trace recording; the feedback mode rides on the same flow.
        if endpoint == Endpoint::Sta {
            flow = flow.record_trace(true).sta_feedback(request.feedback);
        }
        // The fingerprint hashes fabric geometry and capacities but not
        // spec provenance (which shows up in the response's `fabric`
        // block), so the document itself joins the cache key verbatim.
        let fabric_key = request.fabric.as_deref().map_or(String::new(), |text| {
            format!("fabric:{}:{text}|", text.len())
        });
        let key = match endpoint {
            Endpoint::Map => format!(
                "map|{fabric_key}{}",
                flow.fingerprint(&request.program_text)
            ),
            Endpoint::Compare => format!(
                "compare|{fabric_key}{}:{}|{}",
                request.name.len(),
                request.name,
                flow.fingerprint(&request.program_text)
            ),
            // The fingerprint already carries the trace and feedback
            // axes set above.
            Endpoint::Sta => format!(
                "sta|{fabric_key}{}",
                flow.fingerprint(&request.program_text)
            ),
        };
        if let Some(cached) = self.cache.lock().expect("cache lock").get(&key) {
            self.counters.cache_hits.fetch_add(1, Ordering::Relaxed);
            self.cache_metric("qspr_cache_hits_total", "Mapping-cache hits.");
            return Response::new(200, cached.clone());
        }
        self.counters.cache_misses.fetch_add(1, Ordering::Relaxed);
        self.cache_metric(
            "qspr_cache_misses_total",
            "Mapping-cache misses (cold mappings executed).",
        );
        let result = match endpoint {
            Endpoint::Map => flow.run(&request.program).map(|r| r.summary().to_json()),
            Endpoint::Compare => flow
                .compare(&request.name, &request.program)
                .map(|row| row.to_json()),
            Endpoint::Sta => flow.run(&request.program).and_then(|result| {
                flow.timing_report(&request.program, &result)
                    .map(|report| report.to_json())
            }),
        };
        match result {
            Ok(json) => {
                self.cache
                    .lock()
                    .expect("cache lock")
                    .insert(key, json.clone());
                Response::new(200, json)
            }
            // The program parsed but cannot be mapped (stall, placement
            // mismatch): the request was well-formed, the content is not
            // processable.
            Err(e) => error_response(422, &e.to_string()),
        }
    }

    /// The shared [`Flow`] for a request's configuration, created on
    /// first use; every flow shares the service fabric's `Arc`. A
    /// request-supplied `fabric` gets a one-off flow instead — the
    /// flows map is keyed by configuration only and must stay bound to
    /// the resident fabric.
    fn flow_for(&self, request: &MapRequest, fabric: Option<Arc<Fabric>>) -> Flow {
        if let Some(fabric) = fabric {
            return Self::configure(Flow::on(fabric), request);
        }
        let key = format!(
            "{}|{}|{}|{}|{}",
            request.policy, request.router, request.seeds, request.trace, request.jobs
        );
        let mut flows = self.flows.lock().expect("flows lock");
        flows
            .entry(key)
            .or_insert_with(|| Self::configure(Flow::on(Arc::clone(&self.fabric)), request))
            .clone()
    }

    /// Applies a request's configuration fields to `flow`.
    fn configure(flow: Flow, request: &MapRequest) -> Flow {
        flow.policy(request.policy)
            .router(request.router)
            .seeds(request.seeds)
            .record_trace(request.trace)
            .jobs(request.jobs)
    }

    /// Bumps one of the two cache counters in the metrics registry
    /// (mirrors the `Counters` atomics into `/metrics`).
    fn cache_metric(&self, name: &str, help: &str) {
        self.metrics.counter(name, help, &[]).inc();
    }
}

/// Renders an error status with the `{"error":...}` body shape (pinned
/// by a golden test).
fn error_response(status: u16, message: &str) -> Response {
    Response::new(status, JsonObject::new().string("error", message).build())
}

/// Returns `json` with the contents of its `"timing"` object replaced
/// by `"cpu_ms":0,"wall_us":0` (bodies without the object pass through
/// unchanged).
///
/// The `"timing"` block — placement/run wall-clock — is the single
/// non-deterministic part of the `/map` response schema, so this is the
/// normalization a client applies to compare bodies across independent
/// runs (cached repeats need no normalization: they are
/// byte-identical). The `loadgen` oracle and the service's own tests
/// share this definition. The timing object is flat (no nested
/// braces), so scanning to the next `}` is exact.
///
/// # Examples
///
/// ```
/// use qspr::service::normalize_timing;
///
/// let a = r#"{"latency_us":634,"timing":{"cpu_ms":17,"wall_us":17941},"moves":410}"#;
/// let b = r#"{"latency_us":634,"timing":{"cpu_ms":3,"wall_us":3120},"moves":410}"#;
/// assert_eq!(normalize_timing(a), normalize_timing(b));
/// assert_eq!(normalize_timing(r#"{"x":1}"#), r#"{"x":1}"#);
/// ```
pub fn normalize_timing(json: &str) -> String {
    const KEY: &str = "\"timing\":{";
    let Some(start) = json.find(KEY) else {
        return json.to_owned();
    };
    let inner_at = start + KEY.len();
    let end = json[inner_at..]
        .find('}')
        .map_or(json.len(), |i| inner_at + i);
    format!(
        "{}\"cpu_ms\":0,\"wall_us\":0{}",
        &json[..inner_at],
        &json[end..]
    )
}

/// Parses and validates a `/map` or `/compare` body against its
/// endpoint's allowed fields, applying the CLI defaults.
fn parse_mapping_request(endpoint: Endpoint, body: &str) -> Result<MapRequest, QsprError> {
    let value =
        JsonValue::parse(body).map_err(|e| QsprError::usage(format!("invalid JSON body: {e}")))?;
    let Some(fields) = value.as_object() else {
        return Err(QsprError::usage("request body must be a JSON object"));
    };
    let allowed: &[&str] = match endpoint {
        Endpoint::Map => &[
            "program", "policy", "router", "m", "jobs", "trace", "fabric",
        ],
        Endpoint::Compare => &["program", "name", "router", "m", "jobs", "fabric"],
        Endpoint::Sta => &[
            "program", "policy", "router", "m", "jobs", "feedback", "fabric",
        ],
    };
    for (key, _) in fields {
        if !allowed.contains(&key.as_str()) {
            return Err(QsprError::usage(format!(
                "unknown field {key:?} (allowed: {})",
                allowed.join(", ")
            )));
        }
    }
    let program_text = value
        .get("program")
        .and_then(JsonValue::as_str)
        .ok_or_else(|| QsprError::usage("field \"program\" (string) is required"))?
        .to_owned();
    let program = Program::parse(&program_text)?;
    let policy = match value.get("policy") {
        None => FlowPolicy::Qspr,
        Some(v) => v
            .as_str()
            .ok_or_else(|| QsprError::usage("field \"policy\" must be a string"))?
            .parse()?,
    };
    let router = match value.get("router") {
        None => RouterKind::Greedy,
        Some(v) => v
            .as_str()
            .ok_or_else(|| QsprError::usage("field \"router\" must be a string"))?
            .parse()
            .map_err(|e| QsprError::usage(format!("{e}")))?,
    };
    let seeds = match value.get("m") {
        None => DEFAULT_SEEDS,
        Some(v) => {
            let m = v
                .as_u64()
                .ok_or_else(|| QsprError::usage("field \"m\" must be a non-negative integer"))?;
            if m > MAX_SEEDS as u64 {
                return Err(QsprError::usage(format!(
                    "field \"m\" exceeds the service limit of {MAX_SEEDS}"
                )));
            }
            m as usize
        }
    };
    let jobs = match value.get("jobs") {
        None => 1,
        Some(v) => {
            let jobs = v
                .as_u64()
                .filter(|&jobs| jobs > 0)
                .ok_or_else(|| QsprError::usage("field \"jobs\" must be a positive integer"))?;
            jobs as usize
        }
    };
    let trace = match value.get("trace") {
        None => false,
        Some(v) => v
            .as_bool()
            .ok_or_else(|| QsprError::usage("field \"trace\" must be a boolean"))?,
    };
    let feedback = match value.get("feedback") {
        None => false,
        Some(v) => v
            .as_bool()
            .ok_or_else(|| QsprError::usage("field \"feedback\" must be a boolean"))?,
    };
    // Mirror the CLI's pairing rule: the feedback re-run only makes
    // sense against a negotiated pilot.
    if feedback && !matches!(router, RouterKind::Negotiated | RouterKind::Race) {
        return Err(QsprError::usage(
            "field \"feedback\" requires \"router\":\"negotiated\" or \"race\"",
        ));
    }
    let name = match value.get("name") {
        None => "program".to_owned(),
        Some(v) => v
            .as_str()
            .ok_or_else(|| QsprError::usage("field \"name\" must be a string"))?
            .to_owned(),
    };
    let fabric = match value.get("fabric") {
        None => None,
        Some(v) => Some(
            v.as_str()
                .ok_or_else(|| {
                    QsprError::usage("field \"fabric\" must be a string (spec JSON or ASCII art)")
                })?
                .to_owned(),
        ),
    };
    Ok(MapRequest {
        program_text,
        program,
        policy,
        router,
        seeds,
        trace,
        jobs,
        name,
        feedback,
        fabric,
    })
}

/// The TCP front end: a listener plus a fixed worker pool, all serving
/// one shared [`MapService`].
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    service: Arc<MapService>,
    threads: usize,
    log: bool,
}

impl Server {
    /// Binds `config.addr` (port 0 picks an ephemeral port — read the
    /// result back with [`Server::local_addr`]) and records the bound
    /// address on the service for `/stats`.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure (address in use, permission).
    pub fn bind(service: Arc<MapService>, config: &ServeConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        service.set_bound_addr(listener.local_addr()?);
        Ok(Server {
            listener,
            service,
            threads: config.threads.max(1),
            log: config.log,
        })
    }

    /// The actually bound address.
    ///
    /// # Errors
    ///
    /// Propagates the socket-introspection failure (exotic platforms).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Serves until shutdown is requested, then drains gracefully:
    /// the accept loop stops, already-queued connections are still
    /// served, in-flight requests finish, workers join.
    ///
    /// Connections are handed to a fixed pool of `threads` workers over
    /// a channel; each connection carries **one** request (responses
    /// are `Connection: close`), so a slow client can never pin a
    /// worker between requests.
    ///
    /// # Errors
    ///
    /// Returns the first fatal `accept` error. Per-connection I/O
    /// failures are answered with `400`/`413` where possible and never
    /// stop the server.
    pub fn run(self) -> io::Result<()> {
        let addr = self.local_addr()?;
        let service = &self.service;
        let log = self.log;
        // Each queued connection carries its enqueue time so workers
        // can report queue wait (time spent between accept and pickup).
        let (tx, rx) = mpsc::channel::<(TcpStream, Instant)>();
        let rx = Arc::new(Mutex::new(rx));
        thread::scope(|scope| {
            for _ in 0..self.threads {
                let rx = Arc::clone(&rx);
                scope.spawn(move || loop {
                    // Hold the receiver lock only to pull the next
                    // connection, never while serving it.
                    let next = rx.lock().expect("receiver lock").recv();
                    match next {
                        Ok((stream, queued)) => {
                            serve_connection(service, addr, stream, queued, log)
                        }
                        Err(_) => break, // sender dropped: drain done
                    }
                });
            }
            let result = loop {
                match self.listener.accept() {
                    Ok((stream, _)) => {
                        // A worker wakes this loop (by connecting) after
                        // flipping the flag; connections racing the
                        // shutdown are dropped unserved.
                        if service.shutdown_requested() {
                            break Ok(());
                        }
                        if tx.send((stream, Instant::now())).is_err() {
                            break Ok(());
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::ConnectionAborted => continue,
                    Err(e) => break Err(e),
                }
            };
            drop(tx);
            result
        })
    }

    /// Runs the server on a background thread, returning a
    /// [`ServerHandle`] for the bound address and a graceful
    /// [`ServerHandle::shutdown`]. The natural shape for tests and for
    /// embedding the service in a bigger process.
    pub fn spawn(self) -> ServerHandle {
        let addr = self.local_addr().expect("bound listener has an address");
        let service = Arc::clone(&self.service);
        let thread = thread::spawn(move || self.run());
        ServerHandle {
            addr,
            service,
            thread,
        }
    }
}

/// A running background [`Server`]: its address, its shared service
/// state, and the join handle used for graceful shutdown.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    service: Arc<MapService>,
    thread: thread::JoinHandle<io::Result<()>>,
}

impl ServerHandle {
    /// The server's bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared service state (counters, shutdown flag).
    pub fn service(&self) -> &Arc<MapService> {
        &self.service
    }

    /// Requests shutdown, wakes the accept loop and joins the server
    /// thread (in-flight requests finish first).
    ///
    /// # Errors
    ///
    /// Returns the server thread's fatal error, if it died on one.
    ///
    /// # Panics
    ///
    /// Panics if the server thread itself panicked.
    pub fn shutdown(self) -> io::Result<()> {
        self.service.request_shutdown();
        // Wake the blocking accept; if the server already exited the
        // connect simply fails, which is fine.
        let _ = TcpStream::connect(wake_addr(self.addr));
        self.thread.join().expect("server thread panicked")
    }
}

/// An address a client of *this process* can connect to in order to
/// reach the listener bound at `addr`: a wildcard bind (`0.0.0.0` /
/// `::`) is not a connectable destination everywhere, so the shutdown
/// wake-up targets loopback on the bound port instead.
fn wake_addr(addr: SocketAddr) -> SocketAddr {
    let mut addr = addr;
    if addr.ip().is_unspecified() {
        addr.set_ip(match addr.ip() {
            IpAddr::V4(_) => IpAddr::V4(Ipv4Addr::LOCALHOST),
            IpAddr::V6(_) => IpAddr::V6(Ipv6Addr::LOCALHOST),
        });
    }
    addr
}

/// Serves one connection: one request, one response, close. `queued`
/// is when the accept loop enqueued the connection; the gap until now
/// is the queue wait, recorded per connection.
fn serve_connection(
    service: &MapService,
    addr: SocketAddr,
    stream: TcpStream,
    queued: Instant,
    log: bool,
) {
    let wait_us = queued.elapsed().as_micros() as u64;
    service
        .metrics
        .histogram(
            "qspr_queue_wait_us",
            "Time connections spent queued for a worker, microseconds.",
            &[],
        )
        .record(wait_us);
    let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(30)));
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let mut write_half = write_half;
    let mut reader = std::io::BufReader::new(stream);
    let t0 = Instant::now();
    let response = match http::read_request(&mut reader) {
        Ok(Some(request)) => {
            let response = service.handle(&request);
            let shutting_down = request.method == "POST" && request.path == "/shutdown";
            let _ = http::write_response(&mut write_half, &response);
            if log {
                access_log(&request.method, &request.path, &response, wait_us, t0);
            }
            if shutting_down {
                // Wake the accept loop so it observes the flag.
                let _ = TcpStream::connect(wake_addr(addr));
            }
            return;
        }
        Ok(None) => return, // connected and left; nothing to answer
        Err(e) if e.kind() == io::ErrorKind::InvalidData => error_response(400, &e.to_string()),
        Err(e) if e.kind() == io::ErrorKind::InvalidInput => error_response(413, &e.to_string()),
        Err(_) => return, // socket-level failure; nothing we can send
    };
    service.counters.requests.fetch_add(1, Ordering::Relaxed);
    service.counters.errors.fetch_add(1, Ordering::Relaxed);
    let _ = http::write_response(&mut write_half, &response);
    if log {
        access_log("-", "-", &response, wait_us, t0);
    }
}

/// Writes one structured (logfmt) access-log line to stderr. Stderr,
/// not stdout: stdout carries exactly the startup banner the CI smoke
/// greps for, and stays machine-parseable.
fn access_log(method: &str, path: &str, response: &Response, wait_us: u64, started: Instant) {
    let time = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map_or(0, |d| d.as_secs());
    eprintln!(
        "time={time} method={method} path={path} status={} bytes={} wait_us={wait_us} dur_us={}",
        response.status,
        response.body.len(),
        started.elapsed().as_micros()
    );
}

#[cfg(test)]
mod tests;
