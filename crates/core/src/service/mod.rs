//! `qspr serve` — a long-running mapping service with a result cache.
//!
//! Every other entry point in the workspace is a one-shot process: the
//! CLI and [`crate::BatchMapper`] re-parse, re-place and
//! re-route from scratch on each invocation, even though the flow is
//! fully seed-determined and identical requests are common (the same
//! QECC encode blocks recur across suites). This module keeps the
//! mapper resident behind a fleet-grade, dependency-free front end:
//!
//! - **Persistent HTTP/1.1.** A hand-rolled readiness reactor
//!   (non-blocking sockets + `poll(2)` through a thin libc-free
//!   shim) owns every connection and feeds a fixed worker pool.
//!   Connections are keep-alive by default and clients may pipeline
//!   requests back-to-back; responses always come back in request
//!   order, whichever worker finishes first.
//! - **A sharded result cache.** Response bodies live in a
//!   [`ShardedCache`] — N independent LRU shards, each behind its own
//!   lock, keyed by the canonical
//!   [`Flow::fingerprint`](crate::Flow::fingerprint) — with optional
//!   TTL expiry and byte-budget accounting. Repeated requests return
//!   byte-identical cached responses without touching the mapper or
//!   contending on a global mutex.
//! - **Admission control.** Each heavy endpoint has a bounded queue;
//!   when it is full the reactor answers `429 Too Many Requests` with
//!   a `Retry-After` header instead of queueing without bound, so an
//!   overloaded server degrades predictably. Graceful drain is
//!   preserved: shutdown stops reads, finishes in-flight requests and
//!   flushes every buffered response.
//!
//! # Endpoints
//!
//! | endpoint | body | response |
//! |---|---|---|
//! | `POST /map` | `{"program", "policy"?, "router"?, "m"?, "jobs"?, "trace"?, "fabric"?}` | the [`FlowSummary`](crate::FlowSummary) JSON of `qspr map --format json` |
//! | `POST /compare` | `{"program", "name"?, "router"?, "m"?, "jobs"?, "fabric"?}` | the [`ComparisonRow`](crate::ComparisonRow) JSON of `qspr compare --format json` |
//! | `POST /sta` | `{"program", "policy"?, "router"?, "m"?, "jobs"?, "feedback"?, "fabric"?}` | the [`qspr_sta::TimingReport`] JSON of `qspr sta --format json` |
//! | `POST /batch` | `{"programs":[...], "names"?, "router"?, "m"?, "jobs"?, "fabric"?}` | a JSON **array** of [`ComparisonRow`](crate::ComparisonRow)s, in input order |
//! | `GET /healthz` | — | `{"status":"ok","version":...}` (the crate version the CLI reports) |
//! | `GET /stats` | — | [`StatsSnapshot`] JSON: requests, cache hits/misses (total and per shard), rejections, worker busy time, uptime, bound address |
//! | `GET /metrics` | — | Prometheus text exposition: request counts by endpoint/status, cache hits/misses (total and per shard), queue depth and wait, rejections, handler latency, per-phase span timings |
//! | `POST /shutdown` | — | `{"status":"shutting-down"}`, then a graceful drain |
//!
//! Defaults mirror the CLI: `policy` `"qspr"`, `router` `"greedy"`,
//! `m` 25, `jobs` 1, `trace` false. The `"jobs"` field grants the
//! mapper worker threads for intra-request parallelism (the `--jobs`
//! flag of `qspr map`); it never changes response bytes, and the
//! service clamps it to [`MapService::jobs_budget`] so concurrent
//! request workers times intra-map threads cannot oversubscribe the
//! host. `POST /batch` runs its programs through
//! [`crate::BatchMapper`] under the same clamp, consults
//! the cache per circuit (its items share cache entries with
//! `/compare`), and replies with one input-ordered array however the
//! pool scheduled the work. The optional `"fabric"` field carries a
//! fabric description *document* (a JSON [`qspr_fabric::FabricSpec`]
//! embedded as a string, or ASCII art) and maps that request onto the
//! described fabric instead of the server's resident one; a malformed
//! document is `422`. Unknown body fields are rejected (`400`), an
//! unmappable program is `422`, and every response is
//! `application/json` (except `GET /metrics`, which is Prometheus
//! plain text). Untrusted input is bounded on every axis: request
//! line/header/body size limits in [`http`], JSON nesting depth in the
//! parser, `m` (the one field that scales *work*, not input size)
//! capped at 10 000 seeds per request, `/batch` capped at 256 programs,
//! pipelining capped per connection, and the admission queues bounded
//! by `--max-queue`.
//!
//! # Determinism and the cache
//!
//! The flow is seed-determined, so a request's response bytes are a
//! pure function of the fingerprint **except** for the `"timing"`
//! object of `/map` (placement/run wall-clock, reported exactly like
//! the CLI does — see [`normalize_timing`]). The cache stores the cold
//! response verbatim, so repeated requests are byte-identical;
//! `/compare` and `/batch` responses carry no clock at all and are
//! byte-identical to the CLI's for the same inputs. The `loadgen`
//! binary in `qspr-bench` asserts both properties under concurrent
//! keep-alive load.
//!
//! # Examples
//!
//! ```
//! use std::sync::Arc;
//! use qspr::service::{MapService, ServeConfig, Server, http};
//! use qspr_fabric::Fabric;
//!
//! # fn main() -> std::io::Result<()> {
//! let service = Arc::new(MapService::new(Fabric::quale_45x85(), 64)); // 64-entry cache
//! let config = ServeConfig {
//!     addr: "127.0.0.1:0".into(), // ephemeral port
//!     threads: 2,
//!     ..ServeConfig::default()
//! };
//! let handle = Server::bind(Arc::clone(&service), &config)?.spawn();
//!
//! // One persistent connection, several requests.
//! let mut client = http::Client::connect(handle.addr())?;
//! let health = client.send("GET", "/healthz", "")?;
//! assert_eq!(health.status, 200);
//! assert!(health.body.starts_with(r#"{"status":"ok","version":"#));
//!
//! let metrics = client.send("GET", "/metrics", "")?;
//! assert!(metrics.body.contains("# TYPE qspr_http_requests_total counter"));
//! assert!(!client.is_closed()); // still keep-alive
//!
//! handle.shutdown()?;
//! # Ok(())
//! # }
//! ```

pub mod http;

mod cache;
mod poll;
mod reactor;

pub use cache::{CacheConfig, LruCache, ShardStats, ShardedCache};
pub use http::{Request, Response};

use std::collections::HashMap;
use std::fmt;
use std::io;
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Instant, SystemTime, UNIX_EPOCH};

use qspr_fabric::Fabric;
use qspr_obs::{Counter, Registry};
use qspr_qasm::Program;
use qspr_route::RouterKind;

use crate::batch::{BatchJob, BatchMapper};
use crate::error::QsprError;
use crate::flow::{Flow, FlowPolicy};
use crate::json::{JsonArray, JsonObject, JsonValue, ToJson};

/// How a [`Server`] binds, sizes its worker pool, and paces its
/// connections. (The result-cache geometry belongs to
/// [`MapService::new`] / [`MapService::with_cache`] — the service, not
/// the transport, owns the cache.)
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeConfig {
    /// Bind address (`host:port`; port 0 picks an ephemeral port).
    pub addr: String,
    /// Fixed worker-pool size (clamped to at least 1).
    pub threads: usize,
    /// Emit one structured access-log line per request to stderr
    /// (`--log` on the CLI).
    pub log: bool,
    /// Idle seconds before a keep-alive connection is closed. `0`
    /// disables persistence entirely: every response carries
    /// `Connection: close` (the pre-reactor behavior, `--keep-alive 0`
    /// on the CLI).
    pub keep_alive_secs: u64,
    /// Bound on each heavy endpoint's admission queue; a request
    /// arriving past it is answered `429` + `Retry-After` instead of
    /// queued (`--max-queue` on the CLI).
    pub max_queue: usize,
}

impl Default for ServeConfig {
    /// `127.0.0.1:7878`, one worker per CPU, no access log, 30-second
    /// keep-alive, 256-deep admission queues.
    fn default() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:7878".into(),
            threads: thread::available_parallelism().map_or(1, |n| n.get()),
            log: false,
            keep_alive_secs: 30,
            max_queue: 256,
        }
    }
}

/// Default MVFB seed count when a request omits `"m"` — the same
/// default the CLI applies to `--m`.
const DEFAULT_SEEDS: usize = 25;

/// Largest `"m"` accepted from a request body. Seeds are the one
/// request field that scales *work* rather than input size (each seed
/// is a full placement search), so an untrusted body must not be able
/// to pin a worker with `m = 4e9` the way the CLI's operator-supplied
/// `--m` legitimately may. 10k is ~100x the paper's largest setting.
const MAX_SEEDS: usize = 10_000;

/// Most programs accepted in one `POST /batch` body. Each program is a
/// full comparison flow (three mapped runs), so the cap bounds the
/// work one request can pin a worker with, exactly like [`MAX_SEEDS`].
const MAX_BATCH_PROGRAMS: usize = 256;

/// Monotonic service counters (updated with relaxed atomics; the
/// counters are statistics, not synchronization).
#[derive(Debug, Default)]
struct Counters {
    requests: AtomicU64,
    map_requests: AtomicU64,
    compare_requests: AtomicU64,
    sta_requests: AtomicU64,
    batch_requests: AtomicU64,
    batch_programs: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    rejected: AtomicU64,
    errors: AtomicU64,
    busy_us: AtomicU64,
}

/// A point-in-time copy of the service counters, serialized by
/// `GET /stats`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Total requests handled (every endpoint, every status, including
    /// rejected and protocol-error requests).
    pub requests: u64,
    /// `POST /map` requests.
    pub map_requests: u64,
    /// `POST /compare` requests.
    pub compare_requests: u64,
    /// `POST /sta` requests.
    pub sta_requests: u64,
    /// `POST /batch` requests.
    pub batch_requests: u64,
    /// Programs carried by `/batch` requests that reached the cache
    /// (each one is a hit or a miss, like a `/compare` request).
    pub batch_programs: u64,
    /// Mapping-cache hits, summed over shards.
    pub cache_hits: u64,
    /// Mapping-cache misses (cold mappings executed), summed over
    /// shards.
    pub cache_misses: u64,
    /// Entries currently cached.
    pub cache_entries: u64,
    /// Configured total cache capacity (entries).
    pub cache_capacity: u64,
    /// Bytes currently cached (keys + values).
    pub cache_bytes: u64,
    /// Per-shard occupancy and counters, in shard order.
    pub cache_shards: Vec<ShardStats>,
    /// Requests answered `429` by admission control.
    pub rejected: u64,
    /// Responses with a 4xx/5xx status.
    pub errors: u64,
    /// Cumulative wall-clock time workers spent handling requests, µs.
    pub busy_us: u64,
    /// Milliseconds since the service was created.
    pub uptime_ms: u64,
    /// Whole seconds since the service was created (`uptime_ms /
    /// 1000`, pre-divided for dashboards).
    pub uptime_s: u64,
    /// The server's bound address (empty until a [`Server`] binds the
    /// service to a socket).
    pub addr: String,
}

impl ToJson for StatsSnapshot {
    /// Stable JSON schema, pinned by a golden test:
    /// `{"requests","map_requests","compare_requests","sta_requests",
    /// "batch_requests","batch_programs","cache_hits","cache_misses",
    /// "cache_entries","cache_capacity","cache_bytes",
    /// "cache_shards":[{"entries","bytes","hits","misses","evictions"}],
    /// "rejected","errors","busy_us","uptime_ms","uptime_s","addr"}`.
    fn to_json(&self) -> String {
        let mut shards = JsonArray::new();
        for shard in &self.cache_shards {
            shards.push_raw(
                &JsonObject::new()
                    .number("entries", shard.entries)
                    .number("bytes", shard.bytes)
                    .number("hits", shard.hits)
                    .number("misses", shard.misses)
                    .number("evictions", shard.evictions)
                    .build(),
            );
        }
        JsonObject::new()
            .number("requests", self.requests)
            .number("map_requests", self.map_requests)
            .number("compare_requests", self.compare_requests)
            .number("sta_requests", self.sta_requests)
            .number("batch_requests", self.batch_requests)
            .number("batch_programs", self.batch_programs)
            .number("cache_hits", self.cache_hits)
            .number("cache_misses", self.cache_misses)
            .number("cache_entries", self.cache_entries)
            .number("cache_capacity", self.cache_capacity)
            .number("cache_bytes", self.cache_bytes)
            .raw("cache_shards", &shards.build())
            .number("rejected", self.rejected)
            .number("errors", self.errors)
            .number("busy_us", self.busy_us)
            .number("uptime_ms", self.uptime_ms)
            .number("uptime_s", self.uptime_s)
            .string("addr", &self.addr)
            .build()
    }
}

/// The resident mapping service: one shared fabric, one [`Flow`] per
/// requested configuration, one sharded LRU cache of response bodies.
///
/// `MapService` is transport-free — [`MapService::handle`] maps a
/// parsed [`Request`] to a [`Response`] and is what the golden tests
/// exercise; [`Server`] adds the reactor, TCP listener and worker pool
/// on top.
pub struct MapService {
    fabric: Arc<Fabric>,
    /// Upper bound on a request's `"jobs"` value (see
    /// [`MapService::jobs_budget`]).
    jobs_budget: usize,
    /// One configured `Flow` per `(policy, router, m, trace, jobs)`,
    /// all sharing `fabric` behind the same `Arc`.
    flows: Mutex<HashMap<String, Flow>>,
    cache: ShardedCache,
    /// Pre-created per-shard hit/miss counters (`shard="<i>"` labels),
    /// so the hot path never formats a label.
    shard_hits: Vec<Arc<Counter>>,
    shard_misses: Vec<Arc<Counter>>,
    counters: Counters,
    /// The Prometheus-rendered metrics behind `GET /metrics`.
    metrics: Arc<Registry>,
    /// Set by [`Server::bind`]; surfaced in `/stats`.
    bound_addr: Mutex<Option<SocketAddr>>,
    started: Instant,
    shutdown: AtomicBool,
}

impl fmt::Debug for MapService {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MapService")
            .field(
                "fabric",
                &format_args!("{}x{}", self.fabric.rows(), self.fabric.cols()),
            )
            .field("started", &self.started)
            .field("shutdown", &self.shutdown)
            .finish_non_exhaustive()
    }
}

/// Which mapping endpoint a request hit (they differ in allowed fields
/// and response schema).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Endpoint {
    Map,
    Compare,
    Sta,
}

/// A parsed, validated mapping request body.
#[derive(Debug)]
struct MapRequest {
    program_text: String,
    program: Program,
    policy: FlowPolicy,
    router: RouterKind,
    seeds: usize,
    trace: bool,
    /// Worker threads granted to the mapper (clamped to the service's
    /// [`MapService::jobs_budget`] before use; never changes bytes).
    jobs: usize,
    /// `/compare` only: the circuit name echoed in the row.
    name: String,
    /// `/sta` only: remap with slack-aware feedback, keeping the
    /// faster run.
    feedback: bool,
    /// Optional fabric description document (spec JSON or ASCII art)
    /// overriding the server's resident fabric for this request.
    fabric: Option<String>,
}

/// A parsed, validated `/batch` request body.
#[derive(Debug)]
struct BatchRequest {
    /// `(name, program text, parsed program)` per circuit, in input
    /// order.
    circuits: Vec<(String, String, Program)>,
    router: RouterKind,
    seeds: usize,
    jobs: usize,
    fabric: Option<String>,
}

impl MapService {
    /// Creates a service mapping onto `fabric` with a
    /// `cache_capacity`-entry result cache (default shard geometry:
    /// [`CacheConfig::default`]'s 8 shards, no TTL, no byte cap —
    /// reshape with [`MapService::with_cache`]).
    pub fn new(fabric: impl Into<Arc<Fabric>>, cache_capacity: usize) -> MapService {
        let config = CacheConfig {
            entries: cache_capacity,
            ..CacheConfig::default()
        };
        let fabric = fabric.into();
        let cache = ShardedCache::new(config);
        let metrics = Arc::new(Registry::new());
        let (shard_hits, shard_misses) = shard_counters(&metrics, cache.shard_count());
        MapService {
            fabric,
            jobs_budget: thread::available_parallelism().map_or(1, |n| n.get()),
            flows: Mutex::new(HashMap::new()),
            cache,
            shard_hits,
            shard_misses,
            counters: Counters::default(),
            metrics,
            bound_addr: Mutex::new(None),
            started: Instant::now(),
            shutdown: AtomicBool::new(false),
        }
    }

    /// Replaces the result cache with one built from `config` (shard
    /// count, TTL, byte budget). Existing entries are discarded; use at
    /// construction time.
    #[must_use]
    pub fn with_cache(mut self, config: CacheConfig) -> MapService {
        self.cache = ShardedCache::new(config);
        let (hits, misses) = shard_counters(&self.metrics, self.cache.shard_count());
        self.shard_hits = hits;
        self.shard_misses = misses;
        self
    }

    /// The fabric every request maps onto.
    pub fn fabric(&self) -> &Arc<Fabric> {
        &self.fabric
    }

    /// The result cache (exposed for tests and stats).
    pub fn cache(&self) -> &ShardedCache {
        &self.cache
    }

    /// Sets the server-wide cap on per-request `"jobs"` values
    /// (clamped to at least 1; defaults to the host's available
    /// parallelism).
    ///
    /// `"jobs"` scales *threads* the way `"m"` scales work, so an
    /// untrusted body must not be able to multiply the worker pool.
    /// Values above the budget are clamped silently rather than
    /// rejected — `"jobs"` is a performance hint that never changes
    /// response bytes, so clamping preserves the answer.
    #[must_use]
    pub fn with_jobs_budget(mut self, budget: usize) -> MapService {
        self.jobs_budget = budget.max(1);
        self
    }

    /// The largest `"jobs"` value a request is granted; anything above
    /// is clamped down before the flow is configured.
    pub fn jobs_budget(&self) -> usize {
        self.jobs_budget
    }

    /// The metrics registry rendered by `GET /metrics`. Shared so the
    /// CLI can install a [`qspr_obs::MetricsSpanSink`] over the same
    /// registry and surface per-phase mapping spans alongside the
    /// request metrics.
    pub fn metrics(&self) -> &Arc<Registry> {
        &self.metrics
    }

    /// Records the address a [`Server`] bound this service to (surfaced
    /// in `/stats`).
    pub fn set_bound_addr(&self, addr: SocketAddr) {
        *self.bound_addr.lock().expect("bound_addr lock") = Some(addr);
    }

    /// `true` once a `POST /shutdown` (or [`MapService::request_shutdown`])
    /// asked the server to stop accepting connections.
    pub fn shutdown_requested(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Asks the accept loop to stop (idempotent).
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// A copy of the current counters.
    pub fn stats(&self) -> StatsSnapshot {
        let c = &self.counters;
        let cache_shards = self.cache.shard_stats();
        let uptime = self.started.elapsed();
        StatsSnapshot {
            requests: c.requests.load(Ordering::Relaxed),
            map_requests: c.map_requests.load(Ordering::Relaxed),
            compare_requests: c.compare_requests.load(Ordering::Relaxed),
            sta_requests: c.sta_requests.load(Ordering::Relaxed),
            batch_requests: c.batch_requests.load(Ordering::Relaxed),
            batch_programs: c.batch_programs.load(Ordering::Relaxed),
            cache_hits: c.cache_hits.load(Ordering::Relaxed),
            cache_misses: c.cache_misses.load(Ordering::Relaxed),
            cache_entries: self.cache.len() as u64,
            cache_capacity: self.cache.capacity() as u64,
            cache_bytes: cache_shards.iter().map(|s| s.bytes).sum(),
            cache_shards,
            rejected: c.rejected.load(Ordering::Relaxed),
            errors: c.errors.load(Ordering::Relaxed),
            busy_us: c.busy_us.load(Ordering::Relaxed),
            uptime_ms: uptime.as_millis() as u64,
            uptime_s: uptime.as_secs(),
            addr: self
                .bound_addr
                .lock()
                .expect("bound_addr lock")
                .map_or(String::new(), |addr| addr.to_string()),
        }
    }

    /// Routes one request to its endpoint and produces the response.
    ///
    /// This is the whole service minus the socket: deterministic,
    /// lock-scoped, safe to call from any number of threads.
    pub fn handle(&self, request: &Request) -> Response {
        let t0 = Instant::now();
        self.counters.requests.fetch_add(1, Ordering::Relaxed);
        let response = match (request.method.as_str(), request.path.as_str()) {
            // The version is the one `qspr --version` prints; both read
            // the same Cargo manifest field at compile time.
            ("GET", "/healthz") => Response::new(
                200,
                concat!(
                    r#"{"status":"ok","version":""#,
                    env!("CARGO_PKG_VERSION"),
                    "\"}"
                ),
            ),
            ("GET", "/stats") => Response::new(200, self.stats().to_json()),
            ("GET", "/metrics") => Response::text(200, self.metrics.render()),
            ("POST", "/shutdown") => {
                self.request_shutdown();
                Response::new(200, r#"{"status":"shutting-down"}"#)
            }
            ("POST", "/map") => self.mapping(Endpoint::Map, &request.body),
            ("POST", "/compare") => self.mapping(Endpoint::Compare, &request.body),
            ("POST", "/sta") => self.mapping(Endpoint::Sta, &request.body),
            ("POST", "/batch") => self.batch(&request.body),
            (_, path) if KNOWN_PATHS.contains(&path) => {
                error_response(405, &format!("method {} not allowed here", request.method))
            }
            (_, path) => error_response(404, &format!("no endpoint {path}")),
        };
        if response.status >= 400 {
            self.counters.errors.fetch_add(1, Ordering::Relaxed);
        }
        let elapsed_us = t0.elapsed().as_micros() as u64;
        self.counters
            .busy_us
            .fetch_add(elapsed_us, Ordering::Relaxed);
        let endpoint = endpoint_label(&request.path);
        let status = response.status.to_string();
        self.metrics
            .counter(
                "qspr_http_requests_total",
                "Requests handled, by endpoint and status.",
                &[("endpoint", endpoint), ("status", &status)],
            )
            .inc();
        self.metrics
            .histogram(
                "qspr_handler_latency_us",
                "Wall-clock handler time per request, microseconds.",
                &[("endpoint", endpoint)],
            )
            .record(elapsed_us);
        response
    }

    /// The `429 Too Many Requests` answer for a request the reactor
    /// refused to enqueue: counted as a request and an error, tagged
    /// with a one-second `Retry-After` (the queue drains at
    /// mapping-request speed, so "soon" is the honest hint).
    pub fn reject(&self, endpoint: &'static str) -> Response {
        self.counters.requests.fetch_add(1, Ordering::Relaxed);
        self.counters.rejected.fetch_add(1, Ordering::Relaxed);
        self.counters.errors.fetch_add(1, Ordering::Relaxed);
        self.metrics
            .counter(
                "qspr_http_requests_total",
                "Requests handled, by endpoint and status.",
                &[("endpoint", endpoint), ("status", "429")],
            )
            .inc();
        self.metrics
            .counter(
                "qspr_rejected_total",
                "Requests rejected by admission control, by endpoint.",
                &[("endpoint", endpoint)],
            )
            .inc();
        error_response(
            429,
            &format!("admission queue for {endpoint} is full; retry shortly"),
        )
        .with_retry_after(1)
    }

    /// The response for a connection-level protocol error (counted as a
    /// request so `/stats` keeps adding up): `413` for an over-limit
    /// body, `400` for everything else the parser rejects.
    pub fn protocol_response(&self, error: &io::Error) -> Response {
        self.counters.requests.fetch_add(1, Ordering::Relaxed);
        self.counters.errors.fetch_add(1, Ordering::Relaxed);
        let status = if error.kind() == io::ErrorKind::InvalidInput {
            413
        } else {
            400
        };
        let status_text = status.to_string();
        self.metrics
            .counter(
                "qspr_http_requests_total",
                "Requests handled, by endpoint and status.",
                &[("endpoint", "other"), ("status", &status_text)],
            )
            .inc();
        error_response(status, &error.to_string())
    }

    /// `POST /map`, `POST /compare` and `POST /sta`: parse, consult
    /// the cache, run the flow on a miss, store and return the body.
    fn mapping(&self, endpoint: Endpoint, body: &str) -> Response {
        let counter = match endpoint {
            Endpoint::Map => &self.counters.map_requests,
            Endpoint::Compare => &self.counters.compare_requests,
            Endpoint::Sta => &self.counters.sta_requests,
        };
        counter.fetch_add(1, Ordering::Relaxed);
        let mut request = match parse_mapping_request(endpoint, body) {
            Ok(request) => request,
            Err(e) => return error_response(400, &e.to_string()),
        };
        // The budget clamp keeps batch-level concurrency (the worker
        // pool) times intra-map parallelism bounded no matter what the
        // body asked for; results are byte-identical at every value.
        request.jobs = request.jobs.min(self.jobs_budget);
        // A request-supplied fabric document replaces the resident
        // fabric for this request only; a document that fails to parse
        // is well-formed JSON carrying unprocessable content, i.e. 422.
        let fabric = match &request.fabric {
            None => None,
            Some(text) => match Fabric::parse(text) {
                Ok(fabric) => Some(Arc::new(fabric)),
                Err(e) => return error_response(422, &e.to_string()),
            },
        };
        let mut flow = self.flow_for(&request, fabric);
        // Timing analysis replays the recorded trace, so `/sta` forces
        // trace recording; the feedback mode rides on the same flow.
        if endpoint == Endpoint::Sta {
            flow = flow.record_trace(true).sta_feedback(request.feedback);
        }
        let fabric_key = fabric_cache_key(request.fabric.as_deref());
        let key = match endpoint {
            Endpoint::Map => format!(
                "map|{fabric_key}{}",
                flow.fingerprint(&request.program_text)
            ),
            Endpoint::Compare => compare_cache_key(
                &fabric_key,
                &request.name,
                &flow.fingerprint(&request.program_text),
            ),
            // The fingerprint already carries the trace and feedback
            // axes set above.
            Endpoint::Sta => format!(
                "sta|{fabric_key}{}",
                flow.fingerprint(&request.program_text)
            ),
        };
        if let Some(cached) = self.cache_lookup(&key) {
            return Response::new(200, cached);
        }
        let result = match endpoint {
            Endpoint::Map => flow.run(&request.program).map(|r| r.summary().to_json()),
            Endpoint::Compare => flow
                .compare(&request.name, &request.program)
                .map(|row| row.to_json()),
            Endpoint::Sta => flow.run(&request.program).and_then(|result| {
                flow.timing_report(&request.program, &result)
                    .map(|report| report.to_json())
            }),
        };
        match result {
            Ok(json) => {
                self.cache.insert(key, json.clone());
                Response::new(200, json)
            }
            // The program parsed but cannot be mapped (stall, placement
            // mismatch): the request was well-formed, the content is not
            // processable.
            Err(e) => error_response(422, &e.to_string()),
        }
    }

    /// `POST /batch`: N circuits through [`BatchMapper`] on one
    /// request, cache-aware per circuit, replied as one input-ordered
    /// JSON array of comparison rows.
    ///
    /// Each circuit's cache key is exactly the `/compare` key for the
    /// same `(name, program, router, m, fabric)` — the two endpoints
    /// share entries, and a batch re-run is pure cache hits.
    fn batch(&self, body: &str) -> Response {
        self.counters.batch_requests.fetch_add(1, Ordering::Relaxed);
        let mut request = match parse_batch_request(body) {
            Ok(request) => request,
            Err(e) => return error_response(400, &e.to_string()),
        };
        request.jobs = request.jobs.min(self.jobs_budget);
        let fabric = match &request.fabric {
            None => None,
            Some(text) => match Fabric::parse(text) {
                Ok(fabric) => Some(Arc::new(fabric)),
                Err(e) => return error_response(422, &e.to_string()),
            },
        };
        let flow = self.flow_for_config(
            FlowPolicy::Qspr,
            request.router,
            request.seeds,
            false,
            request.jobs,
            fabric,
        );
        let fabric_key = fabric_cache_key(request.fabric.as_deref());
        // From here on every circuit reaches the cache, so it joins the
        // hits+misses == mapping-requests accounting.
        self.counters
            .batch_programs
            .fetch_add(request.circuits.len() as u64, Ordering::Relaxed);
        let keys: Vec<String> = request
            .circuits
            .iter()
            .map(|(name, text, _)| compare_cache_key(&fabric_key, name, &flow.fingerprint(text)))
            .collect();
        let mut rows: Vec<Option<String>> = keys.iter().map(|key| self.cache_lookup(key)).collect();
        let missing: Vec<usize> = (0..rows.len()).filter(|&i| rows[i].is_none()).collect();
        if !missing.is_empty() {
            let jobs: Vec<BatchJob> = missing
                .iter()
                .map(|&i| {
                    let (name, _, program) = &request.circuits[i];
                    BatchJob::new(name.clone(), program.clone())
                })
                .collect();
            let report = match BatchMapper::new(flow).threads(request.jobs).run(&jobs) {
                Ok(report) => report,
                Err(e) => return error_response(422, &e.to_string()),
            };
            for (&i, item) in missing.iter().zip(report.items.iter()) {
                let json = item.row.to_json();
                self.cache.insert(keys[i].clone(), json.clone());
                rows[i] = Some(json);
            }
        }
        let mut array = JsonArray::new();
        for row in rows {
            array.push_raw(&row.expect("every circuit is cached or mapped by now"));
        }
        Response::new(200, array.build())
    }

    /// Looks `key` up in the sharded cache, mirroring the outcome into
    /// the service counters and the aggregate + per-shard metrics.
    fn cache_lookup(&self, key: &str) -> Option<String> {
        let (shard, value) = self.cache.get_indexed(key);
        if value.is_some() {
            self.counters.cache_hits.fetch_add(1, Ordering::Relaxed);
            self.cache_metric("qspr_cache_hits_total", "Mapping-cache hits.");
            self.shard_hits[shard].inc();
        } else {
            self.counters.cache_misses.fetch_add(1, Ordering::Relaxed);
            self.cache_metric(
                "qspr_cache_misses_total",
                "Mapping-cache misses (cold mappings executed).",
            );
            self.shard_misses[shard].inc();
        }
        value
    }

    /// The shared [`Flow`] for a request's configuration, created on
    /// first use; every flow shares the service fabric's `Arc`. A
    /// request-supplied `fabric` gets a one-off flow instead — the
    /// flows map is keyed by configuration only and must stay bound to
    /// the resident fabric.
    fn flow_for(&self, request: &MapRequest, fabric: Option<Arc<Fabric>>) -> Flow {
        self.flow_for_config(
            request.policy,
            request.router,
            request.seeds,
            request.trace,
            request.jobs,
            fabric,
        )
    }

    /// [`MapService::flow_for`] by explicit configuration axes (shared
    /// with `/batch`, which has no single `MapRequest`).
    fn flow_for_config(
        &self,
        policy: FlowPolicy,
        router: RouterKind,
        seeds: usize,
        trace: bool,
        jobs: usize,
        fabric: Option<Arc<Fabric>>,
    ) -> Flow {
        let configure = |flow: Flow| {
            flow.policy(policy)
                .router(router)
                .seeds(seeds)
                .record_trace(trace)
                .jobs(jobs)
        };
        if let Some(fabric) = fabric {
            return configure(Flow::on(fabric));
        }
        let key = format!("{policy}|{router}|{seeds}|{trace}|{jobs}");
        let mut flows = self.flows.lock().expect("flows lock");
        flows
            .entry(key)
            .or_insert_with(|| configure(Flow::on(Arc::clone(&self.fabric))))
            .clone()
    }

    /// Bumps one of the two aggregate cache counters in the metrics
    /// registry (mirrors the `Counters` atomics into `/metrics`).
    fn cache_metric(&self, name: &str, help: &str) {
        self.metrics.counter(name, help, &[]).inc();
    }
}

/// Every routable path (anything else is `404`; a known path with the
/// wrong method is `405`).
const KNOWN_PATHS: &[&str] = &[
    "/healthz",
    "/stats",
    "/metrics",
    "/shutdown",
    "/map",
    "/compare",
    "/sta",
    "/batch",
];

/// The metrics label for a request path. Unknown paths share one
/// `"other"` label so an untrusted peer cannot grow the registry
/// without bound.
fn endpoint_label(path: &str) -> &'static str {
    KNOWN_PATHS
        .iter()
        .find(|&&known| known == path)
        .copied()
        .unwrap_or("other")
}

/// Pre-creates the per-shard cache hit/miss counters so lookups index
/// an array instead of formatting labels.
fn shard_counters(metrics: &Registry, shards: usize) -> (Vec<Arc<Counter>>, Vec<Arc<Counter>>) {
    let make = |name: &str, help: &str| {
        (0..shards)
            .map(|i| metrics.counter(name, help, &[("shard", &i.to_string())]))
            .collect()
    };
    (
        make(
            "qspr_cache_shard_hits_total",
            "Mapping-cache hits, by shard.",
        ),
        make(
            "qspr_cache_shard_misses_total",
            "Mapping-cache misses, by shard.",
        ),
    )
}

/// The cache-key fragment for a request-supplied fabric document. The
/// fingerprint hashes fabric geometry and capacities but not spec
/// provenance (which shows up in the response's `fabric` block), so
/// the document itself joins the cache key verbatim.
fn fabric_cache_key(fabric: Option<&str>) -> String {
    fabric.map_or(String::new(), |text| {
        format!("fabric:{}:{text}|", text.len())
    })
}

/// The cache key of a comparison result — shared by `/compare` and the
/// per-circuit lookups of `/batch`.
fn compare_cache_key(fabric_key: &str, name: &str, fingerprint: &str) -> String {
    format!("compare|{fabric_key}{}:{name}|{fingerprint}", name.len())
}

/// Renders an error status with the `{"error":...}` body shape (pinned
/// by a golden test).
fn error_response(status: u16, message: &str) -> Response {
    Response::new(status, JsonObject::new().string("error", message).build())
}

/// Returns `json` with the contents of its `"timing"` object replaced
/// by `"cpu_ms":0,"wall_us":0` (bodies without the object pass through
/// unchanged).
///
/// The `"timing"` block — placement/run wall-clock — is the single
/// non-deterministic part of the `/map` response schema, so this is the
/// normalization a client applies to compare bodies across independent
/// runs (cached repeats need no normalization: they are
/// byte-identical). The `loadgen` oracle and the service's own tests
/// share this definition. The timing object is flat (no nested
/// braces), so scanning to the next `}` is exact.
///
/// # Examples
///
/// ```
/// use qspr::service::normalize_timing;
///
/// let a = r#"{"latency_us":634,"timing":{"cpu_ms":17,"wall_us":17941},"moves":410}"#;
/// let b = r#"{"latency_us":634,"timing":{"cpu_ms":3,"wall_us":3120},"moves":410}"#;
/// assert_eq!(normalize_timing(a), normalize_timing(b));
/// assert_eq!(normalize_timing(r#"{"x":1}"#), r#"{"x":1}"#);
/// ```
pub fn normalize_timing(json: &str) -> String {
    const KEY: &str = "\"timing\":{";
    let Some(start) = json.find(KEY) else {
        return json.to_owned();
    };
    let inner_at = start + KEY.len();
    let end = json[inner_at..]
        .find('}')
        .map_or(json.len(), |i| inner_at + i);
    format!(
        "{}\"cpu_ms\":0,\"wall_us\":0{}",
        &json[..inner_at],
        &json[end..]
    )
}

/// Parses and validates a `/map` or `/compare` body against its
/// endpoint's allowed fields, applying the CLI defaults.
fn parse_mapping_request(endpoint: Endpoint, body: &str) -> Result<MapRequest, QsprError> {
    let value =
        JsonValue::parse(body).map_err(|e| QsprError::usage(format!("invalid JSON body: {e}")))?;
    let Some(fields) = value.as_object() else {
        return Err(QsprError::usage("request body must be a JSON object"));
    };
    let allowed: &[&str] = match endpoint {
        Endpoint::Map => &[
            "program", "policy", "router", "m", "jobs", "trace", "fabric",
        ],
        Endpoint::Compare => &["program", "name", "router", "m", "jobs", "fabric"],
        Endpoint::Sta => &[
            "program", "policy", "router", "m", "jobs", "feedback", "fabric",
        ],
    };
    for (key, _) in fields {
        if !allowed.contains(&key.as_str()) {
            return Err(QsprError::usage(format!(
                "unknown field {key:?} (allowed: {})",
                allowed.join(", ")
            )));
        }
    }
    let program_text = value
        .get("program")
        .and_then(JsonValue::as_str)
        .ok_or_else(|| QsprError::usage("field \"program\" (string) is required"))?
        .to_owned();
    let program = Program::parse(&program_text)?;
    let policy = match value.get("policy") {
        None => FlowPolicy::Qspr,
        Some(v) => v
            .as_str()
            .ok_or_else(|| QsprError::usage("field \"policy\" must be a string"))?
            .parse()?,
    };
    let router = parse_router_field(&value)?;
    let seeds = parse_seeds_field(&value)?;
    let jobs = parse_jobs_field(&value)?;
    let trace = match value.get("trace") {
        None => false,
        Some(v) => v
            .as_bool()
            .ok_or_else(|| QsprError::usage("field \"trace\" must be a boolean"))?,
    };
    let feedback = match value.get("feedback") {
        None => false,
        Some(v) => v
            .as_bool()
            .ok_or_else(|| QsprError::usage("field \"feedback\" must be a boolean"))?,
    };
    // Mirror the CLI's pairing rule: the feedback re-run only makes
    // sense against a negotiated pilot.
    if feedback && !matches!(router, RouterKind::Negotiated | RouterKind::Race) {
        return Err(QsprError::usage(
            "field \"feedback\" requires \"router\":\"negotiated\" or \"race\"",
        ));
    }
    let name = match value.get("name") {
        None => "program".to_owned(),
        Some(v) => v
            .as_str()
            .ok_or_else(|| QsprError::usage("field \"name\" must be a string"))?
            .to_owned(),
    };
    let fabric = parse_fabric_field(&value)?;
    Ok(MapRequest {
        program_text,
        program,
        policy,
        router,
        seeds,
        trace,
        jobs,
        name,
        feedback,
        fabric,
    })
}

/// Parses and validates a `/batch` body: a `"programs"` array (each a
/// QASM string), optional per-circuit `"names"`, and the shared
/// `router`/`m`/`jobs`/`fabric` axes of `/compare`.
fn parse_batch_request(body: &str) -> Result<BatchRequest, QsprError> {
    let value =
        JsonValue::parse(body).map_err(|e| QsprError::usage(format!("invalid JSON body: {e}")))?;
    let Some(fields) = value.as_object() else {
        return Err(QsprError::usage("request body must be a JSON object"));
    };
    const ALLOWED: &[&str] = &["programs", "names", "router", "m", "jobs", "fabric"];
    for (key, _) in fields {
        if !ALLOWED.contains(&key.as_str()) {
            return Err(QsprError::usage(format!(
                "unknown field {key:?} (allowed: {})",
                ALLOWED.join(", ")
            )));
        }
    }
    let programs = value
        .get("programs")
        .and_then(JsonValue::as_array)
        .ok_or_else(|| QsprError::usage("field \"programs\" (array of strings) is required"))?;
    if programs.is_empty() {
        return Err(QsprError::usage("field \"programs\" must not be empty"));
    }
    if programs.len() > MAX_BATCH_PROGRAMS {
        return Err(QsprError::usage(format!(
            "field \"programs\" exceeds the service limit of {MAX_BATCH_PROGRAMS} circuits"
        )));
    }
    let names: Option<Vec<String>> = match value.get("names") {
        None => None,
        Some(v) => {
            let names = v
                .as_array()
                .ok_or_else(|| QsprError::usage("field \"names\" must be an array of strings"))?;
            if names.len() != programs.len() {
                return Err(QsprError::usage(format!(
                    "field \"names\" has {} entries for {} programs",
                    names.len(),
                    programs.len()
                )));
            }
            Some(
                names
                    .iter()
                    .map(|n| {
                        n.as_str().map(str::to_owned).ok_or_else(|| {
                            QsprError::usage("field \"names\" must be an array of strings")
                        })
                    })
                    .collect::<Result<_, _>>()?,
            )
        }
    };
    let mut circuits = Vec::with_capacity(programs.len());
    for (i, entry) in programs.iter().enumerate() {
        let text = entry
            .as_str()
            .ok_or_else(|| QsprError::usage(format!("programs[{i}] must be a string")))?;
        let program =
            Program::parse(text).map_err(|e| QsprError::usage(format!("programs[{i}]: {e}")))?;
        let name = names
            .as_ref()
            .map_or_else(|| format!("program{i}"), |names| names[i].clone());
        circuits.push((name, text.to_owned(), program));
    }
    Ok(BatchRequest {
        circuits,
        router: parse_router_field(&value)?,
        seeds: parse_seeds_field(&value)?,
        jobs: parse_jobs_field(&value)?,
        fabric: parse_fabric_field(&value)?,
    })
}

/// The shared `"router"` field (defaults to greedy, like `--router`).
fn parse_router_field(value: &JsonValue) -> Result<RouterKind, QsprError> {
    match value.get("router") {
        None => Ok(RouterKind::Greedy),
        Some(v) => v
            .as_str()
            .ok_or_else(|| QsprError::usage("field \"router\" must be a string"))?
            .parse()
            .map_err(|e| QsprError::usage(format!("{e}"))),
    }
}

/// The shared `"m"` field (defaults to [`DEFAULT_SEEDS`], capped at
/// [`MAX_SEEDS`]).
fn parse_seeds_field(value: &JsonValue) -> Result<usize, QsprError> {
    match value.get("m") {
        None => Ok(DEFAULT_SEEDS),
        Some(v) => {
            let m = v
                .as_u64()
                .ok_or_else(|| QsprError::usage("field \"m\" must be a non-negative integer"))?;
            if m > MAX_SEEDS as u64 {
                return Err(QsprError::usage(format!(
                    "field \"m\" exceeds the service limit of {MAX_SEEDS}"
                )));
            }
            Ok(m as usize)
        }
    }
}

/// The shared `"jobs"` field (defaults to 1; clamped to the budget by
/// the caller).
fn parse_jobs_field(value: &JsonValue) -> Result<usize, QsprError> {
    match value.get("jobs") {
        None => Ok(1),
        Some(v) => {
            let jobs = v
                .as_u64()
                .filter(|&jobs| jobs > 0)
                .ok_or_else(|| QsprError::usage("field \"jobs\" must be a positive integer"))?;
            Ok(jobs as usize)
        }
    }
}

/// The shared optional `"fabric"` document field.
fn parse_fabric_field(value: &JsonValue) -> Result<Option<String>, QsprError> {
    match value.get("fabric") {
        None => Ok(None),
        Some(v) => Ok(Some(
            v.as_str()
                .ok_or_else(|| {
                    QsprError::usage("field \"fabric\" must be a string (spec JSON or ASCII art)")
                })?
                .to_owned(),
        )),
    }
}

/// The TCP front end: a readiness reactor plus a fixed worker pool,
/// all serving one shared [`MapService`].
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    service: Arc<MapService>,
    config: reactor::ReactorConfig,
}

impl Server {
    /// Binds `config.addr` (port 0 picks an ephemeral port — read the
    /// result back with [`Server::local_addr`]) and records the bound
    /// address on the service for `/stats`.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure (address in use, permission).
    pub fn bind(service: Arc<MapService>, config: &ServeConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        service.set_bound_addr(listener.local_addr()?);
        Ok(Server {
            listener,
            service,
            config: reactor::ReactorConfig {
                threads: config.threads.max(1),
                log: config.log,
                keep_alive_secs: config.keep_alive_secs,
                max_queue: config.max_queue.max(1),
            },
        })
    }

    /// The actually bound address.
    ///
    /// # Errors
    ///
    /// Propagates the socket-introspection failure (exotic platforms).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Serves until shutdown is requested, then drains gracefully: the
    /// listener closes, reads stop, in-flight requests finish, every
    /// buffered response flushes, workers join.
    ///
    /// One reactor thread (this one) owns every socket: it accepts,
    /// reads, parses, enforces admission control and writes, while the
    /// fixed pool of `threads` workers runs
    /// [`MapService::handle`] on dispatched requests. Responses go out
    /// strictly in per-connection request order — pipelined requests
    /// may *complete* out of order across the pool, but never reorder
    /// on the wire.
    ///
    /// # Errors
    ///
    /// Returns the first fatal `accept`/`poll` error. Per-connection
    /// I/O failures are answered with `400`/`413` where possible and
    /// never stop the server.
    pub fn run(self) -> io::Result<()> {
        reactor::run(self.listener, &self.service, &self.config)
    }

    /// Runs the server on a background thread, returning a
    /// [`ServerHandle`] for the bound address and a graceful
    /// [`ServerHandle::shutdown`]. The natural shape for tests and for
    /// embedding the service in a bigger process.
    pub fn spawn(self) -> ServerHandle {
        let addr = self.local_addr().expect("bound listener has an address");
        let service = Arc::clone(&self.service);
        let thread = thread::spawn(move || self.run());
        ServerHandle {
            addr,
            service,
            thread,
        }
    }
}

/// A running background [`Server`]: its address, its shared service
/// state, and the join handle used for graceful shutdown.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    service: Arc<MapService>,
    thread: thread::JoinHandle<io::Result<()>>,
}

impl ServerHandle {
    /// The server's bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared service state (counters, shutdown flag).
    pub fn service(&self) -> &Arc<MapService> {
        &self.service
    }

    /// Requests shutdown, wakes the reactor and joins the server
    /// thread (in-flight requests finish first).
    ///
    /// # Errors
    ///
    /// Returns the server thread's fatal error, if it died on one.
    ///
    /// # Panics
    ///
    /// Panics if the server thread itself panicked.
    pub fn shutdown(self) -> io::Result<()> {
        self.service.request_shutdown();
        // Wake the reactor's poll by knocking on the listener; if the
        // server already exited the connect simply fails, which is
        // fine (the reactor also ticks on its own).
        let _ = TcpStream::connect(wake_addr(self.addr));
        self.thread.join().expect("server thread panicked")
    }
}

/// An address a client of *this process* can connect to in order to
/// reach the listener bound at `addr`: a wildcard bind (`0.0.0.0` /
/// `::`) is not a connectable destination everywhere, so the shutdown
/// wake-up targets loopback on the bound port instead.
fn wake_addr(addr: SocketAddr) -> SocketAddr {
    let mut addr = addr;
    if addr.ip().is_unspecified() {
        addr.set_ip(match addr.ip() {
            IpAddr::V4(_) => IpAddr::V4(Ipv4Addr::LOCALHOST),
            IpAddr::V6(_) => IpAddr::V6(Ipv6Addr::LOCALHOST),
        });
    }
    addr
}

/// Writes one structured (logfmt) access-log line to stderr. Stderr,
/// not stdout: stdout carries exactly the startup banner the CI smoke
/// greps for, and stays machine-parseable.
pub(crate) fn access_log(
    method: &str,
    path: &str,
    response: &Response,
    wait_us: u64,
    started: Instant,
) {
    let time = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map_or(0, |d| d.as_secs());
    eprintln!(
        "time={time} method={method} path={path} status={} bytes={} wait_us={wait_us} dur_us={}",
        response.status,
        response.body.len(),
        started.elapsed().as_micros()
    );
}

#[cfg(test)]
mod tests;
