//! Hand-rolled, dependency-free result caches for mapped responses.
//!
//! Keys are the canonical flow fingerprints of
//! [`Flow::fingerprint`](crate::Flow::fingerprint); values are the
//! exact response bodies the service sent on the cold path, so a cache
//! hit is byte-identical by construction. Two structures live here:
//!
//! - [`LruCache`] — the original single-threaded LRU (HashMap plus an
//!   intrusive recency list in a slab of indices — no `unsafe`, O(1)
//!   get/insert/evict). The service used to guard one of these with a
//!   single mutex; it remains the behavioral reference the sharded
//!   cache's equivalence tests replay against.
//! - [`ShardedCache`] — N independent [`LruCache`]-shaped shards, each
//!   behind its own lock, selected by an FNV-1a hash of the key.
//!   Concurrent requests for different keys almost never contend, and
//!   each shard additionally accounts bytes, enforces an optional TTL,
//!   and keeps hit/miss/eviction counters that `/stats` surfaces
//!   per shard.

use std::collections::HashMap;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Sentinel for "no neighbor" in the intrusive recency list.
const NONE: usize = usize::MAX;

/// One slab slot: a key/value pair threaded into the recency list.
#[derive(Debug)]
struct Entry<V> {
    key: String,
    value: V,
    prev: usize,
    next: usize,
}

/// A least-recently-used cache with string keys.
///
/// Capacity 0 disables the cache entirely: every lookup misses and
/// nothing is stored.
///
/// # Examples
///
/// ```
/// use qspr::service::LruCache;
///
/// let mut cache: LruCache<&'static str> = LruCache::new(2);
/// cache.insert("a".into(), "alpha");
/// cache.insert("b".into(), "beta");
/// assert_eq!(cache.get("a"), Some(&"alpha")); // promotes "a"
/// cache.insert("c".into(), "gamma");          // evicts "b", the LRU
/// assert_eq!(cache.get("b"), None);
/// assert_eq!(cache.len(), 2);
/// ```
#[derive(Debug)]
pub struct LruCache<V> {
    capacity: usize,
    map: HashMap<String, usize>,
    slab: Vec<Entry<V>>,
    /// Most recently used entry (list head).
    head: usize,
    /// Least recently used entry (list tail, next eviction victim).
    tail: usize,
    /// Recycled slab slots.
    free: Vec<usize>,
}

impl<V> LruCache<V> {
    /// Creates a cache holding at most `capacity` entries.
    pub fn new(capacity: usize) -> LruCache<V> {
        LruCache {
            capacity,
            map: HashMap::new(),
            slab: Vec::new(),
            head: NONE,
            tail: NONE,
            free: Vec::new(),
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of entries currently cached.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Looks up `key`, marking it most recently used on a hit.
    pub fn get(&mut self, key: &str) -> Option<&V> {
        let &slot = self.map.get(key)?;
        self.promote(slot);
        Some(&self.slab[slot].value)
    }

    /// Inserts (or replaces) `key`, evicting the least recently used
    /// entry when full. The inserted entry becomes most recently used.
    pub fn insert(&mut self, key: String, value: V) {
        if self.capacity == 0 {
            return;
        }
        if let Some(&slot) = self.map.get(&key) {
            self.slab[slot].value = value;
            self.promote(slot);
            return;
        }
        if self.map.len() == self.capacity {
            self.evict_tail();
        }
        let entry = Entry {
            key: key.clone(),
            value,
            prev: NONE,
            next: self.head,
        };
        let slot = match self.free.pop() {
            Some(slot) => {
                self.slab[slot] = entry;
                slot
            }
            None => {
                self.slab.push(entry);
                self.slab.len() - 1
            }
        };
        if self.head != NONE {
            self.slab[self.head].prev = slot;
        }
        self.head = slot;
        if self.tail == NONE {
            self.tail = slot;
        }
        self.map.insert(key, slot);
    }

    /// Unlinks `slot` from the recency list and relinks it at the head.
    fn promote(&mut self, slot: usize) {
        if self.head == slot {
            return;
        }
        let (prev, next) = (self.slab[slot].prev, self.slab[slot].next);
        if prev != NONE {
            self.slab[prev].next = next;
        }
        if next != NONE {
            self.slab[next].prev = prev;
        }
        if self.tail == slot {
            self.tail = prev;
        }
        self.slab[slot].prev = NONE;
        self.slab[slot].next = self.head;
        if self.head != NONE {
            self.slab[self.head].prev = slot;
        }
        self.head = slot;
    }

    /// Removes the least recently used entry.
    fn evict_tail(&mut self) {
        let victim = self.tail;
        debug_assert_ne!(victim, NONE, "evict called on an empty cache");
        let prev = self.slab[victim].prev;
        if prev != NONE {
            self.slab[prev].next = NONE;
        } else {
            self.head = NONE;
        }
        self.tail = prev;
        self.map.remove(&self.slab[victim].key);
        self.free.push(victim);
    }
}

// ---------------------------------------------------------------------------
// Sharded cache
// ---------------------------------------------------------------------------

/// How a [`ShardedCache`] is sized.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total entry capacity across all shards (0 disables caching).
    pub entries: usize,
    /// Number of independent shards (clamped to at least 1).
    pub shards: usize,
    /// Entries older than this are expired lazily on lookup
    /// (`None` = never expire).
    pub ttl: Option<Duration>,
    /// Total byte budget across all shards (`None` = entries-only
    /// limit). Bytes are accounted as `key.len() + value.len()`.
    pub max_bytes: Option<usize>,
}

impl Default for CacheConfig {
    /// 1024 entries across 8 shards, no TTL, no byte cap.
    fn default() -> CacheConfig {
        CacheConfig {
            entries: 1024,
            shards: 8,
            ttl: None,
            max_bytes: None,
        }
    }
}

/// A point-in-time copy of one shard's counters and occupancy,
/// surfaced by `GET /stats`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Entries currently held.
    pub entries: u64,
    /// Bytes currently held (keys + values).
    pub bytes: u64,
    /// Lookups answered from this shard.
    pub hits: u64,
    /// Lookups that found nothing (or an expired entry).
    pub misses: u64,
    /// Entries removed by capacity pressure or TTL expiry.
    pub evictions: u64,
}

/// One shard: an [`LruCache`]-shaped slab LRU with byte accounting,
/// optional expiry timestamps, and counters.
#[derive(Debug)]
struct Shard {
    /// Entry capacity of this shard.
    capacity: usize,
    /// Byte capacity of this shard (`usize::MAX` = unbounded).
    max_bytes: usize,
    map: HashMap<String, usize>,
    slab: Vec<ShardEntry>,
    head: usize,
    tail: usize,
    free: Vec<usize>,
    /// Bytes currently held (maintained incrementally; the test-only
    /// audit recomputes it from the slab).
    bytes: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
}

#[derive(Debug)]
struct ShardEntry {
    key: String,
    value: String,
    /// `key.len() + value.len()` at insert time.
    bytes: usize,
    /// Absolute expiry instant (`None` = never).
    expires: Option<Instant>,
    prev: usize,
    next: usize,
}

impl Shard {
    fn new(capacity: usize, max_bytes: usize) -> Shard {
        Shard {
            capacity,
            max_bytes,
            map: HashMap::new(),
            slab: Vec::new(),
            head: NONE,
            tail: NONE,
            free: Vec::new(),
            bytes: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Looks `key` up at time `now`: a live entry is promoted and
    /// cloned out; an expired one is evicted and counted as a miss.
    fn get(&mut self, key: &str, now: Instant) -> Option<String> {
        let Some(&slot) = self.map.get(key) else {
            self.misses += 1;
            return None;
        };
        if self.slab[slot].expires.is_some_and(|at| now >= at) {
            self.remove(slot);
            self.evictions += 1;
            self.misses += 1;
            return None;
        }
        self.promote(slot);
        self.hits += 1;
        Some(self.slab[slot].value.clone())
    }

    fn insert(&mut self, key: String, value: String, expires: Option<Instant>) {
        if self.capacity == 0 {
            return;
        }
        let entry_bytes = key.len() + value.len();
        if let Some(&slot) = self.map.get(&key) {
            self.bytes = self.bytes - self.slab[slot].bytes + entry_bytes;
            self.slab[slot].value = value;
            self.slab[slot].bytes = entry_bytes;
            self.slab[slot].expires = expires;
            self.promote(slot);
            self.shrink_to_bytes();
            return;
        }
        if self.map.len() == self.capacity {
            self.evict_tail();
        }
        let entry = ShardEntry {
            key: key.clone(),
            value,
            bytes: entry_bytes,
            expires,
            prev: NONE,
            next: self.head,
        };
        let slot = match self.free.pop() {
            Some(slot) => {
                self.slab[slot] = entry;
                slot
            }
            None => {
                self.slab.push(entry);
                self.slab.len() - 1
            }
        };
        if self.head != NONE {
            self.slab[self.head].prev = slot;
        }
        self.head = slot;
        if self.tail == NONE {
            self.tail = slot;
        }
        self.map.insert(key, slot);
        self.bytes += entry_bytes;
        self.shrink_to_bytes();
    }

    /// Evicts from the tail until the byte budget holds (the freshly
    /// inserted head survives even when it alone exceeds the budget —
    /// an oversized result is still worth caching once).
    fn shrink_to_bytes(&mut self) {
        while self.bytes > self.max_bytes && self.map.len() > 1 {
            self.evict_tail();
        }
    }

    fn promote(&mut self, slot: usize) {
        if self.head == slot {
            return;
        }
        let (prev, next) = (self.slab[slot].prev, self.slab[slot].next);
        if prev != NONE {
            self.slab[prev].next = next;
        }
        if next != NONE {
            self.slab[next].prev = prev;
        }
        if self.tail == slot {
            self.tail = prev;
        }
        self.slab[slot].prev = NONE;
        self.slab[slot].next = self.head;
        if self.head != NONE {
            self.slab[self.head].prev = slot;
        }
        self.head = slot;
    }

    fn evict_tail(&mut self) {
        let victim = self.tail;
        debug_assert_ne!(victim, NONE, "evict called on an empty shard");
        self.remove(victim);
        self.evictions += 1;
    }

    /// Unlinks and frees `slot` (shared by eviction and TTL expiry).
    fn remove(&mut self, slot: usize) {
        let (prev, next) = (self.slab[slot].prev, self.slab[slot].next);
        if prev != NONE {
            self.slab[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NONE {
            self.slab[next].prev = prev;
        } else {
            self.tail = prev;
        }
        self.bytes -= self.slab[slot].bytes;
        self.map.remove(&self.slab[slot].key);
        self.free.push(slot);
    }

    fn stats(&self) -> ShardStats {
        ShardStats {
            entries: self.map.len() as u64,
            bytes: self.bytes as u64,
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
        }
    }
}

/// A sharded, internally synchronized LRU result cache: N independent
/// shards, each behind its own lock, selected by an FNV-1a hash of
/// the key. Cheap shared access from many worker threads — two
/// requests contend only when their keys land in the same shard.
///
/// With one shard, no TTL and no byte cap, the observable hit/miss/
/// eviction behavior is identical to a mutex-wrapped [`LruCache`] (an
/// equivalence the tests replay op-for-op).
///
/// # Examples
///
/// ```
/// use qspr::service::{CacheConfig, ShardedCache};
///
/// let cache = ShardedCache::new(CacheConfig {
///     entries: 64,
///     shards: 4,
///     ..CacheConfig::default()
/// });
/// cache.insert("key".into(), "body".into());
/// assert_eq!(cache.get("key"), Some("body".into())); // hit
/// assert_eq!(cache.get("absent"), None);             // miss
/// let totals = cache.totals();
/// assert_eq!((totals.hits, totals.misses), (1, 1));
/// ```
#[derive(Debug)]
pub struct ShardedCache {
    shards: Box<[Mutex<Shard>]>,
    /// Total entry capacity as configured (shards each get a
    /// `ceil(entries / shards)` slice).
    entries: usize,
    ttl: Option<Duration>,
}

impl ShardedCache {
    /// Builds the shard array from `config` (shard count clamped to at
    /// least 1; per-shard capacity is `ceil(entries / shards)` so the
    /// total never rounds down to less than asked).
    pub fn new(config: CacheConfig) -> ShardedCache {
        let shard_count = config.shards.max(1);
        let per_shard = config.entries.div_ceil(shard_count);
        let bytes_per_shard = config
            .max_bytes
            .map_or(usize::MAX, |b| b.div_ceil(shard_count));
        let shards = (0..shard_count)
            .map(|_| Mutex::new(Shard::new(per_shard, bytes_per_shard)))
            .collect();
        ShardedCache {
            shards,
            entries: config.entries,
            ttl: config.ttl,
        }
    }

    /// The shard `key` belongs to.
    fn shard_for(&self, key: &str) -> &Mutex<Shard> {
        &self.shards[self.shard_index(key)]
    }

    /// Looks up `key`, promoting it on a hit; expired entries are
    /// evicted lazily and count as a miss plus an eviction.
    pub fn get(&self, key: &str) -> Option<String> {
        self.shard_for(key)
            .lock()
            .expect("cache shard lock")
            .get(key, Instant::now())
    }

    /// Like [`ShardedCache::get`] but reports which shard answered
    /// (for per-shard metrics without re-hashing).
    pub fn get_indexed(&self, key: &str) -> (usize, Option<String>) {
        let index = self.shard_index(key);
        let value = self.shards[index]
            .lock()
            .expect("cache shard lock")
            .get(key, Instant::now());
        (index, value)
    }

    /// The index of the shard `key` hashes to (FNV-1a over the key
    /// bytes, reduced modulo the shard count).
    pub fn shard_index(&self, key: &str) -> usize {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in key.as_bytes() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        (hash % self.shards.len() as u64) as usize
    }

    /// Inserts (or replaces) `key`, stamping the configured TTL and
    /// evicting LRU entries past the shard's entry or byte budget.
    pub fn insert(&self, key: String, value: String) {
        let expires = self.ttl.map(|ttl| Instant::now() + ttl);
        self.shard_for(&key)
            .lock()
            .expect("cache shard lock")
            .insert(key, value, expires);
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Total configured entry capacity.
    pub fn capacity(&self) -> usize {
        self.entries
    }

    /// Entries currently cached, summed across shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard lock").map.len())
            .sum()
    }

    /// `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bytes currently cached (keys + values), summed across shards.
    pub fn bytes(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard lock").bytes as u64)
            .sum()
    }

    /// A snapshot of every shard's counters, in shard order.
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard lock").stats())
            .collect()
    }

    /// Counters summed across shards.
    pub fn totals(&self) -> ShardStats {
        self.shard_stats()
            .iter()
            .fold(ShardStats::default(), |mut acc, s| {
                acc.entries += s.entries;
                acc.bytes += s.bytes;
                acc.hits += s.hits;
                acc.misses += s.misses;
                acc.evictions += s.evictions;
                acc
            })
    }

    /// Test-only invariant check: recomputes each shard's byte total
    /// from its slab and asserts it matches the incremental counter.
    /// Returns the audited grand total.
    #[cfg(test)]
    pub(crate) fn audit_bytes(&self) -> u64 {
        let mut total = 0u64;
        for shard in self.shards.iter() {
            let shard = shard.lock().expect("cache shard lock");
            let recomputed: usize = shard.map.values().map(|&slot| shard.slab[slot].bytes).sum();
            assert_eq!(
                recomputed, shard.bytes,
                "shard byte accounting drifted from its slab"
            );
            total += shard.bytes as u64;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Keys in recency order, most recent first (test-only walk).
    fn recency<V>(cache: &LruCache<V>) -> Vec<&str> {
        let mut keys = Vec::new();
        let mut at = cache.head;
        while at != NONE {
            keys.push(cache.slab[at].key.as_str());
            at = cache.slab[at].next;
        }
        keys
    }

    #[test]
    fn evicts_in_lru_order() {
        let mut cache = LruCache::new(3);
        for (k, v) in [("a", 1), ("b", 2), ("c", 3)] {
            cache.insert(k.into(), v);
        }
        assert_eq!(recency(&cache), ["c", "b", "a"]);
        cache.insert("d".into(), 4); // evicts "a"
        assert_eq!(cache.get("a"), None);
        cache.insert("e".into(), 5); // evicts "b"
        assert_eq!(cache.get("b"), None);
        assert_eq!(cache.get("c"), Some(&3));
        assert_eq!(cache.len(), 3);
    }

    #[test]
    fn get_promotes_against_eviction() {
        let mut cache = LruCache::new(2);
        cache.insert("a".into(), 1);
        cache.insert("b".into(), 2);
        assert_eq!(cache.get("a"), Some(&1)); // "b" becomes LRU
        cache.insert("c".into(), 3);
        assert_eq!(cache.get("b"), None);
        assert_eq!(cache.get("a"), Some(&1));
        assert_eq!(cache.get("c"), Some(&3));
    }

    #[test]
    fn insert_replaces_and_promotes_existing_keys() {
        let mut cache = LruCache::new(2);
        cache.insert("a".into(), 1);
        cache.insert("b".into(), 2);
        cache.insert("a".into(), 10); // replace, promote; len stays 2
        assert_eq!(cache.len(), 2);
        assert_eq!(recency(&cache), ["a", "b"]);
        assert_eq!(cache.get("a"), Some(&10));
        cache.insert("c".into(), 3); // evicts "b", not "a"
        assert_eq!(cache.get("b"), None);
        assert_eq!(cache.get("a"), Some(&10));
    }

    #[test]
    fn capacity_one_and_zero_degenerate_cleanly() {
        let mut one = LruCache::new(1);
        one.insert("a".into(), 1);
        one.insert("b".into(), 2);
        assert_eq!(one.get("a"), None);
        assert_eq!(one.get("b"), Some(&2));
        assert_eq!(one.len(), 1);

        let mut off: LruCache<i32> = LruCache::new(0);
        off.insert("a".into(), 1);
        assert_eq!(off.get("a"), None);
        assert!(off.is_empty());
        assert_eq!(off.capacity(), 0);
    }

    #[test]
    fn slots_are_recycled_without_growth() {
        let mut cache = LruCache::new(2);
        for i in 0..100 {
            cache.insert(format!("k{i}"), i);
        }
        assert_eq!(cache.len(), 2);
        assert!(cache.slab.len() <= 3, "slab grew: {}", cache.slab.len());
        assert_eq!(cache.get("k99"), Some(&99));
        assert_eq!(cache.get("k98"), Some(&98));
    }
}
