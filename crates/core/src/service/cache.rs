//! A hand-rolled, dependency-free LRU cache for mapped results.
//!
//! Keys are the canonical flow fingerprints of
//! [`Flow::fingerprint`](crate::Flow::fingerprint); values are the
//! exact response bodies the service sent on the cold path, so a cache
//! hit is byte-identical by construction. The structure is the
//! classic HashMap-plus-intrusive-list design, but the doubly linked
//! recency list lives in a slab of indices instead of pointers — no
//! `unsafe`, O(1) get/insert/evict.

use std::collections::HashMap;

/// Sentinel for "no neighbor" in the intrusive recency list.
const NONE: usize = usize::MAX;

/// One slab slot: a key/value pair threaded into the recency list.
#[derive(Debug)]
struct Entry<V> {
    key: String,
    value: V,
    prev: usize,
    next: usize,
}

/// A least-recently-used cache with string keys.
///
/// Capacity 0 disables the cache entirely: every lookup misses and
/// nothing is stored.
///
/// # Examples
///
/// ```
/// use qspr::service::LruCache;
///
/// let mut cache: LruCache<&'static str> = LruCache::new(2);
/// cache.insert("a".into(), "alpha");
/// cache.insert("b".into(), "beta");
/// assert_eq!(cache.get("a"), Some(&"alpha")); // promotes "a"
/// cache.insert("c".into(), "gamma");          // evicts "b", the LRU
/// assert_eq!(cache.get("b"), None);
/// assert_eq!(cache.len(), 2);
/// ```
#[derive(Debug)]
pub struct LruCache<V> {
    capacity: usize,
    map: HashMap<String, usize>,
    slab: Vec<Entry<V>>,
    /// Most recently used entry (list head).
    head: usize,
    /// Least recently used entry (list tail, next eviction victim).
    tail: usize,
    /// Recycled slab slots.
    free: Vec<usize>,
}

impl<V> LruCache<V> {
    /// Creates a cache holding at most `capacity` entries.
    pub fn new(capacity: usize) -> LruCache<V> {
        LruCache {
            capacity,
            map: HashMap::new(),
            slab: Vec::new(),
            head: NONE,
            tail: NONE,
            free: Vec::new(),
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of entries currently cached.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Looks up `key`, marking it most recently used on a hit.
    pub fn get(&mut self, key: &str) -> Option<&V> {
        let &slot = self.map.get(key)?;
        self.promote(slot);
        Some(&self.slab[slot].value)
    }

    /// Inserts (or replaces) `key`, evicting the least recently used
    /// entry when full. The inserted entry becomes most recently used.
    pub fn insert(&mut self, key: String, value: V) {
        if self.capacity == 0 {
            return;
        }
        if let Some(&slot) = self.map.get(&key) {
            self.slab[slot].value = value;
            self.promote(slot);
            return;
        }
        if self.map.len() == self.capacity {
            self.evict_tail();
        }
        let entry = Entry {
            key: key.clone(),
            value,
            prev: NONE,
            next: self.head,
        };
        let slot = match self.free.pop() {
            Some(slot) => {
                self.slab[slot] = entry;
                slot
            }
            None => {
                self.slab.push(entry);
                self.slab.len() - 1
            }
        };
        if self.head != NONE {
            self.slab[self.head].prev = slot;
        }
        self.head = slot;
        if self.tail == NONE {
            self.tail = slot;
        }
        self.map.insert(key, slot);
    }

    /// Unlinks `slot` from the recency list and relinks it at the head.
    fn promote(&mut self, slot: usize) {
        if self.head == slot {
            return;
        }
        let (prev, next) = (self.slab[slot].prev, self.slab[slot].next);
        if prev != NONE {
            self.slab[prev].next = next;
        }
        if next != NONE {
            self.slab[next].prev = prev;
        }
        if self.tail == slot {
            self.tail = prev;
        }
        self.slab[slot].prev = NONE;
        self.slab[slot].next = self.head;
        if self.head != NONE {
            self.slab[self.head].prev = slot;
        }
        self.head = slot;
    }

    /// Removes the least recently used entry.
    fn evict_tail(&mut self) {
        let victim = self.tail;
        debug_assert_ne!(victim, NONE, "evict called on an empty cache");
        let prev = self.slab[victim].prev;
        if prev != NONE {
            self.slab[prev].next = NONE;
        } else {
            self.head = NONE;
        }
        self.tail = prev;
        self.map.remove(&self.slab[victim].key);
        self.free.push(victim);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Keys in recency order, most recent first (test-only walk).
    fn recency<V>(cache: &LruCache<V>) -> Vec<&str> {
        let mut keys = Vec::new();
        let mut at = cache.head;
        while at != NONE {
            keys.push(cache.slab[at].key.as_str());
            at = cache.slab[at].next;
        }
        keys
    }

    #[test]
    fn evicts_in_lru_order() {
        let mut cache = LruCache::new(3);
        for (k, v) in [("a", 1), ("b", 2), ("c", 3)] {
            cache.insert(k.into(), v);
        }
        assert_eq!(recency(&cache), ["c", "b", "a"]);
        cache.insert("d".into(), 4); // evicts "a"
        assert_eq!(cache.get("a"), None);
        cache.insert("e".into(), 5); // evicts "b"
        assert_eq!(cache.get("b"), None);
        assert_eq!(cache.get("c"), Some(&3));
        assert_eq!(cache.len(), 3);
    }

    #[test]
    fn get_promotes_against_eviction() {
        let mut cache = LruCache::new(2);
        cache.insert("a".into(), 1);
        cache.insert("b".into(), 2);
        assert_eq!(cache.get("a"), Some(&1)); // "b" becomes LRU
        cache.insert("c".into(), 3);
        assert_eq!(cache.get("b"), None);
        assert_eq!(cache.get("a"), Some(&1));
        assert_eq!(cache.get("c"), Some(&3));
    }

    #[test]
    fn insert_replaces_and_promotes_existing_keys() {
        let mut cache = LruCache::new(2);
        cache.insert("a".into(), 1);
        cache.insert("b".into(), 2);
        cache.insert("a".into(), 10); // replace, promote; len stays 2
        assert_eq!(cache.len(), 2);
        assert_eq!(recency(&cache), ["a", "b"]);
        assert_eq!(cache.get("a"), Some(&10));
        cache.insert("c".into(), 3); // evicts "b", not "a"
        assert_eq!(cache.get("b"), None);
        assert_eq!(cache.get("a"), Some(&10));
    }

    #[test]
    fn capacity_one_and_zero_degenerate_cleanly() {
        let mut one = LruCache::new(1);
        one.insert("a".into(), 1);
        one.insert("b".into(), 2);
        assert_eq!(one.get("a"), None);
        assert_eq!(one.get("b"), Some(&2));
        assert_eq!(one.len(), 1);

        let mut off: LruCache<i32> = LruCache::new(0);
        off.insert("a".into(), 1);
        assert_eq!(off.get("a"), None);
        assert!(off.is_empty());
        assert_eq!(off.capacity(), 0);
    }

    #[test]
    fn slots_are_recycled_without_growth() {
        let mut cache = LruCache::new(2);
        for i in 0..100 {
            cache.insert(format!("k{i}"), i);
        }
        assert_eq!(cache.len(), 2);
        assert!(cache.slab.len() <= 3, "slab grew: {}", cache.slab.len());
        assert_eq!(cache.get("k99"), Some(&99));
        assert_eq!(cache.get("k98"), Some(&98));
    }
}
