//! Service tests: wire-schema goldens (the `/map`, `/stats` and error
//! body contracts, alongside the JSON goldens in `crate::json`), cache
//! semantics, and a real-TCP spawn/shutdown round trip.

use super::*;
use qspr_fabric::Fabric;

/// A two-qubit program that maps in well under a millisecond.
const BELL: &str = "QUBIT a\nQUBIT b\nH a\nC-X a,b\n";

fn service() -> MapService {
    MapService::new(Fabric::quale_45x85(), 8)
}

fn post(service: &MapService, path: &str, body: &str) -> Response {
    service.handle(&Request {
        method: "POST".into(),
        path: path.into(),
        body: body.into(),
    })
}

fn get(service: &MapService, path: &str) -> Response {
    service.handle(&Request {
        method: "GET".into(),
        path: path.into(),
        body: String::new(),
    })
}

#[test]
fn map_wire_schema_golden() {
    // Golden: the `/map` response body IS the FlowSummary schema of
    // `qspr map --format json`, key for key, in order.
    let response = post(
        &service(),
        "/map",
        &format!("{{\"program\":{:?},\"m\":2}}", BELL),
    );
    assert_eq!(response.status, 200);
    assert!(response
        .body
        .starts_with(r#"{"policy":"qspr","placer":"mvfb","router":"greedy","latency_us":"#));
    let keys = [
        "\"policy\":",
        "\"placer\":",
        "\"router\":",
        "\"latency_us\":",
        "\"direction\":",
        "\"runs\":",
        "\"timing\":{\"cpu_ms\":",
        "\"wall_us\":",
        "\"moves\":",
        "\"turns\":",
        "\"congestion_wait_us\":",
        "\"epochs\":",
        "\"rip_iterations\":",
        "\"ripped_routes\":",
        "\"max_segment_pressure\":",
    ];
    let mut at = 0;
    for key in keys {
        let pos = response.body[at..]
            .find(key)
            .unwrap_or_else(|| panic!("{key} missing or out of order in {}", response.body));
        at += pos + key.len();
    }
    // And it matches a direct library run, modulo the wall clock.
    let flow = Flow::on(Fabric::quale_45x85()).seeds(2);
    let expected = flow
        .run(&Program::parse(BELL).unwrap())
        .unwrap()
        .summary()
        .to_json();
    assert_eq!(
        normalize_timing(&response.body),
        normalize_timing(&expected)
    );
}

#[test]
fn stats_wire_schema_golden() {
    // Golden: this string IS the `GET /stats` schema contract.
    let snapshot = StatsSnapshot {
        requests: 9,
        map_requests: 5,
        compare_requests: 2,
        sta_requests: 1,
        cache_hits: 3,
        cache_misses: 4,
        cache_entries: 4,
        cache_capacity: 128,
        errors: 1,
        busy_us: 123456,
        uptime_ms: 60000,
        uptime_s: 60,
        addr: "127.0.0.1:7878".to_owned(),
    };
    assert_eq!(
        snapshot.to_json(),
        r#"{"requests":9,"map_requests":5,"compare_requests":2,"sta_requests":1,"cache_hits":3,"cache_misses":4,"cache_entries":4,"cache_capacity":128,"errors":1,"busy_us":123456,"uptime_ms":60000,"uptime_s":60,"addr":"127.0.0.1:7878"}"#
    );
}

#[test]
fn healthz_and_error_bodies_are_pinned() {
    let service = service();
    assert_eq!(
        get(&service, "/healthz"),
        Response::new(
            200,
            concat!(
                r#"{"status":"ok","version":""#,
                env!("CARGO_PKG_VERSION"),
                "\"}"
            ),
        )
    );
    // Error shape: {"error": "..."} with the message JSON-escaped.
    let response = post(&service, "/map", "not json");
    assert_eq!(response.status, 400);
    assert!(response.body.starts_with(r#"{"error":"invalid JSON body:"#));
    assert_eq!(
        post(&service, "/map", r#"{"frob":1}"#).body,
        r#"{"error":"unknown field \"frob\" (allowed: program, policy, router, m, jobs, trace, fabric)"}"#
    );
    assert_eq!(
        get(&service, "/nope"),
        Response::new(404, r#"{"error":"no endpoint /nope"}"#)
    );
    assert_eq!(
        get(&service, "/map").status,
        405,
        "GET on a POST endpoint is rejected"
    );
    assert_eq!(
        post(&service, "/healthz", "").status,
        405,
        "POST on a GET endpoint is rejected"
    );
}

#[test]
fn map_requests_validate_like_the_cli() {
    let service = service();
    let bad = |body: &str| {
        let response = post(&service, "/map", body);
        assert_eq!(response.status, 400, "{body} -> {}", response.body);
        response.body
    };
    assert!(bad(r#"{}"#).contains("\\\"program\\\" (string) is required"));
    assert!(bad(r#"{"program":5}"#).contains("required"));
    assert!(bad(r#"{"program":"FROB q\n"}"#).contains("unknown gate"));
    assert!(
        bad(&format!("{{\"program\":{BELL:?},\"policy\":\"best\"}}")).contains("unknown policy")
    );
    assert!(
        bad(&format!("{{\"program\":{BELL:?},\"router\":\"fancy\"}}")).contains("unknown router")
    );
    assert!(bad(&format!("{{\"program\":{BELL:?},\"m\":-1}}")).contains("non-negative integer"));
    assert!(bad(&format!("{{\"program\":{BELL:?},\"trace\":1}}")).contains("boolean"));
    assert!(bad(r#"[1,2]"#).contains("must be a JSON object"));
    // Work, not just input size, is bounded: an absurd seed count is
    // rejected up front instead of pinning a worker for hours.
    assert!(bad(&format!("{{\"program\":{BELL:?},\"m\":4000000000}}"))
        .contains("exceeds the service limit"));
    // An unmappable program (zero placement seeds) is 422, not 400.
    let response = post(
        &service,
        "/map",
        &format!("{{\"program\":{BELL:?},\"m\":0}}"),
    );
    assert_eq!(response.status, 422);
    assert!(response.body.starts_with(r#"{"error":"#));
}

#[test]
fn cache_hits_are_byte_identical_and_counted() {
    let service = service();
    let body = format!("{{\"program\":{BELL:?},\"m\":2}}");

    let cold = post(&service, "/map", &body);
    assert_eq!(cold.status, 200);
    let stats = service.stats();
    assert_eq!((stats.cache_hits, stats.cache_misses), (0, 1));
    assert_eq!(stats.cache_entries, 1);

    // The cached path returns the stored bytes — including the cold
    // run's timing block — so the bodies are byte-identical by
    // construction.
    for _ in 0..3 {
        let warm = post(&service, "/map", &body);
        assert_eq!(warm, cold);
    }
    let stats = service.stats();
    assert_eq!((stats.cache_hits, stats.cache_misses), (3, 1));
    assert_eq!(stats.map_requests, 4);

    // A different configuration of the same program is a different
    // fingerprint: miss, new entry.
    let other = post(
        &service,
        "/map",
        &format!("{{\"program\":{BELL:?},\"m\":3}}"),
    );
    assert_eq!(other.status, 200);
    let stats = service.stats();
    assert_eq!((stats.cache_hits, stats.cache_misses), (3, 2));
    assert_eq!(stats.cache_entries, 2);
}

#[test]
fn compare_responses_are_fully_deterministic() {
    // ComparisonRow carries no clock: equal requests give equal bytes
    // even across cache evictions and service restarts.
    let body = format!("{{\"program\":{BELL:?},\"name\":\"bell\",\"m\":2}}");
    let a = post(&service(), "/compare", &body);
    let b = post(&service(), "/compare", &body);
    assert_eq!(a.status, 200);
    assert_eq!(a, b);
    assert!(a.body.starts_with(r#"{"circuit":"bell","baseline_us":"#));
    // The `name` field lands in the row and separates cache keys.
    let renamed = post(
        &service(),
        "/compare",
        &format!("{{\"program\":{BELL:?},\"name\":\"other\",\"m\":2}}"),
    );
    assert!(renamed.body.starts_with(r#"{"circuit":"other","#));
}

#[test]
fn compare_rejects_map_only_fields() {
    let response = post(
        &service(),
        "/compare",
        &format!("{{\"program\":{BELL:?},\"trace\":true}}"),
    );
    assert_eq!(response.status, 400);
    assert!(response
        .body
        .contains("allowed: program, name, router, m, jobs, fabric"));
}

#[test]
fn eviction_causes_a_rerun_not_a_wrong_answer() {
    // Capacity 1: the second distinct request evicts the first; asking
    // for the first again re-maps (miss) and yields the same latency.
    let service = MapService::new(Fabric::quale_45x85(), 1);
    let a = format!("{{\"program\":{BELL:?},\"m\":2}}");
    let b = format!("{{\"program\":{BELL:?},\"m\":3}}");
    let first = post(&service, "/map", &a);
    post(&service, "/map", &b);
    let again = post(&service, "/map", &a);
    let stats = service.stats();
    assert_eq!(stats.cache_hits, 0);
    assert_eq!(stats.cache_misses, 3);
    assert_eq!(stats.cache_entries, 1);
    assert_eq!(
        normalize_timing(&first.body),
        normalize_timing(&again.body),
        "the flow is seed-determined, so a re-run reproduces the result"
    );
}

#[test]
fn trace_flag_threads_through() {
    let response = post(
        &service(),
        "/map",
        &format!("{{\"program\":{BELL:?},\"m\":2,\"trace\":true}}"),
    );
    assert_eq!(response.status, 200);
    assert!(response.body.contains("\"trace_commands\":"));
}

#[test]
fn sta_endpoint_reports_the_critical_path() {
    let service = service();
    let body = format!("{{\"program\":{BELL:?},\"m\":2}}");
    let cold = post(&service, "/sta", &body);
    assert_eq!(cold.status, 200, "{}", cold.body);
    // The body is the TimingReport schema of `qspr sta --format json`.
    assert!(cold.body.starts_with(r#"{"makespan_us":"#), "{}", cold.body);
    assert!(cold.body.contains(r#""critical_path":["#));
    assert!(cold.body.contains(r#""segments":["#));
    // Reports carry no clock: the cached repeat AND a fresh service
    // reproduce the bytes exactly.
    let warm = post(&service, "/sta", &body);
    assert_eq!(warm, cold);
    let second_service = MapService::new(Fabric::quale_45x85(), 8);
    let fresh = post(&second_service, "/sta", &body);
    assert_eq!(fresh, cold);
    let stats = service.stats();
    assert_eq!(stats.sta_requests, 2);
    assert_eq!((stats.cache_hits, stats.cache_misses), (1, 1));
}

#[test]
fn sta_requests_validate_their_fields() {
    let service = service();
    // `trace`/`name` belong to the other endpoints.
    let response = post(
        &service,
        "/sta",
        &format!("{{\"program\":{BELL:?},\"trace\":true}}"),
    );
    assert_eq!(response.status, 400);
    assert!(response
        .body
        .contains("allowed: program, policy, router, m, jobs, feedback, fabric"));
    // Feedback needs the negotiated router, like the CLI.
    let response = post(
        &service,
        "/sta",
        &format!("{{\"program\":{BELL:?},\"feedback\":true}}"),
    );
    assert_eq!(response.status, 400);
    assert!(response.body.contains("negotiated"), "{}", response.body);
    // The valid pairing succeeds end to end.
    let response = post(
        &service,
        "/sta",
        &format!("{{\"program\":{BELL:?},\"m\":2,\"router\":\"negotiated\",\"feedback\":true}}"),
    );
    assert_eq!(response.status, 200, "{}", response.body);
    assert!(response.body.contains(r#""critical_path":["#));
}

#[test]
fn flows_are_reused_per_configuration() {
    let service = service();
    let body = format!("{{\"program\":{BELL:?},\"m\":2}}");
    post(&service, "/map", &body);
    post(&service, "/map", &body);
    post(
        &service,
        "/map",
        &format!("{{\"program\":{BELL:?},\"m\":3}}"),
    );
    assert_eq!(service.flows.lock().unwrap().len(), 2);
    // Every flow shares the service fabric Arc rather than copying it.
    for flow in service.flows.lock().unwrap().values() {
        assert!(Arc::ptr_eq(flow.fabric_arc(), service.fabric()));
    }
}

#[test]
fn jobs_field_parses_clamps_and_never_changes_bytes() {
    let service = MapService::new(Fabric::quale_45x85(), 8).with_jobs_budget(2);
    assert_eq!(service.jobs_budget(), 2);
    let bad = |body: &str| {
        let response = post(&service, "/map", body);
        assert_eq!(response.status, 400, "{body} -> {}", response.body);
        response.body
    };
    assert!(bad(&format!("{{\"program\":{BELL:?},\"jobs\":0}}")).contains("positive integer"));
    assert!(bad(&format!("{{\"program\":{BELL:?},\"jobs\":\"two\"}}")).contains("positive integer"));
    // An over-budget request is clamped, not rejected: the flow the
    // service builds runs with the budgeted thread count.
    let response = post(
        &service,
        "/map",
        &format!("{{\"program\":{BELL:?},\"m\":2,\"jobs\":64}}"),
    );
    assert_eq!(response.status, 200, "{}", response.body);
    {
        let flows = service.flows.lock().unwrap();
        assert_eq!(flows.len(), 1);
        let (key, flow) = flows.iter().next().unwrap();
        assert!(key.ends_with("|2"), "flows key carries clamped jobs: {key}");
        assert_eq!(flow.job_count(), 2);
    }
    // `jobs` is a performance hint, not a result axis: a fresh service
    // mapping the same program sequentially produces the same bytes
    // modulo the wall clock.
    let sequential = MapService::new(Fabric::quale_45x85(), 8);
    let baseline = post(
        &sequential,
        "/map",
        &format!("{{\"program\":{BELL:?},\"m\":2,\"jobs\":1}}"),
    );
    assert_eq!(
        normalize_timing(&response.body),
        normalize_timing(&baseline.body)
    );
}

#[test]
fn race_router_is_served_and_allows_feedback() {
    let service = service();
    let response = post(
        &service,
        "/map",
        &format!("{{\"program\":{BELL:?},\"m\":2,\"router\":\"race\"}}"),
    );
    assert_eq!(response.status, 200, "{}", response.body);
    // The summary names the engine that won the race, never "race".
    assert!(
        response.body.contains(r#""router":"greedy""#)
            || response.body.contains(r#""router":"negotiated""#),
        "{}",
        response.body
    );
    let response = post(
        &service,
        "/sta",
        &format!("{{\"program\":{BELL:?},\"m\":2,\"router\":\"race\",\"feedback\":true}}"),
    );
    assert_eq!(response.status, 200, "{}", response.body);
    assert!(response.body.contains(r#""critical_path":["#));
}

#[test]
fn request_fabric_overrides_the_resident_fabric() {
    let service = service();
    // A spec expressible only through the description layer: two
    // junction types with different capacities.
    let spec = r#"{
        "name": "hetero",
        "types": [{"name": "wide", "kind": "junction", "capacity": 4}],
        "regions": [{"family": "regular", "rows": 9, "cols": 9, "pitch": 4}],
        "capacities": [{"type": "wide", "at": [0, 0]}]
    }"#;
    let body = format!("{{\"program\":{BELL:?},\"m\":2,\"fabric\":{spec:?}}}");
    let response = post(&service, "/map", &body);
    assert_eq!(response.status, 200, "{}", response.body);
    // The response advertises the spec provenance in its fabric block.
    assert!(
        response
            .body
            .contains(r#""fabric":{"name":"hetero","family":"regular","regions":1,"#),
        "{}",
        response.body
    );
    assert!(response.body.contains(r#"{"capacity":4,"count":1}"#));
    // One-off fabrics never land in the per-configuration flows map.
    assert_eq!(service.flows.lock().unwrap().len(), 0);
    // And the cached repeat is byte-identical.
    let warm = post(&service, "/map", &body);
    assert_eq!(warm, response);
    // ASCII art works through the same field, without a fabric block.
    let art = "-+-+-\n.|T|.\n-+-+-\n.|T|.\n-+-+-\n";
    let ascii_body = format!("{{\"program\":{BELL:?},\"m\":2,\"fabric\":{art:?}}}");
    let ascii = post(&service, "/map", &ascii_body);
    assert_eq!(ascii.status, 200, "{}", ascii.body);
    assert!(!ascii.body.contains(r#""fabric":"#), "{}", ascii.body);
}

#[test]
fn malformed_fabric_documents_are_422_goldens() {
    // Golden: a malformed spec document is 422 with the pinned
    // {"error":"invalid fabric spec: ..."} wire shape, not a panic.
    let service = service();
    let body = format!("{{\"program\":{BELL:?},\"m\":2,\"fabric\":\"{{\\\"nope\\\":1}}\"}}");
    let response = post(&service, "/map", &body);
    assert_eq!(response.status, 422, "{}", response.body);
    assert!(
        response
            .body
            .starts_with(r#"{"error":"invalid fabric spec:"#),
        "{}",
        response.body
    );
    // A non-string fabric field is a 400 schema error.
    let response = post(
        &service,
        "/map",
        &format!("{{\"program\":{BELL:?},\"fabric\":7}}"),
    );
    assert_eq!(response.status, 400);
    assert!(response.body.contains("must be a string"));
}

#[test]
fn metrics_endpoint_exposes_prometheus_text() {
    let service = service();
    // Drive some traffic so every metric family has real samples.
    let body = format!("{{\"program\":{BELL:?},\"m\":2}}");
    assert_eq!(post(&service, "/map", &body).status, 200); // miss
    assert_eq!(post(&service, "/map", &body).status, 200); // hit
    assert_eq!(get(&service, "/nope").status, 404);

    let response = get(&service, "/metrics");
    assert_eq!(response.status, 200);
    assert_eq!(response.content_type, "text/plain; version=0.0.4");
    let text = &response.body;
    assert!(
        text.contains(concat!(
            "# TYPE qspr_http_requests_total counter\n",
            "qspr_http_requests_total{endpoint=\"/map\",status=\"200\"} 2\n",
        )),
        "{text}"
    );
    assert!(text.contains("qspr_http_requests_total{endpoint=\"other\",status=\"404\"} 1\n"));
    assert!(text.contains("qspr_cache_hits_total 1\n"), "{text}");
    assert!(text.contains("qspr_cache_misses_total 1\n"), "{text}");
    assert!(
        text.contains("# TYPE qspr_handler_latency_us summary\n"),
        "{text}"
    );
    assert!(
        text.contains("qspr_handler_latency_us{endpoint=\"/map\",quantile=\"0.99\"}"),
        "{text}"
    );
    // Exposition invariant the CI smoke also checks: every # TYPE line
    // is followed by at least one sample for its family.
    for (i, line) in text.lines().enumerate() {
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let family = rest.split(' ').next().unwrap();
            let has_sample = text
                .lines()
                .skip(i + 1)
                .take_while(|l| !l.starts_with("# HELP"))
                .any(|l| l.starts_with(family));
            assert!(has_sample, "family {family} has no samples:\n{text}");
        }
    }
    // /metrics requests themselves are counted (visible on the next
    // scrape), and non-GET methods are rejected like other endpoints.
    assert_eq!(post(&service, "/metrics", "").status, 405);
    let again = get(&service, "/metrics");
    assert!(
        again
            .body
            .contains("qspr_http_requests_total{endpoint=\"/metrics\",status=\"200\"} 1\n"),
        "{}",
        again.body
    );
}

#[test]
fn wake_addr_rewrites_wildcard_binds_only() {
    let concrete: SocketAddr = "127.0.0.1:7878".parse().unwrap();
    assert_eq!(wake_addr(concrete), concrete);
    let v4: SocketAddr = "0.0.0.0:7878".parse().unwrap();
    assert_eq!(wake_addr(v4), "127.0.0.1:7878".parse().unwrap());
    let v6: SocketAddr = "[::]:7878".parse().unwrap();
    assert_eq!(wake_addr(v6), "[::1]:7878".parse().unwrap());
}

#[test]
fn server_round_trips_over_real_tcp() {
    let service = Arc::new(service());
    let config = ServeConfig {
        addr: "127.0.0.1:0".into(),
        threads: 2,
        log: false,
    };
    let handle = Server::bind(Arc::clone(&service), &config)
        .expect("bind ephemeral")
        .spawn();
    let addr = handle.addr();

    let health = http::call(addr, "GET", "/healthz", "").unwrap();
    assert_eq!(
        (health.status, health.body.as_str()),
        (
            200,
            concat!(
                r#"{"status":"ok","version":""#,
                env!("CARGO_PKG_VERSION"),
                "\"}"
            ),
        )
    );

    // Binding surfaced the actual address in /stats.
    let stats = http::call(addr, "GET", "/stats", "").unwrap();
    assert!(
        stats.body.contains(&format!(r#""addr":"{addr}""#)),
        "{}",
        stats.body
    );

    let body = format!("{{\"program\":{BELL:?},\"m\":2}}");
    let cold = http::call(addr, "POST", "/map", &body).unwrap();
    let warm = http::call(addr, "POST", "/map", &body).unwrap();
    assert_eq!(cold.status, 200);
    assert_eq!(cold, warm, "cached response is byte-identical on the wire");

    // Malformed HTTP gets a 400 without killing the worker.
    let garbage = http::call(addr, "BAD REQUEST LINE", "/", "").unwrap();
    assert_eq!(garbage.status, 400);
    let still_up = http::call(addr, "GET", "/healthz", "").unwrap();
    assert_eq!(still_up.status, 200);

    handle.shutdown().expect("graceful shutdown");
    assert!(service.shutdown_requested());
}

#[test]
fn shutdown_endpoint_stops_the_server() {
    let service = Arc::new(service());
    let config = ServeConfig {
        addr: "127.0.0.1:0".into(),
        threads: 1,
        log: false,
    };
    let handle = Server::bind(Arc::clone(&service), &config)
        .expect("bind ephemeral")
        .spawn();
    let addr = handle.addr();
    let bye = http::call(addr, "POST", "/shutdown", "").unwrap();
    assert_eq!(
        (bye.status, bye.body.as_str()),
        (200, r#"{"status":"shutting-down"}"#)
    );
    // run() returns on its own — join without sending anything else.
    handle.thread.join().expect("no panic").expect("clean exit");
    assert!(http::call(addr, "GET", "/healthz", "").is_err());
}
