//! Service tests: wire-schema goldens (the `/map`, `/batch`, `/stats`
//! and error body contracts, alongside the JSON goldens in
//! `crate::json`), cache semantics (including sharded-vs-single-lock
//! equivalence), HTTP parser property tests, and real-TCP keep-alive
//! round trips.

use super::http::{encode_response, Parser};
use super::*;
use proptest::prelude::*;
use qspr_fabric::Fabric;
use std::time::Duration;

/// A two-qubit program that maps in well under a millisecond.
const BELL: &str = "QUBIT a\nQUBIT b\nH a\nC-X a,b\n";

/// A three-qubit companion for batch tests.
const GHZ3: &str = "QUBIT a\nQUBIT b\nQUBIT c\nH a\nC-X a,b\nC-X b,c\n";

fn service() -> MapService {
    MapService::new(Fabric::quale_45x85(), 64)
}

fn post(service: &MapService, path: &str, body: &str) -> Response {
    service.handle(&Request::new("POST", path, body))
}

fn get(service: &MapService, path: &str) -> Response {
    service.handle(&Request::new("GET", path, ""))
}

#[test]
fn map_wire_schema_golden() {
    // Golden: the `/map` response body IS the FlowSummary schema of
    // `qspr map --format json`, key for key, in order.
    let response = post(
        &service(),
        "/map",
        &format!("{{\"program\":{:?},\"m\":2}}", BELL),
    );
    assert_eq!(response.status, 200);
    assert!(response
        .body
        .starts_with(r#"{"policy":"qspr","placer":"mvfb","router":"greedy","latency_us":"#));
    let keys = [
        "\"policy\":",
        "\"placer\":",
        "\"router\":",
        "\"latency_us\":",
        "\"direction\":",
        "\"runs\":",
        "\"timing\":{\"cpu_ms\":",
        "\"wall_us\":",
        "\"moves\":",
        "\"turns\":",
        "\"congestion_wait_us\":",
        "\"epochs\":",
        "\"rip_iterations\":",
        "\"ripped_routes\":",
        "\"max_segment_pressure\":",
    ];
    let mut at = 0;
    for key in keys {
        let pos = response.body[at..]
            .find(key)
            .unwrap_or_else(|| panic!("{key} missing or out of order in {}", response.body));
        at += pos + key.len();
    }
    // And it matches a direct library run, modulo the wall clock.
    let flow = Flow::on(Fabric::quale_45x85()).seeds(2);
    let expected = flow
        .run(&Program::parse(BELL).unwrap())
        .unwrap()
        .summary()
        .to_json();
    assert_eq!(
        normalize_timing(&response.body),
        normalize_timing(&expected)
    );
}

#[test]
fn stats_wire_schema_golden() {
    // Golden: this string IS the `GET /stats` schema contract.
    let snapshot = StatsSnapshot {
        requests: 9,
        map_requests: 5,
        compare_requests: 2,
        sta_requests: 1,
        batch_requests: 1,
        batch_programs: 3,
        cache_hits: 3,
        cache_misses: 4,
        cache_entries: 4,
        cache_capacity: 128,
        cache_bytes: 2048,
        cache_shards: vec![
            ShardStats {
                entries: 3,
                bytes: 1536,
                hits: 2,
                misses: 3,
                evictions: 0,
            },
            ShardStats {
                entries: 1,
                bytes: 512,
                hits: 1,
                misses: 1,
                evictions: 1,
            },
        ],
        rejected: 2,
        errors: 1,
        busy_us: 123456,
        uptime_ms: 60000,
        uptime_s: 60,
        addr: "127.0.0.1:7878".to_owned(),
    };
    assert_eq!(
        snapshot.to_json(),
        concat!(
            r#"{"requests":9,"map_requests":5,"compare_requests":2,"sta_requests":1,"#,
            r#""batch_requests":1,"batch_programs":3,"cache_hits":3,"cache_misses":4,"#,
            r#""cache_entries":4,"cache_capacity":128,"cache_bytes":2048,"#,
            r#""cache_shards":[{"entries":3,"bytes":1536,"hits":2,"misses":3,"evictions":0},"#,
            r#"{"entries":1,"bytes":512,"hits":1,"misses":1,"evictions":1}],"#,
            r#""rejected":2,"errors":1,"busy_us":123456,"uptime_ms":60000,"uptime_s":60,"#,
            r#""addr":"127.0.0.1:7878"}"#,
        )
    );
}

#[test]
fn healthz_and_error_bodies_are_pinned() {
    let service = service();
    assert_eq!(
        get(&service, "/healthz"),
        Response::new(
            200,
            concat!(
                r#"{"status":"ok","version":""#,
                env!("CARGO_PKG_VERSION"),
                "\"}"
            ),
        )
    );
    // Error shape: {"error": "..."} with the message JSON-escaped.
    let response = post(&service, "/map", "not json");
    assert_eq!(response.status, 400);
    assert!(response.body.starts_with(r#"{"error":"invalid JSON body:"#));
    assert_eq!(
        post(&service, "/map", r#"{"frob":1}"#).body,
        r#"{"error":"unknown field \"frob\" (allowed: program, policy, router, m, jobs, trace, fabric)"}"#
    );
    assert_eq!(
        get(&service, "/nope"),
        Response::new(404, r#"{"error":"no endpoint /nope"}"#)
    );
    assert_eq!(
        get(&service, "/map").status,
        405,
        "GET on a POST endpoint is rejected"
    );
    assert_eq!(
        get(&service, "/batch").status,
        405,
        "GET on /batch is rejected"
    );
    assert_eq!(
        post(&service, "/healthz", "").status,
        405,
        "POST on a GET endpoint is rejected"
    );
}

#[test]
fn map_requests_validate_like_the_cli() {
    let service = service();
    let bad = |body: &str| {
        let response = post(&service, "/map", body);
        assert_eq!(response.status, 400, "{body} -> {}", response.body);
        response.body
    };
    assert!(bad(r#"{}"#).contains("\\\"program\\\" (string) is required"));
    assert!(bad(r#"{"program":5}"#).contains("required"));
    assert!(bad(r#"{"program":"FROB q\n"}"#).contains("unknown gate"));
    assert!(
        bad(&format!("{{\"program\":{BELL:?},\"policy\":\"best\"}}")).contains("unknown policy")
    );
    assert!(
        bad(&format!("{{\"program\":{BELL:?},\"router\":\"fancy\"}}")).contains("unknown router")
    );
    assert!(bad(&format!("{{\"program\":{BELL:?},\"m\":-1}}")).contains("non-negative integer"));
    assert!(bad(&format!("{{\"program\":{BELL:?},\"trace\":1}}")).contains("boolean"));
    assert!(bad(r#"[1,2]"#).contains("must be a JSON object"));
    // Work, not just input size, is bounded: an absurd seed count is
    // rejected up front instead of pinning a worker for hours.
    assert!(bad(&format!("{{\"program\":{BELL:?},\"m\":4000000000}}"))
        .contains("exceeds the service limit"));
    // An unmappable program (zero placement seeds) is 422, not 400.
    let response = post(
        &service,
        "/map",
        &format!("{{\"program\":{BELL:?},\"m\":0}}"),
    );
    assert_eq!(response.status, 422);
    assert!(response.body.starts_with(r#"{"error":"#));
}

#[test]
fn cache_hits_are_byte_identical_and_counted() {
    let service = service();
    let body = format!("{{\"program\":{BELL:?},\"m\":2}}");

    let cold = post(&service, "/map", &body);
    assert_eq!(cold.status, 200);
    let stats = service.stats();
    assert_eq!((stats.cache_hits, stats.cache_misses), (0, 1));
    assert_eq!(stats.cache_entries, 1);

    // The cached path returns the stored bytes — including the cold
    // run's timing block — so the bodies are byte-identical by
    // construction.
    for _ in 0..3 {
        let warm = post(&service, "/map", &body);
        assert_eq!(warm, cold);
    }
    let stats = service.stats();
    assert_eq!((stats.cache_hits, stats.cache_misses), (3, 1));
    assert_eq!(stats.map_requests, 4);

    // A different configuration of the same program is a different
    // fingerprint: miss, new entry.
    let other = post(
        &service,
        "/map",
        &format!("{{\"program\":{BELL:?},\"m\":3}}"),
    );
    assert_eq!(other.status, 200);
    let stats = service.stats();
    assert_eq!((stats.cache_hits, stats.cache_misses), (3, 2));
    assert_eq!(stats.cache_entries, 2);
    // Per-shard counters and byte accounting stay consistent with the
    // aggregates.
    assert_eq!(
        stats.cache_shards.iter().map(|s| s.hits).sum::<u64>(),
        stats.cache_hits
    );
    assert_eq!(
        stats.cache_shards.iter().map(|s| s.misses).sum::<u64>(),
        stats.cache_misses
    );
    assert_eq!(
        stats.cache_shards.iter().map(|s| s.bytes).sum::<u64>(),
        stats.cache_bytes
    );
    assert!(stats.cache_bytes > 0);
}

#[test]
fn compare_responses_are_fully_deterministic() {
    // ComparisonRow carries no clock: equal requests give equal bytes
    // even across cache evictions and service restarts.
    let body = format!("{{\"program\":{BELL:?},\"name\":\"bell\",\"m\":2}}");
    let a = post(&service(), "/compare", &body);
    let b = post(&service(), "/compare", &body);
    assert_eq!(a.status, 200);
    assert_eq!(a, b);
    assert!(a.body.starts_with(r#"{"circuit":"bell","baseline_us":"#));
    // The `name` field lands in the row and separates cache keys.
    let renamed = post(
        &service(),
        "/compare",
        &format!("{{\"program\":{BELL:?},\"name\":\"other\",\"m\":2}}"),
    );
    assert!(renamed.body.starts_with(r#"{"circuit":"other","#));
}

#[test]
fn compare_rejects_map_only_fields() {
    let response = post(
        &service(),
        "/compare",
        &format!("{{\"program\":{BELL:?},\"trace\":true}}"),
    );
    assert_eq!(response.status, 400);
    assert!(response
        .body
        .contains("allowed: program, name, router, m, jobs, fabric"));
}

#[test]
fn eviction_causes_a_rerun_not_a_wrong_answer() {
    // A single one-entry shard: the second distinct request evicts the
    // first; asking for the first again re-maps (miss) and yields the
    // same latency.
    let service = MapService::new(Fabric::quale_45x85(), 1).with_cache(CacheConfig {
        entries: 1,
        shards: 1,
        ..CacheConfig::default()
    });
    let a = format!("{{\"program\":{BELL:?},\"m\":2}}");
    let b = format!("{{\"program\":{BELL:?},\"m\":3}}");
    let first = post(&service, "/map", &a);
    post(&service, "/map", &b);
    let again = post(&service, "/map", &a);
    let stats = service.stats();
    assert_eq!(stats.cache_hits, 0);
    assert_eq!(stats.cache_misses, 3);
    assert_eq!(stats.cache_entries, 1);
    assert_eq!(
        stats.cache_shards.iter().map(|s| s.evictions).sum::<u64>(),
        2
    );
    assert_eq!(
        normalize_timing(&first.body),
        normalize_timing(&again.body),
        "the flow is seed-determined, so a re-run reproduces the result"
    );
}

#[test]
fn trace_flag_threads_through() {
    let response = post(
        &service(),
        "/map",
        &format!("{{\"program\":{BELL:?},\"m\":2,\"trace\":true}}"),
    );
    assert_eq!(response.status, 200);
    assert!(response.body.contains("\"trace_commands\":"));
}

#[test]
fn sta_endpoint_reports_the_critical_path() {
    let service = service();
    let body = format!("{{\"program\":{BELL:?},\"m\":2}}");
    let cold = post(&service, "/sta", &body);
    assert_eq!(cold.status, 200, "{}", cold.body);
    // The body is the TimingReport schema of `qspr sta --format json`.
    assert!(cold.body.starts_with(r#"{"makespan_us":"#), "{}", cold.body);
    assert!(cold.body.contains(r#""critical_path":["#));
    assert!(cold.body.contains(r#""segments":["#));
    // Reports carry no clock: the cached repeat AND a fresh service
    // reproduce the bytes exactly.
    let warm = post(&service, "/sta", &body);
    assert_eq!(warm, cold);
    let second_service = MapService::new(Fabric::quale_45x85(), 8);
    let fresh = post(&second_service, "/sta", &body);
    assert_eq!(fresh, cold);
    let stats = service.stats();
    assert_eq!(stats.sta_requests, 2);
    assert_eq!((stats.cache_hits, stats.cache_misses), (1, 1));
}

#[test]
fn sta_requests_validate_their_fields() {
    let service = service();
    // `trace`/`name` belong to the other endpoints.
    let response = post(
        &service,
        "/sta",
        &format!("{{\"program\":{BELL:?},\"trace\":true}}"),
    );
    assert_eq!(response.status, 400);
    assert!(response
        .body
        .contains("allowed: program, policy, router, m, jobs, feedback, fabric"));
    // Feedback needs the negotiated router, like the CLI.
    let response = post(
        &service,
        "/sta",
        &format!("{{\"program\":{BELL:?},\"feedback\":true}}"),
    );
    assert_eq!(response.status, 400);
    assert!(response.body.contains("negotiated"), "{}", response.body);
    // The valid pairing succeeds end to end.
    let response = post(
        &service,
        "/sta",
        &format!("{{\"program\":{BELL:?},\"m\":2,\"router\":\"negotiated\",\"feedback\":true}}"),
    );
    assert_eq!(response.status, 200, "{}", response.body);
    assert!(response.body.contains(r#""critical_path":["#));
}

#[test]
fn flows_are_reused_per_configuration() {
    let service = service();
    let body = format!("{{\"program\":{BELL:?},\"m\":2}}");
    post(&service, "/map", &body);
    post(&service, "/map", &body);
    post(
        &service,
        "/map",
        &format!("{{\"program\":{BELL:?},\"m\":3}}"),
    );
    assert_eq!(service.flows.lock().unwrap().len(), 2);
    // Every flow shares the service fabric Arc rather than copying it.
    for flow in service.flows.lock().unwrap().values() {
        assert!(Arc::ptr_eq(flow.fabric_arc(), service.fabric()));
    }
}

#[test]
fn jobs_field_parses_clamps_and_never_changes_bytes() {
    let service = MapService::new(Fabric::quale_45x85(), 8).with_jobs_budget(2);
    assert_eq!(service.jobs_budget(), 2);
    let bad = |body: &str| {
        let response = post(&service, "/map", body);
        assert_eq!(response.status, 400, "{body} -> {}", response.body);
        response.body
    };
    assert!(bad(&format!("{{\"program\":{BELL:?},\"jobs\":0}}")).contains("positive integer"));
    assert!(bad(&format!("{{\"program\":{BELL:?},\"jobs\":\"two\"}}")).contains("positive integer"));
    // An over-budget request is clamped, not rejected: the flow the
    // service builds runs with the budgeted thread count.
    let response = post(
        &service,
        "/map",
        &format!("{{\"program\":{BELL:?},\"m\":2,\"jobs\":64}}"),
    );
    assert_eq!(response.status, 200, "{}", response.body);
    {
        let flows = service.flows.lock().unwrap();
        assert_eq!(flows.len(), 1);
        let (key, flow) = flows.iter().next().unwrap();
        assert!(key.ends_with("|2"), "flows key carries clamped jobs: {key}");
        assert_eq!(flow.job_count(), 2);
    }
    // `jobs` is a performance hint, not a result axis: a fresh service
    // mapping the same program sequentially produces the same bytes
    // modulo the wall clock.
    let sequential = MapService::new(Fabric::quale_45x85(), 8);
    let baseline = post(
        &sequential,
        "/map",
        &format!("{{\"program\":{BELL:?},\"m\":2,\"jobs\":1}}"),
    );
    assert_eq!(
        normalize_timing(&response.body),
        normalize_timing(&baseline.body)
    );
}

#[test]
fn race_router_is_served_and_allows_feedback() {
    let service = service();
    let response = post(
        &service,
        "/map",
        &format!("{{\"program\":{BELL:?},\"m\":2,\"router\":\"race\"}}"),
    );
    assert_eq!(response.status, 200, "{}", response.body);
    // The summary names the engine that won the race, never "race".
    assert!(
        response.body.contains(r#""router":"greedy""#)
            || response.body.contains(r#""router":"negotiated""#),
        "{}",
        response.body
    );
    let response = post(
        &service,
        "/sta",
        &format!("{{\"program\":{BELL:?},\"m\":2,\"router\":\"race\",\"feedback\":true}}"),
    );
    assert_eq!(response.status, 200, "{}", response.body);
    assert!(response.body.contains(r#""critical_path":["#));
}

#[test]
fn request_fabric_overrides_the_resident_fabric() {
    let service = service();
    // A spec expressible only through the description layer: two
    // junction types with different capacities.
    let spec = r#"{
        "name": "hetero",
        "types": [{"name": "wide", "kind": "junction", "capacity": 4}],
        "regions": [{"family": "regular", "rows": 9, "cols": 9, "pitch": 4}],
        "capacities": [{"type": "wide", "at": [0, 0]}]
    }"#;
    let body = format!("{{\"program\":{BELL:?},\"m\":2,\"fabric\":{spec:?}}}");
    let response = post(&service, "/map", &body);
    assert_eq!(response.status, 200, "{}", response.body);
    // The response advertises the spec provenance in its fabric block.
    assert!(
        response
            .body
            .contains(r#""fabric":{"name":"hetero","family":"regular","regions":1,"#),
        "{}",
        response.body
    );
    assert!(response.body.contains(r#"{"capacity":4,"count":1}"#));
    // One-off fabrics never land in the per-configuration flows map.
    assert_eq!(service.flows.lock().unwrap().len(), 0);
    // And the cached repeat is byte-identical.
    let warm = post(&service, "/map", &body);
    assert_eq!(warm, response);
    // ASCII art works through the same field, without a fabric block.
    let art = "-+-+-\n.|T|.\n-+-+-\n.|T|.\n-+-+-\n";
    let ascii_body = format!("{{\"program\":{BELL:?},\"m\":2,\"fabric\":{art:?}}}");
    let ascii = post(&service, "/map", &ascii_body);
    assert_eq!(ascii.status, 200, "{}", ascii.body);
    assert!(!ascii.body.contains(r#""fabric":"#), "{}", ascii.body);
}

#[test]
fn malformed_fabric_documents_are_422_goldens() {
    // Golden: a malformed spec document is 422 with the pinned
    // {"error":"invalid fabric spec: ..."} wire shape, not a panic.
    let service = service();
    let body = format!("{{\"program\":{BELL:?},\"m\":2,\"fabric\":\"{{\\\"nope\\\":1}}\"}}");
    let response = post(&service, "/map", &body);
    assert_eq!(response.status, 422, "{}", response.body);
    assert!(
        response
            .body
            .starts_with(r#"{"error":"invalid fabric spec:"#),
        "{}",
        response.body
    );
    // A non-string fabric field is a 400 schema error.
    let response = post(
        &service,
        "/map",
        &format!("{{\"program\":{BELL:?},\"fabric\":7}}"),
    );
    assert_eq!(response.status, 400);
    assert!(response.body.contains("must be a string"));
}

// ---------------------------------------------------------------------------
// /batch
// ---------------------------------------------------------------------------

#[test]
fn batch_returns_input_ordered_rows_matching_the_library() {
    let service = service();
    let body =
        format!("{{\"programs\":[{BELL:?},{GHZ3:?}],\"names\":[\"bell\",\"ghz3\"],\"m\":2}}");
    let response = post(&service, "/batch", &body);
    assert_eq!(response.status, 200, "{}", response.body);
    // Golden: the body is exactly the JSON array of the /compare rows
    // the library computes, in input order.
    let flow = Flow::on(Fabric::quale_45x85()).seeds(2);
    let bell = flow
        .compare("bell", &Program::parse(BELL).unwrap())
        .unwrap()
        .to_json();
    let ghz = flow
        .compare("ghz3", &Program::parse(GHZ3).unwrap())
        .unwrap()
        .to_json();
    assert_eq!(response.body, format!("[{bell},{ghz}]"));
    let stats = service.stats();
    assert_eq!(stats.batch_requests, 1);
    assert_eq!(stats.batch_programs, 2);
    assert_eq!((stats.cache_hits, stats.cache_misses), (0, 2));
    // A repeat is all cache hits and byte-identical.
    let again = post(&service, "/batch", &body);
    assert_eq!(again, response);
    let stats = service.stats();
    assert_eq!((stats.cache_hits, stats.cache_misses), (2, 2));
}

#[test]
fn batch_shares_cache_entries_with_compare() {
    let service = service();
    // Warm one circuit through /compare...
    let compare = post(
        &service,
        "/compare",
        &format!("{{\"program\":{BELL:?},\"name\":\"bell\",\"m\":2}}"),
    );
    assert_eq!(compare.status, 200);
    // ...then batch the pair: bell hits, ghz3 misses.
    let batch = post(
        &service,
        "/batch",
        &format!("{{\"programs\":[{BELL:?},{GHZ3:?}],\"names\":[\"bell\",\"ghz3\"],\"m\":2}}"),
    );
    assert_eq!(batch.status, 200, "{}", batch.body);
    assert!(batch.body.starts_with(&format!("[{}", compare.body)));
    let stats = service.stats();
    assert_eq!((stats.cache_hits, stats.cache_misses), (1, 2));
    // And the reverse direction: /compare now hits the batch's entry.
    let ghz = post(
        &service,
        "/compare",
        &format!("{{\"program\":{GHZ3:?},\"name\":\"ghz3\",\"m\":2}}"),
    );
    assert_eq!(ghz.status, 200);
    assert!(batch.body.ends_with(&format!("{}]", ghz.body)));
    assert_eq!(service.stats().cache_hits, 2);
}

#[test]
fn batch_defaults_names_and_runs_under_the_jobs_clamp() {
    let service = MapService::new(Fabric::quale_45x85(), 64).with_jobs_budget(2);
    let response = post(
        &service,
        "/batch",
        &format!("{{\"programs\":[{BELL:?},{GHZ3:?}],\"m\":2,\"jobs\":64}}"),
    );
    assert_eq!(response.status, 200, "{}", response.body);
    assert!(response.body.starts_with(r#"[{"circuit":"program0","#));
    assert!(response.body.contains(r#"{"circuit":"program1","#));
    // The jobs hint never changes bytes: a sequential service agrees.
    let sequential = MapService::new(Fabric::quale_45x85(), 64);
    let baseline = post(
        &sequential,
        "/batch",
        &format!("{{\"programs\":[{BELL:?},{GHZ3:?}],\"m\":2}}"),
    );
    assert_eq!(baseline.body, response.body);
}

#[test]
fn batch_requests_validate_their_fields() {
    let service = service();
    let bad = |body: &str| {
        let response = post(&service, "/batch", body);
        assert_eq!(response.status, 400, "{body} -> {}", response.body);
        response.body
    };
    assert!(bad(r#"{}"#).contains("\\\"programs\\\" (array of strings) is required"));
    assert!(bad(r#"{"programs":"x"}"#).contains("array of strings"));
    assert!(bad(r#"{"programs":[]}"#).contains("must not be empty"));
    assert!(bad(r#"{"programs":[5]}"#).contains("programs[0] must be a string"));
    assert!(bad(&format!("{{\"programs\":[{BELL:?}],\"names\":[]}}"))
        .contains("\\\"names\\\" has 0 entries for 1 programs"));
    assert!(
        bad(&format!("{{\"programs\":[{BELL:?}],\"program\":{BELL:?}}}")).contains(
            "unknown field \\\"program\\\" (allowed: programs, names, router, m, jobs, fabric)"
        )
    );
    assert!(bad(r#"{"programs":["FROB q\n"]}"#).contains("programs[0]:"));
    // The batch size cap bounds per-request work like MAX_SEEDS does.
    let many = format!(
        "{{\"programs\":[{}]}}",
        vec![format!("{BELL:?}"); 257].join(",")
    );
    assert!(bad(&many).contains("exceeds the service limit of 256 circuits"));
    // An unmappable circuit is 422 and names its index-derived circuit.
    let response = post(
        &service,
        "/batch",
        &format!("{{\"programs\":[{BELL:?}],\"m\":0}}"),
    );
    assert_eq!(response.status, 422, "{}", response.body);
    assert!(response.body.contains("program0"), "{}", response.body);
}

// ---------------------------------------------------------------------------
// Backpressure and protocol responses
// ---------------------------------------------------------------------------

#[test]
fn reject_is_a_429_golden_with_retry_after() {
    let service = service();
    let response = service.reject("/map");
    assert_eq!(response.status, 429);
    assert_eq!(response.reason(), "Too Many Requests");
    assert_eq!(response.retry_after, Some(1));
    assert_eq!(
        response.body,
        r#"{"error":"admission queue for /map is full; retry shortly"}"#
    );
    let stats = service.stats();
    assert_eq!((stats.requests, stats.rejected, stats.errors), (1, 1, 1));
    let metrics = get(&service, "/metrics");
    assert!(
        metrics
            .body
            .contains("qspr_rejected_total{endpoint=\"/map\"} 1\n"),
        "{}",
        metrics.body
    );
    assert!(
        metrics
            .body
            .contains("qspr_http_requests_total{endpoint=\"/map\",status=\"429\"} 1\n"),
        "{}",
        metrics.body
    );
}

#[test]
fn protocol_responses_map_parser_errors_to_statuses() {
    let service = service();
    let bad = io::Error::new(io::ErrorKind::InvalidData, "malformed request line");
    let response = service.protocol_response(&bad);
    assert_eq!(response.status, 400);
    assert_eq!(response.body, r#"{"error":"malformed request line"}"#);
    let big = io::Error::new(io::ErrorKind::InvalidInput, "body exceeds limit");
    let response = service.protocol_response(&big);
    assert_eq!(response.status, 413);
    let stats = service.stats();
    assert_eq!((stats.requests, stats.errors), (2, 2));
}

#[test]
fn encode_response_golden() {
    let ok = Response::new(200, "{}");
    assert_eq!(
        String::from_utf8(encode_response(&ok, true)).unwrap(),
        "HTTP/1.1 200 OK\r\nContent-Type: application/json\r\nContent-Length: 2\r\nConnection: keep-alive\r\n\r\n{}"
    );
    let busy = Response::new(429, "x").with_retry_after(7);
    assert_eq!(
        String::from_utf8(encode_response(&busy, false)).unwrap(),
        "HTTP/1.1 429 Too Many Requests\r\nContent-Type: application/json\r\nContent-Length: 1\r\nRetry-After: 7\r\nConnection: close\r\n\r\nx"
    );
}

// ---------------------------------------------------------------------------
// Sharded cache
// ---------------------------------------------------------------------------

#[test]
fn sharded_cache_accounts_bytes_exactly() {
    let cache = ShardedCache::new(CacheConfig {
        entries: 64,
        shards: 4,
        ..CacheConfig::default()
    });
    let mut expected = 0u64;
    for i in 0..40 {
        let key = format!("key-{i}");
        let value = "v".repeat(i);
        expected += (key.len() + value.len()) as u64;
        cache.insert(key, value);
    }
    // No evictions yet (40 entries over 4 shards of 16): the audit
    // (recomputed from the slabs) and the incremental totals agree.
    assert_eq!(cache.audit_bytes(), expected);
    assert_eq!(cache.bytes(), expected);
    assert_eq!(
        cache.shard_stats().iter().map(|s| s.bytes).sum::<u64>(),
        expected
    );
    // Replacement adjusts, never leaks.
    cache.insert("key-0".into(), "longer-value".repeat(4));
    assert_eq!(cache.audit_bytes(), cache.bytes());
    // Evictions release their bytes.
    for i in 0..500 {
        cache.insert(format!("evict-{i}"), "x".repeat(100));
    }
    assert!(cache.len() <= 64);
    assert_eq!(cache.audit_bytes(), cache.bytes());
}

#[test]
fn sharded_cache_enforces_a_byte_budget() {
    let cache = ShardedCache::new(CacheConfig {
        entries: 1024,
        shards: 1,
        ttl: None,
        max_bytes: Some(100),
    });
    for i in 0..20 {
        cache.insert(format!("k{i}"), "0123456789".into()); // 12 bytes each
    }
    assert!(cache.bytes() <= 100, "bytes={}", cache.bytes());
    assert!(cache.len() < 20);
    assert_eq!(cache.audit_bytes(), cache.bytes());
    // The most recent insert always survives.
    assert_eq!(cache.get("k19"), Some("0123456789".into()));
}

#[test]
fn sharded_cache_expires_entries_lazily() {
    let cache = ShardedCache::new(CacheConfig {
        entries: 16,
        shards: 2,
        ttl: Some(Duration::from_millis(40)),
        max_bytes: None,
    });
    cache.insert("a".into(), "alpha".into());
    assert_eq!(cache.get("a"), Some("alpha".into()));
    std::thread::sleep(Duration::from_millis(60));
    assert_eq!(cache.get("a"), None, "expired entries miss");
    let totals = cache.totals();
    assert_eq!((totals.hits, totals.misses, totals.evictions), (1, 1, 1));
    assert_eq!(cache.len(), 0);
    assert_eq!(cache.bytes(), 0);
    // Reinsert starts a fresh TTL.
    cache.insert("a".into(), "beta".into());
    assert_eq!(cache.get("a"), Some("beta".into()));
}

#[test]
fn sharded_cache_is_deterministic_under_concurrency() {
    // N threads hammer disjoint key ranges concurrently; every thread
    // sees exactly its own values, and the final counters add up.
    let cache = Arc::new(ShardedCache::new(CacheConfig {
        entries: 4096,
        shards: 8,
        ..CacheConfig::default()
    }));
    let threads = 8;
    let per_thread = 100u32;
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let cache = Arc::clone(&cache);
            std::thread::spawn(move || {
                for k in 0..per_thread {
                    let key = format!("t{t}-k{k}");
                    let value = format!("value-{t}-{k}");
                    assert_eq!(cache.get(&key), None, "first lookup misses");
                    cache.insert(key.clone(), value.clone());
                    assert_eq!(cache.get(&key), Some(value), "own insert visible");
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().unwrap();
    }
    let totals = cache.totals();
    let ops = u64::from(per_thread) * threads as u64;
    assert_eq!(cache.len() as u64, ops);
    assert_eq!(
        (totals.hits, totals.misses, totals.evictions),
        (ops, ops, 0)
    );
    assert_eq!(cache.audit_bytes(), cache.bytes());
    // Everything is still retrievable afterwards, deterministically.
    for t in 0..threads {
        for k in 0..per_thread {
            assert_eq!(
                cache.get(&format!("t{t}-k{k}")),
                Some(format!("value-{t}-{k}"))
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// With one shard, no TTL and no byte budget, the sharded cache is
    /// observably identical to the old mutex-wrapped [`LruCache`] on
    /// any operation trace: same hits, same misses, same evictions,
    /// same final contents.
    #[test]
    fn single_shard_matches_the_single_lock_reference(
        ops in collection::vec((any::<bool>(), 0u8..12), 1..250),
        capacity in 1usize..6,
    ) {
        let mut reference: LruCache<String> = LruCache::new(capacity);
        let sharded = ShardedCache::new(CacheConfig {
            entries: capacity,
            shards: 1,
            ttl: None,
            max_bytes: None,
        });
        for (is_insert, key) in ops {
            let key = format!("k{key}");
            if is_insert {
                let value = format!("value-of-{key}");
                reference.insert(key.clone(), value.clone());
                sharded.insert(key, value);
            } else {
                let expected = reference.get(&key).cloned();
                prop_assert_eq!(sharded.get(&key), expected);
            }
        }
        prop_assert_eq!(sharded.len(), reference.len());
        for key in 0u8..12 {
            let key = format!("k{key}");
            let expected = reference.get(&key).cloned();
            prop_assert_eq!(sharded.get(&key), expected);
        }
    }
}

#[test]
fn shard_count_never_changes_response_bytes() {
    // Replay one recorded request trace against a 1-shard and an
    // 8-shard service: every response must be byte-identical modulo
    // the /map timing block (and cached repeats identical, full stop).
    let single = MapService::new(Fabric::quale_45x85(), 8).with_cache(CacheConfig {
        entries: 8,
        shards: 1,
        ..CacheConfig::default()
    });
    let sharded = MapService::new(Fabric::quale_45x85(), 8);
    let map_body = format!("{{\"program\":{BELL:?},\"m\":2}}");
    let cmp_body = format!("{{\"program\":{BELL:?},\"name\":\"bell\",\"m\":2}}");
    let batch_body = format!("{{\"programs\":[{BELL:?},{GHZ3:?}],\"m\":2}}");
    let trace = [
        ("/map", map_body.as_str()),
        ("/compare", cmp_body.as_str()),
        ("/map", map_body.as_str()), // repeat: hit on both
        ("/batch", batch_body.as_str()),
        ("/compare", cmp_body.as_str()),
        ("/batch", batch_body.as_str()),
    ];
    for (path, body) in trace {
        let a = post(&single, path, body);
        let b = post(&sharded, path, body);
        assert_eq!(a.status, b.status, "{path}");
        assert_eq!(
            normalize_timing(&a.body),
            normalize_timing(&b.body),
            "{path} diverged between shard layouts"
        );
    }
    let a = single.stats();
    let b = sharded.stats();
    assert_eq!(
        (a.cache_hits, a.cache_misses),
        (b.cache_hits, b.cache_misses)
    );
}

// ---------------------------------------------------------------------------
// HTTP parser properties
// ---------------------------------------------------------------------------

/// Drains every parsed request; returns the terminal error rendering,
/// if the stream is in error.
fn drain_parser(parser: &mut Parser, out: &mut Vec<Request>) -> Option<String> {
    loop {
        match parser.next_request() {
            Ok(Some(request)) => out.push(request),
            Ok(None) => return None,
            Err(e) => return Some(format!("{:?}|{e}", e.kind())),
        }
    }
}

/// Parses `wire` in one shot (the reference outcome).
fn parse_whole(wire: &[u8]) -> (Vec<Request>, Option<String>) {
    let mut parser = Parser::new();
    parser.feed(wire);
    let mut requests = Vec::new();
    let error = drain_parser(&mut parser, &mut requests);
    (requests, error)
}

/// Parses `wire` split at the given cycle of chunk sizes, draining
/// after every feed (the worst-case interleaving a reactor sees).
fn parse_chunked(wire: &[u8], sizes: &[usize]) -> (Vec<Request>, Option<String>) {
    let mut parser = Parser::new();
    let mut requests = Vec::new();
    let mut at = 0;
    let mut cycle = sizes.iter().copied().cycle();
    while at < wire.len() {
        let n = cycle.next().unwrap_or(1).max(1).min(wire.len() - at);
        parser.feed(&wire[at..at + n]);
        at += n;
        if let Some(error) = drain_parser(&mut parser, &mut requests) {
            return (requests, Some(error));
        }
    }
    (requests, None)
}

/// A pipelined wire stream of valid requests built from fragments.
fn valid_stream(bodies: &[String]) -> Vec<u8> {
    let mut wire = Vec::new();
    for (i, body) in bodies.iter().enumerate() {
        let head = format!(
            "POST /map{i} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n",
            body.len()
        );
        wire.extend_from_slice(head.as_bytes());
        wire.extend_from_slice(body.as_bytes());
    }
    wire
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Chunking never changes the outcome: any split of any byte
    /// stream — valid pipelines, junk, or truncations — parses to the
    /// same requests and the same terminal error as the one-shot path,
    /// and never panics.
    #[test]
    fn parser_is_chunking_invariant(
        bodies in collection::vec(
            collection::vec(32u8..127, 0..80).prop_map(|b| String::from_utf8(b).unwrap()),
            0..4,
        ),
        junk in collection::vec(any::<u8>(), 0..64),
        sizes in collection::vec(1usize..40, 1..12),
        include_junk in any::<bool>(),
    ) {
        let mut wire = valid_stream(&bodies);
        if include_junk {
            wire.extend_from_slice(&junk);
        }
        let (want_requests, want_error) = parse_whole(&wire);
        let (got_requests, got_error) = parse_chunked(&wire, &sizes);
        prop_assert_eq!(&got_requests, &want_requests);
        prop_assert_eq!(&got_error, &want_error);
        // The valid prefix always comes through, junk notwithstanding.
        prop_assert!(got_requests.len() >= bodies.len());
        for (i, body) in bodies.iter().enumerate() {
            prop_assert_eq!(&got_requests[i].path, &format!("/map{i}"));
            prop_assert_eq!(&got_requests[i].body, body);
            prop_assert!(!got_requests[i].close);
        }
    }

    /// Arbitrary garbage never panics the parser and never produces a
    /// phantom request unless the bytes really formed one.
    #[test]
    fn parser_survives_arbitrary_bytes(
        wire in collection::vec(any::<u8>(), 0..300),
        sizes in collection::vec(1usize..17, 1..8),
    ) {
        let whole = parse_whole(&wire);
        let chunked = parse_chunked(&wire, &sizes);
        prop_assert_eq!(whole, chunked);
    }
}

#[test]
fn parser_rejects_oversize_bodies_before_they_arrive() {
    // The Content-Length header alone triggers the 413 path; the
    // parser never waits for (or buffers) the oversized body.
    let mut parser = Parser::new();
    parser.feed(
        format!(
            "POST /map HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            http::MAX_BODY + 1
        )
        .as_bytes(),
    );
    let err = parser.next_request().unwrap_err();
    assert_eq!(err.kind(), io::ErrorKind::InvalidInput, "{err}");
    // Errors are sticky: the connection must close, not resync.
    assert!(parser.next_request().is_err());
}

#[test]
fn parser_flags_connection_close_and_http10() {
    let mut parser = Parser::new();
    parser.feed(b"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n");
    assert!(parser.next_request().unwrap().unwrap().close);
    let mut parser = Parser::new();
    parser.feed(b"GET /healthz HTTP/1.0\r\n\r\n");
    assert!(
        parser.next_request().unwrap().unwrap().close,
        "HTTP/1.0 closes"
    );
    let mut parser = Parser::new();
    parser.feed(b"GET /healthz HTTP/1.0\r\nConnection: keep-alive\r\n\r\n");
    assert!(!parser.next_request().unwrap().unwrap().close);
}

#[test]
fn parser_enforces_line_and_header_limits_incrementally() {
    // An endless request line errors as soon as the limit passes, even
    // though no terminator ever arrived (the slowloris guard).
    let mut parser = Parser::new();
    parser.feed(&vec![b'A'; 10 * 1024]);
    assert!(parser.next_request().is_err());
    // Too many headers.
    let mut parser = Parser::new();
    parser.feed(b"GET / HTTP/1.1\r\n");
    for i in 0..101 {
        parser.feed(format!("X-H{i}: v\r\n").as_bytes());
    }
    parser.feed(b"\r\n");
    assert!(parser.next_request().is_err());
}

// ---------------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------------

#[test]
fn metrics_endpoint_exposes_prometheus_text() {
    let service = service();
    // Drive some traffic so every metric family has real samples.
    let body = format!("{{\"program\":{BELL:?},\"m\":2}}");
    assert_eq!(post(&service, "/map", &body).status, 200); // miss
    assert_eq!(post(&service, "/map", &body).status, 200); // hit
    assert_eq!(get(&service, "/nope").status, 404);

    let response = get(&service, "/metrics");
    assert_eq!(response.status, 200);
    assert_eq!(response.content_type, "text/plain; version=0.0.4");
    let text = &response.body;
    assert!(
        text.contains(concat!(
            "# TYPE qspr_http_requests_total counter\n",
            "qspr_http_requests_total{endpoint=\"/map\",status=\"200\"} 2\n",
        )),
        "{text}"
    );
    assert!(text.contains("qspr_http_requests_total{endpoint=\"other\",status=\"404\"} 1\n"));
    assert!(text.contains("qspr_cache_hits_total 1\n"), "{text}");
    assert!(text.contains("qspr_cache_misses_total 1\n"), "{text}");
    // The per-shard counters mirror the aggregates (exactly one shard
    // took both the miss and the hit for the single key involved).
    assert!(
        text.contains("# TYPE qspr_cache_shard_hits_total counter"),
        "{text}"
    );
    let shard_hits: u64 = text
        .lines()
        .filter(|l| l.starts_with("qspr_cache_shard_hits_total{"))
        .map(|l| l.rsplit(' ').next().unwrap().parse::<u64>().unwrap())
        .sum();
    assert_eq!(shard_hits, 1, "{text}");
    assert!(
        text.contains("# TYPE qspr_handler_latency_us summary\n"),
        "{text}"
    );
    assert!(
        text.contains("qspr_handler_latency_us{endpoint=\"/map\",quantile=\"0.99\"}"),
        "{text}"
    );
    // Exposition invariant the CI smoke also checks: every # TYPE line
    // is followed by at least one sample for its family.
    for (i, line) in text.lines().enumerate() {
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let family = rest.split(' ').next().unwrap();
            let has_sample = text
                .lines()
                .skip(i + 1)
                .take_while(|l| !l.starts_with("# HELP"))
                .any(|l| l.starts_with(family));
            assert!(has_sample, "family {family} has no samples:\n{text}");
        }
    }
    // /metrics requests themselves are counted (visible on the next
    // scrape), and non-GET methods are rejected like other endpoints.
    assert_eq!(post(&service, "/metrics", "").status, 405);
    let again = get(&service, "/metrics");
    assert!(
        again
            .body
            .contains("qspr_http_requests_total{endpoint=\"/metrics\",status=\"200\"} 1\n"),
        "{}",
        again.body
    );
}

// ---------------------------------------------------------------------------
// Real TCP
// ---------------------------------------------------------------------------

#[test]
fn wake_addr_rewrites_wildcard_binds_only() {
    let concrete: SocketAddr = "127.0.0.1:7878".parse().unwrap();
    assert_eq!(wake_addr(concrete), concrete);
    let v4: SocketAddr = "0.0.0.0:7878".parse().unwrap();
    assert_eq!(wake_addr(v4), "127.0.0.1:7878".parse().unwrap());
    let v6: SocketAddr = "[::]:7878".parse().unwrap();
    assert_eq!(wake_addr(v6), "[::1]:7878".parse().unwrap());
}

#[test]
fn server_round_trips_over_real_tcp() {
    let service = Arc::new(service());
    let config = ServeConfig {
        addr: "127.0.0.1:0".into(),
        threads: 2,
        ..ServeConfig::default()
    };
    let handle = Server::bind(Arc::clone(&service), &config)
        .expect("bind ephemeral")
        .spawn();
    let addr = handle.addr();

    let health = http::call(addr, "GET", "/healthz", "").unwrap();
    assert_eq!(
        (health.status, health.body.as_str()),
        (
            200,
            concat!(
                r#"{"status":"ok","version":""#,
                env!("CARGO_PKG_VERSION"),
                "\"}"
            ),
        )
    );

    // Binding surfaced the actual address in /stats.
    let stats = http::call(addr, "GET", "/stats", "").unwrap();
    assert!(
        stats.body.contains(&format!(r#""addr":"{addr}""#)),
        "{}",
        stats.body
    );

    let body = format!("{{\"program\":{BELL:?},\"m\":2}}");
    let cold = http::call(addr, "POST", "/map", &body).unwrap();
    let warm = http::call(addr, "POST", "/map", &body).unwrap();
    assert_eq!(cold.status, 200);
    assert_eq!(cold, warm, "cached response is byte-identical on the wire");

    // Malformed HTTP gets a 400 without killing the server.
    let garbage = http::call(addr, "BAD REQUEST LINE", "/", "").unwrap();
    assert_eq!(garbage.status, 400);
    let still_up = http::call(addr, "GET", "/healthz", "").unwrap();
    assert_eq!(still_up.status, 200);

    handle.shutdown().expect("graceful shutdown");
    assert!(service.shutdown_requested());
}

#[test]
fn keep_alive_connections_pipeline_and_preserve_order() {
    let service = Arc::new(service());
    let config = ServeConfig {
        addr: "127.0.0.1:0".into(),
        threads: 2,
        ..ServeConfig::default()
    };
    let handle = Server::bind(Arc::clone(&service), &config)
        .expect("bind ephemeral")
        .spawn();
    let mut client = http::Client::connect(handle.addr()).unwrap();

    // Several sequential requests reuse the one connection.
    for _ in 0..3 {
        let health = client.send("GET", "/healthz", "").unwrap();
        assert_eq!(health.status, 200);
        assert!(!client.is_closed(), "connection stays keep-alive");
    }

    // Pipelining: fire a slow mapping, a fast inline endpoint, another
    // mapping and another inline request back-to-back, then read all
    // four. Responses must come back in request order even though the
    // pool finishes the fast ones first.
    let map_body = format!("{{\"program\":{BELL:?},\"m\":2}}");
    let cmp_body = format!("{{\"program\":{BELL:?},\"name\":\"bell\",\"m\":2}}");
    client.write_request("POST", "/map", &map_body).unwrap();
    client.write_request("GET", "/healthz", "").unwrap();
    client.write_request("POST", "/compare", &cmp_body).unwrap();
    client.write_request("GET", "/healthz", "").unwrap();
    let first = client.read_response().unwrap();
    let second = client.read_response().unwrap();
    let third = client.read_response().unwrap();
    let fourth = client.read_response().unwrap();
    assert!(
        first.body.starts_with(r#"{"policy":"qspr""#),
        "map answer first: {}",
        first.body
    );
    assert!(
        second.body.starts_with(r#"{"status":"ok""#),
        "{}",
        second.body
    );
    assert!(
        third.body.starts_with(r#"{"circuit":"bell""#),
        "{}",
        third.body
    );
    assert!(fourth.body.starts_with(r#"{"status":"ok""#));
    assert!(!client.is_closed());

    // A second client sees the cached bytes of the first, over its own
    // persistent connection.
    let mut other = http::Client::connect(handle.addr()).unwrap();
    let warm = other.send("POST", "/map", &map_body).unwrap();
    assert_eq!(warm.body, first.body);

    // Connection: close is honored mid-stream.
    let bye = http::call(handle.addr(), "GET", "/healthz", "").unwrap();
    assert_eq!(bye.status, 200);

    handle.shutdown().expect("graceful shutdown");
}

#[test]
fn keep_alive_zero_restores_close_per_request() {
    let service = Arc::new(service());
    let config = ServeConfig {
        addr: "127.0.0.1:0".into(),
        threads: 1,
        keep_alive_secs: 0,
        ..ServeConfig::default()
    };
    let handle = Server::bind(Arc::clone(&service), &config)
        .expect("bind ephemeral")
        .spawn();
    let mut client = http::Client::connect(handle.addr()).unwrap();
    let health = client.send("GET", "/healthz", "").unwrap();
    assert_eq!(health.status, 200);
    assert!(
        client.is_closed(),
        "keep_alive_secs=0 answers with Connection: close"
    );
    handle.shutdown().expect("graceful shutdown");
}

#[test]
fn shutdown_endpoint_stops_the_server() {
    let service = Arc::new(service());
    let config = ServeConfig {
        addr: "127.0.0.1:0".into(),
        threads: 1,
        ..ServeConfig::default()
    };
    let handle = Server::bind(Arc::clone(&service), &config)
        .expect("bind ephemeral")
        .spawn();
    let addr = handle.addr();
    let bye = http::call(addr, "POST", "/shutdown", "").unwrap();
    assert_eq!(
        (bye.status, bye.body.as_str()),
        (200, r#"{"status":"shutting-down"}"#)
    );
    // run() returns on its own — join without sending anything else.
    handle.thread.join().expect("no panic").expect("clean exit");
    assert!(http::call(addr, "GET", "/healthz", "").is_err());
}
