//! `qspr` — command-line front end for the QSPR mapper.
//!
//! ```text
//! qspr map <file.qasm> [--policy qspr|quale|qpos] [--router R] [--m N] [--jobs N] [--trace] [--sta] [--sta-feedback] [--dump-trace FILE] [--profile] [--fabric F] [--format FMT]
//! qspr sta <file.qasm> [--policy P] [--router R] [--m N] [--jobs N] [--sta-feedback] [--fabric F] [--format FMT]
//! qspr compare <file.qasm> [--router R] [--m N] [--jobs N] [--fabric F] [--format FMT]
//! qspr suite [--router R] [--m N] [--jobs N] [--fabric F] [--format FMT]
//! qspr batch [files...] [--suite] [--router R] [--m N] [--jobs N] [--threads T] [--fabric F] [--format FMT]
//! qspr serve [--addr A] [--threads T] [--cache N] [--cache-shards S] [--max-queue Q] [--keep-alive SECS] [--log] [--fabric F]
//! qspr fabric [--fabric F]
//! qspr encode <CODE>
//! qspr version
//! ```
//!
//! `--fabric` takes `quale45x85` (default) or a path to a fabric file —
//! a JSON `FabricSpec` document or plain ASCII art (auto-detected); `--router` is `greedy` (default), `negotiated`
//! (PathFinder-style rip-up-and-reroute) or `race` (run both engines —
//! and the slack-feedback pilot under `--sta-feedback` — concurrently
//! and keep the lowest latency); `--jobs N` grants the run N worker
//! threads with byte-identical output at every N; `--format` is `text`
//! (default) or `json` (stable machine-readable schema); `CODE` is one
//! of `5,1,3`, `7,1,3`, `9,1,3`, `14,8,3`, `19,1,7`, `23,1,7`.
//!
//! `qspr sta` maps a circuit with trace recording on and prints the
//! static timing analysis of `qspr-sta`: per-instruction slack, the
//! critical path and segment/junction bottlenecks. `qspr map --sta`
//! appends the same report to a normal mapping run, and
//! `--sta-feedback` (with `--router negotiated`) folds the analysis
//! back into a second mapping pass, keeping the faster run.
//!
//! `qspr map --profile` instruments the run with the `qspr-obs` span
//! tracer and reports per-phase wall time, the span tree and per-epoch
//! counts — appended as a `"profile"` object in JSON mode, or as a
//! table after the text report.
//!
//! `qspr serve` runs the resident mapping service of `qspr::service`:
//! `POST /map`, `POST /compare`, `POST /sta` and `POST /batch` with
//! the same JSON schemas as `--format json`, `GET /healthz`,
//! `GET /stats`, `GET /metrics` (Prometheus text format),
//! `POST /shutdown`. Connections are keep-alive by default
//! (`--keep-alive SECS` idle timeout, 0 restores close-per-request),
//! results come from a sharded LRU cache (`--cache N` entries across
//! `--cache-shards S` locks, 0 disables), and each heavy endpoint
//! admits at most `--max-queue Q` queued requests before answering
//! `429 Too Many Requests` with `Retry-After`. `--log` writes one
//! structured access-log line per request to stderr.

use std::process::ExitCode;
use std::sync::Arc;

use qspr::json::JsonArray;
use qspr::service::{CacheConfig, MapService, ServeConfig, Server};
use qspr::{BatchJob, BatchMapper, Flow, FlowPolicy, QsprError, RouterKind, ToJson};
use qspr_fabric::Fabric;
use qspr_qasm::Program;
use qspr_qecc::codes;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("qspr: {e}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
usage:
  qspr map <file.qasm> [--policy qspr|quale|qpos] [--router R] [--m N] [--jobs N] [--trace] [--sta] [--sta-feedback] [--dump-trace FILE] [--profile] [--fabric F] [--format FMT]
  qspr sta <file.qasm> [--policy P] [--router R] [--m N] [--jobs N] [--sta-feedback] [--fabric F] [--format FMT]
  qspr compare <file.qasm> [--router R] [--m N] [--jobs N] [--fabric F] [--format FMT]
  qspr suite [--router R] [--m N] [--jobs N] [--fabric F] [--format FMT]
  qspr batch [files...] [--suite] [--router R] [--m N] [--jobs N] [--threads T] [--fabric F] [--format FMT]
  qspr serve [--addr A] [--threads T] [--cache N] [--cache-shards S] [--max-queue Q] [--keep-alive SECS] [--log] [--fabric F]
  qspr fabric [--fabric F]
  qspr encode <CODE>          (5,1,3 | 7,1,3 | 9,1,3 | 14,8,3 | 19,1,7 | 23,1,7)
  qspr version

options:
  --fabric F    quale45x85 (default) or a fabric file (spec JSON or ASCII art)
  --policy P    mapper policy for `map` (default qspr)
  --router R    routing engine: greedy (default), negotiated or race
  --m N         MVFB seed count (default 25)
  --jobs N      worker threads per mapping run (default 1; identical output at any N)
  --threads T   worker threads for `batch`/`serve` (default: all CPUs)
  --format FMT  output format: text (default) or json
  --suite       add the paper's six benchmark circuits to the batch
  --trace       print the micro-command trace after mapping
  --sta         map: append the static timing analysis to the report
  --sta-feedback  remap with slack-aware feedback (needs --router negotiated)
  --dump-trace FILE  map: write the recorded trace to FILE as JSON
  --profile     map: trace the run and report per-phase times and the span tree
  --addr A      serve: bind address (default 127.0.0.1:7878; port 0 = ephemeral)
  --cache N     serve: result-cache capacity in entries (default 128, 0 = off)
  --cache-shards S  serve: lock shards in the result cache (default 8)
  --max-queue Q serve: queued requests per heavy endpoint before 429 (default 256)
  --keep-alive SECS  serve: idle connection timeout (default 30; 0 = close per request)
  --log         serve: one structured access-log line per request on stderr
  --help, -h    print this help and exit";

/// Output format selected with `--format`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum OutputFormat {
    Text,
    Json,
}

/// Minimal flag parser: collects positional arguments and `--key value` /
/// `--switch` options. Duplicate value flags are rejected.
#[derive(Debug)]
struct Cli {
    positional: Vec<String>,
    options: Vec<(String, Option<String>)>,
}

impl Cli {
    fn parse(args: &[String]) -> Result<Cli, QsprError> {
        const VALUE_FLAGS: [&str; 13] = [
            "--fabric",
            "--policy",
            "--router",
            "--m",
            "--jobs",
            "--threads",
            "--format",
            "--addr",
            "--cache",
            "--cache-shards",
            "--max-queue",
            "--keep-alive",
            "--dump-trace",
        ];
        const SWITCHES: [&str; 6] = [
            "--trace",
            "--suite",
            "--sta",
            "--sta-feedback",
            "--profile",
            "--log",
        ];
        let mut positional = Vec::new();
        let mut options: Vec<(String, Option<String>)> = Vec::new();
        let mut it = args.iter();
        while let Some(a) = it.next() {
            if let Some(flag) = a.strip_prefix("--").map(|_| a.as_str()) {
                if VALUE_FLAGS.contains(&flag) {
                    if options.iter().any(|(f, _)| f == flag) {
                        return Err(QsprError::usage(format!(
                            "flag {flag} given more than once"
                        )));
                    }
                    let value = it
                        .next()
                        .ok_or_else(|| QsprError::usage(format!("flag {flag} needs a value")))?;
                    options.push((flag.to_owned(), Some(value.clone())));
                } else if SWITCHES.contains(&flag) {
                    options.push((flag.to_owned(), None));
                } else {
                    return Err(QsprError::usage(format!("unknown flag {flag}")));
                }
            } else {
                positional.push(a.clone());
            }
        }
        Ok(Cli {
            positional,
            options,
        })
    }

    fn value(&self, flag: &str) -> Option<&str> {
        self.options
            .iter()
            .find(|(f, _)| f == flag)
            .and_then(|(_, v)| v.as_deref())
    }

    fn switch(&self, flag: &str) -> bool {
        self.options.iter().any(|(f, _)| f == flag)
    }

    fn m(&self) -> Result<usize, QsprError> {
        match self.value("--m") {
            None => Ok(25),
            Some(v) => v
                .parse()
                .map_err(|_| QsprError::usage(format!("--m expects a number, got {v:?}"))),
        }
    }

    fn jobs(&self) -> Result<usize, QsprError> {
        match self.value("--jobs") {
            None => Ok(1),
            Some(v) => match v.parse() {
                Ok(n) if n >= 1 => Ok(n),
                _ => Err(QsprError::usage(format!(
                    "--jobs expects a positive number, got {v:?}"
                ))),
            },
        }
    }

    fn threads(&self) -> Result<Option<usize>, QsprError> {
        match self.value("--threads") {
            None => Ok(None),
            Some(v) => match v.parse() {
                Ok(n) if n >= 1 => Ok(Some(n)),
                _ => Err(QsprError::usage(format!(
                    "--threads expects a positive number, got {v:?}"
                ))),
            },
        }
    }

    fn cache(&self) -> Result<usize, QsprError> {
        match self.value("--cache") {
            None => Ok(128),
            Some(v) => v.parse().map_err(|_| {
                QsprError::usage(format!("--cache expects a number of entries, got {v:?}"))
            }),
        }
    }

    fn cache_shards(&self) -> Result<usize, QsprError> {
        match self.value("--cache-shards") {
            None => Ok(8),
            Some(v) => match v.parse() {
                Ok(n) if n >= 1 => Ok(n),
                _ => Err(QsprError::usage(format!(
                    "--cache-shards expects a positive number, got {v:?}"
                ))),
            },
        }
    }

    fn max_queue(&self) -> Result<usize, QsprError> {
        match self.value("--max-queue") {
            None => Ok(256),
            Some(v) => match v.parse() {
                Ok(n) if n >= 1 => Ok(n),
                _ => Err(QsprError::usage(format!(
                    "--max-queue expects a positive number, got {v:?}"
                ))),
            },
        }
    }

    fn keep_alive(&self) -> Result<u64, QsprError> {
        match self.value("--keep-alive") {
            None => Ok(30),
            Some(v) => v.parse().map_err(|_| {
                QsprError::usage(format!(
                    "--keep-alive expects an idle timeout in seconds (0 disables), got {v:?}"
                ))
            }),
        }
    }

    fn router(&self) -> Result<RouterKind, QsprError> {
        match self.value("--router") {
            None => Ok(RouterKind::Greedy),
            Some(v) => v.parse().map_err(|e| QsprError::usage(format!("{e}"))),
        }
    }

    fn format(&self) -> Result<OutputFormat, QsprError> {
        match self.value("--format") {
            None | Some("text") => Ok(OutputFormat::Text),
            Some("json") => Ok(OutputFormat::Json),
            Some(other) => Err(QsprError::usage(format!(
                "--format expects text or json, got {other:?}"
            ))),
        }
    }

    fn fabric(&self) -> Result<Fabric, QsprError> {
        match self.value("--fabric") {
            None | Some("quale45x85") => Ok(Fabric::quale_45x85()),
            Some(path) => {
                let text = std::fs::read_to_string(path).map_err(|e| QsprError::io(path, e))?;
                Ok(Fabric::parse(&text)?)
            }
        }
    }

    /// Validates the `--sta-feedback` pairing (the seeded re-run only
    /// makes sense against a negotiated pilot) and reports whether the
    /// mode is on.
    fn sta_feedback(&self) -> Result<bool, QsprError> {
        if !self.switch("--sta-feedback") {
            return Ok(false);
        }
        if !matches!(self.router()?, RouterKind::Negotiated | RouterKind::Race) {
            return Err(QsprError::usage(
                "--sta-feedback requires --router negotiated or race",
            ));
        }
        Ok(true)
    }

    /// A flow on the selected fabric with the selected seed count and
    /// routing engine.
    fn flow(&self) -> Result<Flow, QsprError> {
        Ok(Flow::on(self.fabric()?)
            .seeds(self.m()?)
            .router(self.router()?)
            .jobs(self.jobs()?))
    }
}

/// Splices a pre-serialized object into the trailing brace of a summary
/// object as `"key":value` (both inputs are `qspr_json`-built objects,
/// so the result stays strictly parseable). Used for the `--sta` and
/// `--profile` report blocks.
fn splice_field(summary: &str, key: &str, value: &str) -> String {
    debug_assert!(summary.ends_with('}'));
    format!("{},\"{key}\":{value}}}", &summary[..summary.len() - 1])
}

fn load_program(path: &str) -> Result<Program, QsprError> {
    let text = std::fs::read_to_string(path).map_err(|e| QsprError::io(path, e))?;
    Program::parse(&text).map_err(QsprError::from)
}

fn run(args: &[String]) -> Result<(), QsprError> {
    // Help short-circuits everything: any `--help`/`-h` anywhere wins,
    // and must exit 0 rather than trip the unknown-flag path.
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{USAGE}");
        return Ok(());
    }
    // `--version` wins anywhere too, for consistency with `--help`.
    if args.first().map(String::as_str) == Some("version") || args.iter().any(|a| a == "--version")
    {
        println!("qspr {}", env!("CARGO_PKG_VERSION"));
        return Ok(());
    }
    let Some(command) = args.first() else {
        return Err(QsprError::usage("missing command"));
    };
    let cli = Cli::parse(&args[1..])?;
    match command.as_str() {
        "map" => cmd_map(&cli),
        "sta" => cmd_sta(&cli),
        "compare" => cmd_compare(&cli),
        "suite" => cmd_suite(&cli),
        "batch" => cmd_batch(&cli),
        "serve" => cmd_serve(&cli),
        "fabric" => cmd_fabric(&cli),
        "encode" => cmd_encode(&cli),
        other => Err(QsprError::usage(format!("unknown command {other:?}"))),
    }
}

fn cmd_map(cli: &Cli) -> Result<(), QsprError> {
    let path = cli
        .positional
        .first()
        .ok_or_else(|| QsprError::usage("map needs a QASM file argument"))?;
    let policy: FlowPolicy = cli.value("--policy").unwrap_or("qspr").parse()?;
    let format = cli.format()?;
    let sta = cli.switch("--sta");
    let dump_trace = cli.value("--dump-trace");
    // Validate the flag pairing before touching the filesystem.
    let feedback = cli.sta_feedback()?;
    // `--profile`: collect the pipeline's spans into a thread-local
    // tree. Thread-local (not global) so a profiled run in one thread
    // never leaks spans into another; installed before the parse so
    // the "parse" root is captured too. The wall clock starts here —
    // the report's phases account for everything from this point on.
    let profiling = cli.switch("--profile").then(|| {
        let collector = Arc::new(qspr::obs::Collector::new());
        let guard = qspr::obs::install_thread(Arc::clone(&collector) as _);
        (collector, guard, std::time::Instant::now())
    });
    let program = load_program(path)?;
    let flow = cli
        .flow()?
        .policy(policy)
        .record_trace(cli.switch("--trace") || sta || dump_trace.is_some())
        .sta_feedback(feedback);

    let result = flow.run(&program)?;
    if let Some(out) = dump_trace {
        let trace = result
            .forward_trace
            .as_ref()
            .expect("trace recording was enabled");
        std::fs::write(out, qspr::sta::trace_to_json(trace)).map_err(|e| QsprError::io(out, e))?;
    }
    // The STA report runs inside the profiled window (its "sta" span
    // becomes a phase); the profile itself is built afterwards, once
    // all spans have closed.
    let sta_report = sta
        .then(|| flow.timing_report(&program, &result))
        .transpose()?;
    let profile = profiling.map(|(collector, guard, t0)| {
        drop(guard);
        qspr::obs::ProfileReport::from_collector(&collector, t0.elapsed())
    });
    match format {
        OutputFormat::Json => {
            let mut summary = result.summary().to_json();
            if let Some(report) = &sta_report {
                summary = splice_field(&summary, "sta", &report.to_json());
            }
            if let Some(profile) = &profile {
                summary = splice_field(&summary, "profile", &profile.to_json());
            }
            println!("{summary}");
        }
        OutputFormat::Text => {
            match policy {
                FlowPolicy::Qspr => {
                    println!("policy          qspr (MVFB m={})", flow.seed_count())
                }
                other => println!("policy          {other}"),
            }
            println!("router          {}", result.router);
            println!("latency         {}µs", result.latency);
            println!("ideal baseline  {}µs", flow.ideal_latency(&program));
            println!("placement runs  {}", result.runs);
            println!(
                "movement        {} moves, {} turns",
                result.outcome.totals().moves,
                result.outcome.totals().turns
            );
            println!(
                "congestion wait {}µs total",
                result.outcome.totals().congestion_wait
            );
            let routing = result.outcome.routing_stats();
            println!(
                "routing epochs  {} ({} rip iterations, {} ripped routes, peak pressure {})",
                routing.epochs, routing.iterations, routing.ripped, routing.max_pressure
            );
            if cli.switch("--trace") {
                if let Some(trace) = &result.forward_trace {
                    println!("\ntrace ({} commands):", trace.len());
                    for entry in trace {
                        println!("  {entry}");
                    }
                }
            }
            if let Some(report) = &sta_report {
                println!("\n{report}");
            }
            if let Some(profile) = &profile {
                println!("\n{profile}");
            }
        }
    }
    Ok(())
}

fn cmd_sta(cli: &Cli) -> Result<(), QsprError> {
    let path = cli
        .positional
        .first()
        .ok_or_else(|| QsprError::usage("sta needs a QASM file argument"))?;
    let policy: FlowPolicy = cli.value("--policy").unwrap_or("qspr").parse()?;
    let format = cli.format()?;
    let feedback = cli.sta_feedback()?;
    let program = load_program(path)?;
    let flow = cli
        .flow()?
        .policy(policy)
        .record_trace(true)
        .sta_feedback(feedback);
    let result = flow.run(&program)?;
    let report = flow.timing_report(&program, &result)?;
    match format {
        OutputFormat::Json => println!("{}", report.to_json()),
        OutputFormat::Text => {
            println!("circuit         {path}");
            println!("router          {}", result.router);
            println!("latency         {}µs", result.latency);
            println!();
            println!("{report}");
        }
    }
    Ok(())
}

fn cmd_compare(cli: &Cli) -> Result<(), QsprError> {
    let path = cli
        .positional
        .first()
        .ok_or_else(|| QsprError::usage("compare needs a QASM file argument"))?;
    let program = load_program(path)?;
    let format = cli.format()?;
    let row = cli.flow()?.compare(path, &program)?;
    match format {
        OutputFormat::Text => println!("{row}"),
        OutputFormat::Json => println!("{}", row.to_json()),
    }
    Ok(())
}

fn cmd_suite(cli: &Cli) -> Result<(), QsprError> {
    let format = cli.format()?;
    let flow = cli.flow()?;
    let mut rows = JsonArray::new();
    for bench in codes::benchmark_suite() {
        let row = flow.compare(&bench.name, &bench.program)?;
        match format {
            OutputFormat::Text => println!("{row}"),
            OutputFormat::Json => rows.push_raw(&row.to_json()),
        }
    }
    if format == OutputFormat::Json {
        println!("{}", rows.build());
    }
    Ok(())
}

fn cmd_batch(cli: &Cli) -> Result<(), QsprError> {
    let mut jobs: Vec<BatchJob> = Vec::new();
    for path in &cli.positional {
        jobs.push(BatchJob::new(path.as_str(), load_program(path)?));
    }
    if cli.switch("--suite") {
        jobs.extend(codes::benchmark_suite().into_iter().map(BatchJob::from));
    }
    if jobs.is_empty() {
        return Err(QsprError::usage("batch needs QASM files and/or --suite"));
    }
    let format = cli.format()?;
    let mut mapper = BatchMapper::new(cli.flow()?);
    if let Some(threads) = cli.threads()? {
        mapper = mapper.threads(threads);
    }
    let report = mapper.run(&jobs)?;
    match format {
        OutputFormat::Json => println!("{}", report.to_json()),
        OutputFormat::Text => {
            for item in &report.items {
                println!("{}  [{:>7.1?}]", item.row, item.cpu);
            }
            println!(
                "{} circuits | {} threads | wall {:.2?} | worker time {:.2?} | speedup {:.2}x | mean improvement {:.2}%",
                report.items.len(),
                report.threads,
                report.wall,
                report.total_cpu(),
                report.speedup(),
                report.mean_improvement_pct(),
            );
        }
    }
    Ok(())
}

fn cmd_serve(cli: &Cli) -> Result<(), QsprError> {
    let mut config = ServeConfig {
        addr: cli.value("--addr").unwrap_or("127.0.0.1:7878").to_owned(),
        log: cli.switch("--log"),
        keep_alive_secs: cli.keep_alive()?,
        max_queue: cli.max_queue()?,
        ..ServeConfig::default()
    };
    if let Some(threads) = cli.threads()? {
        config.threads = threads;
    }
    let cache_capacity = cli.cache()?;
    // Per-request "jobs" budget: the worker pool already fans out
    // across requests, so each request gets at most its fair share of
    // the host's cores — pool threads times intra-map jobs can never
    // oversubscribe. Clamping is safe because jobs never changes
    // response bytes.
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let jobs_budget = (cores / config.threads.max(1)).max(1);
    let service = Arc::new(
        MapService::new(cli.fabric()?, cache_capacity)
            .with_cache(CacheConfig {
                entries: cache_capacity,
                shards: cli.cache_shards()?,
                ..CacheConfig::default()
            })
            .with_jobs_budget(jobs_budget),
    );
    // Feed every pipeline span (parse, place, route epochs, sta, ...)
    // into the service registry as per-phase latency histograms, so
    // `GET /metrics` reports where mapping time goes. Global, because
    // requests are handled on worker threads.
    qspr::obs::install_global(Arc::new(qspr::obs::MetricsSpanSink::new(Arc::clone(
        service.metrics(),
    ))));
    let server =
        Server::bind(Arc::clone(&service), &config).map_err(|e| QsprError::io(&config.addr, e))?;
    let addr = server
        .local_addr()
        .map_err(|e| QsprError::io(&config.addr, e))?;
    // The bound address is the machine-readable part (CI greps it to
    // discover the ephemeral port), so it goes first on its own line.
    println!("listening on http://{addr}/");
    println!(
        "threads {} | cache {} entries x {} shards | keep-alive {}s | queue {} | POST /map, POST /compare, POST /sta, POST /batch, GET /healthz, GET /stats, GET /metrics, POST /shutdown",
        config.threads,
        cache_capacity,
        service.cache().shard_count(),
        config.keep_alive_secs,
        config.max_queue,
    );
    server
        .run()
        .map_err(|e| QsprError::io(addr.to_string(), e))?;
    let stats = service.stats();
    println!(
        "served {} requests ({} map, {} compare, {} sta, {} batch/{} programs) | cache {} hits / {} misses | rejected {} | busy {}ms",
        stats.requests,
        stats.map_requests,
        stats.compare_requests,
        stats.sta_requests,
        stats.batch_requests,
        stats.batch_programs,
        stats.cache_hits,
        stats.cache_misses,
        stats.rejected,
        stats.busy_us / 1000,
    );
    Ok(())
}

fn cmd_fabric(cli: &Cli) -> Result<(), QsprError> {
    let fabric = cli.fabric()?;
    let topo = fabric.topology();
    println!("{fabric}");
    println!(
        "{}x{} cells | {} traps, {} junctions, {} segments | center {}",
        fabric.rows(),
        fabric.cols(),
        topo.traps().len(),
        topo.junctions().len(),
        topo.segments().len(),
        fabric.center(),
    );
    let stats = fabric.stats();
    println!(
        "connected: {} | diameter: {} moves / {} hops | mean trap distance {:.1} | empty {:.0}%",
        stats.connected,
        stats.junction_diameter_moves,
        stats.junction_diameter_hops,
        stats.mean_trap_distance,
        100.0 * stats.empty_fraction,
    );
    Ok(())
}

fn cmd_encode(cli: &Cli) -> Result<(), QsprError> {
    let name = cli
        .positional
        .first()
        .ok_or_else(|| QsprError::usage("encode needs a code argument"))?;
    let code = match name.trim_matches(|c| c == '[' || c == ']').trim() {
        "5,1,3" => codes::five_one_three(),
        "7,1,3" => codes::steane(),
        "9,1,3" => codes::nine_one_three(),
        "14,8,3" => codes::fourteen_eight_three(),
        "19,1,7" => codes::nineteen_one_seven(),
        "23,1,7" => codes::twenty_three_one_seven(),
        other => return Err(QsprError::usage(format!("unknown code {other:?}"))),
    };
    let program =
        qspr_qecc::encoder::encoding_circuit(&code).map_err(|e| QsprError::usage(e.to_string()))?;
    print!("{}", program.to_qasm());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn cli_parses_flags_and_positionals() {
        let cli = Cli::parse(&strings(&[
            "file.qasm",
            "--m",
            "7",
            "--trace",
            "--policy",
            "quale",
        ]))
        .unwrap();
        assert_eq!(cli.positional, vec!["file.qasm"]);
        assert_eq!(cli.m().unwrap(), 7);
        assert!(cli.switch("--trace"));
        assert_eq!(cli.value("--policy"), Some("quale"));
    }

    #[test]
    fn cli_rejects_unknown_flags() {
        let err = Cli::parse(&strings(&["--frobnicate"])).unwrap_err();
        assert!(matches!(err, QsprError::Usage(_)));
        assert_eq!(err.to_string(), "unknown flag --frobnicate");
    }

    #[test]
    fn cli_rejects_missing_values() {
        let err = Cli::parse(&strings(&["--m"])).unwrap_err();
        assert_eq!(err.to_string(), "flag --m needs a value");
        assert!(Cli::parse(&strings(&["--format"])).is_err());
    }

    #[test]
    fn cli_rejects_duplicate_value_flags() {
        // Regression: `--m 4 --m 100` used to resolve silently to the
        // first occurrence.
        let err = Cli::parse(&strings(&["--m", "4", "--m", "100"])).unwrap_err();
        assert_eq!(err.to_string(), "flag --m given more than once");
        let err = Cli::parse(&strings(&["--fabric", "a", "--fabric", "b"])).unwrap_err();
        assert_eq!(err.to_string(), "flag --fabric given more than once");
        // Repeated switches stay harmless and idempotent.
        let cli = Cli::parse(&strings(&["--trace", "--trace"])).unwrap();
        assert!(cli.switch("--trace"));
    }

    #[test]
    fn format_flag_validates() {
        assert_eq!(
            Cli::parse(&[]).unwrap().format().unwrap(),
            OutputFormat::Text
        );
        assert_eq!(
            Cli::parse(&strings(&["--format", "text"]))
                .unwrap()
                .format()
                .unwrap(),
            OutputFormat::Text
        );
        assert_eq!(
            Cli::parse(&strings(&["--format", "json"]))
                .unwrap()
                .format()
                .unwrap(),
            OutputFormat::Json
        );
        let err = Cli::parse(&strings(&["--format", "yaml"]))
            .unwrap()
            .format()
            .unwrap_err();
        assert!(err.to_string().contains("text or json"));
    }

    #[test]
    fn default_m_is_25() {
        let cli = Cli::parse(&[]).unwrap();
        assert_eq!(cli.m().unwrap(), 25);
    }

    #[test]
    fn router_flag_parses_and_validates() {
        assert_eq!(
            Cli::parse(&[]).unwrap().router().unwrap(),
            RouterKind::Greedy
        );
        assert_eq!(
            Cli::parse(&strings(&["--router", "greedy"]))
                .unwrap()
                .router()
                .unwrap(),
            RouterKind::Greedy
        );
        assert_eq!(
            Cli::parse(&strings(&["--router", "negotiated"]))
                .unwrap()
                .router()
                .unwrap(),
            RouterKind::Negotiated
        );
        // A bad value is a usage error (exit 1 + usage text).
        let err = Cli::parse(&strings(&["--router", "fancy"]))
            .unwrap()
            .router()
            .unwrap_err();
        assert!(matches!(err, QsprError::Usage(_)));
        assert!(err.to_string().contains("unknown router \"fancy\""));
        // A missing value is caught by the parser.
        let err = Cli::parse(&strings(&["--router"])).unwrap_err();
        assert_eq!(err.to_string(), "flag --router needs a value");
        // Duplicates are rejected like every other value flag.
        assert!(Cli::parse(&strings(&["--router", "greedy", "--router", "negotiated"])).is_err());
    }

    #[test]
    fn router_flag_feeds_the_flow() {
        let cli = Cli::parse(&strings(&["--router", "negotiated"])).unwrap();
        assert_eq!(cli.flow().unwrap().router_name(), "negotiated");
        assert_eq!(
            Cli::parse(&[]).unwrap().flow().unwrap().router_name(),
            "greedy"
        );
    }

    #[test]
    fn jobs_flag_parses_validates_and_feeds_the_flow() {
        assert_eq!(Cli::parse(&[]).unwrap().jobs().unwrap(), 1);
        let cli = Cli::parse(&strings(&["--jobs", "4"])).unwrap();
        assert_eq!(cli.jobs().unwrap(), 4);
        assert_eq!(cli.flow().unwrap().job_count(), 4);
        assert!(Cli::parse(&strings(&["--jobs", "0"]))
            .unwrap()
            .jobs()
            .is_err());
        assert!(Cli::parse(&strings(&["--jobs", "many"]))
            .unwrap()
            .jobs()
            .is_err());
        assert!(Cli::parse(&strings(&["--jobs"])).is_err());
        assert!(Cli::parse(&strings(&["--jobs", "1", "--jobs", "2"])).is_err());
    }

    #[test]
    fn race_router_parses_and_allows_sta_feedback() {
        let cli = Cli::parse(&strings(&["--router", "race"])).unwrap();
        assert_eq!(cli.router().unwrap(), RouterKind::Race);
        assert_eq!(cli.flow().unwrap().router_name(), "race");
        // Racing includes the sta leg, so the pairing is legal; the
        // error (if any) is the missing file.
        let err = run(&strings(&[
            "map",
            "missing.qasm",
            "--router",
            "race",
            "--sta-feedback",
        ]))
        .unwrap_err();
        assert!(matches!(err, QsprError::Io { .. }));
    }

    #[test]
    fn threads_flag_parses_and_validates() {
        let cli = Cli::parse(&strings(&["--threads", "8", "--suite"])).unwrap();
        assert_eq!(cli.threads().unwrap(), Some(8));
        assert!(cli.switch("--suite"));
        assert_eq!(Cli::parse(&[]).unwrap().threads().unwrap(), None);
        assert!(Cli::parse(&strings(&["--threads", "0"]))
            .unwrap()
            .threads()
            .is_err());
        assert!(Cli::parse(&strings(&["--threads", "many"]))
            .unwrap()
            .threads()
            .is_err());
    }

    #[test]
    fn serve_flags_parse_and_validate() {
        let cli = Cli::parse(&strings(&["--addr", "127.0.0.1:0", "--cache", "16"])).unwrap();
        assert_eq!(cli.value("--addr"), Some("127.0.0.1:0"));
        assert_eq!(cli.cache().unwrap(), 16);
        // Defaults: no addr flag, 128 cache entries.
        let cli = Cli::parse(&[]).unwrap();
        assert_eq!(cli.value("--addr"), None);
        assert_eq!(cli.cache().unwrap(), 128);
        // Cache must be numeric; 0 (disabled) is allowed.
        assert_eq!(
            Cli::parse(&strings(&["--cache", "0"]))
                .unwrap()
                .cache()
                .unwrap(),
            0
        );
        let err = Cli::parse(&strings(&["--cache", "lots"]))
            .unwrap()
            .cache()
            .unwrap_err();
        assert!(err.to_string().contains("--cache expects"));
        // Value-flag plumbing applies: duplicates and missing values.
        assert!(Cli::parse(&strings(&["--addr", "a", "--addr", "b"])).is_err());
        assert!(Cli::parse(&strings(&["--cache"])).is_err());
    }

    #[test]
    fn front_end_flags_parse_and_validate() {
        // Defaults: 8 shards, 256-deep admission queues, 30s keep-alive.
        let cli = Cli::parse(&[]).unwrap();
        assert_eq!(cli.cache_shards().unwrap(), 8);
        assert_eq!(cli.max_queue().unwrap(), 256);
        assert_eq!(cli.keep_alive().unwrap(), 30);
        let cli = Cli::parse(&strings(&[
            "--cache-shards",
            "4",
            "--max-queue",
            "2",
            "--keep-alive",
            "0",
        ]))
        .unwrap();
        assert_eq!(cli.cache_shards().unwrap(), 4);
        assert_eq!(cli.max_queue().unwrap(), 2);
        assert_eq!(cli.keep_alive().unwrap(), 0, "0 = close per request");
        // Shards and queue depth must stay positive; keep-alive allows 0.
        assert!(Cli::parse(&strings(&["--cache-shards", "0"]))
            .unwrap()
            .cache_shards()
            .is_err());
        assert!(Cli::parse(&strings(&["--max-queue", "0"]))
            .unwrap()
            .max_queue()
            .is_err());
        assert!(Cli::parse(&strings(&["--keep-alive", "soon"]))
            .unwrap()
            .keep_alive()
            .is_err());
        assert!(Cli::parse(&strings(&["--max-queue"])).is_err());
        assert!(Cli::parse(&strings(&["--keep-alive", "1", "--keep-alive", "2"])).is_err());
    }

    #[test]
    fn serve_rejects_a_bad_bind_address() {
        let cli = Cli::parse(&strings(&["--addr", "definitely:not:an:addr"])).unwrap();
        let err = cmd_serve(&cli).unwrap_err();
        assert!(matches!(err, QsprError::Io { .. }));
    }

    #[test]
    fn batch_requires_some_input() {
        let cli = Cli::parse(&[]).unwrap();
        assert!(cmd_batch(&cli).is_err());
    }

    #[test]
    fn run_rejects_unknown_commands() {
        assert!(run(&strings(&["frobnicate"])).is_err());
        assert!(run(&[]).is_err());
    }

    #[test]
    fn help_exits_cleanly_everywhere() {
        // `--help` used to fall into the unknown-flag failure path; it
        // must now succeed wherever it appears.
        assert!(run(&strings(&["--help"])).is_ok());
        assert!(run(&strings(&["-h"])).is_ok());
        assert!(run(&strings(&["map", "--help"])).is_ok());
        assert!(run(&strings(&["batch", "--suite", "-h"])).is_ok());
    }

    #[test]
    fn version_subcommand_succeeds() {
        assert!(run(&strings(&["version"])).is_ok());
        assert!(run(&strings(&["--version"])).is_ok());
        // Like --help, the flag form wins anywhere on the line.
        assert!(run(&strings(&["map", "--version"])).is_ok());
    }

    #[test]
    fn sta_flags_parse() {
        let cli = Cli::parse(&strings(&[
            "file.qasm",
            "--sta",
            "--sta-feedback",
            "--dump-trace",
            "out.json",
        ]))
        .unwrap();
        assert!(cli.switch("--sta"));
        assert!(cli.switch("--sta-feedback"));
        assert_eq!(cli.value("--dump-trace"), Some("out.json"));
        // `--dump-trace` is a value flag: it needs a path and rejects
        // duplicates like the others.
        assert!(Cli::parse(&strings(&["--dump-trace"])).is_err());
        assert!(Cli::parse(&strings(&["--dump-trace", "a", "--dump-trace", "b"])).is_err());
    }

    #[test]
    fn sta_feedback_requires_the_negotiated_router() {
        // The pairing is validated before any file I/O, for both
        // commands that accept the switch.
        let err = run(&strings(&["map", "missing.qasm", "--sta-feedback"])).unwrap_err();
        assert!(err.to_string().contains("--router negotiated"));
        let err = run(&strings(&["sta", "missing.qasm", "--sta-feedback"])).unwrap_err();
        assert!(err.to_string().contains("--router negotiated"));
        // With the right router the validation passes and the error (if
        // any) is the missing file.
        let err = run(&strings(&[
            "sta",
            "missing.qasm",
            "--router",
            "negotiated",
            "--sta-feedback",
        ]))
        .unwrap_err();
        assert!(matches!(err, QsprError::Io { .. }));
    }

    #[test]
    fn reports_splice_into_summary_json() {
        let spliced = splice_field(r#"{"policy":"qspr"}"#, "sta", r#"{"makespan_us":7}"#);
        assert_eq!(spliced, r#"{"policy":"qspr","sta":{"makespan_us":7}}"#);
        // The splice stays strictly parseable, and chains.
        assert!(qspr::json::JsonValue::parse(&spliced).is_ok());
        let chained = splice_field(&spliced, "profile", r#"{"total_wall_us":9}"#);
        assert_eq!(
            chained,
            r#"{"policy":"qspr","sta":{"makespan_us":7},"profile":{"total_wall_us":9}}"#
        );
        assert!(qspr::json::JsonValue::parse(&chained).is_ok());
    }

    #[test]
    fn profile_and_log_switches_parse() {
        let cli = Cli::parse(&strings(&["file.qasm", "--profile"])).unwrap();
        assert!(cli.switch("--profile"));
        let cli = Cli::parse(&strings(&["--log", "--addr", "127.0.0.1:0"])).unwrap();
        assert!(cli.switch("--log"));
        // Neither takes a value: the next token stays positional.
        let cli = Cli::parse(&strings(&["--profile", "file.qasm"])).unwrap();
        assert_eq!(cli.positional, vec!["file.qasm"]);
    }

    #[test]
    fn map_rejects_bad_policy_via_flow_policy() {
        let err = "best".parse::<FlowPolicy>().unwrap_err();
        assert!(err.to_string().contains("unknown policy"));
    }

    #[test]
    fn encode_produces_parseable_qasm() {
        // Drive the command path end to end for one code.
        let cli = Cli::parse(&strings(&["5,1,3"])).unwrap();
        cmd_encode(&cli).unwrap();
    }

    #[test]
    fn suite_names_resolve() {
        for name in ["5,1,3", "7,1,3", "9,1,3", "14,8,3", "19,1,7", "23,1,7"] {
            let cli = Cli::parse(&strings(&[name])).unwrap();
            assert!(cmd_encode(&cli).is_ok(), "{name}");
        }
        let cli = Cli::parse(&strings(&["31,1,7"])).unwrap();
        assert!(cmd_encode(&cli).is_err());
    }

    #[test]
    fn compare_json_round_trips_through_the_golden_schema() {
        // End-to-end: run `compare --format json` machinery on a real
        // program and check the emitted object against the pinned
        // schema keys, in order.
        let flow = Flow::on(Fabric::quale_45x85()).seeds(2);
        let bench = codes::benchmark_suite().swap_remove(0);
        let row = flow.compare(&bench.name, &bench.program).unwrap();
        let json = row.to_json();
        let keys = [
            "\"circuit\":",
            "\"baseline_us\":",
            "\"quale_us\":",
            "\"qspr_us\":",
            "\"quale_overhead_us\":",
            "\"qspr_overhead_us\":",
            "\"improvement_pct\":",
        ];
        let mut at = 0;
        for key in keys {
            let pos = json[at..]
                .find(key)
                .unwrap_or_else(|| panic!("{key} missing (or out of order) in {json}"));
            at += pos + key.len();
        }
        // Round-trip: the values re-parse as the row's numbers.
        let grab = |key: &str| -> u64 {
            let start = json.find(key).expect("key present") + key.len();
            json[start..]
                .chars()
                .take_while(char::is_ascii_digit)
                .collect::<String>()
                .parse()
                .expect("integer value")
        };
        assert_eq!(grab("\"baseline_us\":"), row.baseline);
        assert_eq!(grab("\"quale_us\":"), row.quale);
        assert_eq!(grab("\"qspr_us\":"), row.qspr);
    }
}
