//! `qspr` — command-line front end for the QSPR mapper.
//!
//! ```text
//! qspr map <file.qasm> [--policy qspr|quale|qpos] [--m N] [--trace] [--fabric F]
//! qspr compare <file.qasm> [--m N] [--fabric F]
//! qspr suite [--m N]
//! qspr batch [files...] [--suite] [--m N] [--threads T] [--fabric F]
//! qspr fabric [--fabric F]
//! qspr encode <CODE>
//! ```
//!
//! `--fabric` takes either `quale45x85` (default) or a path to an ASCII
//! fabric file; `CODE` is one of `5,1,3`, `7,1,3`, `9,1,3`, `14,8,3`,
//! `19,1,7`, `23,1,7`.

use std::process::ExitCode;

use qspr::{BatchJob, BatchMapper, QsprConfig, QsprTool};
use qspr_fabric::Fabric;
use qspr_qasm::Program;
use qspr_qecc::codes;
use qspr_sim::MapperPolicy;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("qspr: {msg}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
usage:
  qspr map <file.qasm> [--policy qspr|quale|qpos] [--m N] [--trace] [--fabric F]
  qspr compare <file.qasm> [--m N] [--fabric F]
  qspr suite [--m N] [--fabric F]
  qspr batch [files...] [--suite] [--m N] [--threads T] [--fabric F]
  qspr fabric [--fabric F]
  qspr encode <CODE>          (5,1,3 | 7,1,3 | 9,1,3 | 14,8,3 | 19,1,7 | 23,1,7)

options:
  --fabric F    quale45x85 (default) or a path to an ASCII fabric file
  --policy P    mapper policy for `map` (default qspr)
  --m N         MVFB seed count (default 25)
  --threads T   worker threads for `batch` (default: all CPUs)
  --suite       add the paper's six benchmark circuits to the batch
  --trace       print the micro-command trace after mapping";

/// Minimal flag parser: collects positional arguments and `--key value` /
/// `--switch` options.
struct Cli {
    positional: Vec<String>,
    options: Vec<(String, Option<String>)>,
}

impl Cli {
    fn parse(args: &[String]) -> Result<Cli, String> {
        const VALUE_FLAGS: [&str; 4] = ["--fabric", "--policy", "--m", "--threads"];
        const SWITCHES: [&str; 2] = ["--trace", "--suite"];
        let mut positional = Vec::new();
        let mut options = Vec::new();
        let mut it = args.iter();
        while let Some(a) = it.next() {
            if let Some(flag) = a.strip_prefix("--").map(|_| a.as_str()) {
                if VALUE_FLAGS.contains(&flag) {
                    let value = it
                        .next()
                        .ok_or_else(|| format!("flag {flag} needs a value"))?;
                    options.push((flag.to_owned(), Some(value.clone())));
                } else if SWITCHES.contains(&flag) {
                    options.push((flag.to_owned(), None));
                } else {
                    return Err(format!("unknown flag {flag}"));
                }
            } else {
                positional.push(a.clone());
            }
        }
        Ok(Cli {
            positional,
            options,
        })
    }

    fn value(&self, flag: &str) -> Option<&str> {
        self.options
            .iter()
            .find(|(f, _)| f == flag)
            .and_then(|(_, v)| v.as_deref())
    }

    fn switch(&self, flag: &str) -> bool {
        self.options.iter().any(|(f, _)| f == flag)
    }

    fn m(&self) -> Result<usize, String> {
        match self.value("--m") {
            None => Ok(25),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--m expects a number, got {v:?}")),
        }
    }

    fn threads(&self) -> Result<Option<usize>, String> {
        match self.value("--threads") {
            None => Ok(None),
            Some(v) => match v.parse() {
                Ok(n) if n >= 1 => Ok(Some(n)),
                _ => Err(format!("--threads expects a positive number, got {v:?}")),
            },
        }
    }

    fn fabric(&self) -> Result<Fabric, String> {
        match self.value("--fabric") {
            None | Some("quale45x85") => Ok(Fabric::quale_45x85()),
            Some(path) => {
                let text = std::fs::read_to_string(path)
                    .map_err(|e| format!("cannot read fabric {path}: {e}"))?;
                Fabric::from_ascii(&text).map_err(|e| format!("bad fabric {path}: {e}"))
            }
        }
    }
}

fn load_program(path: &str) -> Result<Program, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    Program::parse(&text).map_err(|e| format!("{path}: {e}"))
}

fn run(args: &[String]) -> Result<(), String> {
    let Some(command) = args.first() else {
        return Err("missing command".to_owned());
    };
    let cli = Cli::parse(&args[1..])?;
    match command.as_str() {
        "map" => cmd_map(&cli),
        "compare" => cmd_compare(&cli),
        "suite" => cmd_suite(&cli),
        "batch" => cmd_batch(&cli),
        "fabric" => cmd_fabric(&cli),
        "encode" => cmd_encode(&cli),
        other => Err(format!("unknown command {other:?}")),
    }
}

fn cmd_map(cli: &Cli) -> Result<(), String> {
    let path = cli
        .positional
        .first()
        .ok_or("map needs a QASM file argument")?;
    let program = load_program(path)?;
    let fabric = cli.fabric()?;
    let mut config = QsprConfig::paper().with_seeds(cli.m()?);
    config.record_trace = cli.switch("--trace");
    let tool = QsprTool::new(&fabric, config);
    let tech = config.tech;

    let policy = cli.value("--policy").unwrap_or("qspr");
    match policy {
        "qspr" => {
            let result = tool.map(&program).map_err(|e| e.to_string())?;
            println!("policy          qspr (MVFB m={})", config.mvfb.seeds);
            println!("latency         {}µs", result.latency);
            println!("ideal baseline  {}µs", tool.ideal_latency(&program));
            println!("placement runs  {}", result.runs);
            println!(
                "movement        {} moves, {} turns",
                result.outcome.totals().moves,
                result.outcome.totals().turns
            );
            println!(
                "congestion wait {}µs total",
                result.outcome.totals().congestion_wait
            );
            if let Some(trace) = &result.forward_trace {
                println!("\ntrace ({} commands):", trace.len());
                for entry in trace {
                    println!("  {entry}");
                }
            }
        }
        "quale" | "qpos" => {
            let policy = match policy {
                "quale" => MapperPolicy::quale(&tech),
                _ => MapperPolicy::qpos(&tech),
            };
            let placement =
                qspr_sim::Placement::center(&fabric, program.num_qubits());
            let outcome = tool
                .map_with(&program, policy, &placement)
                .map_err(|e| e.to_string())?;
            println!("policy          {}", cli.value("--policy").expect("set"));
            println!("latency         {}µs", outcome.latency());
            println!("ideal baseline  {}µs", tool.ideal_latency(&program));
            println!(
                "movement        {} moves, {} turns",
                outcome.totals().moves,
                outcome.totals().turns
            );
        }
        other => return Err(format!("unknown policy {other:?}")),
    }
    Ok(())
}

fn cmd_compare(cli: &Cli) -> Result<(), String> {
    let path = cli
        .positional
        .first()
        .ok_or("compare needs a QASM file argument")?;
    let program = load_program(path)?;
    let fabric = cli.fabric()?;
    let tool = QsprTool::new(&fabric, QsprConfig::paper().with_seeds(cli.m()?));
    let row = tool.compare(path, &program).map_err(|e| e.to_string())?;
    println!("{row}");
    Ok(())
}

fn cmd_suite(cli: &Cli) -> Result<(), String> {
    let fabric = cli.fabric()?;
    let tool = QsprTool::new(&fabric, QsprConfig::paper().with_seeds(cli.m()?));
    for bench in codes::benchmark_suite() {
        let row = tool
            .compare(&bench.name, &bench.program)
            .map_err(|e| e.to_string())?;
        println!("{row}");
    }
    Ok(())
}

fn cmd_batch(cli: &Cli) -> Result<(), String> {
    let mut jobs: Vec<BatchJob> = Vec::new();
    for path in &cli.positional {
        jobs.push(BatchJob::new(path.as_str(), load_program(path)?));
    }
    if cli.switch("--suite") {
        jobs.extend(codes::benchmark_suite().into_iter().map(BatchJob::from));
    }
    if jobs.is_empty() {
        return Err("batch needs QASM files and/or --suite".to_owned());
    }
    let fabric = cli.fabric()?;
    let config = QsprConfig::paper().with_seeds(cli.m()?);
    let mut mapper = BatchMapper::new(&fabric, config);
    if let Some(threads) = cli.threads()? {
        mapper = mapper.threads(threads);
    }
    let report = mapper.run(&jobs).map_err(|e| e.to_string())?;
    for item in &report.items {
        println!("{}  [{:>7.1?}]", item.row, item.cpu);
    }
    println!(
        "{} circuits | {} threads | wall {:.2?} | worker time {:.2?} | speedup {:.2}x | mean improvement {:.2}%",
        report.items.len(),
        report.threads,
        report.wall,
        report.total_cpu(),
        report.speedup(),
        report.mean_improvement_pct(),
    );
    Ok(())
}

fn cmd_fabric(cli: &Cli) -> Result<(), String> {
    let fabric = cli.fabric()?;
    let topo = fabric.topology();
    println!("{fabric}");
    println!(
        "{}x{} cells | {} traps, {} junctions, {} segments | center {}",
        fabric.rows(),
        fabric.cols(),
        topo.traps().len(),
        topo.junctions().len(),
        topo.segments().len(),
        fabric.center(),
    );
    let stats = fabric.stats();
    println!(
        "connected: {} | diameter: {} moves / {} hops | mean trap distance {:.1} | empty {:.0}%",
        stats.connected,
        stats.junction_diameter_moves,
        stats.junction_diameter_hops,
        stats.mean_trap_distance,
        100.0 * stats.empty_fraction,
    );
    Ok(())
}

fn cmd_encode(cli: &Cli) -> Result<(), String> {
    let name = cli
        .positional
        .first()
        .ok_or("encode needs a code argument")?;
    let code = match name.trim_matches(|c| c == '[' || c == ']').trim() {
        "5,1,3" => codes::five_one_three(),
        "7,1,3" => codes::steane(),
        "9,1,3" => codes::nine_one_three(),
        "14,8,3" => codes::fourteen_eight_three(),
        "19,1,7" => codes::nineteen_one_seven(),
        "23,1,7" => codes::twenty_three_one_seven(),
        other => return Err(format!("unknown code {other:?}")),
    };
    let program =
        qspr_qecc::encoder::encoding_circuit(&code).map_err(|e| e.to_string())?;
    print!("{}", program.to_qasm());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn cli_parses_flags_and_positionals() {
        let cli = Cli::parse(&strings(&[
            "file.qasm",
            "--m",
            "7",
            "--trace",
            "--policy",
            "quale",
        ]))
        .unwrap();
        assert_eq!(cli.positional, vec!["file.qasm"]);
        assert_eq!(cli.m().unwrap(), 7);
        assert!(cli.switch("--trace"));
        assert_eq!(cli.value("--policy"), Some("quale"));
    }

    #[test]
    fn cli_rejects_unknown_flags_and_missing_values() {
        assert!(Cli::parse(&strings(&["--frobnicate"])).is_err());
        assert!(Cli::parse(&strings(&["--m"])).is_err());
    }

    #[test]
    fn default_m_is_25() {
        let cli = Cli::parse(&[]).unwrap();
        assert_eq!(cli.m().unwrap(), 25);
    }

    #[test]
    fn threads_flag_parses_and_validates() {
        let cli = Cli::parse(&strings(&["--threads", "8", "--suite"])).unwrap();
        assert_eq!(cli.threads().unwrap(), Some(8));
        assert!(cli.switch("--suite"));
        assert_eq!(Cli::parse(&[]).unwrap().threads().unwrap(), None);
        assert!(Cli::parse(&strings(&["--threads", "0"]))
            .unwrap()
            .threads()
            .is_err());
        assert!(Cli::parse(&strings(&["--threads", "many"]))
            .unwrap()
            .threads()
            .is_err());
    }

    #[test]
    fn batch_requires_some_input() {
        let cli = Cli::parse(&[]).unwrap();
        assert!(cmd_batch(&cli).is_err());
    }

    #[test]
    fn run_rejects_unknown_commands() {
        assert!(run(&strings(&["frobnicate"])).is_err());
        assert!(run(&[]).is_err());
    }

    #[test]
    fn encode_produces_parseable_qasm() {
        // Drive the command path end to end for one code.
        let cli = Cli::parse(&strings(&["5,1,3"])).unwrap();
        cmd_encode(&cli).unwrap();
    }

    #[test]
    fn suite_names_resolve() {
        for name in ["5,1,3", "7,1,3", "9,1,3", "14,8,3", "19,1,7", "23,1,7"] {
            let cli = Cli::parse(&strings(&[name])).unwrap();
            assert!(cmd_encode(&cli).is_ok(), "{name}");
        }
        let cli = Cli::parse(&strings(&["31,1,7"])).unwrap();
        assert!(cmd_encode(&cli).is_err());
    }
}
