//! A minimal hand-rolled JSON writer for stable report output.
//!
//! The build environment has no registry access, so there is no serde;
//! reports instead implement [`ToJson`] on top of the tiny
//! [`JsonObject`]/[`JsonArray`] builders below. The output contract is
//! deliberately strict so downstream tooling can pin it:
//!
//! * object keys appear in the order the builder emitted them;
//! * strings are escaped per RFC 8259 (quotes, backslashes, control
//!   characters as `\u00XX`);
//! * integers are written verbatim; floats with **two decimal places**
//!   (non-finite floats become `null`);
//! * no whitespace is emitted anywhere.
//!
//! # Examples
//!
//! ```
//! use qspr::json::JsonObject;
//!
//! let json = JsonObject::new()
//!     .string("circuit", "[[5,1,3]]")
//!     .number("latency_us", 634)
//!     .float("improvement_pct", 23.798)
//!     .boolean("mvfb_wins", true)
//!     .build();
//! assert_eq!(
//!     json,
//!     r#"{"circuit":"[[5,1,3]]","latency_us":634,"improvement_pct":23.80,"mvfb_wins":true}"#
//! );
//! ```

use std::fmt::Write as _;

/// Types that serialize themselves to a stable JSON string.
pub trait ToJson {
    /// Renders `self` as one JSON value with the stability guarantees
    /// documented at the [module level](self).
    fn to_json(&self) -> String;
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> String {
        (**self).to_json()
    }
}

/// Escapes `s` as the *contents* of a JSON string literal (no
/// surrounding quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Builder for one JSON object, emitting keys in call order.
#[derive(Debug, Clone, Default)]
pub struct JsonObject {
    buf: String,
}

impl JsonObject {
    /// Starts an empty object.
    pub fn new() -> JsonObject {
        JsonObject { buf: String::new() }
    }

    fn key(&mut self, key: &str) {
        if !self.buf.is_empty() {
            self.buf.push(',');
        }
        let _ = write!(self.buf, "\"{}\":", escape(key));
    }

    /// Adds a string field.
    pub fn string(mut self, key: &str, value: &str) -> JsonObject {
        self.key(key);
        let _ = write!(self.buf, "\"{}\"", escape(value));
        self
    }

    /// Adds an unsigned integer field.
    pub fn number(mut self, key: &str, value: u64) -> JsonObject {
        self.key(key);
        let _ = write!(self.buf, "{value}");
        self
    }

    /// Adds a float field, formatted with two decimal places
    /// (`null` when not finite).
    pub fn float(mut self, key: &str, value: f64) -> JsonObject {
        self.key(key);
        if value.is_finite() {
            let _ = write!(self.buf, "{value:.2}");
        } else {
            self.buf.push_str("null");
        }
        self
    }

    /// Adds a boolean field.
    pub fn boolean(mut self, key: &str, value: bool) -> JsonObject {
        self.key(key);
        self.buf.push_str(if value { "true" } else { "false" });
        self
    }

    /// Adds a pre-rendered JSON value (nested object or array) verbatim.
    pub fn raw(mut self, key: &str, value: &str) -> JsonObject {
        self.key(key);
        self.buf.push_str(value);
        self
    }

    /// Finishes the object.
    pub fn build(self) -> String {
        format!("{{{}}}", self.buf)
    }
}

/// Builder for one JSON array of pre-rendered values.
#[derive(Debug, Clone, Default)]
pub struct JsonArray {
    buf: String,
}

impl JsonArray {
    /// Starts an empty array.
    pub fn new() -> JsonArray {
        JsonArray { buf: String::new() }
    }

    /// Appends a pre-rendered JSON value.
    pub fn push_raw(&mut self, value: &str) {
        if !self.buf.is_empty() {
            self.buf.push(',');
        }
        self.buf.push_str(value);
    }

    /// Collects the JSON renderings of `items` into one array.
    pub fn of<T: ToJson>(items: impl IntoIterator<Item = T>) -> String {
        let mut arr = JsonArray::new();
        for item in items {
            arr.push_raw(&item.to_json());
        }
        arr.build()
    }

    /// Finishes the array.
    pub fn build(self) -> String {
        format!("[{}]", self.buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_covers_specials() {
        assert_eq!(escape(r#"a"b\c"#), r#"a\"b\\c"#);
        assert_eq!(escape("line\nbreak\ttab"), "line\\nbreak\\ttab");
        assert_eq!(escape("\u{01}"), "\\u0001");
        assert_eq!(escape("µs ok"), "µs ok");
    }

    #[test]
    fn empty_object_and_array() {
        assert_eq!(JsonObject::new().build(), "{}");
        assert_eq!(JsonArray::new().build(), "[]");
    }

    #[test]
    fn non_finite_floats_become_null() {
        let json = JsonObject::new().float("x", f64::NAN).build();
        assert_eq!(json, r#"{"x":null}"#);
    }

    #[test]
    fn nested_raw_values() {
        let inner = JsonObject::new().number("n", 1).build();
        let mut arr = JsonArray::new();
        arr.push_raw(&inner);
        arr.push_raw("2");
        let outer = JsonObject::new().raw("items", &arr.build()).build();
        assert_eq!(outer, r#"{"items":[{"n":1},2]}"#);
    }

    #[test]
    fn flow_summary_json_golden() {
        // Golden test: this string IS the `--format json` schema
        // contract for `qspr map`, congestion-stats fields included.
        // Changing it breaks downstream consumers.
        use qspr_place::PassDirection;
        use qspr_route::RoutingStats;

        use crate::{FlowPolicy, FlowSummary};

        let summary = FlowSummary {
            policy: FlowPolicy::Qspr,
            placer: "mvfb".to_owned(),
            router: "negotiated".to_owned(),
            latency: 634,
            direction: PassDirection::Backward,
            runs: 88,
            cpu_ms: 546,
            moves: 410,
            turns: 24,
            congestion_wait: 12,
            routing: RoutingStats {
                epochs: 57,
                iterations: 9,
                ripped: 14,
                max_pressure: 3,
            },
            trace_commands: None,
        };
        assert_eq!(
            summary.to_json(),
            r#"{"policy":"qspr","placer":"mvfb","router":"negotiated","latency_us":634,"direction":"backward","runs":88,"cpu_ms":546,"moves":410,"turns":24,"congestion_wait_us":12,"epochs":57,"rip_iterations":9,"ripped_routes":14,"max_segment_pressure":3}"#
        );

        // The optional trace count appends as the final key.
        let traced = FlowSummary {
            trace_commands: Some(1234),
            ..summary
        };
        assert!(traced
            .to_json()
            .ends_with(r#""max_segment_pressure":3,"trace_commands":1234}"#));
    }
}
