//! Stable JSON writer and strict RFC 8259 reader.
//!
//! The implementation lives in the dependency-free [`qspr_json`] crate
//! so that lower layers (notably `qspr-fabric`'s spec loader) can parse
//! JSON without depending on the mapper core; this module re-exports it
//! unchanged, so `qspr::json` remains the canonical path for report
//! writers and service code.

pub use qspr_json::*;

#[cfg(test)]
mod tests {
    use super::ToJson;

    #[test]
    fn flow_summary_json_golden() {
        // Golden test: this string IS the `--format json` schema
        // contract for `qspr map`, congestion-stats fields included.
        // Changing it breaks downstream consumers.
        use qspr_place::PassDirection;
        use qspr_route::RoutingStats;

        use crate::{FlowPolicy, FlowSummary, FlowTiming};

        let summary = FlowSummary {
            policy: FlowPolicy::Qspr,
            placer: "mvfb".to_owned(),
            router: "negotiated".to_owned(),
            latency: 634,
            direction: PassDirection::Backward,
            runs: 88,
            timing: FlowTiming {
                cpu_ms: 546,
                wall_us: 546_912,
            },
            moves: 410,
            turns: 24,
            congestion_wait: 12,
            routing: RoutingStats {
                epochs: 57,
                iterations: 9,
                ripped: 14,
                max_pressure: 3,
            },
            fabric: None,
            trace_commands: None,
        };
        assert_eq!(
            summary.to_json(),
            r#"{"policy":"qspr","placer":"mvfb","router":"negotiated","latency_us":634,"direction":"backward","runs":88,"timing":{"cpu_ms":546,"wall_us":546912},"moves":410,"turns":24,"congestion_wait_us":12,"epochs":57,"rip_iterations":9,"ripped_routes":14,"max_segment_pressure":3}"#
        );

        // The optional trace count appends as the final key.
        let traced = FlowSummary {
            trace_commands: Some(1234),
            ..summary.clone()
        };
        assert!(traced
            .to_json()
            .ends_with(r#""max_segment_pressure":3,"trace_commands":1234}"#));

        // Spec-built fabrics append a provenance block (before the
        // trace count): name, family, region count, and the
        // capacity histogram with `null` for the technology default.
        let with_fabric = FlowSummary {
            fabric: Some(crate::FabricSummary {
                name: "demo".to_owned(),
                family: "composite".to_owned(),
                regions: 2,
                capacity_histogram: vec![(None, 40), (Some(1), 3), (Some(4), 2)],
            }),
            trace_commands: Some(9),
            ..summary
        };
        assert!(with_fabric.to_json().ends_with(concat!(
            r#""fabric":{"name":"demo","family":"composite","regions":2,"#,
            r#""capacity_histogram":[{"capacity":null,"count":40},"#,
            r#"{"capacity":1,"count":3},{"capacity":4,"count":2}]},"#,
            r#""trace_commands":9}"#
        )));
    }
}
