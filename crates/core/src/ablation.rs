//! Ablation policies: the QSPR improvements of §I, toggled one at a time.

use qspr_fabric::TechParams;
use qspr_sched::PriorityWeights;
use qspr_sim::{IssueOrder, MapperPolicy, MovementPolicy};

/// One mapper policy per design claim of the paper, for measuring how
/// much each QSPR feature contributes:
///
/// * `qspr` — the full tool (reference point);
/// * `no-turn-aware` — router ignores turn delays (Fig. 5 deficiency);
/// * `no-multiplexing` — channel/junction capacity 1 (pre-\[10\] hardware);
/// * `single-movement` — only the source qubit moves (QPOS-style);
/// * `alap-order` — ALAP extraction instead of the priority list;
/// * `dependents-priority` — QPOS's priority term alone;
/// * `path-priority` — the Whitney et al. priority term alone.
///
/// # Examples
///
/// ```
/// use qspr::ablation_policies;
/// use qspr_fabric::TechParams;
///
/// let policies = ablation_policies(&TechParams::date2012());
/// assert_eq!(policies[0].0, "qspr");
/// assert_eq!(policies.len(), 7);
/// ```
pub fn ablation_policies(tech: &TechParams) -> Vec<(&'static str, MapperPolicy)> {
    let full = MapperPolicy::qspr(tech);
    let mut no_turn = full;
    no_turn.router.turn_aware = false;
    let mut no_mux = full;
    no_mux.router.channel_capacity = 1;
    no_mux.router.junction_capacity = 1;
    let mut single = full;
    single.movement = MovementPolicy::SourceToDestination;
    let mut alap = full;
    alap.order = IssueOrder::Alap;
    let mut deps_only = full;
    deps_only.order = IssueOrder::PriorityList(PriorityWeights::dependents_only());
    let mut path_only = full;
    path_only.order = IssueOrder::PriorityList(PriorityWeights::path_delay_only());
    vec![
        ("qspr", full),
        ("no-turn-aware", no_turn),
        ("no-multiplexing", no_mux),
        ("single-movement", single),
        ("alap-order", alap),
        ("dependents-priority", deps_only),
        ("path-priority", path_only),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policies_differ_from_the_reference() {
        let tech = TechParams::date2012();
        let policies = ablation_policies(&tech);
        let reference = policies[0].1;
        for (name, policy) in &policies[1..] {
            assert_ne!(*policy, reference, "{name} must toggle something");
        }
    }

    #[test]
    fn names_are_unique() {
        let tech = TechParams::date2012();
        let mut names: Vec<_> = ablation_policies(&tech)
            .into_iter()
            .map(|(n, _)| n)
            .collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 7);
    }
}
